"""Fig 22 (Appendix B): WiFi yielding CDFs including LEDBAT-25.

Paper: as a scavenger on WiFi paths LEDBAT-25 beats LEDBAT-100 but still
loses to Proteus-S — the median throughput ratios of COPA, Proteus-P,
and Vivace are 5.2%, 24.7%, and 38.6% higher against Proteus-S.
"""

from __future__ import annotations

import statistics

from _common import run_once, scaled

from repro.harness import print_table, run_pair, wifi_sites

PRIMARIES = ("copa", "proteus-p", "vivace")
SCAVENGERS = ("proteus-s", "ledbat-25", "ledbat")


def experiment():
    duration = scaled(18.0)
    configs = wifi_sites(n_sites=2, n_paths=2)
    ratios: dict[tuple[str, str], list[float]] = {
        (p, s): [] for p in PRIMARIES for s in SCAVENGERS
    }
    for config in configs:
        for primary in PRIMARIES:
            for scavenger in SCAVENGERS:
                pair = run_pair(
                    primary, scavenger, config, duration_s=duration, seed=14
                )
                ratios[(primary, scavenger)].append(pair.primary_throughput_ratio)
    return ratios


def test_fig22_ledbat25_wifi_yielding(benchmark):
    ratios = run_once(benchmark, experiment)

    rows = [
        [primary]
        + [f"{statistics.median(ratios[(primary, s)]) * 100:.1f}%" for s in SCAVENGERS]
        for primary in PRIMARIES
    ]
    print_table(
        ["primary"] + list(SCAVENGERS),
        rows,
        title="Fig 22: median primary throughput ratio on noisy paths",
    )

    for primary in PRIMARIES:
        med_ps = statistics.median(ratios[(primary, "proteus-s")])
        med_l25 = statistics.median(ratios[(primary, "ledbat-25")])
        assert med_ps >= med_l25 - 0.05, (
            f"Proteus-S must not lose to LEDBAT-25 against {primary}"
        )
        floor = 0.4 if primary == "vivace" else 0.6
        assert med_ps > floor
