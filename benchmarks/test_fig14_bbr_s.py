"""Fig 14: extending RTT-deviation yielding to BBR (BBR-S, §7.1).

Paper: on a 50 Mbps / 30 ms / 375 KB bottleneck, a modified BBR that
forces its minimum-RTT probing phase whenever the smoothed RTT deviation
exceeds a threshold (a) yields to primary BBR, (b) yields to CUBIC, and
(c) shares fairly with another BBR-S.  The figure is throughput vs time
for the three pairings.
"""

from __future__ import annotations

from _common import run_once, scaled

from repro.harness import EMULAB_DEFAULT, FlowSpec, print_table, run_flows

PAIRINGS = (
    ("bbr", "bbr-s"),
    ("cubic", "bbr-s"),
    ("bbr-s", "bbr-s"),
)


def experiment():
    duration = scaled(50.0)
    outcomes = {}
    for first, second in PAIRINGS:
        result = run_flows(
            [FlowSpec(first), FlowSpec(second, start_time=10.0)],
            EMULAB_DEFAULT,
            duration_s=duration,
            seed=6,
        )
        window = (duration * 0.55, duration)
        outcomes[(first, second)] = (
            result.throughput_mbps(0, window),
            result.throughput_mbps(1, window),
            result.stats[0].throughput_series(5.0, 0.0, duration),
            result.stats[1].throughput_series(5.0, 0.0, duration),
        )
    return outcomes


def test_fig14_bbr_s_yields(benchmark):
    outcomes = run_once(benchmark, experiment)

    rows = []
    for (first, second), (thr1, thr2, series1, series2) in outcomes.items():
        rows.append((f"{first} vs {second}", f"{thr1:.1f}", f"{thr2:.1f}"))
    print_table(
        ["pairing", "flow 1 (Mbps)", "flow 2 (Mbps)"],
        rows,
        title="Fig 14: BBR-S steady-state split (flow 2 joins at t=10s)",
    )
    for (first, second), (_, _, series1, series2) in outcomes.items():
        print(f"\n{first} vs {second} throughput over time (5 s bins):")
        print("  flow1: " + " ".join(f"{v:5.1f}" for _, v in series1))
        print("  flow2: " + " ".join(f"{v:5.1f}" for _, v in series2))

    bbr_primary, bbr_s = outcomes[("bbr", "bbr-s")][:2]
    cubic_primary, bbr_s2 = outcomes[("cubic", "bbr-s")][:2]
    peer_a, peer_b = outcomes[("bbr-s", "bbr-s")][:2]
    # Yields to primary BBR and to CUBIC.
    assert bbr_primary > 3.0 * bbr_s
    assert cubic_primary > 3.0 * bbr_s2
    # Fair with itself (the paper's middle panel). Note: mutual yielding
    # leaves capacity unused relative to the paper — see EXPERIMENTS.md.
    assert min(peer_a, peer_b) / max(peer_a, peer_b) > 0.4
