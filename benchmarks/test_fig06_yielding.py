"""Fig 6: scavenger candidates competing against primary protocols.

The paper's core result.  For each scavenger candidate (LEDBAT,
Proteus-S, and — to show latency-awareness alone is not enough —
Proteus-P and COPA in the scavenger role) against each primary (BBR,
CUBIC, COPA, Proteus-P, Vivace) under shallow (75 KB) and large
(375 KB) buffers, we report the primary throughput ratio and the joint
capacity utilization.

Paper headlines: Proteus-S keeps every primary above ~87-98% of its
solo throughput while LEDBAT drags BBR to 26% and latency-aware
primaries below 43%; Proteus-S still fills >= ~89-95% of the link.
"""

from __future__ import annotations

from _common import run_once, scaled

from repro.harness import (
    EMULAB_DEFAULT,
    EMULAB_SHALLOW,
    PRIMARY_PROTOCOLS,
    print_table,
    run_pair,
)

SCAVENGERS = ("ledbat", "proteus-s", "proteus-p", "copa")
BUFFERS = {"75KB": EMULAB_SHALLOW, "375KB": EMULAB_DEFAULT}


def experiment():
    duration = scaled(25.0)
    results = {}
    for scavenger in SCAVENGERS:
        for primary in PRIMARY_PROTOCOLS:
            for label, config in BUFFERS.items():
                pair = run_pair(
                    primary, scavenger, config, duration_s=duration, seed=2
                )
                results[(scavenger, primary, label)] = pair
    return results


def test_fig06_scavenger_vs_primary(benchmark):
    results = run_once(benchmark, experiment)

    for scavenger in SCAVENGERS:
        rows = []
        for primary in PRIMARY_PROTOCOLS:
            for label in BUFFERS:
                pair = results[(scavenger, primary, label)]
                rows.append(
                    (
                        primary,
                        label,
                        f"{pair.primary_throughput_ratio * 100:.1f}%",
                        f"{pair.utilization * 100:.1f}%",
                        f"{pair.scavenger_mbps:.1f}",
                    )
                )
        print_table(
            ["primary", "buffer", "primary ratio", "utilization", "scav Mbps"],
            rows,
            title=f"Fig 6: {scavenger} as the scavenger",
        )

    # --- Proteus-S yields to every primary in every buffer setup.
    # Vivace gets a lower bar: the paper itself reports a "somewhat lower
    # primary throughput ratio" against Vivace (no adaptive noise
    # tolerance), still several times better than LEDBAT.
    for primary in PRIMARY_PROTOCOLS:
        floor = 0.45 if primary == "vivace" else 0.70
        for label in BUFFERS:
            ratio = results[("proteus-s", primary, label)].primary_throughput_ratio
            assert ratio > floor, (
                f"Proteus-S must yield to {primary} ({label}): got {ratio:.2f}"
            )
    # Against the most-deployed primaries the paper claims >= 95-98%.
    assert results[("proteus-s", "cubic", "375KB")].primary_throughput_ratio > 0.9
    assert results[("proteus-s", "bbr", "375KB")].primary_throughput_ratio > 0.9

    # --- LEDBAT fails against latency-aware primaries (deep buffer).
    for primary in ("copa", "vivace", "proteus-p"):
        ledbat_ratio = results[("ledbat", primary, "375KB")].primary_throughput_ratio
        proteus_ratio = results[("proteus-s", primary, "375KB")].primary_throughput_ratio
        assert proteus_ratio > ledbat_ratio + 0.15, (
            f"Proteus-S must beat LEDBAT against {primary}: "
            f"{proteus_ratio:.2f} vs {ledbat_ratio:.2f}"
        )
    # LEDBAT also fails to yield to CUBIC when the buffer can't fit its
    # target (75 KB < 100 ms of queue).
    assert results[("ledbat", "cubic", "75KB")].primary_throughput_ratio < 0.85

    # --- Joint utilization: Proteus-S scavenges the leftovers.
    for primary in ("cubic", "bbr", "proteus-p"):
        assert results[("proteus-s", primary, "375KB")].utilization > 0.85
