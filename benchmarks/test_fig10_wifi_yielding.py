"""Fig 10: primary throughput ratio on noisy WiFi-like paths.

Paper: with Proteus-S as the scavenger, BBR and CUBIC achieve ~18-19%
higher median throughput ratios than against LEDBAT, and latency-aware
primaries (COPA, Proteus-P, Vivace) gain ~39-44%.
"""

from __future__ import annotations

import statistics

from _common import run_once, scaled

from repro.harness import PRIMARY_PROTOCOLS, format_cdf, print_table, run_pair, wifi_sites
from repro.analysis import cdf_points

SCAVENGERS = ("proteus-s", "ledbat")


def experiment():
    duration = scaled(18.0)
    configs = wifi_sites(n_sites=2, n_paths=2)  # sub-sampled site matrix
    ratios: dict[tuple[str, str], list[float]] = {
        (p, s): [] for p in PRIMARY_PROTOCOLS for s in SCAVENGERS
    }
    for config in configs:
        for primary in PRIMARY_PROTOCOLS:
            for scavenger in SCAVENGERS:
                pair = run_pair(
                    primary, scavenger, config, duration_s=duration, seed=9
                )
                ratios[(primary, scavenger)].append(pair.primary_throughput_ratio)
    return ratios


def test_fig10_wifi_yielding(benchmark):
    ratios = run_once(benchmark, experiment)

    rows = []
    for primary in PRIMARY_PROTOCOLS:
        vs_proteus = statistics.median(ratios[(primary, "proteus-s")])
        vs_ledbat = statistics.median(ratios[(primary, "ledbat")])
        rows.append(
            (primary, f"{vs_proteus * 100:.1f}%", f"{vs_ledbat * 100:.1f}%")
        )
    print_table(
        ["primary", "median ratio vs Proteus-S", "vs LEDBAT"],
        rows,
        title="Fig 10: primary throughput ratio on noisy paths",
    )
    for primary in PRIMARY_PROTOCOLS:
        print(
            format_cdf(
                f"  {primary:10s} vs proteus-s",
                cdf_points(ratios[(primary, "proteus-s")]),
            )
        )

    # Every primary keeps more throughput against Proteus-S than LEDBAT;
    # the gap is largest for latency-aware primaries.
    for primary in PRIMARY_PROTOCOLS:
        med_p = statistics.median(ratios[(primary, "proteus-s")])
        med_l = statistics.median(ratios[(primary, "ledbat")])
        assert med_p >= med_l - 0.05, primary
        # Vivace gets a lower floor (no adaptive noise tolerance; the
        # paper reports the lowest ratios against it as well, and its
        # own noise sensitivity makes short-run medians volatile).
        floor = 0.25 if primary == "vivace" else 0.6
        assert med_p > floor, primary
    for primary in ("copa", "vivace", "proteus-p"):
        med_p = statistics.median(ratios[(primary, "proteus-s")])
        med_l = statistics.median(ratios[(primary, "ledbat")])
        assert med_p > med_l, f"{primary} must gain with Proteus-S scavenging"
