"""Ablation: the §5 noise-tolerance mechanisms, one at a time.

The paper's "Note" paragraph in §5 sketches each mechanism's role but
shows no numbers ("we do not have enough space").  This bench fills that
gap: Proteus-P/S throughput on a clean and a noisy bottleneck with each
mechanism disabled individually, plus all-on and all-off.

Expected qualitative roles (per the paper):
* regression-error tolerance — needed to saturate even a stable link;
* trending tolerance — latency sensitivity (here: solo latency kept low);
* per-ACK filter + majority rule — help mostly in highly dynamic
  (noisy) networks.
"""

from __future__ import annotations

from dataclasses import replace

from _common import run_once, scaled

from repro.core import NoiseToleranceConfig, ProteusSender
from repro.harness import EMULAB_DEFAULT, print_table
from repro.sim import Dumbbell, Simulator, make_rng, wifi_noise

ALL_ON = NoiseToleranceConfig()
VARIANTS = {
    "all-on": ALL_ON,
    "no-ack-filter": replace(ALL_ON, ack_filter=False),
    "no-regression": replace(ALL_ON, regression_tolerance=False),
    "no-trending": replace(ALL_ON, trending_tolerance=False),
    "no-majority": replace(ALL_ON, majority_rule=False),
    "all-off": NoiseToleranceConfig(
        ack_filter=False,
        regression_tolerance=False,
        trending_tolerance=False,
        majority_rule=False,
    ),
}


def run_solo(config_name: str, noisy: bool, duration: float) -> tuple[float, float]:
    sim = Simulator()
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=EMULAB_DEFAULT.bandwidth_bps,
        rtt_s=EMULAB_DEFAULT.rtt_s,
        buffer_bytes=EMULAB_DEFAULT.buffer_bytes,
        noise=wifi_noise(1.5) if noisy else None,
        reverse_noise=wifi_noise(1.5) if noisy else None,
        rng=make_rng(15),
    )
    sender = ProteusSender("proteus-s", noise_config=VARIANTS[config_name])
    flow = dumbbell.add_flow(sender)
    sim.run(until=duration)
    window = (duration * 0.4, duration)
    throughput = flow.stats.throughput_bps(*window) / 1e6
    p95 = flow.stats.rtt_percentile(95, *window)
    return throughput, p95


def experiment():
    duration = scaled(25.0)
    results = {}
    for name in VARIANTS:
        results[(name, "clean")] = run_solo(name, noisy=False, duration=duration)
        results[(name, "noisy")] = run_solo(name, noisy=True, duration=duration)
    return results


def test_ablation_noise_tolerance(benchmark):
    results = run_once(benchmark, experiment)

    rows = []
    for name in VARIANTS:
        clean_thr, clean_p95 = results[(name, "clean")]
        noisy_thr, noisy_p95 = results[(name, "noisy")]
        rows.append(
            (
                name,
                f"{clean_thr:.1f}",
                f"{clean_p95 * 1e3:.1f}",
                f"{noisy_thr:.1f}",
                f"{noisy_p95 * 1e3:.1f}",
            )
        )
    print_table(
        ["variant", "clean Mbps", "clean p95 ms", "noisy Mbps", "noisy p95 ms"],
        rows,
        title="Ablation: Proteus-S solo with tolerance mechanisms toggled",
    )

    all_on_clean = results[("all-on", "clean")][0]
    all_on_noisy = results[("all-on", "noisy")][0]
    all_off_noisy = results[("all-off", "noisy")][0]
    # The full mechanism set saturates the clean link...
    assert all_on_clean > 40.0
    # ...and holds most of it under heavy noise.
    assert all_on_noisy > 0.5 * all_on_clean
    # Under noise, the full set beats the bare controller.
    assert all_on_noisy >= 0.9 * all_off_noisy
