"""Fig 11: application-level impact of a background scavenger.

(a) DASH video: average chunk bitrate for 1/2/4 concurrent videos with a
    background Proteus-S, LEDBAT, or CUBIC flow (and no background).
    Paper: Proteus-S leaves DASH bitrate near the no-background level;
    LEDBAT costs substantially more (2.5x at 8 videos); CUBIC worst.
(b) Web pages: CDF of page load times with the same backgrounds.
    Paper: Proteus-S has almost no impact; pages load 33% faster
    (median ~48%) than with LEDBAT scavenging.
"""

from __future__ import annotations

import statistics

from _common import run_once, scaled

from repro.apps import make_corpus, run_poisson_page_loads
from repro.harness import FlowSpec, LinkConfig, print_table, run_streaming
from repro.protocols import make_sender
from repro.sim import Dumbbell, Simulator, make_rng

LINK = LinkConfig(bandwidth_mbps=100.0, rtt_ms=30.0, buffer_kb=750.0)
BACKGROUNDS = (None, "proteus-s", "ledbat", "cubic")
VIDEO_COUNTS = (1, 2, 4)


def dash_experiment():
    corpus = make_corpus(seed=0)
    duration = scaled(45.0)
    bitrates = {}
    for n_videos in VIDEO_COUNTS:
        videos = corpus.pick(make_rng(21), 0, n_videos)
        for background in BACKGROUNDS:
            bg = [FlowSpec(background)] if background else None
            results = run_streaming(
                videos, "cubic", LINK, duration_s=duration, background=bg, seed=5
            )
            bitrates[(n_videos, background)] = statistics.mean(
                r.average_bitrate_mbps for r in results
            )
    return bitrates


def web_experiment():
    duration = scaled(45.0)
    load_times = {}
    for background in BACKGROUNDS:
        sim = Simulator()
        dumbbell = Dumbbell(
            sim,
            bandwidth_bps=LINK.bandwidth_bps,
            rtt_s=LINK.rtt_s,
            buffer_bytes=LINK.buffer_bytes,
            rng=make_rng(13),
        )
        if background:
            dumbbell.add_flow(make_sender(background), flow_id=999)
        client = run_poisson_page_loads(
            sim, dumbbell, duration_s=duration, rate_per_s=0.1, seed=13
        )
        sim.run(until=duration + 15.0)
        load_times[background] = client.completed_load_times()
    return load_times


def experiment():
    return dash_experiment(), web_experiment()


def test_fig11_application_benchmarks(benchmark):
    bitrates, load_times = run_once(benchmark, experiment)

    rows = [
        [str(n)]
        + [f"{bitrates[(n, bg)]:.2f}" for bg in BACKGROUNDS]
        for n in VIDEO_COUNTS
    ]
    print_table(
        ["videos"] + [bg or "(none)" for bg in BACKGROUNDS],
        rows,
        title="Fig 11(a): mean DASH chunk bitrate (Mbps) by background flow",
    )
    rows = [
        (
            bg or "(none)",
            f"{statistics.median(times):.2f}",
            f"{statistics.mean(times):.2f}",
            len(times),
        )
        for bg, times in load_times.items()
    ]
    print_table(
        ["background", "median PLT (s)", "mean PLT (s)", "pages"],
        rows,
        title="Fig 11(b): page load time by background flow",
    )

    # DASH: scavenging hurts video less than CUBIC at every concurrency.
    for n in VIDEO_COUNTS:
        assert bitrates[(n, "proteus-s")] >= bitrates[(n, "cubic")] * 0.95
        # Proteus-S keeps bitrate within reach of the idle baseline.
        assert bitrates[(n, "proteus-s")] > 0.7 * bitrates[(n, None)]
    # Web: Proteus-S tracks (paper: beats by ~33-48%) LEDBAT on PLT and
    # clearly beats a CUBIC background. With the default scale only a
    # handful of pages complete, so the Proteus-vs-LEDBAT medians are
    # within noise of each other; REPRO_SCALE >= 2 separates them.
    med_proteus = statistics.median(load_times["proteus-s"])
    med_ledbat = statistics.median(load_times["ledbat"])
    med_cubic = statistics.median(load_times["cubic"])
    med_none = statistics.median(load_times[None])
    assert med_proteus < 1.3 * med_ledbat
    assert med_proteus < med_cubic
    assert med_proteus < 3.5 * med_none
