"""Fig 18 (Appendix B): 4-flow throughput over time — the latecomer effect.

Paper: four staggered flows on an 80 Mbps / 1200 KB bottleneck.  With
LEDBAT-25 each new flow dominates all previous ones (it measures an
already-inflated "base" delay); LEDBAT-100 is milder but the first flow
still ends with the lowest share; both Proteus variants stay stable and
fair.
"""

from __future__ import annotations

from _common import run_once, scaled

from repro.harness import LinkConfig, FlowSpec, print_table, run_flows

CONFIG = LinkConfig(bandwidth_mbps=80.0, rtt_ms=30.0, buffer_kb=1200.0)
PROTOCOLS = ("ledbat-25", "ledbat", "proteus-s", "proteus-p")
N_FLOWS = 4
STAGGER_S = 15.0


def experiment():
    duration = scaled(100.0)
    outcomes = {}
    for proto in PROTOCOLS:
        result = run_flows(
            [FlowSpec(proto, start_time=i * STAGGER_S) for i in range(N_FLOWS)],
            CONFIG,
            duration_s=duration,
            seed=7,
        )
        window = (duration * 0.7, duration)
        final = [result.throughput_mbps(i, window) for i in range(N_FLOWS)]
        series = [
            result.stats[i].throughput_series(15.0, 0.0, duration)
            for i in range(N_FLOWS)
        ]
        outcomes[proto] = (final, series)
    return outcomes


def test_fig18_latecomer_dynamics(benchmark):
    outcomes = run_once(benchmark, experiment)

    rows = [
        [proto] + [f"{thr:.1f}" for thr in outcomes[proto][0]]
        for proto in PROTOCOLS
    ]
    print_table(
        ["protocol", "flow1", "flow2", "flow3", "flow4"],
        rows,
        title="Fig 18: final throughput (Mbps) by join order (flow1 first)",
    )
    for proto in ("ledbat-25", "proteus-s"):
        print(f"\n{proto} per-flow series (15 s bins):")
        for i, series in enumerate(outcomes[proto][1]):
            print(f"  flow{i + 1}: " + " ".join(f"{v:5.1f}" for _, v in series))

    ledbat25 = outcomes["ledbat-25"][0]
    # LEDBAT-25 latecomer domination: the last joiner crushes the first.
    assert ledbat25[-1] > 2.0 * max(ledbat25[0], 0.5)
    # Proteus flows end far more balanced.
    proteus = outcomes["proteus-s"][0]
    assert min(proteus) > 0.25 * max(proteus)
    primary = outcomes["proteus-p"][0]
    assert min(primary) > 0.3 * max(primary)
