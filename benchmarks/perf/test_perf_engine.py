"""Engine microbenchmarks: event throughput of both scheduling paths.

Run with ``pytest benchmarks/perf`` for pytest-benchmark timings, or via
``repro bench`` (which drives the same functions and emits
``BENCH_sim.json``).  Shape assertions here pin the *relationships* the
hot-path work must preserve — the allocation-free fast path must not be
slower than the cancellable Event path — while absolute rates are gated
in CI against ``baseline.json`` by ``repro bench --check-against``.
"""

from __future__ import annotations

from repro.harness.bench import engine_events_per_sec, scenario_events_per_sec

N_EVENTS = 30_000  # small enough for a smoke run, large enough to amortise


def test_fast_path_throughput(benchmark):
    rate = benchmark.pedantic(
        lambda: engine_events_per_sec(N_EVENTS, fast=True),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert rate > 0


def test_event_path_throughput(benchmark):
    rate = benchmark.pedantic(
        lambda: engine_events_per_sec(N_EVENTS, fast=False),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert rate > 0


def test_fast_path_not_slower_than_event_path():
    # Warm-up draw evens out allocator/interpreter state, then compare.
    engine_events_per_sec(5_000, fast=True)
    fast = engine_events_per_sec(N_EVENTS, fast=True)
    slow = engine_events_per_sec(N_EVENTS, fast=False)
    # 0.9 head-room: the claim is "no Event allocation costs nothing",
    # not a precise speedup factor, and CI timers are noisy.
    assert fast > 0.9 * slow, (
        f"fast path ({fast:,.0f}/s) slower than Event path ({slow:,.0f}/s)"
    )


def test_scenario_throughput(benchmark):
    rate, events, virtual, _wall = benchmark.pedantic(
        lambda: scenario_events_per_sec(duration_s=2.0),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert rate > 0
    assert events > 1_000  # a real scenario, not an empty run
    assert virtual == 0  # default fidelity is packet-exact


def test_scenario_throughput_hybrid():
    rate, events, virtual, _wall = scenario_events_per_sec(
        duration_s=2.0, fidelity="hybrid"
    )
    assert rate > 0
    assert events > 0
    # Hybrid mode must actually absorb work analytically on this
    # scenario (two unbounded single-hop flows on a healthy link).
    assert virtual > 0
