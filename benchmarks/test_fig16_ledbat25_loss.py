"""Fig 16 (Appendix B): random-loss tolerance including LEDBAT-25.

Paper: LEDBAT-25 is nearly identical to LEDBAT-100 under random loss —
both inherit traditional TCP's loss halving and collapse.
"""

from __future__ import annotations

from _common import run_once, scaled

from repro.harness import EMULAB_DEFAULT, print_table, run_single

PROTOCOLS = ("proteus-s", "ledbat-25", "ledbat", "proteus-p")
LOSS_RATES = (0.0, 0.001, 0.01, 0.04)


def experiment():
    duration = scaled(25.0)
    throughput = {}
    for loss in LOSS_RATES:
        config = EMULAB_DEFAULT.with_loss(loss)
        for proto in PROTOCOLS:
            result = run_single(proto, config, duration_s=duration)
            throughput[(proto, loss)] = result.throughput_mbps(0)
    return throughput


def test_fig16_ledbat25_loss_tolerance(benchmark):
    throughput = run_once(benchmark, experiment)

    rows = [
        [f"{loss * 100:g}%"] + [f"{throughput[(p, loss)]:.1f}" for p in PROTOCOLS]
        for loss in LOSS_RATES
    ]
    print_table(
        ["random loss"] + list(PROTOCOLS),
        rows,
        title="Fig 16: throughput (Mbps) under random loss",
    )

    # Both LEDBAT variants are fragile; they track each other closely.
    for variant in ("ledbat", "ledbat-25"):
        assert throughput[(variant, 0.01)] < 0.4 * throughput[(variant, 0.0)]
    # Proteus-S vastly out-tolerates both at 1%.
    assert throughput[("proteus-s", 0.01)] > 2.0 * throughput[("ledbat-25", 0.01)]
