"""Fig 9: single-flow throughput on noisy (WiFi-like) paths.

Paper: across 64 WiFi source x AWS destination pairs, loss-insensitive
aggressive protocols (CUBIC, BBR) top the normalized-throughput CDF;
latency-aware COPA and Vivace are at the bottom (RTT fluctuation scares
them); Proteus-P and Proteus-S sit near the top of their classes thanks
to the §5 noise-tolerance machinery, with Proteus-S comparable to
LEDBAT.

Our stand-in: the harness's site x path matrix of noise severities.
"""

from __future__ import annotations

import statistics

from _common import run_once, scaled

from repro.harness import format_cdf, print_table, run_single, wifi_sites
from repro.analysis import cdf_points

PROTOCOLS = ("proteus-s", "ledbat", "cubic", "bbr", "proteus-p", "copa", "vivace")


def experiment():
    duration = scaled(18.0)
    configs = wifi_sites(n_sites=3, n_paths=3)
    normalized: dict[str, list[float]] = {p: [] for p in PROTOCOLS}
    for config in configs:
        throughputs = {}
        for proto in PROTOCOLS:
            result = run_single(proto, config, duration_s=duration, seed=8)
            throughputs[proto] = result.throughput_mbps(0)
        best = max(throughputs.values())
        for proto, value in throughputs.items():
            normalized[proto].append(value / best if best > 0 else 0.0)
    return normalized, len(configs)


def test_fig09_wifi_single_flow(benchmark):
    normalized, n_paths = run_once(benchmark, experiment)

    rows = [
        (
            proto,
            f"{statistics.median(values):.2f}",
            f"{statistics.mean(values):.2f}",
        )
        for proto, values in normalized.items()
    ]
    print_table(
        ["protocol", "median normalized", "mean"],
        rows,
        title=f"Fig 9: normalized single-flow throughput over {n_paths} noisy paths",
    )
    for proto in PROTOCOLS:
        print(format_cdf(f"  {proto:10s}", cdf_points(normalized[proto])))

    med = {p: statistics.median(v) for p, v in normalized.items()}
    # Aggressive loss-insensitive protocols lead on noisy paths.
    assert med["cubic"] >= med["vivace"]
    # Noise tolerance keeps Proteus-P ahead of Vivace (its ancestor).
    assert med["proteus-p"] >= med["vivace"]
    # Proteus-S is comparable to (or better than) LEDBAT.
    assert med["proteus-s"] >= 0.8 * med["ledbat"]
    # Nothing collapses outright.
    for proto in PROTOCOLS:
        assert med[proto] > 0.2
