"""Fig 2 + §4.2: RTT deviation vs RTT gradient as a competition indicator.

Setup (paper): 100 Mbps / 60 ms RTT / 1500 KB (2 BDP) bottleneck; a
20 Mbps fixed-rate UDP probe; Poisson arrivals of short CUBIC flows
(uniform sizes in [20, 100] KB) at 0-9 flows/s; the probe's RTT gradient
and deviation measured over consecutive 1.5-RTT windows.

Paper result: RTT deviation's congested/uncongested distributions
separate cleanly (confusion probability 0.6%) while RTT gradient's
overlap (8.0%) — deviation is the earlier, more sensitive signal.
"""

from __future__ import annotations

import random

from _common import run_once, scaled

from repro.analysis import confusion_probability, histogram_pdf, windowed_latency_metrics
from repro.harness import FIG2_LINK, print_table
from repro.protocols import FixedRateSender, make_sender
from repro.sim import Dumbbell, Simulator, make_rng, mbps

PROBE_MBPS = 20.0
FLOW_SIZE_RANGE = (20_000, 100_000)
ARRIVAL_RATES = (0.0, 3.0, 6.0, 9.0)


def run_condition(arrival_rate: float, duration_s: float, seed: int):
    sim = Simulator()
    rng = make_rng(seed)
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=FIG2_LINK.bandwidth_bps,
        rtt_s=FIG2_LINK.rtt_s,
        buffer_bytes=FIG2_LINK.buffer_bytes,
        rng=rng,
    )
    probe = FixedRateSender(rate_bps=mbps(PROBE_MBPS))
    probe_flow = dumbbell.add_flow(probe, flow_id=1)

    workload_rng = random.Random(seed + 1)
    counter = [0]

    def arrival():
        if sim.now >= duration_s:
            return
        counter[0] += 1
        size = workload_rng.randint(*FLOW_SIZE_RANGE)
        dumbbell.add_flow(
            make_sender("cubic"), flow_id=100 + counter[0], size_bytes=size
        )
        sim.schedule(workload_rng.expovariate(arrival_rate), arrival)

    if arrival_rate > 0:
        sim.schedule(workload_rng.expovariate(arrival_rate), arrival)
    sim.run(until=duration_s)

    window_s = 1.5 * FIG2_LINK.rtt_s
    stats = probe_flow.stats
    send_times = [t - rtt for t, rtt in zip(stats.ack_times, stats.rtts)]
    deviations, gradients = windowed_latency_metrics(
        stats.ack_times, send_times, stats.rtts, window_s, 1.0, duration_s
    )
    return deviations, gradients


def experiment():
    duration = scaled(30.0)
    by_rate = {}
    for rate in ARRIVAL_RATES:
        devs, grads = run_condition(rate, duration, seed=int(rate) + 1)
        by_rate[rate] = (devs, grads)
    dev_confusion = confusion_probability(
        by_rate[9.0][0], by_rate[0.0][0], rng=random.Random(0)
    )
    grad_confusion = confusion_probability(
        by_rate[9.0][1], by_rate[0.0][1], rng=random.Random(0)
    )
    return by_rate, dev_confusion, grad_confusion


def test_fig02_rtt_deviation_separates_congestion(benchmark):
    by_rate, dev_confusion, grad_confusion = run_once(benchmark, experiment)

    rows = []
    for rate, (devs, grads) in sorted(by_rate.items()):
        mean_dev = sum(devs) / len(devs) * 1e3
        mean_grad = sum(grads) / len(grads)
        rows.append((f"{rate:.0f} flows/s", f"{mean_dev:.3f}", f"{mean_grad:.4f}"))
    print_table(
        ["CUBIC arrivals", "mean RTT deviation (ms)", "mean |RTT gradient|"],
        rows,
        title="Fig 2: probe-observed latency metrics vs cross-traffic rate",
    )
    print(
        f"\nconfusion probability: deviation={dev_confusion * 100:.1f}% "
        f"(paper: 0.6%), gradient={grad_confusion * 100:.1f}% (paper: 8.0%)"
    )
    dev_pdf = histogram_pdf(by_rate[9.0][0], bins=14, lo=0.0, hi=0.0014)
    print("\nPDF of RTT deviation at 9 flows/s (bin center ms, probability):")
    print("  " + "  ".join(f"{c * 1e3:.2f}:{p:.2f}" for c, p in dev_pdf if p > 0))

    # Shape assertions.
    for rate in (3.0, 6.0, 9.0):
        devs, _ = by_rate[rate]
        base_devs, _ = by_rate[0.0]
        assert sum(devs) / len(devs) > 2.0 * sum(base_devs) / len(base_devs), (
            f"RTT deviation must rise under {rate} flows/s of cross traffic"
        )
    assert dev_confusion < grad_confusion, (
        "deviation must separate congestion better than gradient"
    )
    assert dev_confusion < 0.10
