"""Fig 17 (Appendix B): multi-flow fairness including LEDBAT-25.

Paper: with its smaller target, LEDBAT-25's latecomer problem is *worse*
than LEDBAT-100's (a given buffer accommodates the summed targets of
more flows), so its Jain index sits below LEDBAT-100 and far below
Proteus-S.
"""

from __future__ import annotations

from _common import run_once, scaled

from repro.analysis import jains_index
from repro.harness import LinkConfig, print_table, run_homogeneous

PROTOCOLS = ("proteus-s", "ledbat-25", "ledbat", "proteus-p")
FLOW_COUNTS = (4, 6)


def experiment():
    measure = scaled(50.0)
    fairness = {}
    for n in FLOW_COUNTS:
        config = LinkConfig(
            bandwidth_mbps=20.0 * n, rtt_ms=30.0, buffer_kb=300.0 * n
        )
        for proto in PROTOCOLS:
            result = run_homogeneous(
                proto, n, config, stagger_s=8.0, measure_s=measure
            )
            fairness[(proto, n)] = jains_index(result.throughputs_mbps())
    return fairness


def test_fig17_ledbat25_fairness(benchmark):
    fairness = run_once(benchmark, experiment)

    rows = [
        [str(n)] + [f"{fairness[(p, n)]:.3f}" for p in PROTOCOLS]
        for n in FLOW_COUNTS
    ]
    print_table(
        ["flows"] + list(PROTOCOLS),
        rows,
        title="Fig 17: Jain's fairness index with LEDBAT-25",
    )

    for n in FLOW_COUNTS:
        # Proteus-P is always fairer than LEDBAT-25; Proteus-S clearly so
        # at n=4 (at n=6 its scavenger-vs-scavenger variance narrows the
        # gap — see EXPERIMENTS.md — so it only needs rough parity there).
        assert fairness[("proteus-p", n)] > fairness[("ledbat-25", n)]
        assert fairness[("proteus-s", n)] > fairness[("ledbat-25", n)] - 0.05
    assert fairness[("proteus-s", 4)] > fairness[("ledbat-25", 4)] + 0.2
    # The latecomer effect shows up clearly for LEDBAT-25 at n=4
    # (summed targets 100 ms vs a 120 ms buffer: the last flow dominates).
    assert fairness[("ledbat-25", 4)] < 0.8
