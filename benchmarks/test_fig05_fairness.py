"""Fig 5: Jain's fairness index vs number of same-protocol flows.

Paper: Proteus-P, Vivace, CUBIC, BBR and COPA all hold ~99%; Proteus-S
stays above 90%; LEDBAT's index *decreases* with n (the latecomer
effect: each newcomer measures an inflated base delay) until n is large
enough that the summed targets exceed the buffer.

Scale note: the paper measures 200 s after the last of n staggered
starts; we use shorter staggered runs, which penalises the slowest
convergers (BBR, Proteus-S) — documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from _common import run_once, scaled

from repro.analysis import jains_index
from repro.harness import LinkConfig, print_table, run_homogeneous

PROTOCOLS = ("proteus-s", "ledbat", "cubic", "bbr", "proteus-p", "copa", "vivace")
FLOW_COUNTS = (2, 4, 6)


def experiment():
    measure = scaled(50.0)
    fairness = {}
    utilization = {}
    for n in FLOW_COUNTS:
        config = LinkConfig(
            bandwidth_mbps=20.0 * n, rtt_ms=30.0, buffer_kb=300.0 * n
        )
        for proto in PROTOCOLS:
            result = run_homogeneous(
                proto, n, config, stagger_s=8.0, measure_s=measure
            )
            throughputs = result.throughputs_mbps()
            fairness[(proto, n)] = jains_index(throughputs)
            utilization[(proto, n)] = sum(throughputs) / config.bandwidth_mbps
    return fairness, utilization


def test_fig05_fairness_index(benchmark):
    fairness, utilization = run_once(benchmark, experiment)

    rows = [
        [str(n)] + [f"{fairness[(p, n)]:.3f}" for p in PROTOCOLS]
        for n in FLOW_COUNTS
    ]
    print_table(
        ["flows"] + list(PROTOCOLS), rows, title="Fig 5: Jain's fairness index"
    )
    rows = [
        [str(n)] + [f"{utilization[(p, n)]:.2f}" for p in PROTOCOLS]
        for n in FLOW_COUNTS
    ]
    print_table(
        ["flows"] + list(PROTOCOLS), rows, title="Link utilization (fraction)"
    )

    for n in FLOW_COUNTS:
        # The steady protocols stay highly fair.
        assert fairness[("proteus-p", n)] > 0.85
        assert fairness[("copa", n)] > 0.9
        assert fairness[("cubic", n)] > 0.7
        # Proteus-S is fairer than LEDBAT once the latecomer effect bites.
        if n >= 4:
            assert fairness[("proteus-s", n)] > fairness[("ledbat", n)]
        # Everyone keeps the link busy.
        for proto in PROTOCOLS:
            assert utilization[(proto, n)] > 0.75
