"""Fig 21 (Appendix B): single-flow WiFi throughput including LEDBAT-25.

Paper: the 25 ms target makes LEDBAT-25 *more* sensitive to latency
noise — its normalized-throughput CDF sits below LEDBAT-100 and
Proteus-S on real WiFi paths.
"""

from __future__ import annotations

import statistics

from _common import run_once, scaled

from repro.harness import print_table, run_single, wifi_sites

PROTOCOLS = ("proteus-s", "ledbat-25", "ledbat", "cubic", "proteus-p")


def experiment():
    duration = scaled(18.0)
    configs = wifi_sites(n_sites=3, n_paths=3)
    normalized: dict[str, list[float]] = {p: [] for p in PROTOCOLS}
    for config in configs:
        throughputs = {
            proto: run_single(proto, config, duration_s=duration, seed=12).throughput_mbps(0)
            for proto in PROTOCOLS
        }
        best = max(throughputs.values())
        for proto, value in throughputs.items():
            normalized[proto].append(value / best if best > 0 else 0.0)
    return normalized


def test_fig21_ledbat25_wifi_single(benchmark):
    normalized = run_once(benchmark, experiment)

    rows = [
        (proto, f"{statistics.median(values):.2f}", f"{min(values):.2f}")
        for proto, values in normalized.items()
    ]
    print_table(
        ["protocol", "median normalized", "worst path"],
        rows,
        title="Fig 21: normalized single-flow throughput on noisy paths",
    )

    med = {p: statistics.median(v) for p, v in normalized.items()}
    # LEDBAT-25 is at least as noise-hurt as LEDBAT-100.
    assert med["ledbat-25"] <= med["ledbat"] + 0.1
    # Proteus-S stays competitive with the LEDBAT family under noise.
    assert med["proteus-s"] >= 0.8 * med["ledbat-25"]
