"""Fig 19 (Appendix B): LEDBAT-25 as a scavenger vs primary protocols.

Paper: the smaller target helps against CUBIC with a large buffer, but
LEDBAT-25 still fails to yield with a shallow (75 KB) buffer and remains
aggressive against latency-sensitive primaries (Vivace, Proteus-P);
Proteus-S beats it across the board.
"""

from __future__ import annotations

from _common import run_once, scaled

from repro.harness import (
    EMULAB_DEFAULT,
    EMULAB_SHALLOW,
    PRIMARY_PROTOCOLS,
    print_table,
    run_pair,
)

BUFFERS = {"75KB": EMULAB_SHALLOW, "375KB": EMULAB_DEFAULT}


def experiment():
    duration = scaled(25.0)
    results = {}
    for scavenger in ("ledbat-25", "proteus-s"):
        for primary in PRIMARY_PROTOCOLS:
            for label, config in BUFFERS.items():
                results[(scavenger, primary, label)] = run_pair(
                    primary, scavenger, config, duration_s=duration, seed=10
                )
    return results


def test_fig19_ledbat25_as_scavenger(benchmark):
    results = run_once(benchmark, experiment)

    rows = []
    for primary in PRIMARY_PROTOCOLS:
        for label in BUFFERS:
            l25 = results[("ledbat-25", primary, label)]
            ps = results[("proteus-s", primary, label)]
            rows.append(
                (
                    primary,
                    label,
                    f"{l25.primary_throughput_ratio * 100:.1f}%",
                    f"{ps.primary_throughput_ratio * 100:.1f}%",
                )
            )
    print_table(
        ["primary", "buffer", "ratio vs LEDBAT-25", "ratio vs Proteus-S"],
        rows,
        title="Fig 19: primary throughput ratio, LEDBAT-25 vs Proteus-S scavenging",
    )

    # LEDBAT-25 fails to yield to CUBIC with the shallow buffer.
    assert results[("ledbat-25", "cubic", "75KB")].primary_throughput_ratio < 0.85
    # Proteus-S outperforms LEDBAT-25 against latency-aware primaries.
    for primary in ("vivace", "proteus-p", "copa"):
        ps = results[("proteus-s", primary, "375KB")].primary_throughput_ratio
        l25 = results[("ledbat-25", primary, "375KB")].primary_throughput_ratio
        assert ps > l25, f"Proteus-S must beat LEDBAT-25 against {primary}"
