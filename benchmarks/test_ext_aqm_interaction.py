"""Extension: scavengers under AQM bottlenecks (beyond the paper).

The paper's evaluation runs exclusively on tail-drop FIFO queues.  AQM
changes the scavenger problem qualitatively: CoDel keeps standing queues
near 5 ms, so LEDBAT's 100 ms delay target can never be reached — the
delay signal that makes LEDBAT defer is simply absent, and LEDBAT
competes like a loss-based flow.  Proteus-S's deviation signal still
fires (AQM-induced drops and the primary's probing both perturb RTTs),
so the yielding ordering survives the queue discipline.

This bench quantifies that: primary throughput ratio of CUBIC against
each scavenger under tail-drop, RED, and CoDel bottlenecks.
"""

from __future__ import annotations

from _common import run_once, scaled

from repro.harness import print_table
from repro.protocols import make_sender
from repro.sim import (
    CoDelDiscipline,
    Dumbbell,
    DynamicLink,
    REDDiscipline,
    Simulator,
    TailDropDiscipline,
    make_rng,
    mbps,
)

BANDWIDTH_MBPS = 50.0
RTT_S = 0.030
BUFFER_BYTES = 375e3
SCAVENGERS = ("proteus-s", "ledbat")


def make_discipline(kind: str):
    if kind == "taildrop":
        return TailDropDiscipline(BUFFER_BYTES)
    if kind == "red":
        return REDDiscipline(BUFFER_BYTES)
    if kind == "codel":
        return CoDelDiscipline(BUFFER_BYTES)
    raise ValueError(kind)


def run(kind: str, scavenger: str | None, duration: float, seed: int = 3):
    sim = Simulator()
    bottleneck = DynamicLink(
        sim,
        rate_bps=mbps(BANDWIDTH_MBPS),
        delay_s=RTT_S / 2,
        discipline=make_discipline(kind),
        rng=make_rng(seed),
    )
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(BANDWIDTH_MBPS),
        rtt_s=RTT_S,
        buffer_bytes=BUFFER_BYTES,
        rng=make_rng(seed),
        bottleneck=bottleneck,
    )
    primary = dumbbell.add_flow(make_sender("cubic"), flow_id=1)
    if scavenger is not None:
        dumbbell.add_flow(make_sender(scavenger), flow_id=2, start_time=5.0)
    sim.run(until=duration)
    window = (duration * 0.4, duration)
    return primary.stats.throughput_bps(*window) / 1e6


def experiment():
    duration = scaled(30.0)
    ratios = {}
    for kind in ("taildrop", "red", "codel"):
        solo = run(kind, None, duration)
        for scavenger in SCAVENGERS:
            with_scav = run(kind, scavenger, duration)
            ratios[(kind, scavenger)] = with_scav / solo if solo > 0 else 0.0
    return ratios


def test_ext_aqm_scavenger_interaction(benchmark):
    ratios = run_once(benchmark, experiment)

    rows = [
        [kind] + [f"{ratios[(kind, s)] * 100:.1f}%" for s in SCAVENGERS]
        for kind in ("taildrop", "red", "codel")
    ]
    print_table(
        ["bottleneck"] + list(SCAVENGERS),
        rows,
        title="Extension: CUBIC's throughput ratio vs scavenger, by queue discipline",
    )

    # Proteus-S yields under every discipline.
    for kind in ("taildrop", "red", "codel"):
        assert ratios[(kind, "proteus-s")] > 0.8, kind
    # Under CoDel, LEDBAT cannot observe its delay target and competes;
    # Proteus-S still defers more than LEDBAT does.
    assert ratios[("codel", "proteus-s")] > ratios[("codel", "ledbat")]
