"""Fig 20 (Appendix B): scavenger's impact on the primary's p95 RTT,
including LEDBAT-25.

Paper: LEDBAT-25 inflates less than LEDBAT-100 but still costs
latency-aware primaries up to ~2.2x their solo p95 RTT; Proteus-S is
essentially free.
"""

from __future__ import annotations

from _common import run_once, scaled

from repro.harness import EMULAB_DEFAULT, print_table, run_pair

PRIMARIES = ("cubic", "bbr", "copa", "proteus-p", "vivace")
SCAVENGERS = ("proteus-s", "ledbat-25", "ledbat")


def experiment():
    duration = scaled(25.0)
    ratios = {}
    for scavenger in SCAVENGERS:
        for primary in PRIMARIES:
            pair = run_pair(
                primary, scavenger, EMULAB_DEFAULT, duration_s=duration, seed=11
            )
            ratios[(scavenger, primary)] = pair.primary_rtt_ratio_95th
    return ratios


def test_fig20_ledbat25_rtt_impact(benchmark):
    ratios = run_once(benchmark, experiment)

    rows = [
        [primary] + [f"{ratios[(s, primary)]:.2f}" for s in SCAVENGERS]
        for primary in PRIMARIES
    ]
    print_table(
        ["primary"] + list(SCAVENGERS),
        rows,
        title="Fig 20: p95 RTT ratio (with scavenger / alone)",
    )

    for primary in ("copa", "proteus-p"):
        # Proteus-S leaves the primary's latency near its solo level.
        assert ratios[("proteus-s", primary)] < 1.5
    # Vivace (no adaptive noise tolerance) tolerates the scavenger's
    # probing worse — its inflation is higher, but still below what
    # LEDBAT-100 causes.
    assert ratios[("proteus-s", "vivace")] < ratios[("ledbat", "vivace")]
    for primary in ("copa", "proteus-p"):
        # LEDBAT-25 costs latency-aware primaries real inflation.
        assert ratios[("ledbat-25", primary)] > ratios[("proteus-s", primary)]
