"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper at a
reduced scale (simulated seconds cost real CPU in pure Python).  Set
``REPRO_SCALE`` > 1 to lengthen runs toward paper scale; scale factors
are applied to durations, not to topology parameters.

Each bench prints the same rows/series the paper reports and asserts the
*shape* claims (who wins, by roughly what factor) — not absolute values.
"""

from __future__ import annotations

import os
import sys

_here = os.path.dirname(__file__)
if _here not in sys.path:  # allow `pytest benchmarks/` from the repo root
    sys.path.insert(0, _here)


def scaled(seconds: float) -> float:
    """Scale a duration by REPRO_SCALE (default 1)."""
    from repro.harness import scale  # cached env parse (one read per process)

    return seconds * scale()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
