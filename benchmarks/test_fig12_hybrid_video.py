"""Fig 12: Proteus-H vs Proteus-P for adaptive 4K + 1080p streaming.

Paper: one 4K and three 1080p BOLA sessions on a 30 ms, 900 KB-buffer
bottleneck with bandwidth swept 70-120 Mbps.  Proteus-H raises the 4K
average chunk bitrate by up to ~3 Mbps (~11%) without hurting the 1080p
videos, and cuts rebuffer ratios (up to 68% for 4K, 33.5% for 1080p).
"""

from __future__ import annotations

import statistics

from _common import run_once, scaled

from repro.apps import make_corpus
from repro.harness import LinkConfig, print_table, run_streaming
from repro.sim import make_rng

BANDWIDTHS = (70.0, 90.0, 110.0)
SEEDS = (5,)


def experiment():
    corpus = make_corpus(seed=0)
    duration = scaled(75.0)
    data = {}
    for bw in BANDWIDTHS:
        config = LinkConfig(bandwidth_mbps=bw, rtt_ms=30.0, buffer_kb=900.0)
        for proto in ("proteus-p", "proteus-h"):
            fourk_rates, hd_rates, fourk_rebuf, hd_rebuf = [], [], [], []
            for seed in SEEDS:
                videos = make_corpus(seed=seed).pick(make_rng(40 + seed), 1, 3)
                results = run_streaming(
                    videos, proto, config, duration_s=duration, seed=seed
                )
                for r in results:
                    if r.video_name.startswith("4k"):
                        fourk_rates.append(r.average_bitrate_mbps)
                        fourk_rebuf.append(r.rebuffer_ratio)
                    else:
                        hd_rates.append(r.average_bitrate_mbps)
                        hd_rebuf.append(r.rebuffer_ratio)
            data[(bw, proto)] = (
                statistics.mean(fourk_rates),
                statistics.mean(hd_rates),
                statistics.mean(fourk_rebuf),
                statistics.mean(hd_rebuf),
            )
    return data


def test_fig12_hybrid_adaptive_video(benchmark):
    data = run_once(benchmark, experiment)

    rows = []
    for bw in BANDWIDTHS:
        for proto in ("proteus-p", "proteus-h"):
            fourk, hd, fourk_rb, hd_rb = data[(bw, proto)]
            rows.append(
                (
                    f"{bw:.0f}",
                    proto,
                    f"{fourk:.2f}",
                    f"{hd:.2f}",
                    f"{fourk_rb * 100:.2f}%",
                    f"{hd_rb * 100:.2f}%",
                )
            )
    print_table(
        ["bw Mbps", "transport", "4K Mbps", "1080p Mbps", "4K rebuf", "1080p rebuf"],
        rows,
        title="Fig 12: hybrid vs primary mode, 1x4K + 3x1080p BOLA sessions",
    )

    # Shape: in the constrained band, Proteus-H improves the 4K bitrate
    # without materially hurting the 1080p videos, and does not increase
    # aggregate rebuffering.
    gains = []
    for bw in BANDWIDTHS:
        p = data[(bw, "proteus-p")]
        h = data[(bw, "proteus-h")]
        gains.append(h[0] - p[0])
        assert h[1] > 0.85 * p[1], f"1080p must not collapse at {bw} Mbps"
    assert max(gains) > 0.5, "hybrid mode must raise 4K bitrate somewhere"
    total_rb_p = sum(data[(bw, "proteus-p")][2] + data[(bw, "proteus-p")][3] for bw in BANDWIDTHS)
    total_rb_h = sum(data[(bw, "proteus-h")][2] + data[(bw, "proteus-h")][3] for bw in BANDWIDTHS)
    assert total_rb_h <= total_rb_p + 0.05
