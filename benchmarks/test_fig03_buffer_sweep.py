"""Fig 3: single-flow bottleneck saturation vs buffer size.

Paper: on a 50 Mbps / 30 ms link, Proteus-P/S saturate (>= 90%
utilization) with a 4.5 KB buffer like BBR and Vivace, CUBIC and COPA
need several times more, and LEDBAT needs ~150 KB (it must fit its
100 ms delay target).  Fig 3(b): at a 2 BDP (375 KB) buffer Proteus
keeps the 95th-percentile inflation ratio far below LEDBAT/CUBIC/BBR.
"""

from __future__ import annotations

from _common import run_once, scaled

from repro.analysis import inflation_ratio_95th
from repro.harness import EMULAB_DEFAULT, print_table, run_single

PROTOCOLS = ("proteus-s", "ledbat", "cubic", "bbr", "proteus-p", "copa", "vivace")
BUFFERS_KB = (4.5, 15.0, 75.0, 150.0, 375.0, 900.0)


def experiment():
    duration = scaled(20.0)
    throughput = {}
    inflation = {}
    for buffer_kb in BUFFERS_KB:
        config = EMULAB_DEFAULT.with_buffer_kb(buffer_kb)
        for proto in PROTOCOLS:
            result = run_single(proto, config, duration_s=duration)
            window = result.measurement_window()
            throughput[(proto, buffer_kb)] = result.throughput_mbps(0, window)
            rtts = result.stats[0].rtt_samples(*window)
            inflation[(proto, buffer_kb)] = inflation_ratio_95th(
                rtts, config.rtt_s, config.buffer_bytes, config.bandwidth_bps
            )
    return throughput, inflation


def test_fig03_buffer_sweep(benchmark):
    throughput, inflation = run_once(benchmark, experiment)

    rows = [
        [f"{b:g} KB"] + [f"{throughput[(p, b)]:.1f}" for p in PROTOCOLS]
        for b in BUFFERS_KB
    ]
    print_table(
        ["buffer"] + list(PROTOCOLS), rows, title="Fig 3(a): throughput (Mbps)"
    )
    rows = [
        [f"{b:g} KB"] + [f"{inflation[(p, b)]:.2f}" for p in PROTOCOLS]
        for b in BUFFERS_KB
    ]
    print_table(
        ["buffer"] + list(PROTOCOLS),
        rows,
        title="Fig 3(b): 95th-percentile inflation ratio",
    )

    # Shape assertions (paper's headline claims).
    # Proteus saturates >= ~90% of 50 Mbps with a tiny 4.5 KB buffer.
    assert throughput[("proteus-p", 4.5)] > 42.0
    assert throughput[("proteus-s", 4.5)] > 42.0
    # LEDBAT needs a much larger buffer than Proteus for the same target.
    assert throughput[("ledbat", 4.5)] < throughput[("proteus-p", 4.5)]
    assert throughput[("ledbat", 375.0)] > 45.0
    # Fig 3(b) at 2 BDP: Proteus-S inflates far less than LEDBAT and CUBIC.
    assert inflation[("proteus-s", 375.0)] < 0.5 * inflation[("ledbat", 375.0)]
    assert inflation[("proteus-s", 375.0)] < 0.5 * inflation[("cubic", 375.0)]
    # CUBIC fills whatever buffer it is given.
    assert inflation[("cubic", 375.0)] > 0.8
