"""Fig 4: single-flow throughput vs random (non-congestion) loss rate.

Paper: BBR and COPA ignore loss and stay near capacity; Proteus-P and
Vivace tolerate up to ~5% (the c = 11.35 coefficient); Proteus-S ramps
more conservatively but stays in the same class; LEDBAT and CUBIC halve
on every loss and collapse by 0.1%-1%.
"""

from __future__ import annotations

from _common import run_once, scaled

from repro.harness import EMULAB_DEFAULT, print_table, run_single

PROTOCOLS = ("proteus-s", "ledbat", "cubic", "bbr", "proteus-p", "copa", "vivace")
LOSS_RATES = (0.0, 0.001, 0.01, 0.02, 0.04, 0.06)


def experiment():
    duration = scaled(25.0)
    throughput = {}
    for loss in LOSS_RATES:
        config = EMULAB_DEFAULT.with_loss(loss)
        for proto in PROTOCOLS:
            result = run_single(proto, config, duration_s=duration)
            throughput[(proto, loss)] = result.throughput_mbps(0)
    return throughput


def test_fig04_random_loss_tolerance(benchmark):
    throughput = run_once(benchmark, experiment)

    rows = [
        [f"{loss * 100:g}%"] + [f"{throughput[(p, loss)]:.1f}" for p in PROTOCOLS]
        for loss in LOSS_RATES
    ]
    print_table(
        ["random loss"] + list(PROTOCOLS),
        rows,
        title="Fig 4: throughput (Mbps) under random loss",
    )

    # BBR and COPA barely react to loss.
    assert throughput[("bbr", 0.02)] > 40.0
    assert throughput[("copa", 0.02)] > 40.0
    # Proteus-P holds an order of magnitude above loss-halving protocols
    # at 2% loss; its tolerance knee sits near 3-4% (paper: ~5%, gap
    # documented in EXPERIMENTS.md).
    assert throughput[("proteus-p", 0.02)] > 8.0 * throughput[("cubic", 0.02)]
    assert throughput[("proteus-p", 0.02)] > 35.0
    assert throughput[("proteus-p", 0.04)] > 4.0 * throughput[("cubic", 0.04)]
    # LEDBAT is fragile even at 0.1% random loss (paper: 50% degradation).
    assert throughput[("ledbat", 0.001)] < 0.7 * throughput[("ledbat", 0.0)]
    # CUBIC collapses at 1%.
    assert throughput[("cubic", 0.01)] < 0.4 * throughput[("cubic", 0.0)]
