"""Fig 13: forced-highest-bitrate streaming (no ABR cushion).

Paper: same 1x4K + 3x1080p setup, but the agent is pinned at the top
ladder rung so rebuffering is not masked by adaptation; the bandwidth
sweep moves up (90-140 Mbps).  Proteus-H consistently lowers the
rebuffer ratio (e.g. 34% lower for 4K at 110 Mbps).
"""

from __future__ import annotations

import statistics

from _common import run_once, scaled

from repro.apps import make_corpus
from repro.harness import LinkConfig, print_table, run_streaming
from repro.sim import make_rng

BANDWIDTHS = (90.0, 110.0, 130.0)
SEEDS = (5,)


def experiment():
    duration = scaled(75.0)
    data = {}
    for bw in BANDWIDTHS:
        config = LinkConfig(bandwidth_mbps=bw, rtt_ms=30.0, buffer_kb=900.0)
        for proto in ("proteus-p", "proteus-h"):
            fourk_rebuf, hd_rebuf = [], []
            for seed in SEEDS:
                videos = make_corpus(seed=seed).pick(make_rng(40 + seed), 1, 3)
                results = run_streaming(
                    videos,
                    proto,
                    config,
                    duration_s=duration,
                    forced_level=-1,  # pin at the highest rung
                    seed=seed,
                )
                for r in results:
                    if r.video_name.startswith("4k"):
                        fourk_rebuf.append(r.rebuffer_ratio)
                    else:
                        hd_rebuf.append(r.rebuffer_ratio)
            data[(bw, proto)] = (
                statistics.mean(fourk_rebuf),
                statistics.mean(hd_rebuf),
            )
    return data


def test_fig13_forced_highest_bitrate(benchmark):
    data = run_once(benchmark, experiment)

    rows = []
    for bw in BANDWIDTHS:
        for proto in ("proteus-p", "proteus-h"):
            fourk_rb, hd_rb = data[(bw, proto)]
            rows.append(
                (f"{bw:.0f}", proto, f"{fourk_rb * 100:.2f}%", f"{hd_rb * 100:.2f}%")
            )
    print_table(
        ["bw Mbps", "transport", "4K rebuffer", "1080p rebuffer"],
        rows,
        title="Fig 13: rebuffer ratio with the agent pinned at the top rung",
    )

    # Shape: forcing the top rung makes rebuffering visible; hybrid mode
    # stays within sampling noise of primary mode overall (at 90 Mbps the
    # pinned demand exceeds capacity, so *someone* must rebuffer under
    # either transport) and does not hurt where capacity suffices.
    total_p = sum(sum(data[(bw, "proteus-p")]) for bw in BANDWIDTHS)
    total_h = sum(sum(data[(bw, "proteus-h")]) for bw in BANDWIDTHS)
    assert total_p > 0.0, "pinned top rung must rebuffer somewhere"
    assert total_h < total_p + 0.05, "hybrid must not materially worsen rebuffering"
    for bw in BANDWIDTHS[1:]:  # capacity-sufficient band
        h = sum(data[(bw, "proteus-h")])
        p = sum(data[(bw, "proteus-p")])
        assert h <= p + 0.03, f"hybrid must track primary at {bw} Mbps"
