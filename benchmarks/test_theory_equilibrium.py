"""Theory table: Appendix A equilibria and the §4.4 hybrid prediction.

Regenerates the paper's analytical claims as a table: homogeneous
Proteus-P and Proteus-S populations converge to fair, saturating
equilibria (Theorems 4.1 / 4.2); mixed populations saturate with the
scavenger not advantaged; and the §4.4 four-case Proteus-H rate split is
a fixed point of the model.
"""

from __future__ import annotations

from _common import run_once

from repro.analysis import (
    GameConfig,
    SenderSpec,
    best_response,
    hybrid_rate_prediction,
    jains_index,
    solve_equilibrium,
)
from repro.harness import print_table


def experiment():
    config = GameConfig(capacity_mbps=100.0)
    rows = []
    for label, specs in (
        ("2 x P", [SenderSpec("P")] * 2),
        ("5 x P", [SenderSpec("P")] * 5),
        ("2 x S", [SenderSpec("S")] * 2),
        ("4 x S", [SenderSpec("S")] * 4),
        ("P + S", [SenderSpec("P"), SenderSpec("S")]),
        ("2P + 2S", [SenderSpec("P")] * 2 + [SenderSpec("S")] * 2),
    ):
        rates = solve_equilibrium(specs, config)
        rows.append((label, rates))

    # Hybrid fixed points for the four §4.4 cases (r1=30, r2=60).
    hybrid_rows = []
    for capacity in (40.0, 80.0, 100.0, 140.0):
        prediction = hybrid_rate_prediction(30.0, 60.0, capacity)
        game = GameConfig(capacity_mbps=capacity)
        br1 = best_response(prediction[1], SenderSpec("H", threshold_mbps=30.0), game)
        br2 = best_response(prediction[0], SenderSpec("H", threshold_mbps=60.0), game)
        hybrid_rows.append((capacity, prediction, (br1, br2)))
    return rows, hybrid_rows


def test_theory_equilibria(benchmark):
    rows, hybrid_rows = run_once(benchmark, experiment)

    table = []
    for label, rates in rows:
        table.append(
            (
                label,
                f"{sum(rates):.1f}",
                f"{jains_index(rates):.3f}",
                " ".join(f"{r:.1f}" for r in rates),
            )
        )
    print_table(
        ["population", "total (C=100)", "Jain", "rates"],
        table,
        title="Appendix A: model equilibria",
    )
    table = [
        (
            f"C={c:.0f}",
            f"({p[0]:.0f}, {p[1]:.0f})",
            f"({b[0]:.1f}, {b[1]:.1f})",
        )
        for c, p, b in hybrid_rows
    ]
    print_table(
        ["capacity", "§4.4 prediction", "best responses at prediction"],
        table,
        title="Proteus-H fixed-point check (r1=30, r2=60)",
    )

    for label, rates in rows:
        assert sum(rates) > 95.0, f"{label} must saturate"
        if label.startswith(("2 x", "5 x", "4 x")):
            assert jains_index(rates) > 0.999, f"{label} must be fair"
    for _, prediction, responses in hybrid_rows:
        assert abs(responses[0] - prediction[0]) < 1.5
        assert abs(responses[1] - prediction[1]) < 1.5
