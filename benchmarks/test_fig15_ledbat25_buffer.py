"""Fig 15 (Appendix B): buffer-size sweep including LEDBAT-25.

Paper: LEDBAT-25 behaves like LEDBAT-100 as a standalone controller —
it needs a large buffer to saturate and keeps the buffer full until the
buffer can accommodate its (smaller) 25 ms target.
"""

from __future__ import annotations

from _common import run_once, scaled

from repro.analysis import inflation_ratio_95th
from repro.harness import EMULAB_DEFAULT, print_table, run_single

PROTOCOLS = ("proteus-s", "ledbat-25", "ledbat", "cubic", "proteus-p")
BUFFERS_KB = (4.5, 75.0, 375.0)


def experiment():
    duration = scaled(20.0)
    throughput = {}
    inflation = {}
    for buffer_kb in BUFFERS_KB:
        config = EMULAB_DEFAULT.with_buffer_kb(buffer_kb)
        for proto in PROTOCOLS:
            result = run_single(proto, config, duration_s=duration)
            window = result.measurement_window()
            throughput[(proto, buffer_kb)] = result.throughput_mbps(0, window)
            inflation[(proto, buffer_kb)] = inflation_ratio_95th(
                result.stats[0].rtt_samples(*window),
                config.rtt_s,
                config.buffer_bytes,
                config.bandwidth_bps,
            )
    return throughput, inflation


def test_fig15_ledbat25_buffer_sweep(benchmark):
    throughput, inflation = run_once(benchmark, experiment)

    rows = [
        [f"{b:g} KB"]
        + [f"{throughput[(p, b)]:.1f} / {inflation[(p, b)]:.2f}" for p in PROTOCOLS]
        for b in BUFFERS_KB
    ]
    print_table(
        ["buffer"] + list(PROTOCOLS),
        rows,
        title="Fig 15: throughput (Mbps) / 95th inflation ratio",
    )

    # LEDBAT-25 and LEDBAT-100 behave similarly standalone: both need a
    # large buffer relative to Proteus and both keep small buffers full.
    assert throughput[("ledbat-25", 4.5)] < throughput[("proteus-s", 4.5)]
    assert inflation[("ledbat-25", 75.0)] > 2.0 * inflation[("proteus-s", 75.0)]
    # With a buffer big enough for the 25 ms target, LEDBAT-25 saturates.
    assert throughput[("ledbat-25", 375.0)] > 45.0
