"""Extension: Proteus on a cellular-like varying-rate channel (§7.2).

The paper's discussion names LTE as untested territory ("there are
high-fluctuation environments we have not yet tested, such as LTE").
This bench runs the protocols over a bottleneck whose service rate
random-walks every couple of seconds (depth +/-60% around 20 Mbps) and
reports solo throughput plus the scavenger ordering, including the
noise-aware utility extension.
"""

from __future__ import annotations

from _common import run_once, scaled

from repro.harness import print_table
from repro.protocols import make_sender
from repro.sim import (
    Dumbbell,
    DynamicLink,
    Simulator,
    TailDropDiscipline,
    cellular_rate,
    make_rng,
    mbps,
)

MEAN_MBPS = 20.0
RTT_S = 0.050
BUFFER_BYTES = 250e3
PROTOCOLS = (
    "cubic",
    "bbr",
    "proteus-p",
    "proteus-s",
    "vivace",
    "ledbat",
)


def build(seed):
    sim = Simulator()
    bottleneck = DynamicLink(
        sim,
        rate_bps=cellular_rate(mbps(MEAN_MBPS), period_s=2.0, depth=0.6, seed=seed),
        delay_s=RTT_S / 2,
        discipline=TailDropDiscipline(BUFFER_BYTES),
        rng=make_rng(seed),
    )
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(MEAN_MBPS),
        rtt_s=RTT_S,
        buffer_bytes=BUFFER_BYTES,
        rng=make_rng(seed),
        bottleneck=bottleneck,
    )
    return sim, dumbbell


def experiment():
    duration = scaled(40.0)
    solo = {}
    for proto in PROTOCOLS:
        sim, dumbbell = build(seed=21)
        flow = dumbbell.add_flow(make_sender(proto))
        sim.run(until=duration)
        solo[proto] = flow.stats.throughput_bps(duration * 0.3, duration) / 1e6

    # Scavenger ordering on the varying channel: BBR primary + scavenger.
    pair = {}
    for scavenger in ("proteus-s", "proteus-s-noise-aware", "ledbat"):
        sim, dumbbell = build(seed=22)
        primary = dumbbell.add_flow(make_sender("bbr"), flow_id=1)
        kwargs = {}
        if scavenger == "proteus-s-noise-aware":
            sender = make_sender("proteus-s", seed=9)
            sender.set_utility("proteus-s-noise-aware")
        else:
            sender = make_sender(scavenger, seed=9)
        dumbbell.add_flow(sender, flow_id=2, start_time=5.0, **kwargs)
        sim.run(until=duration)
        window = (duration * 0.4, duration)
        pair[scavenger] = (
            primary.stats.throughput_bps(*window) / 1e6,
        )
    return solo, pair


def test_ext_cellular_channel(benchmark):
    solo, pair = run_once(benchmark, experiment)

    rows = [(proto, f"{thr:.1f}") for proto, thr in solo.items()]
    print_table(
        ["protocol", "solo Mbps"],
        rows,
        title=f"Extension: solo throughput on a cellular-like {MEAN_MBPS:.0f} Mbps channel",
    )
    rows = [(s, f"{thr[0]:.1f}") for s, thr in pair.items()]
    print_table(
        ["scavenger", "BBR primary Mbps"],
        rows,
        title="BBR primary throughput with each scavenger (same channel)",
    )

    # Nothing collapses on the varying channel.
    for proto in ("cubic", "bbr", "proteus-p", "proteus-s"):
        assert solo[proto] > 0.4 * MEAN_MBPS, proto
    # Scavenger ordering holds: the primary keeps at least as much
    # against Proteus-S as against LEDBAT.
    assert pair["proteus-s"][0] >= pair["ledbat"][0] * 0.85
    # The noise-aware variant must not break yielding.
    assert pair["proteus-s-noise-aware"][0] > 0.5 * MEAN_MBPS
