"""Fig 8: robustness across the bottleneck-configuration matrix.

Paper: 180 configs — bandwidth {20..500} Mbps x RTT {5..200} ms x
buffer {0.2..5} BDP — each primary (BBR, CUBIC, Proteus-P) against each
scavenger (Proteus-S, LEDBAT); CDF of primary throughput ratios.
Median gains for Proteus-S over LEDBAT: BBR +7.8%, CUBIC +28%,
Proteus-P +2.8x.

We sub-sample the matrix (3 bandwidths x 3 RTTs x 3 buffers = 27
configs by default) to keep CPU bounded; REPRO_SCALE >= 2 widens it.
"""

from __future__ import annotations

import os
import statistics

from _common import run_once, scaled

from repro.harness import config_matrix, format_cdf, pmap, print_table, run_pair
from repro.analysis import cdf_points

PRIMARIES = ("bbr", "cubic", "proteus-p")
SCAVENGERS = ("proteus-s", "ledbat")


def matrix():
    if float(os.environ.get("REPRO_SCALE", "1")) >= 2.0:
        bandwidths = (20.0, 50.0, 100.0, 200.0)
        rtts = (10.0, 30.0, 60.0, 100.0)
        buffers = (0.2, 0.5, 1.0, 2.0, 5.0)
    else:
        bandwidths = (20.0, 50.0, 100.0)
        rtts = (10.0, 30.0, 100.0)
        buffers = (0.5, 2.0)
    return config_matrix(bandwidths, rtts, buffers)


def _matrix_point(point):
    """One (config, primary, scavenger) cell — module-level so the sweep
    can fan out across the REPRO_JOBS process pool."""
    config, primary, scavenger, duration = point
    pair = run_pair(primary, scavenger, config, duration_s=duration, seed=4)
    return pair.primary_throughput_ratio


def experiment():
    configs = matrix()
    duration = scaled(12.0)
    points = [
        (config, primary, scavenger, duration)
        for config in configs
        for primary in PRIMARIES
        for scavenger in SCAVENGERS
    ]
    # The matrix is embarrassingly parallel; results come back in point
    # order, so the grouped lists are identical to the old serial loop.
    values = pmap(_matrix_point, points)
    ratios: dict[tuple[str, str], list[float]] = {
        (p, s): [] for p in PRIMARIES for s in SCAVENGERS
    }
    for (_, primary, scavenger, _), value in zip(points, values):
        ratios[(primary, scavenger)].append(value)
    return ratios, len(configs)


def test_fig08_configuration_matrix(benchmark):
    ratios, n_configs = run_once(benchmark, experiment)

    rows = []
    for primary in PRIMARIES:
        vs_proteus = statistics.median(ratios[(primary, "proteus-s")])
        vs_ledbat = statistics.median(ratios[(primary, "ledbat")])
        rows.append(
            (
                primary,
                f"{vs_proteus * 100:.1f}%",
                f"{vs_ledbat * 100:.1f}%",
                f"{(vs_proteus / vs_ledbat - 1) * 100:+.1f}%",
            )
        )
    print_table(
        ["primary", "median vs Proteus-S", "median vs LEDBAT", "gain"],
        rows,
        title=f"Fig 8: primary throughput ratio over {n_configs} configs",
    )
    for primary in PRIMARIES:
        print(
            format_cdf(
                f"  CDF {primary} vs proteus-s",
                cdf_points(ratios[(primary, "proteus-s")]),
            )
        )
        print(
            format_cdf(
                f"  CDF {primary} vs ledbat   ",
                cdf_points(ratios[(primary, "ledbat")]),
            )
        )

    # Shape: in the median config, every primary does better against
    # Proteus-S than against LEDBAT; Proteus-P most dramatically.
    for primary in PRIMARIES:
        med_proteus = statistics.median(ratios[(primary, "proteus-s")])
        med_ledbat = statistics.median(ratios[(primary, "ledbat")])
        assert med_proteus > med_ledbat, primary
        assert med_proteus > 0.75
    assert statistics.median(ratios[("proteus-p", "proteus-s")]) > 1.5 * statistics.median(
        ratios[("proteus-p", "ledbat")]
    )
