"""Fig 7: 95th-percentile RTT seen by the primary, with vs without a
scavenger (375 KB buffer).

Paper: LEDBAT roughly doubles a latency-aware primary's p95 RTT (COPA
sees 2.3x); Proteus-S leaves the primary's RTT essentially unchanged
(BBR even measures slightly *lower* p95).
"""

from __future__ import annotations

from _common import run_once, scaled

from repro.harness import EMULAB_DEFAULT, PRIMARY_PROTOCOLS, print_table, run_pair

SCAVENGERS = ("proteus-s", "ledbat", "proteus-p", "copa")


def experiment():
    duration = scaled(25.0)
    ratios = {}
    for scavenger in SCAVENGERS:
        for primary in PRIMARY_PROTOCOLS:
            pair = run_pair(
                primary, scavenger, EMULAB_DEFAULT, duration_s=duration, seed=3
            )
            ratios[(scavenger, primary)] = pair.primary_rtt_ratio_95th
    return ratios


def test_fig07_rtt_inflation_with_scavenger(benchmark):
    ratios = run_once(benchmark, experiment)

    rows = [
        [primary] + [f"{ratios[(s, primary)]:.2f}" for s in SCAVENGERS]
        for primary in PRIMARY_PROTOCOLS
    ]
    print_table(
        ["primary"] + list(SCAVENGERS),
        rows,
        title="Fig 7: p95 RTT ratio (with scavenger / alone), 375 KB buffer",
    )

    # Proteus-S leaves latency-aware primaries' RTT essentially intact.
    for primary in ("copa", "vivace", "proteus-p"):
        assert ratios[("proteus-s", primary)] < 1.5, (
            f"Proteus-S must not inflate {primary}'s p95 RTT"
        )
    # BBR's solo p95 is so low that any competitor's ramp-up shows in the
    # ratio; the claim that survives the substrate change is relative:
    # far less inflation than LEDBAT causes.
    assert ratios[("proteus-s", "bbr")] < 0.75 * ratios[("ledbat", "bbr")]
    # LEDBAT inflates latency-aware primaries' RTT far more.
    for primary in ("copa", "vivace", "proteus-p"):
        assert ratios[("ledbat", primary)] > ratios[("proteus-s", primary)] + 0.3
    # CUBIC already fills the buffer alone, so its ratio stays near 1
    # whatever the scavenger (the paper's observation).
    assert ratios[("ledbat", "cubic")] < 1.4
