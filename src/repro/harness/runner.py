"""Experiment execution: build a dumbbell, run flows, collect metrics.

This is the Pantheon stand-in: a declarative flow list goes in, per-flow
stats and scenario-level summaries come out.  Every run is deterministic
given its seed.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field

from ..protocols import make_sender
from ..sim import Dumbbell, FlowStats, LinkEvent, Simulator, TimelineDriver, make_rng
from .cache import active_cache, hex_floats
from .parallel import ParallelExecutor
from .scenarios import LinkConfig, Timeline

DEFAULT_WARMUP_FRACTION = 0.35

_SCALE: float | None = None


def scale() -> float:
    """Global duration multiplier (env ``REPRO_SCALE``, default 1).

    Benchmarks use scaled-down durations; set ``REPRO_SCALE=4`` or more to
    approach paper-scale runs.  The environment variable is parsed once
    per process (the harness calls this on every scenario point); tests
    that mutate ``REPRO_SCALE`` must call :func:`reset_scale_cache`.
    """
    global _SCALE
    if _SCALE is None:
        _SCALE = float(os.environ.get("REPRO_SCALE", "1"))
    return _SCALE


def reset_scale_cache() -> None:
    """Re-read ``REPRO_SCALE`` on the next :func:`scale` call (test hook)."""
    global _SCALE
    _SCALE = None


@dataclass
class FlowSpec:
    """Declarative description of one flow in an experiment."""

    protocol: str
    start_time: float = 0.0
    size_bytes: int | None = None
    kwargs: dict = field(default_factory=dict)


@dataclass
class RunResult:
    """Outcome of one experiment run.

    ``dumbbell`` is None when the result was rebuilt from the on-disk
    cache (the live topology is not serialised, only the measurement
    record — every metric below derives from ``stats`` alone).
    """

    config: LinkConfig
    duration_s: float
    stats: list[FlowStats]
    dumbbell: Dumbbell | None
    specs: list[FlowSpec]
    timeline: Timeline | None = None
    # Link events actually applied during the run, in firing order — the
    # per-link dynamics telemetry.  Cache rebuilds recompute it from the
    # timeline (event times are pure data, so the rebuild is exact).
    link_events: list[LinkEvent] = field(default_factory=list)

    def measurement_window(self) -> tuple[float, float]:
        """Post-warmup window: after the last flow started plus ramp-up."""
        last_start = max(spec.start_time for spec in self.specs)
        remaining = self.duration_s - last_start
        t0 = last_start + DEFAULT_WARMUP_FRACTION * remaining
        return t0, self.duration_s

    def throughput_mbps(self, index: int, window: tuple[float, float] | None = None) -> float:
        t0, t1 = window if window is not None else self.measurement_window()
        return self.stats[index].throughput_bps(t0, t1) / 1e6

    def throughputs_mbps(self, window: tuple[float, float] | None = None) -> list[float]:
        return [self.throughput_mbps(i, window) for i in range(len(self.stats))]

    def utilization(self, window: tuple[float, float] | None = None) -> float:
        return sum(self.throughputs_mbps(window)) / self.config.bandwidth_mbps


def _flows_payload(
    specs: list[FlowSpec],
    config: LinkConfig,
    duration_s: float,
    seed: int,
    timeline: Timeline | None = None,
) -> dict:
    """Canonical cache payload for a ``run_flows`` call."""
    return {
        "kind": "run_flows",
        "specs": [
            {
                "protocol": spec.protocol,
                "start_time": float(spec.start_time).hex(),
                "size_bytes": spec.size_bytes,
                "kwargs": spec.kwargs,
            }
            for spec in specs
        ],
        "config": asdict(config),
        "duration_s": float(duration_s).hex(),
        "seed": seed,
        # hex_floats: timelines differing by one ULP are different keys.
        "timeline": None if timeline is None else hex_floats(timeline.to_dict()),
    }


def _applied_events(timeline: Timeline, duration_s: float) -> list[LinkEvent]:
    """The events a live run would have applied by ``duration_s``.

    :class:`TimelineDriver` fires events in (time, schedule order), which
    is exactly the sorted order :meth:`Timeline.resolve` returns, so a
    cache rebuild reproduces the live ``applied`` log without simulating.
    """
    return [e for e in timeline.resolve() if e.time_s <= duration_s]


def run_flows(
    specs: list[FlowSpec],
    config: LinkConfig,
    duration_s: float,
    seed: int = 1,
    timeline: Timeline | None = None,
    *,
    max_events: int | None = None,
    max_wall_s: float | None = None,
) -> RunResult:
    """Run ``specs`` over a dumbbell built from ``config``.

    ``timeline`` scripts mid-run link dynamics (bandwidth steps/flaps,
    delay shifts, outages, burst loss — see
    :mod:`repro.harness.scenarios`); its events are applied to the live
    dumbbell links while the simulation runs.

    ``max_events`` / ``max_wall_s`` are watchdog budgets handed straight
    to :meth:`Simulator.run` (``max_events`` also honours
    ``REPRO_MAX_EVENTS``): a livelocked or runaway run raises
    :class:`~repro.sim.engine.SimBudgetExceeded` instead of hanging —
    the supervised harness (:mod:`repro.harness.supervise`) records it
    as a ``timed-out`` trial.  Budgets never enter the cache key: they
    bound *how long* a run may take, not what it computes.

    When a result cache is active (``REPRO_CACHE=1`` or
    :func:`repro.harness.cache.enable_cache`), a previously-computed run
    with the same specs, config, seed, timeline and simulator source is
    rebuilt from disk instead of re-simulated; the round-trip is
    byte-identical (see :mod:`repro.harness.cache`).
    """
    if not specs:
        raise ValueError("need at least one flow")
    cache = active_cache()
    key = None
    if cache is not None:
        key = cache.key_for(_flows_payload(specs, config, duration_s, seed, timeline))
        cached_stats = cache.load_stats(key)
        if cached_stats is not None:
            events = [] if timeline is None else _applied_events(timeline, duration_s)
            return RunResult(
                config, duration_s, cached_stats, None, specs,
                timeline=timeline, link_events=events,
            )
    result = _run_flows_live(
        specs, config, duration_s, seed, timeline,
        max_events=max_events, max_wall_s=max_wall_s,
    )
    if cache is not None and key is not None:
        cache.store_stats(key, result.stats)
    return result


def _run_flows_live(
    specs: list[FlowSpec],
    config: LinkConfig,
    duration_s: float,
    seed: int,
    timeline: Timeline | None = None,
    *,
    max_events: int | None = None,
    max_wall_s: float | None = None,
) -> RunResult:
    sim = Simulator()
    rng = make_rng(seed)
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=config.bandwidth_bps,
        rtt_s=config.rtt_s,
        buffer_bytes=config.buffer_bytes,
        loss_rate=config.loss_rate,
        noise=config.make_noise(),
        reverse_noise=config.make_reverse_noise(),
        rng=rng,
    )
    driver = None
    if timeline is not None:
        driver = TimelineDriver(
            sim,
            {"bottleneck": dumbbell.bottleneck, "reverse": dumbbell.reverse},
            timeline.resolve(),
        )
    stats: list[FlowStats] = []
    for i, spec in enumerate(specs):
        sender = make_sender(spec.protocol, seed=seed * 1000 + i, **spec.kwargs)
        flow = dumbbell.add_flow(
            sender,
            flow_id=i + 1,
            size_bytes=spec.size_bytes,
            start_time=spec.start_time,
        )
        stats.append(flow.stats)
    sim.run(until=duration_s, max_events=max_events, max_wall_s=max_wall_s)
    link_events = list(driver.applied) if driver is not None else []
    return RunResult(
        config, duration_s, stats, dumbbell, specs,
        timeline=timeline, link_events=link_events,
    )


# ----------------------------------------------------------------------
# Paper-shaped experiment helpers
# ----------------------------------------------------------------------
def run_single(
    protocol: str,
    config: LinkConfig,
    duration_s: float = 30.0,
    seed: int = 1,
    timeline: Timeline | None = None,
    **kwargs,
) -> RunResult:
    """One flow alone on the bottleneck (Figs 3, 4, 9)."""
    return run_flows(
        [FlowSpec(protocol, kwargs=kwargs)],
        config,
        duration_s,
        seed=seed,
        timeline=timeline,
    )


@dataclass
class PairResult:
    """Two-flow scavenger-vs-primary outcome (Figs 6-8, 10, 19-22)."""

    primary_solo_mbps: float
    primary_with_scavenger_mbps: float
    scavenger_mbps: float
    primary_throughput_ratio: float
    utilization: float
    primary_rtt_ratio_95th: float


def _pair_solo_metrics(
    primary: str,
    config: LinkConfig,
    duration_s: float,
    seed: int,
    window: tuple[float, float],
    timeline: Timeline | None = None,
) -> tuple[float, float]:
    """Solo-baseline metrics measured over the *paired* run's window."""
    solo = run_single(primary, config, duration_s, seed=seed, timeline=timeline)
    return (
        solo.throughput_mbps(0, window),
        solo.stats[0].rtt_percentile(95, *window),
    )


def _pair_joint_metrics(
    primary: str,
    scavenger: str,
    config: LinkConfig,
    duration_s: float,
    scavenger_start_s: float,
    seed: int,
    timeline: Timeline | None = None,
) -> tuple[float, float, float, float]:
    paired = run_flows(
        [
            FlowSpec(primary, start_time=0.0),
            FlowSpec(scavenger, start_time=scavenger_start_s),
        ],
        config,
        duration_s,
        seed=seed,
        timeline=timeline,
    )
    window = paired.measurement_window()
    return (
        paired.throughput_mbps(0, window),
        paired.throughput_mbps(1, window),
        paired.utilization(window),
        paired.stats[0].rtt_percentile(95, *window),
    )


def run_pair(
    primary: str,
    scavenger: str,
    config: LinkConfig,
    duration_s: float = 30.0,
    scavenger_start_s: float | None = None,
    seed: int = 1,
    jobs: int | None = None,
    timeline: Timeline | None = None,
) -> PairResult:
    """Primary flow joined by a scavenger; compares against the solo run.

    The paper's metrics: primary throughput ratio (paired throughput over
    solo throughput), joint capacity utilization, and the 95th-percentile
    RTT ratio of the primary with vs without the scavenger (Fig 7).

    The solo baseline and the paired run are independent simulations, so
    they are dispatched concurrently when ``jobs``/``REPRO_JOBS`` allows;
    with the result cache active the solo baseline — identical across
    every scavenger sweep point — is computed once and reused.
    """
    if scavenger_start_s is None:
        scavenger_start_s = min(5.0, duration_s / 6.0)
    # The paired run's measurement window depends only on the flow start
    # times (see RunResult.measurement_window), so it is known up front
    # and both runs can be dispatched together.
    last_start = max(0.0, scavenger_start_s)
    window = (
        last_start + DEFAULT_WARMUP_FRACTION * (duration_s - last_start),
        duration_s,
    )
    (solo_mbps, solo_rtt), (with_scavenger, scavenger_mbps, util, paired_rtt) = (
        ParallelExecutor(jobs).run_all(
            [
                (
                    _pair_solo_metrics,
                    (primary, config, duration_s, seed, window, timeline),
                ),
                (
                    _pair_joint_metrics,
                    (
                        primary,
                        scavenger,
                        config,
                        duration_s,
                        scavenger_start_s,
                        seed,
                        timeline,
                    ),
                ),
            ]
        )
    )
    ratio = with_scavenger / solo_mbps if solo_mbps > 0 else 0.0
    return PairResult(
        primary_solo_mbps=solo_mbps,
        primary_with_scavenger_mbps=with_scavenger,
        scavenger_mbps=scavenger_mbps,
        primary_throughput_ratio=ratio,
        utilization=util,
        primary_rtt_ratio_95th=paired_rtt / solo_rtt,
    )


@dataclass
class StreamingResult:
    """Per-session QoE metrics from a streaming experiment."""

    video_name: str
    average_bitrate_mbps: float
    rebuffer_ratio: float
    chunks_delivered: int
    startup_delay_s: float | None


def run_streaming(
    videos,
    protocol: str,
    config: LinkConfig,
    duration_s: float = 60.0,
    forced_level: int | None = None,
    background: list[FlowSpec] | None = None,
    seed: int = 1,
) -> list[StreamingResult]:
    """Stream ``videos`` concurrently over ``protocol`` (Figs 11a, 12, 13).

    Each video gets its own chunked flow and
    :class:`~repro.apps.streaming.StreamingSession`; optional background
    flows (e.g. a scavenger) share the bottleneck.
    """
    from ..apps.streaming import StreamingSession

    sim = Simulator()
    rng = make_rng(seed)
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=config.bandwidth_bps,
        rtt_s=config.rtt_s,
        buffer_bytes=config.buffer_bytes,
        loss_rate=config.loss_rate,
        noise=config.make_noise(),
        reverse_noise=config.make_reverse_noise(),
        rng=rng,
    )
    sessions = []
    for i, video in enumerate(videos):
        sender = make_sender(protocol, seed=seed * 100 + i)
        flow = dumbbell.add_flow(sender, flow_id=i + 1, chunked=True)
        level = forced_level
        if level is not None and level < 0:
            level = len(video.bitrates_bps) + level
        sessions.append(StreamingSession(sim, flow, video, forced_level=level))
    if background:
        for j, spec in enumerate(background):
            sender = make_sender(spec.protocol, seed=seed * 100 + 50 + j, **spec.kwargs)
            dumbbell.add_flow(
                sender,
                flow_id=100 + j,
                size_bytes=spec.size_bytes,
                start_time=spec.start_time,
            )
    sim.run(until=duration_s)
    return [
        StreamingResult(
            video_name=s.video.name,
            average_bitrate_mbps=s.average_bitrate_bps() / 1e6,
            rebuffer_ratio=s.rebuffer_ratio(),
            chunks_delivered=len(s.chunks),
            startup_delay_s=s.playback.startup_delay_s,
        )
        for s in sessions
    ]


def run_homogeneous(
    protocol: str,
    n_flows: int,
    config: LinkConfig,
    stagger_s: float = 5.0,
    measure_s: float = 30.0,
    seed: int = 1,
    timeline: Timeline | None = None,
) -> RunResult:
    """``n`` same-protocol flows with staggered starts (Figs 5, 17, 18)."""
    if n_flows < 1:
        raise ValueError("n_flows must be positive")
    specs = [
        FlowSpec(protocol, start_time=i * stagger_s) for i in range(n_flows)
    ]
    duration = (n_flows - 1) * stagger_s + measure_s
    return run_flows(specs, config, duration, seed=seed, timeline=timeline)
