"""Experiment execution: build a dumbbell, run flows, collect metrics.

This is the Pantheon stand-in: a declarative flow list goes in, per-flow
stats and scenario-level summaries come out.  Every run is deterministic
given its seed.

**Public API conventions** (see ``docs/API.md``): every ``run_*`` entry
point takes its scenario arguments positionally (the flow specs /
protocol names and the :class:`~repro.harness.scenarios.LinkConfig`) and
everything else — duration, seed, timeline, tracer, metrics registry —
as keyword arguments.  Positional use of the legacy tail arguments still
works for one release but warns ``DeprecationWarning``.

**Observability** (see ``docs/OBSERVABILITY.md``): pass
``tracer=``/``metrics=`` (or install a process-global tracer with
:func:`repro.obs.install_tracer`) to capture trace events and a metrics
snapshot from the run.  Every result satisfies the
:class:`~repro.harness.results.Result` protocol — ``summary()``,
``to_dict()``, and a ``metrics`` snapshot in the canonical registry
shape.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import asdict, dataclass, field

from ..obs import MetricsRegistry, PeriodicSampler, active_tracer
from ..protocols import make_sender
from ..sim import (
    Dumbbell,
    Fidelity,
    FlowStats,
    LinkEvent,
    Rng,
    Simulator,
    TimelineDriver,
    activate_fastforward,
    make_rng,
    resolve_fidelity,
)
from .cache import active_cache, hex_floats
from .parallel import ParallelExecutor
from .scenarios import TOPOLOGIES, LinkConfig, Timeline, TopologySpec

DEFAULT_WARMUP_FRACTION = 0.35

_SCALE: float | None = None


def scale() -> float:
    """Global duration multiplier (env ``REPRO_SCALE``, default 1).

    Benchmarks use scaled-down durations; set ``REPRO_SCALE=4`` or more to
    approach paper-scale runs.  The environment variable is parsed once
    per process (the harness calls this on every scenario point); tests
    that mutate ``REPRO_SCALE`` must call :func:`reset_scale_cache`.
    """
    global _SCALE
    if _SCALE is None:
        _SCALE = float(os.environ.get("REPRO_SCALE", "1"))
    return _SCALE


def reset_scale_cache() -> None:
    """Re-read ``REPRO_SCALE`` on the next :func:`scale` call (test hook)."""
    global _SCALE
    _SCALE = None


# ----------------------------------------------------------------------
# One-release compatibility shim for formerly-positional arguments
# ----------------------------------------------------------------------
_UNSET: object = object()
"""Sentinel distinguishing "not passed" from an explicit None/value."""


def _apply_legacy_positional(
    fn_name: str, legacy: tuple, slots: tuple[str, ...], values: dict
) -> None:
    """Map deprecated positional tail arguments onto their keyword slots.

    ``legacy`` holds whatever the caller passed positionally beyond the
    scenario arguments; ``slots`` names those positions in their
    pre-redesign order; ``values`` maps slot name -> value from the
    keyword form (``_UNSET`` when absent).  Mutates ``values`` in place.
    Positional use warns ``DeprecationWarning`` once per call site;
    passing the same argument both ways raises ``TypeError`` exactly
    like a normal double-assignment would.
    """
    if not legacy:
        return
    if len(legacy) > len(slots):
        raise TypeError(
            f"{fn_name}() takes at most {len(slots)} legacy positional "
            f"argument(s) ({', '.join(slots)}), got {len(legacy)}"
        )
    named = ", ".join(slots[: len(legacy)])
    warnings.warn(
        f"passing {named} positionally to {fn_name}() is deprecated; "
        f"use keyword arguments (e.g. {fn_name}(..., {slots[0]}=...))",
        DeprecationWarning,
        stacklevel=3,
    )
    for slot, value in zip(slots, legacy):
        if values[slot] is not _UNSET:
            raise TypeError(f"{fn_name}() got multiple values for argument {slot!r}")
        values[slot] = value


def _resolve(value, default):
    return default if value is _UNSET else value


@dataclass
class FlowSpec:
    """Declarative description of one flow in an experiment.

    ``route`` places the flow between two named topology nodes when the
    run uses a :class:`~repro.harness.scenarios.TopologySpec` (e.g.
    ``("n1", "n2")`` for parking-lot cross traffic).  ``None`` uses the
    topology's default endpoints for the flow's index; single-bottleneck
    (dumbbell) runs ignore it.
    """

    protocol: str
    start_time: float = 0.0
    size_bytes: int | None = None
    kwargs: dict = field(default_factory=dict)
    route: tuple[str, str] | None = None


@dataclass
class RunResult:
    """Outcome of one experiment run.

    ``dumbbell`` holds the live network — a
    :class:`~repro.sim.topology.Dumbbell` for classic runs, or whatever
    :class:`~repro.sim.topology.Topology` the run's ``topology`` spec
    built (the field keeps its historical name).  It is None when the
    result was rebuilt from the on-disk cache (the live topology is not
    serialised, only the measurement record — every metric below
    derives from ``stats`` alone).
    """

    config: LinkConfig
    duration_s: float
    stats: list[FlowStats]
    dumbbell: Dumbbell | None
    specs: list[FlowSpec]
    timeline: Timeline | None = None
    # The declarative topology spec the run was built from (None for the
    # classic single-bottleneck dumbbell); pure data, so it survives
    # cache rebuilds exactly like the timeline.
    topology: TopologySpec | None = None
    # Link events actually applied during the run, in firing order — the
    # per-link dynamics telemetry.  Cache rebuilds recompute it from the
    # timeline (event times are pure data, so the rebuild is exact).
    link_events: list[LinkEvent] = field(default_factory=list)
    # Canonical metrics snapshot captured right after the run (and stored
    # with the cache record, so warm hits return the identical snapshot
    # including link-level counters the rebuilt result cannot recompute).
    metrics_snapshot: dict | None = None

    def measurement_window(self) -> tuple[float, float]:
        """Post-warmup window: after the last flow started plus ramp-up."""
        last_start = max(spec.start_time for spec in self.specs)
        remaining = self.duration_s - last_start
        t0 = last_start + DEFAULT_WARMUP_FRACTION * remaining
        return t0, self.duration_s

    def throughput_mbps(self, index: int, window: tuple[float, float] | None = None) -> float:
        t0, t1 = window if window is not None else self.measurement_window()
        return self.stats[index].throughput_bps(t0, t1) / 1e6

    def throughputs_mbps(self, window: tuple[float, float] | None = None) -> list[float]:
        return [self.throughput_mbps(i, window) for i in range(len(self.stats))]

    def utilization(self, window: tuple[float, float] | None = None) -> float:
        return sum(self.throughputs_mbps(window)) / self.config.bandwidth_mbps

    # -- Result protocol ----------------------------------------------
    def summary(self) -> dict:
        """Per-flow aggregates plus scenario config (JSON-safe)."""
        from .export import run_result_summary

        return run_result_summary(self)

    def to_dict(self) -> dict:
        """Full serialisable record: ``kind`` + summary + metrics."""
        return {"kind": "run", **self.summary(), "metrics": self.metrics}

    @property
    def metrics(self) -> dict:
        """Canonical metrics snapshot (computed lazily when not captured).

        The lazy fallback only covers per-flow series — a cache-rebuilt
        result has no live links to read counters from — so runs that
        want link metrics rely on the snapshot captured at run time.
        """
        if self.metrics_snapshot is None:
            registry = MetricsRegistry()
            collect_run_metrics(self, registry)
            self.metrics_snapshot = registry.snapshot()
        return self.metrics_snapshot


def collect_run_metrics(result: RunResult, registry: MetricsRegistry) -> dict:
    """Populate ``registry`` from a finished run; returns its snapshot.

    Per-flow counters and gauges are labelled ``flow=<id>,
    protocol=<name>``; link counters (only available while the live
    topology still exists) are labelled ``link=<name>``.
    """
    window = result.measurement_window()
    for i, stats in enumerate(result.stats):
        labels = {"flow": stats.flow_id, "protocol": result.specs[i].protocol}
        registry.counter("flow.packets_sent", **labels).inc(stats.packets_sent)
        registry.counter("flow.losses", **labels).inc(stats.loss_count())
        registry.counter("flow.delivered_bytes", **labels).inc(stats.delivered_bytes)
        registry.gauge("flow.throughput_mbps", **labels).set(
            result.throughput_mbps(i, window)
        )
        rtts = stats.rtt_samples(*window)
        if rtts:
            registry.gauge("flow.min_rtt_s", **labels).set(min(rtts))
            registry.gauge("flow.p95_rtt_s", **labels).set(
                stats.rtt_percentile(95, *window)
            )
    network = result.dumbbell
    if network is not None:
        # Every shared link of the topology graph, in insertion order
        # (for the classic dumbbell: bottleneck, then reverse).
        for link in network.iter_links():
            stats = link.stats
            registry.counter("link.offered", link=link.name).inc(stats.offered)
            registry.counter("link.delivered", link=link.name).inc(stats.delivered)
            registry.counter("link.tail_drops", link=link.name).inc(stats.tail_drops)
            registry.counter("link.aqm_drops", link=link.name).inc(stats.aqm_drops)
            registry.counter("link.random_losses", link=link.name).inc(
                stats.random_losses
            )
            registry.counter("link.outage_drops", link=link.name).inc(
                stats.outage_drops
            )
            registry.gauge("link.max_backlog_bytes", link=link.name).set(
                stats.max_backlog_bytes
            )
    registry.gauge("run.utilization").set(result.utilization(window))
    return registry.snapshot()


def _flows_payload(
    specs: list[FlowSpec],
    config: LinkConfig,
    duration_s: float,
    seed: int,
    timeline: Timeline | None = None,
    fidelity: Fidelity | None = None,
    topology: TopologySpec | None = None,
) -> dict:
    """Canonical cache payload for a ``run_flows`` call.

    Observability arguments (tracer, metrics registry, sample period)
    never enter the payload: they observe the run, they do not change it.
    Execution fidelity *does*: an exact and a hybrid run of the same
    scenario are different experiments (see :mod:`repro.sim.fidelity`).
    So does the topology spec — the same flows over a different graph
    are a different experiment.
    """
    return {
        "kind": "run_flows",
        "specs": [
            {
                "protocol": spec.protocol,
                "start_time": float(spec.start_time).hex(),
                "size_bytes": spec.size_bytes,
                "kwargs": spec.kwargs,
                "route": None if spec.route is None else list(spec.route),
            }
            for spec in specs
        ],
        "config": asdict(config),
        "duration_s": float(duration_s).hex(),
        "seed": seed,
        # hex_floats: timelines differing by one ULP are different keys.
        "timeline": None if timeline is None else hex_floats(timeline.to_dict()),
        "fidelity": resolve_fidelity(fidelity).key(),
        "topology": None if topology is None else hex_floats(topology.to_dict()),
    }


def _applied_events(timeline: Timeline, duration_s: float) -> list[LinkEvent]:
    """The events a live run would have applied by ``duration_s``.

    :class:`TimelineDriver` fires events in (time, schedule order), which
    is exactly the sorted order :meth:`Timeline.resolve` returns, so a
    cache rebuild reproduces the live ``applied`` log without simulating.
    """
    return [e for e in timeline.resolve() if e.time_s <= duration_s]


def run_flows(
    specs: list[FlowSpec],
    config: LinkConfig,
    *legacy,
    duration_s: float = _UNSET,  # type: ignore[assignment]
    seed: int = _UNSET,  # type: ignore[assignment]
    timeline: Timeline | None = _UNSET,  # type: ignore[assignment]
    tracer=None,
    metrics: MetricsRegistry | None = None,
    sample_period_s: float | None = None,
    max_events: int | None = None,
    max_wall_s: float | None = None,
    fidelity: Fidelity | str | None = None,
    topology: TopologySpec | None = None,
) -> RunResult:
    """Run ``specs`` over a dumbbell built from ``config``.

    All arguments after ``config`` are keyword-only (positional use is
    deprecated and warns for one release).  ``duration_s`` defaults to
    30 simulated seconds.

    ``topology`` swaps the classic single-bottleneck dumbbell for a
    declarative multi-hop graph (see
    :class:`~repro.harness.scenarios.TopologySpec`): parking-lot chains
    with per-hop AQM, shared-core multi-dumbbells, or an AQM-equipped
    dumbbell.  ``config`` still supplies per-hop bandwidth, delay and
    buffer; each ``FlowSpec.route`` may pin a flow between two named
    nodes.  The spec is pure data and *is* part of the cache key.

    ``timeline`` scripts mid-run link dynamics (bandwidth steps/flaps,
    delay shifts, outages, burst loss — see
    :mod:`repro.harness.scenarios`); its events are applied to the live
    dumbbell links while the simulation runs.

    ``tracer`` receives every trace event the run emits (defaults to the
    process-global tracer from :func:`repro.obs.install_tracer`, i.e.
    none).  ``metrics`` is a caller-owned
    :class:`~repro.obs.MetricsRegistry` populated with the run's
    counters/gauges; ``sample_period_s`` additionally samples the
    bottleneck backlog into it every so many *simulated* seconds.

    ``max_events`` / ``max_wall_s`` are watchdog budgets handed straight
    to :meth:`Simulator.run` (``max_events`` also honours
    ``REPRO_MAX_EVENTS``): a livelocked or runaway run raises
    :class:`~repro.sim.engine.SimBudgetExceeded` instead of hanging —
    the supervised harness (:mod:`repro.harness.supervise`) records it
    as a ``timed-out`` trial.  Budgets never enter the cache key: they
    bound *how long* a run may take, not what it computes.

    ``fidelity`` selects the execution-fidelity mode (see
    :mod:`repro.sim.fidelity`): ``"exact"`` (the default), ``"hybrid"``,
    or a :class:`~repro.sim.Fidelity` instance.  ``None`` consults the
    ``REPRO_FIDELITY`` environment variable, so whole suites can switch
    without touching call sites.  Fidelity *is* part of the cache key.

    When a result cache is active (``REPRO_CACHE=1`` or
    :func:`repro.harness.cache.enable_cache`), a previously-computed run
    with the same specs, config, seed, timeline and simulator source is
    rebuilt from disk instead of re-simulated; the round-trip is
    byte-identical (see :mod:`repro.harness.cache`), including the
    metrics snapshot.  A run with a tracer or a caller registry attached
    always simulates live (observation needs the events), though its
    result is still stored for later unobserved calls.
    """
    values = {"duration_s": duration_s, "seed": seed, "timeline": timeline}
    _apply_legacy_positional(
        "run_flows", legacy, ("duration_s", "seed", "timeline"), values
    )
    duration_s = _resolve(values["duration_s"], 30.0)
    seed = _resolve(values["seed"], 1)
    timeline = _resolve(values["timeline"], None)
    if not specs:
        raise ValueError("need at least one flow")
    if tracer is None:
        tracer = active_tracer()
    fidelity = resolve_fidelity(fidelity)
    observing = tracer is not None or metrics is not None or sample_period_s is not None
    cache = active_cache()
    key = None
    if cache is not None:
        key = cache.key_for(
            _flows_payload(specs, config, duration_s, seed, timeline, fidelity, topology)
        )
        if not observing:
            cached = cache.load_run(key)
            if cached is not None:
                cached_stats, snapshot = cached
                events = [] if timeline is None else _applied_events(timeline, duration_s)
                return RunResult(
                    config, duration_s, cached_stats, None, specs,
                    timeline=timeline, topology=topology, link_events=events,
                    metrics_snapshot=snapshot,
                )
    result = _run_flows_live(
        specs, config, duration_s, seed, timeline,
        tracer=tracer, metrics=metrics, sample_period_s=sample_period_s,
        max_events=max_events, max_wall_s=max_wall_s, fidelity=fidelity,
        topology=topology,
    )
    # Periodic samples depend on sample_period_s, which is not part of
    # the cache key — never store a snapshot that a later call with a
    # different period would wrongly inherit.
    if cache is not None and key is not None and sample_period_s is None:
        cache.store_run(key, result.stats, metrics=result.metrics_snapshot)
    return result


def _run_flows_live(
    specs: list[FlowSpec],
    config: LinkConfig,
    duration_s: float,
    seed: int,
    timeline: Timeline | None = None,
    *,
    tracer=None,
    metrics: MetricsRegistry | None = None,
    sample_period_s: float | None = None,
    max_events: int | None = None,
    max_wall_s: float | None = None,
    fidelity: Fidelity | None = None,
    topology: TopologySpec | None = None,
) -> RunResult:
    sim = Simulator(tracer=tracer, fidelity=fidelity)
    rng = make_rng(seed)
    if topology is not None:
        network = topology.build(sim, config, rng)
    else:
        network = Dumbbell(
            sim,
            bandwidth_bps=config.bandwidth_bps,
            rtt_s=config.rtt_s,
            buffer_bytes=config.buffer_bytes,
            loss_rate=config.loss_rate,
            noise=config.make_noise(),
            reverse_noise=config.make_reverse_noise(),
            rng=rng,
        )
    driver = None
    if timeline is not None:
        # Timeline events address links by registered name — for the
        # classic dumbbell that is still {"bottleneck", "reverse"}.
        driver = TimelineDriver(sim, dict(network.links), timeline.resolve())
    sampler_registry = metrics
    if sample_period_s is not None:
        if sampler_registry is None:
            sampler_registry = MetricsRegistry()
        monitor = network.monitor
        backlog_hist = sampler_registry.histogram(
            "link.backlog_bytes", link=monitor.name
        )
        PeriodicSampler(
            sim,
            sample_period_s,
            lambda _now: backlog_hist.observe(monitor.backlog_bytes()),
        )
    stats: list[FlowStats] = []
    flows = []
    for i, spec in enumerate(specs):
        sender = make_sender(spec.protocol, seed=seed * 1000 + i, **spec.kwargs)
        if topology is not None:
            src, dst = spec.route if spec.route is not None else (None, None)
            flow = network.add_flow(
                sender,
                src=src,
                dst=dst,
                flow_id=i + 1,
                size_bytes=spec.size_bytes,
                start_time=spec.start_time,
            )
        else:
            flow = network.add_flow(
                sender,
                flow_id=i + 1,
                size_bytes=spec.size_bytes,
                start_time=spec.start_time,
            )
        flows.append(flow)
        stats.append(flow.stats)
    # Hybrid fidelity: with the whole flow set known, mark the flows
    # whose packet legs may collapse (no-op in exact mode).
    activate_fastforward(sim, flows)
    sim.run(until=duration_s, max_events=max_events, max_wall_s=max_wall_s)
    link_events = list(driver.applied) if driver is not None else []
    result = RunResult(
        config, duration_s, stats, network, specs,
        timeline=timeline, topology=topology, link_events=link_events,
    )
    # Snapshot from a fresh registry so the stored record reflects only
    # this run; the caller's registry (which may span several runs) is
    # populated separately.
    internal = MetricsRegistry()
    result.metrics_snapshot = collect_run_metrics(result, internal)
    if metrics is not None:
        collect_run_metrics(result, metrics)
    if sampler_registry is not None and sampler_registry is not metrics:
        # Samples landed in an internal registry (sampling without a
        # caller registry): merge them into the result's snapshot view.
        sampled = sampler_registry.snapshot()
        result.metrics_snapshot["histograms"].update(sampled["histograms"])
    return result


# ----------------------------------------------------------------------
# Paper-shaped experiment helpers
# ----------------------------------------------------------------------
def run_single(
    protocol: str,
    config: LinkConfig,
    *legacy,
    duration_s: float = _UNSET,  # type: ignore[assignment]
    seed: int = _UNSET,  # type: ignore[assignment]
    timeline: Timeline | None = _UNSET,  # type: ignore[assignment]
    tracer=None,
    metrics: MetricsRegistry | None = None,
    fidelity: Fidelity | str | None = None,
    topology: TopologySpec | None = None,
    **kwargs,
) -> RunResult:
    """One flow alone on the bottleneck (Figs 3, 4, 9).

    Extra keyword arguments are forwarded to the protocol constructor.
    """
    values = {"duration_s": duration_s, "seed": seed, "timeline": timeline}
    _apply_legacy_positional(
        "run_single", legacy, ("duration_s", "seed", "timeline"), values
    )
    return run_flows(
        [FlowSpec(protocol, kwargs=kwargs)],
        config,
        duration_s=_resolve(values["duration_s"], 30.0),
        seed=_resolve(values["seed"], 1),
        timeline=_resolve(values["timeline"], None),
        tracer=tracer,
        metrics=metrics,
        fidelity=fidelity,
        topology=topology,
    )


@dataclass
class PairResult:
    """Two-flow scavenger-vs-primary outcome (Figs 6-8, 10, 19-22)."""

    primary_solo_mbps: float
    primary_with_scavenger_mbps: float
    scavenger_mbps: float
    primary_throughput_ratio: float
    utilization: float
    primary_rtt_ratio_95th: float

    # -- Result protocol ----------------------------------------------
    def summary(self) -> dict:
        return asdict(self)

    def to_dict(self) -> dict:
        return {"kind": "pair", **self.summary(), "metrics": self.metrics}

    @property
    def metrics(self) -> dict:
        from .results import synthesize_snapshot

        return synthesize_snapshot(
            gauges={
                "pair.primary_solo_mbps": self.primary_solo_mbps,
                "pair.primary_with_scavenger_mbps": self.primary_with_scavenger_mbps,
                "pair.scavenger_mbps": self.scavenger_mbps,
                "pair.primary_throughput_ratio": self.primary_throughput_ratio,
                "pair.utilization": self.utilization,
                "pair.primary_rtt_ratio_95th": self.primary_rtt_ratio_95th,
            }
        )


def _pair_solo_metrics(
    primary: str,
    config: LinkConfig,
    duration_s: float,
    seed: int,
    window: tuple[float, float],
    timeline: Timeline | None = None,
    tracer=None,
    fidelity: Fidelity | None = None,
    topology: TopologySpec | None = None,
) -> tuple[float, float]:
    """Solo-baseline metrics measured over the *paired* run's window."""
    solo = run_single(
        primary, config, duration_s=duration_s, seed=seed, timeline=timeline,
        tracer=tracer, fidelity=fidelity, topology=topology,
    )
    return (
        solo.throughput_mbps(0, window),
        solo.stats[0].rtt_percentile(95, *window),
    )


def _pair_joint_metrics(
    primary: str,
    scavenger: str,
    config: LinkConfig,
    duration_s: float,
    scavenger_start_s: float,
    seed: int,
    timeline: Timeline | None = None,
    tracer=None,
    fidelity: Fidelity | None = None,
    topology: TopologySpec | None = None,
) -> tuple[float, float, float, float]:
    paired = run_flows(
        [
            FlowSpec(primary, start_time=0.0),
            FlowSpec(scavenger, start_time=scavenger_start_s),
        ],
        config,
        duration_s=duration_s,
        seed=seed,
        timeline=timeline,
        tracer=tracer,
        fidelity=fidelity,
        topology=topology,
    )
    window = paired.measurement_window()
    return (
        paired.throughput_mbps(0, window),
        paired.throughput_mbps(1, window),
        paired.utilization(window),
        paired.stats[0].rtt_percentile(95, *window),
    )


def run_pair(
    primary: str,
    scavenger: str,
    config: LinkConfig,
    *legacy,
    duration_s: float = _UNSET,  # type: ignore[assignment]
    scavenger_start_s: float | None = _UNSET,  # type: ignore[assignment]
    seed: int = _UNSET,  # type: ignore[assignment]
    jobs: int | None = _UNSET,  # type: ignore[assignment]
    timeline: Timeline | None = _UNSET,  # type: ignore[assignment]
    tracer=None,
    metrics: MetricsRegistry | None = None,
    fidelity: Fidelity | str | None = None,
    topology: TopologySpec | None = None,
) -> PairResult:
    """Primary flow joined by a scavenger; compares against the solo run.

    The paper's metrics: primary throughput ratio (paired throughput over
    solo throughput), joint capacity utilization, and the 95th-percentile
    RTT ratio of the primary with vs without the scavenger (Fig 7).

    The solo baseline and the paired run are independent simulations, so
    they are dispatched concurrently when ``jobs``/``REPRO_JOBS`` allows;
    with the result cache active the solo baseline — identical across
    every scavenger sweep point — is computed once and reused.  With a
    tracer attached both runs execute serially in-process instead, so
    every event reaches the caller's tracer (worker processes cannot
    stream into it).
    """
    values = {
        "duration_s": duration_s,
        "scavenger_start_s": scavenger_start_s,
        "seed": seed,
        "jobs": jobs,
        "timeline": timeline,
    }
    _apply_legacy_positional(
        "run_pair",
        legacy,
        ("duration_s", "scavenger_start_s", "seed", "jobs", "timeline"),
        values,
    )
    duration_s = _resolve(values["duration_s"], 30.0)
    scavenger_start_s = _resolve(values["scavenger_start_s"], None)
    seed = _resolve(values["seed"], 1)
    jobs = _resolve(values["jobs"], None)
    timeline = _resolve(values["timeline"], None)
    if tracer is None:
        tracer = active_tracer()
    fidelity = resolve_fidelity(fidelity)
    if scavenger_start_s is None:
        scavenger_start_s = min(5.0, duration_s / 6.0)
    # The paired run's measurement window depends only on the flow start
    # times (see RunResult.measurement_window), so it is known up front
    # and both runs can be dispatched together.
    last_start = max(0.0, scavenger_start_s)
    window = (
        last_start + DEFAULT_WARMUP_FRACTION * (duration_s - last_start),
        duration_s,
    )
    if tracer is not None:
        solo_mbps, solo_rtt = _pair_solo_metrics(
            primary, config, duration_s, seed, window, timeline, tracer, fidelity,
            topology,
        )
        with_scavenger, scavenger_mbps, util, paired_rtt = _pair_joint_metrics(
            primary, scavenger, config, duration_s, scavenger_start_s, seed,
            timeline, tracer, fidelity, topology,
        )
    else:
        (solo_mbps, solo_rtt), (with_scavenger, scavenger_mbps, util, paired_rtt) = (
            ParallelExecutor(jobs).run_all(
                [
                    (
                        _pair_solo_metrics,
                        (primary, config, duration_s, seed, window, timeline,
                         None, fidelity, topology),
                    ),
                    (
                        _pair_joint_metrics,
                        (
                            primary,
                            scavenger,
                            config,
                            duration_s,
                            scavenger_start_s,
                            seed,
                            timeline,
                            None,
                            fidelity,
                            topology,
                        ),
                    ),
                ]
            )
        )
    ratio = with_scavenger / solo_mbps if solo_mbps > 0 else 0.0
    result = PairResult(
        primary_solo_mbps=solo_mbps,
        primary_with_scavenger_mbps=with_scavenger,
        scavenger_mbps=scavenger_mbps,
        primary_throughput_ratio=ratio,
        utilization=util,
        primary_rtt_ratio_95th=paired_rtt / solo_rtt,
    )
    if metrics is not None:
        for name, value in result.metrics["gauges"].items():
            metrics.gauge(name, primary=primary, scavenger=scavenger).set(value)
    return result


@dataclass
class StreamingResult:
    """Per-session QoE metrics from a streaming experiment."""

    video_name: str
    average_bitrate_mbps: float
    rebuffer_ratio: float
    chunks_delivered: int
    startup_delay_s: float | None

    # -- Result protocol ----------------------------------------------
    def summary(self) -> dict:
        return asdict(self)

    def to_dict(self) -> dict:
        return {"kind": "streaming", **self.summary(), "metrics": self.metrics}

    @property
    def metrics(self) -> dict:
        from .results import synthesize_snapshot

        return synthesize_snapshot(
            gauges={
                "streaming.average_bitrate_mbps": self.average_bitrate_mbps,
                "streaming.rebuffer_ratio": self.rebuffer_ratio,
                "streaming.startup_delay_s": self.startup_delay_s,
            },
            counters={"streaming.chunks_delivered": self.chunks_delivered},
        )


def run_streaming(
    videos,
    protocol: str,
    config: LinkConfig,
    *legacy,
    duration_s: float = _UNSET,  # type: ignore[assignment]
    forced_level: int | None = _UNSET,  # type: ignore[assignment]
    background: list[FlowSpec] | None = _UNSET,  # type: ignore[assignment]
    seed: int = _UNSET,  # type: ignore[assignment]
    tracer=None,
) -> list[StreamingResult]:
    """Stream ``videos`` concurrently over ``protocol`` (Figs 11a, 12, 13).

    Each video gets its own chunked flow and
    :class:`~repro.apps.streaming.StreamingSession`; optional background
    flows (e.g. a scavenger) share the bottleneck.
    """
    from ..apps.streaming import StreamingSession

    values = {
        "duration_s": duration_s,
        "forced_level": forced_level,
        "background": background,
        "seed": seed,
    }
    _apply_legacy_positional(
        "run_streaming",
        legacy,
        ("duration_s", "forced_level", "background", "seed"),
        values,
    )
    duration_s = _resolve(values["duration_s"], 60.0)
    forced_level = _resolve(values["forced_level"], None)
    background = _resolve(values["background"], None)
    seed = _resolve(values["seed"], 1)
    if tracer is None:
        tracer = active_tracer()
    sim = Simulator(tracer=tracer)
    rng = make_rng(seed)
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=config.bandwidth_bps,
        rtt_s=config.rtt_s,
        buffer_bytes=config.buffer_bytes,
        loss_rate=config.loss_rate,
        noise=config.make_noise(),
        reverse_noise=config.make_reverse_noise(),
        rng=rng,
    )
    sessions = []
    for i, video in enumerate(videos):
        sender = make_sender(protocol, seed=seed * 100 + i)
        flow = dumbbell.add_flow(sender, flow_id=i + 1, chunked=True)
        level = forced_level
        if level is not None and level < 0:
            level = len(video.bitrates_bps) + level
        sessions.append(StreamingSession(sim, flow, video, forced_level=level))
    if background:
        for j, spec in enumerate(background):
            sender = make_sender(spec.protocol, seed=seed * 100 + 50 + j, **spec.kwargs)
            dumbbell.add_flow(
                sender,
                flow_id=100 + j,
                size_bytes=spec.size_bytes,
                start_time=spec.start_time,
            )
    sim.run(until=duration_s)
    return [
        StreamingResult(
            video_name=s.video.name,
            average_bitrate_mbps=s.average_bitrate_bps() / 1e6,
            rebuffer_ratio=s.rebuffer_ratio(),
            chunks_delivered=len(s.chunks),
            startup_delay_s=s.playback.startup_delay_s,
        )
        for s in sessions
    ]


def run_homogeneous(
    protocol: str,
    n_flows: int,
    config: LinkConfig,
    *legacy,
    stagger_s: float = _UNSET,  # type: ignore[assignment]
    measure_s: float = _UNSET,  # type: ignore[assignment]
    seed: int = _UNSET,  # type: ignore[assignment]
    timeline: Timeline | None = _UNSET,  # type: ignore[assignment]
    tracer=None,
    metrics: MetricsRegistry | None = None,
    fidelity: Fidelity | str | None = None,
    topology: TopologySpec | None = None,
) -> RunResult:
    """``n`` same-protocol flows with staggered starts (Figs 5, 17, 18)."""
    values = {
        "stagger_s": stagger_s,
        "measure_s": measure_s,
        "seed": seed,
        "timeline": timeline,
    }
    _apply_legacy_positional(
        "run_homogeneous",
        legacy,
        ("stagger_s", "measure_s", "seed", "timeline"),
        values,
    )
    stagger_s = _resolve(values["stagger_s"], 5.0)
    measure_s = _resolve(values["measure_s"], 30.0)
    seed = _resolve(values["seed"], 1)
    timeline = _resolve(values["timeline"], None)
    if n_flows < 1:
        raise ValueError("n_flows must be positive")
    specs = [
        FlowSpec(protocol, start_time=i * stagger_s) for i in range(n_flows)
    ]
    duration = (n_flows - 1) * stagger_s + measure_s
    return run_flows(
        specs,
        config,
        duration_s=duration,
        seed=seed,
        timeline=timeline,
        tracer=tracer,
        metrics=metrics,
        fidelity=fidelity,
        topology=topology,
    )


def run_many(
    primary: str,
    scavenger: str,
    config: LinkConfig,
    *,
    n_flows: int = 1000,
    n_scavengers: int = 4,
    flow_kb: float = 50.0,
    duration_s: float = _UNSET,  # type: ignore[assignment]
    seed: int = _UNSET,  # type: ignore[assignment]
    topology: TopologySpec | None = _UNSET,  # type: ignore[assignment]
    tracer=None,
    metrics: MetricsRegistry | None = None,
    fidelity: Fidelity | str | None = None,
    max_events: int | None = None,
    max_wall_s: float | None = None,
) -> RunResult:
    """Many short primary flows against a few long-lived scavengers.

    The datacenter-ish stress shape: ``n_flows`` short ``primary``
    transfers (default ~50 KB, roughly a web object) arrive at uniform
    random times across the run while ``n_scavengers`` unbounded
    ``scavenger`` flows occupy the same shared core from t=0.  Default
    topology is the ``shared-core`` multi-dumbbell preset, so arrivals
    spread across access groups via the topology's per-index default
    endpoints.

    Arrival times come from a dedicated ``Rng("many:<seed>")`` stream —
    they are part of the flow specs, hence deterministic per seed and
    fully captured by the cache key.  Delegates to :func:`run_flows`
    for caching, observability, and jobs parity.
    """
    duration_s = _resolve(duration_s, 30.0)
    seed = _resolve(seed, 1)
    topology = _resolve(topology, TOPOLOGIES["shared-core"]())
    if n_flows < 1:
        raise ValueError("n_flows must be positive")
    if n_scavengers < 0:
        raise ValueError("n_scavengers must be non-negative")
    arrivals = Rng(f"many:{seed}")
    specs = [
        FlowSpec(scavenger, start_time=0.0) for _ in range(n_scavengers)
    ]
    # Leave the tail 20% of the run free of new arrivals so late flows
    # still have a chance to complete inside the measured window.
    spacing = 0.8 * duration_s / n_flows
    specs.extend(
        FlowSpec(
            primary,
            start_time=(i + arrivals.random()) * spacing,
            size_bytes=int(flow_kb * 1e3),
        )
        for i in range(n_flows)
    )
    return run_flows(
        specs,
        config,
        duration_s=duration_s,
        seed=seed,
        topology=topology,
        tracer=tracer,
        metrics=metrics,
        fidelity=fidelity,
        max_events=max_events,
        max_wall_s=max_wall_s,
    )
