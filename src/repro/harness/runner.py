"""Experiment execution: build a dumbbell, run flows, collect metrics.

This is the Pantheon stand-in: a declarative flow list goes in, per-flow
stats and scenario-level summaries come out.  Every run is deterministic
given its seed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..protocols import make_sender
from ..sim import Dumbbell, FlowStats, Simulator, make_rng
from .scenarios import LinkConfig

DEFAULT_WARMUP_FRACTION = 0.35


def scale() -> float:
    """Global duration multiplier (env ``REPRO_SCALE``, default 1).

    Benchmarks use scaled-down durations; set ``REPRO_SCALE=4`` or more to
    approach paper-scale runs.
    """
    return float(os.environ.get("REPRO_SCALE", "1"))


@dataclass
class FlowSpec:
    """Declarative description of one flow in an experiment."""

    protocol: str
    start_time: float = 0.0
    size_bytes: int | None = None
    kwargs: dict = field(default_factory=dict)


@dataclass
class RunResult:
    """Outcome of one experiment run."""

    config: LinkConfig
    duration_s: float
    stats: list[FlowStats]
    dumbbell: Dumbbell
    specs: list[FlowSpec]

    def measurement_window(self) -> tuple[float, float]:
        """Post-warmup window: after the last flow started plus ramp-up."""
        last_start = max(spec.start_time for spec in self.specs)
        remaining = self.duration_s - last_start
        t0 = last_start + DEFAULT_WARMUP_FRACTION * remaining
        return t0, self.duration_s

    def throughput_mbps(self, index: int, window: tuple[float, float] | None = None) -> float:
        t0, t1 = window if window is not None else self.measurement_window()
        return self.stats[index].throughput_bps(t0, t1) / 1e6

    def throughputs_mbps(self, window: tuple[float, float] | None = None) -> list[float]:
        return [self.throughput_mbps(i, window) for i in range(len(self.stats))]

    def utilization(self, window: tuple[float, float] | None = None) -> float:
        return sum(self.throughputs_mbps(window)) / self.config.bandwidth_mbps


def run_flows(
    specs: list[FlowSpec],
    config: LinkConfig,
    duration_s: float,
    seed: int = 1,
) -> RunResult:
    """Run ``specs`` over a dumbbell built from ``config``."""
    if not specs:
        raise ValueError("need at least one flow")
    sim = Simulator()
    rng = make_rng(seed)
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=config.bandwidth_bps,
        rtt_s=config.rtt_s,
        buffer_bytes=config.buffer_bytes,
        loss_rate=config.loss_rate,
        noise=config.make_noise(),
        reverse_noise=config.make_reverse_noise(),
        rng=rng,
    )
    stats: list[FlowStats] = []
    for i, spec in enumerate(specs):
        sender = make_sender(spec.protocol, seed=seed * 1000 + i, **spec.kwargs)
        flow = dumbbell.add_flow(
            sender,
            flow_id=i + 1,
            size_bytes=spec.size_bytes,
            start_time=spec.start_time,
        )
        stats.append(flow.stats)
    sim.run(until=duration_s)
    return RunResult(config, duration_s, stats, dumbbell, specs)


# ----------------------------------------------------------------------
# Paper-shaped experiment helpers
# ----------------------------------------------------------------------
def run_single(
    protocol: str,
    config: LinkConfig,
    duration_s: float = 30.0,
    seed: int = 1,
    **kwargs,
) -> RunResult:
    """One flow alone on the bottleneck (Figs 3, 4, 9)."""
    return run_flows(
        [FlowSpec(protocol, kwargs=kwargs)], config, duration_s, seed=seed
    )


@dataclass
class PairResult:
    """Two-flow scavenger-vs-primary outcome (Figs 6-8, 10, 19-22)."""

    primary_solo_mbps: float
    primary_with_scavenger_mbps: float
    scavenger_mbps: float
    primary_throughput_ratio: float
    utilization: float
    primary_rtt_ratio_95th: float


def run_pair(
    primary: str,
    scavenger: str,
    config: LinkConfig,
    duration_s: float = 30.0,
    scavenger_start_s: float | None = None,
    seed: int = 1,
) -> PairResult:
    """Primary flow joined by a scavenger; compares against the solo run.

    The paper's metrics: primary throughput ratio (paired throughput over
    solo throughput), joint capacity utilization, and the 95th-percentile
    RTT ratio of the primary with vs without the scavenger (Fig 7).
    """
    if scavenger_start_s is None:
        scavenger_start_s = min(5.0, duration_s / 6.0)
    solo = run_single(primary, config, duration_s, seed=seed)
    paired = run_flows(
        [
            FlowSpec(primary, start_time=0.0),
            FlowSpec(scavenger, start_time=scavenger_start_s),
        ],
        config,
        duration_s,
        seed=seed,
    )
    window = paired.measurement_window()
    solo_mbps = solo.throughput_mbps(0, window)
    with_scavenger = paired.throughput_mbps(0, window)
    scavenger_mbps = paired.throughput_mbps(1, window)
    ratio = with_scavenger / solo_mbps if solo_mbps > 0 else 0.0
    solo_rtt = solo.stats[0].rtt_percentile(95, *window)
    paired_rtt = paired.stats[0].rtt_percentile(95, *window)
    return PairResult(
        primary_solo_mbps=solo_mbps,
        primary_with_scavenger_mbps=with_scavenger,
        scavenger_mbps=scavenger_mbps,
        primary_throughput_ratio=ratio,
        utilization=paired.utilization(window),
        primary_rtt_ratio_95th=paired_rtt / solo_rtt,
    )


@dataclass
class StreamingResult:
    """Per-session QoE metrics from a streaming experiment."""

    video_name: str
    average_bitrate_mbps: float
    rebuffer_ratio: float
    chunks_delivered: int
    startup_delay_s: float | None


def run_streaming(
    videos,
    protocol: str,
    config: LinkConfig,
    duration_s: float = 60.0,
    forced_level: int | None = None,
    background: list[FlowSpec] | None = None,
    seed: int = 1,
) -> list[StreamingResult]:
    """Stream ``videos`` concurrently over ``protocol`` (Figs 11a, 12, 13).

    Each video gets its own chunked flow and
    :class:`~repro.apps.streaming.StreamingSession`; optional background
    flows (e.g. a scavenger) share the bottleneck.
    """
    from ..apps.streaming import StreamingSession

    sim = Simulator()
    rng = make_rng(seed)
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=config.bandwidth_bps,
        rtt_s=config.rtt_s,
        buffer_bytes=config.buffer_bytes,
        loss_rate=config.loss_rate,
        noise=config.make_noise(),
        reverse_noise=config.make_reverse_noise(),
        rng=rng,
    )
    sessions = []
    for i, video in enumerate(videos):
        sender = make_sender(protocol, seed=seed * 100 + i)
        flow = dumbbell.add_flow(sender, flow_id=i + 1, chunked=True)
        level = forced_level
        if level is not None and level < 0:
            level = len(video.bitrates_bps) + level
        sessions.append(StreamingSession(sim, flow, video, forced_level=level))
    if background:
        for j, spec in enumerate(background):
            sender = make_sender(spec.protocol, seed=seed * 100 + 50 + j, **spec.kwargs)
            dumbbell.add_flow(
                sender,
                flow_id=100 + j,
                size_bytes=spec.size_bytes,
                start_time=spec.start_time,
            )
    sim.run(until=duration_s)
    return [
        StreamingResult(
            video_name=s.video.name,
            average_bitrate_mbps=s.average_bitrate_bps() / 1e6,
            rebuffer_ratio=s.rebuffer_ratio(),
            chunks_delivered=len(s.chunks),
            startup_delay_s=s.playback.startup_delay_s,
        )
        for s in sessions
    ]


def run_homogeneous(
    protocol: str,
    n_flows: int,
    config: LinkConfig,
    stagger_s: float = 5.0,
    measure_s: float = 30.0,
    seed: int = 1,
) -> RunResult:
    """``n`` same-protocol flows with staggered starts (Figs 5, 17, 18)."""
    if n_flows < 1:
        raise ValueError("n_flows must be positive")
    specs = [
        FlowSpec(protocol, start_time=i * stagger_s) for i in range(n_flows)
    ]
    duration = (n_flows - 1) * stagger_s + measure_s
    return run_flows(specs, config, duration, seed=seed)
