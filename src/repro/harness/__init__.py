"""Experiment harness: scenario definitions, runners, and reporting."""

from .cache import ResultCache, disable_cache, enable_cache, source_digest
from .export import (
    run_result_summary,
    write_csv,
    write_run_json,
    write_throughput_series_csv,
)
from .parallel import ParallelExecutor, default_jobs, pmap
from .plots import cdf_plot, sparkline, timeseries_plot
from .report import format_cdf, format_table, print_table
from .trials import TrialSummary, run_trials, run_trials_multi, summarize
from .runner import (
    FlowSpec,
    PairResult,
    RunResult,
    StreamingResult,
    reset_scale_cache,
    run_flows,
    run_homogeneous,
    run_pair,
    run_single,
    run_streaming,
    scale,
)
from .scenarios import (
    EMULAB_DEFAULT,
    EMULAB_SHALLOW,
    FIG2_LINK,
    PRIMARY_PROTOCOLS,
    SCAVENGER_PROTOCOLS,
    LinkConfig,
    config_matrix,
    wifi_sites,
)

__all__ = [
    "EMULAB_DEFAULT",
    "EMULAB_SHALLOW",
    "FIG2_LINK",
    "FlowSpec",
    "LinkConfig",
    "PRIMARY_PROTOCOLS",
    "PairResult",
    "ParallelExecutor",
    "ResultCache",
    "RunResult",
    "SCAVENGER_PROTOCOLS",
    "StreamingResult",
    "TrialSummary",
    "cdf_plot",
    "config_matrix",
    "default_jobs",
    "disable_cache",
    "enable_cache",
    "sparkline",
    "source_digest",
    "timeseries_plot",
    "pmap",
    "reset_scale_cache",
    "run_trials",
    "run_trials_multi",
    "summarize",
    "run_streaming",
    "format_cdf",
    "format_table",
    "print_table",
    "run_flows",
    "run_homogeneous",
    "run_pair",
    "run_result_summary",
    "run_single",
    "scale",
    "wifi_sites",
    "write_csv",
    "write_run_json",
    "write_throughput_series_csv",
]
