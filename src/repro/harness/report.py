"""Paper-style plain-text reporting for benchmark output."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> None:
    print()
    print(format_table(headers, rows, title))


def format_cdf(
    label: str, points: Sequence[tuple[float, float]], quantiles=(0.1, 0.25, 0.5, 0.75, 0.9)
) -> str:
    """Summarise a CDF by its quantiles (the paper reads medians off CDFs)."""
    if not points:
        raise ValueError("empty CDF")
    values = [v for v, _ in points]
    rows = []
    for q in quantiles:
        index = min(len(values) - 1, int(q * len(values)))
        rows.append(f"p{int(q * 100):02d}={values[index]:.3f}")
    return f"{label}: " + "  ".join(rows)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
