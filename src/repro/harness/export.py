"""Result export: CSV/JSON writers for experiment outputs.

Benchmarks print paper-style tables; downstream users usually want the
raw series for their own plotting.  These helpers serialise
:class:`~repro.harness.runner.RunResult` objects and plain row tables
without pulling in any plotting dependency.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Sequence
from pathlib import Path

from .runner import RunResult


def write_csv(
    path: str | Path, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    """Write a simple headers+rows table as CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            if len(row) != len(headers):
                raise ValueError("row width does not match headers")
            writer.writerow(row)


def run_result_summary(result: RunResult) -> dict:
    """JSON-serialisable summary of a run (per-flow aggregates)."""
    window = result.measurement_window()
    flows = []
    for i, stats in enumerate(result.stats):
        entry = {
            "flow_id": stats.flow_id,
            "protocol": result.specs[i].protocol,
            "start_time_s": result.specs[i].start_time,
            "throughput_mbps": result.throughput_mbps(i, window),
            "packets_sent": stats.packets_sent,
            "losses": stats.loss_count(),
            "delivered_bytes": stats.delivered_bytes,
        }
        rtts = stats.rtt_samples(*window)
        if rtts:
            entry["min_rtt_ms"] = min(rtts) * 1e3
            entry["p95_rtt_ms"] = stats.rtt_percentile(95, *window) * 1e3
        flows.append(entry)
    summary = {
        "config": {
            "bandwidth_mbps": result.config.bandwidth_mbps,
            "rtt_ms": result.config.rtt_ms,
            "buffer_kb": result.config.buffer_kb,
            "loss_rate": result.config.loss_rate,
            "label": result.config.label,
        },
        "duration_s": result.duration_s,
        "measurement_window_s": list(window),
        "utilization": result.utilization(window),
        "flows": flows,
    }
    if result.topology is not None:
        summary["topology"] = result.topology.to_dict()
    if result.dumbbell is not None:
        # Per-hop drop accounting (live runs only — a cache-rebuilt
        # result has no link objects; its metrics snapshot carries the
        # same counters).
        summary["links"] = [
            {
                "link": link.name,
                "node": link.node,
                "offered": link.stats.offered,
                "delivered": link.stats.delivered,
                "tail_drops": link.stats.tail_drops,
                "aqm_drops": link.stats.aqm_drops,
                "random_losses": link.stats.random_losses,
                "max_backlog_bytes": link.stats.max_backlog_bytes,
            }
            for link in result.dumbbell.iter_links()
        ]
    if result.timeline is not None:
        summary["timeline"] = result.timeline.to_dict()
        summary["link_events"] = [
            {
                "time_s": event.time_s,
                "link": event.link,
                "kind": event.kind,
                "value": list(event.value),
                "description": event.describe(),
            }
            for event in result.link_events
        ]
    return summary


def write_run_json(path: str | Path, result: RunResult) -> None:
    """Serialise a run summary to JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(run_result_summary(result), indent=2))


def write_result_json(path: str | Path, result) -> None:
    """Serialise *any* :class:`~repro.harness.results.Result` to JSON.

    Works uniformly for run, pair, and streaming outcomes via the
    ``Result`` protocol's ``to_dict()`` (the ``"kind"`` discriminator
    tells readers which shape they are holding); this is the generic
    exporter the unified results API replaces per-type writers with.
    """
    from .results import Result

    if not isinstance(result, Result):
        raise TypeError(
            f"{type(result).__name__} does not satisfy the Result protocol"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result.to_dict(), indent=2, sort_keys=True))


def write_throughput_series_csv(
    path: str | Path, result: RunResult, bin_s: float = 1.0
) -> None:
    """Per-flow binned throughput series, long format (flow, time, mbps)."""
    rows: list[tuple[object, ...]] = []
    for i, stats in enumerate(result.stats):
        for t, mbps in stats.throughput_series(bin_s, 0.0, result.duration_s):
            rows.append((result.specs[i].protocol, stats.flow_id, f"{t:.3f}", f"{mbps:.4f}"))
    write_csv(path, ["protocol", "flow_id", "time_s", "throughput_mbps"], rows)
