"""The unified ``Result`` protocol all experiment outcomes satisfy.

The ``run_*`` entry points historically returned three unrelated shapes
(:class:`~repro.harness.runner.RunResult`,
:class:`~repro.harness.runner.PairResult`,
:class:`~repro.harness.runner.StreamingResult`), and every exporter,
cache adapter, and report grew three special cases.  This module defines
the one contract they all share:

* ``summary()`` — a flat JSON-safe dict of the headline numbers;
* ``to_dict()`` — the full serialisable record, always carrying a
  ``"kind"`` discriminator (``"run"`` / ``"pair"`` / ``"streaming"``);
* ``metrics`` — a metrics snapshot in the canonical
  :meth:`repro.obs.MetricsRegistry.snapshot` shape
  (``{"counters": ..., "gauges": ..., "histograms": ...}``), so
  observability consumers read every result type identically.

The protocol is ``runtime_checkable``: conformance tests (and defensive
callers) can ``isinstance(result, Result)``.
"""

from __future__ import annotations

from typing import Any, Mapping, Protocol, runtime_checkable


@runtime_checkable
class Result(Protocol):
    """Common surface of every experiment result."""

    def summary(self) -> dict: ...

    def to_dict(self) -> dict: ...

    @property
    def metrics(self) -> Mapping[str, Any]: ...


def synthesize_snapshot(
    gauges: Mapping[str, float | None] | None = None,
    counters: Mapping[str, int] | None = None,
) -> dict[str, Any]:
    """A canonical metrics snapshot from plain scalar fields.

    Result types that do not run a live :class:`~repro.obs.MetricsRegistry`
    (pair and streaming outcomes are derived aggregates) synthesize their
    ``metrics`` view with this, keeping the snapshot shape — and key
    ordering — identical to a real registry's.
    """
    return {
        "counters": {key: counters[key] for key in sorted(counters)} if counters else {},
        "gauges": {key: gauges[key] for key in sorted(gauges)} if gauges else {},
        "histograms": {},
    }
