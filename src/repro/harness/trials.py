"""Multi-trial experiment statistics.

The paper reports "the mean of at least 10 trials in each scenario" and
medians of 4 trials for the Internet tests.  This module runs any
experiment function across seeds and summarises the distribution,
including a bootstrap confidence interval so benchmark shape claims can
be checked against sampling noise rather than a single draw.

Long sweeps can run *supervised*: pass ``manifest=`` (and optionally a
:class:`~repro.harness.supervise.RetryPolicy`) to journal every
completed trial to an append-only checkpoint and resume after an
interruption, or call :func:`run_trials_supervised` for the raw
per-trial :class:`~repro.harness.supervise.TrialOutcome` records.  See
``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..core.rng import Rng
from .parallel import pmap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .supervise import RetryPolicy, SweepManifest, TrialOutcome


@dataclass(frozen=True)
class TrialSummary:
    """Distribution summary of one scalar metric across trials."""

    n: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    ci_low: float  # bootstrap 95% CI of the mean
    ci_high: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"mean={self.mean:.3f} +/- [{self.ci_low:.3f}, {self.ci_high:.3f}] "
            f"(median {self.median:.3f}, n={self.n})"
        )


def summarize(values: Sequence[float], ci_resamples: int = 2000, seed: int = 0) -> TrialSummary:
    """Summarise trial outcomes with a bootstrap CI of the mean."""
    if not values:
        raise ValueError("no trial values")
    ordered = sorted(values)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((v - mean) ** 2 for v in ordered) / n
    if n == 1:
        ci_low = ci_high = mean
    else:
        rng = Rng(seed)
        # One rng.choices() call per resample draws all n indices in a
        # single pass (C-level loop) instead of a per-element Python
        # randrange comprehension — ~4x faster at the default 2000
        # resamples.  Note choices() consumes the RNG stream differently
        # from randrange(), so the CI values for a given seed changed
        # with this rewrite (pinned by the regression test).
        choices = rng.choices
        inv_n = 1.0 / n
        means = [sum(choices(ordered, k=n)) * inv_n for _ in range(ci_resamples)]
        means.sort()
        ci_low = means[int(0.025 * ci_resamples)]
        ci_high = means[int(0.975 * ci_resamples)]
    mid = n // 2
    median = ordered[mid] if n % 2 else 0.5 * (ordered[mid - 1] + ordered[mid])
    return TrialSummary(
        n=n,
        mean=mean,
        median=median,
        std=math.sqrt(variance),
        minimum=ordered[0],
        maximum=ordered[-1],
        ci_low=ci_low,
        ci_high=ci_high,
    )


def run_trials_supervised(
    experiment: Callable[[int], Any],
    n_trials: int = 10,
    base_seed: int = 1,
    jobs: int | None = None,
    policy: "RetryPolicy | None" = None,
    manifest: "str | Path | SweepManifest | None" = None,
) -> "list[TrialOutcome]":
    """Run ``experiment(seed)`` under supervision; one outcome per seed.

    A raising, livelocked, or worker-killing trial becomes a structured
    failure record instead of aborting its siblings; with ``manifest``
    set, completed trials are journaled and skipped on re-run (resume).
    See :mod:`repro.harness.supervise`.
    """
    from .supervise import supervised_map, trial_payload

    if n_trials < 1:
        raise ValueError("n_trials must be positive")
    seeds = [base_seed + i for i in range(n_trials)]
    payloads = [trial_payload(experiment, seed) for seed in seeds]
    return supervised_map(
        experiment,
        seeds,
        payloads=payloads,
        seeds=seeds,
        jobs=jobs,
        policy=policy,
        manifest=manifest,
    )


def _count_outcomes(registry, outcomes: "list[TrialOutcome]") -> None:
    """Increment ``trials.<status>`` counters on a metrics registry."""
    for outcome in outcomes:
        registry.counter("trials.total").inc()
        registry.counter("trials.by_status", status=outcome.status).inc()
        if outcome.resumed:
            registry.counter("trials.resumed").inc()


def run_trials(
    experiment: Callable[[int], float],
    n_trials: int = 10,
    base_seed: int = 1,
    jobs: int | None = None,
    policy: "RetryPolicy | None" = None,
    manifest: "str | Path | SweepManifest | None" = None,
    metrics=None,
) -> TrialSummary:
    """Run ``experiment(seed)`` for ``n_trials`` seeds and summarise.

    Seeded runs are independent, so they fan out across a process pool
    (``jobs``, default ``REPRO_JOBS``/CPU count); results are collected
    in seed order, so the summary is identical to a serial run.
    Unpicklable experiments (closures) transparently run serially.

    Passing ``manifest`` and/or ``policy`` routes through the supervised
    executor: completed trials are checkpointed (and skipped on resume)
    and failing trials are retried, then *excluded* from the summary —
    ``summarize`` raises ``ValueError("no trial values")`` only if every
    trial failed.  Use :func:`run_trials_supervised` to inspect the
    failures themselves.

    ``metrics`` (a :class:`~repro.obs.MetricsRegistry`) accumulates
    ``trials.total`` / ``trials.by_status{status=...}`` /
    ``trials.resumed`` counters across calls — sweep drivers hand one
    registry to every ``run_trials`` call and read a single snapshot.
    """
    if n_trials < 1:
        raise ValueError("n_trials must be positive")
    if policy is not None or manifest is not None:
        outcomes = run_trials_supervised(
            experiment, n_trials, base_seed, jobs=jobs, policy=policy, manifest=manifest
        )
        if metrics is not None:
            _count_outcomes(metrics, outcomes)
        return summarize([o.value for o in outcomes if o.ok])
    seeds = [base_seed + i for i in range(n_trials)]
    values = pmap(experiment, seeds, jobs=jobs)
    if metrics is not None:
        from .supervise import STATUS_OK, TrialOutcome

        _count_outcomes(
            metrics,
            [TrialOutcome(status=STATUS_OK, key="") for _ in values],
        )
    return summarize(values)


def run_trials_multi(
    experiment: Callable[[int], dict[str, float]],
    n_trials: int = 10,
    base_seed: int = 1,
    jobs: int | None = None,
    policy: "RetryPolicy | None" = None,
    manifest: "str | Path | SweepManifest | None" = None,
) -> dict[str, TrialSummary]:
    """As :func:`run_trials` for experiments returning several metrics."""
    if n_trials < 1:
        raise ValueError("n_trials must be positive")
    if policy is not None or manifest is not None:
        supervised = run_trials_supervised(
            experiment, n_trials, base_seed, jobs=jobs, policy=policy, manifest=manifest
        )
        outcomes = [o.value for o in supervised if o.ok]
    else:
        seeds = [base_seed + i for i in range(n_trials)]
        outcomes = pmap(experiment, seeds, jobs=jobs)
    collected: dict[str, list[float]] = {}
    for outcome in outcomes:
        for key, value in outcome.items():
            collected.setdefault(key, []).append(value)
    return {key: summarize(values) for key, values in collected.items()}
