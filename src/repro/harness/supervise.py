"""Fault-tolerant, resumable trial execution.

The paper's evaluation is a large scenario x seed matrix ("the mean of
at least 10 trials in each scenario", 22 figures), and PR 3 made
pathological simulations — outages, Gilbert-Elliott burst loss — a
first-class workload.  Running thousands of such trials unattended
means individual trials *will* misbehave: a protocol bug livelocks the
engine, a worker process dies, a poisoned input raises.  Before this
module, any one of those aborted the whole sweep and threw away every
completed trial.

Three layers fix that:

* **Supervision** — every trial ends in a :class:`TrialOutcome`
  (``ok`` / ``failed`` / ``timed-out`` / ``crashed-worker``) carrying the
  seed, the canonical config payload, the error repr and traceback, and
  the attempt count.  A failure is a *record*, not an abort.
* **Retry with crash recovery** — :func:`supervised_map` fans trials
  over a process pool like :class:`~repro.harness.parallel.ParallelExecutor`,
  but a ``BrokenProcessPool`` or worker exception only fails the
  affected items: they are retried on a fresh pool with capped
  exponential backoff (seeded jitter via :class:`repro.core.rng.Rng` —
  no wall-clock reads in the decision path) and, if still failing,
  re-run once serially in-process so the real traceback is captured.
  Items whose workers *crashed* (SIGKILL, ``os._exit``) are never
  re-run in-process — a crashing input must not take the driver down —
  and surface as ``crashed-worker`` outcomes instead.
* **Checkpoint/resume** — outcomes are journaled to a
  :class:`SweepManifest`: an append-only JSONL file keyed by the result
  cache's content address (:func:`repro.harness.cache.payload_key`,
  float-hex exact).  Re-running a sweep against an existing manifest
  skips every ``ok`` entry and re-attempts only failures, so a killed
  two-hour figure run resumes as a two-minute top-up.  Torn trailing
  lines (the driver was killed mid-append) are skipped on load; each
  append is a single flushed+fsynced write so at most the final line
  can be torn.

Retry depth defaults to the ``REPRO_TRIAL_RETRIES`` environment
variable (see :class:`RetryPolicy`); engine watchdog budgets
(``REPRO_MAX_EVENTS``, :class:`repro.sim.engine.SimBudgetExceeded`)
turn livelocks into ``timed-out`` outcomes.  See ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import json
import os
import time
import traceback as traceback_mod
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

from ..sim.engine import SimBudgetExceeded
from ..core.rng import Rng
from .cache import hex_floats, payload_key
from .parallel import (
    ParallelCallError,
    _init_worker,
    _is_picklable,
    call_repr,
    default_jobs,
)

MANIFEST_SCHEMA = 1

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMED_OUT = "timed-out"
STATUS_CRASHED = "crashed-worker"


# ----------------------------------------------------------------------
# Wrapped future.result() — the only module allowed to call it bare
# (enforced by the ``no-bare-subprocess-result`` lint rule).
# ----------------------------------------------------------------------
def pool_map_result(future, fn: Callable, item: Any) -> Any:
    """Result of a :meth:`ParallelExecutor.map` future.

    Mid-stream pickling failures — an item deeper in the stream that
    cannot cross the process boundary — degrade to an in-process call
    for that item alone.  Genuine worker exceptions re-raise unchanged,
    keeping the pool path byte-compatible with the serial comprehension.
    """
    try:
        return future.result()
    except Exception:
        if _is_picklable(item):
            raise
        return fn(item)


def pool_call_result(future, index: int, fn: Callable, args: tuple) -> Any:
    """Result of a :meth:`ParallelExecutor.run_all` future.

    Worker exceptions are wrapped in
    :class:`~repro.harness.parallel.ParallelCallError` carrying the call
    index and repr (original chained as ``__cause__``); an unpicklable
    call runs in-process instead.
    """
    try:
        return future.result()
    except Exception as exc:
        if not _is_picklable((fn, args)):
            return fn(*args)
        raise ParallelCallError(
            f"run_all call #{index} ({call_repr(fn, args)}) raised {exc!r}",
            index=index,
        ) from exc


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
def default_retries() -> int:
    """Retry count from ``REPRO_TRIAL_RETRIES`` (default 2)."""
    raw = os.environ.get("REPRO_TRIAL_RETRIES", "").strip()
    if not raw:
        return 2
    try:
        retries = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_TRIAL_RETRIES must be an integer, got {raw!r}"
        ) from exc
    if retries < 0:
        raise ValueError(f"REPRO_TRIAL_RETRIES must be >= 0, got {retries}")
    return retries


@dataclass(frozen=True)
class RetryPolicy:
    """How failed trials are retried.

    ``retries`` is the number of *re*-attempts after the first try
    (``None`` reads ``REPRO_TRIAL_RETRIES``, default 2).  Backoff before
    re-attempt ``k`` is ``min(cap, base * factor**(k-1))`` scaled by a
    seeded jitter draw in ``[1-jitter, 1+jitter]`` — fully deterministic
    given (seed, item index, attempt), with no wall-clock read anywhere
    in the decision path (the host clock is only *slept on*, never
    branched on).

    ``final_serial`` controls the last-resort in-process re-run of items
    that still fail after pool retries: it yields a real traceback for
    the failure record.  It never applies to ``crashed-worker`` items —
    re-running an input that SIGKILLs its process would kill the driver.

    ``trace_ring`` (when > 0) attaches a
    :class:`~repro.obs.RingBufferTracer` of that capacity around every
    *in-process* attempt, so a failing or timed-out trial's outcome
    carries the last N trace events before the failure (the flight
    recorder — see ``docs/OBSERVABILITY.md``).  Pool workers cannot
    stream into the driver's ring, so the capture happens on the serial
    paths, which is exactly where final failure records are produced.
    """

    retries: int | None = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap_s: float = 2.0
    jitter_fraction: float = 0.25
    seed: int = 0
    final_serial: bool = True
    trace_ring: int = 0

    def max_attempts(self) -> int:
        return 1 + (default_retries() if self.retries is None else self.retries)

    def backoff_s(self, attempt: int, index: int) -> float:
        """Deterministic pause before re-attempting after ``attempt`` failures."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        base = min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter_fraction <= 0:
            return base
        rng = Rng(f"supervise-backoff:{self.seed}:{index}:{attempt}")
        return base * rng.uniform(1.0 - self.jitter_fraction, 1.0 + self.jitter_fraction)


# ----------------------------------------------------------------------
# Trial outcomes and their exact-value journal encoding
# ----------------------------------------------------------------------
def encode_value(value: Any) -> Any:
    """Tagged JSON encoding of a trial value; floats via ``float.hex()``.

    The tag removes ambiguity between a string that *looks* like a hex
    float and an actual float, so a manifest round-trip is exact —
    resumed trials are byte-identical to recomputed ones.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return ["v", value]
    if isinstance(value, float):
        return ["f", value.hex()]
    if isinstance(value, dict):
        return ["d", {key: encode_value(item) for key, item in value.items()}]
    if isinstance(value, (list, tuple)):
        return ["l", [encode_value(item) for item in value]]
    raise TypeError(
        f"cannot journal a trial value of type {type(value).__name__}; "
        "supervised experiments must return JSON-able scalars/dicts/lists"
    )


def decode_value(encoded: Any) -> Any:
    """Inverse of :func:`encode_value` (floats bit-exact)."""
    tag, data = encoded
    if tag == "v":
        return data
    if tag == "f":
        return float.fromhex(data)
    if tag == "d":
        return {key: decode_value(item) for key, item in data.items()}
    if tag == "l":
        return [decode_value(item) for item in data]
    raise ValueError(f"unknown value tag {tag!r}")


@dataclass
class TrialOutcome:
    """The supervised result of one trial — success or structured failure.

    ``status`` is one of ``ok``, ``failed`` (the experiment raised),
    ``timed-out`` (the engine watchdog tripped —
    :class:`~repro.sim.engine.SimBudgetExceeded`), or ``crashed-worker``
    (the worker process died).  ``payload`` is the canonical config
    payload the manifest key was derived from; ``resumed`` marks an
    outcome rebuilt from a manifest rather than recomputed.  ``trace``
    holds the last trace events before a failure when the policy's
    ``trace_ring`` flight recorder was on (event dicts in emit order).
    """

    status: str
    key: str
    value: Any = None
    seed: int | None = None
    payload: dict | None = None
    error: str | None = None
    traceback: str | None = None
    attempts: int = 0
    resumed: bool = False
    trace: list[dict] | None = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_record(self) -> dict:
        """JSON-safe manifest line (exact float round-trip)."""
        return {
            "schema": MANIFEST_SCHEMA,
            "key": self.key,
            "status": self.status,
            "seed": self.seed,
            "payload": hex_floats(self.payload),
            "value": None if self.value is None else encode_value(self.value),
            "error": self.error,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "trace": self.trace,
        }

    @classmethod
    def from_record(cls, record: dict) -> "TrialOutcome":
        value = record.get("value")
        return cls(
            status=record["status"],
            key=record["key"],
            value=None if value is None else decode_value(value),
            seed=record.get("seed"),
            payload=record.get("payload"),
            error=record.get("error"),
            traceback=record.get("traceback"),
            attempts=record.get("attempts", 0),
            resumed=True,
            trace=record.get("trace"),
        )


def summarize_outcomes(outcomes: Iterable[TrialOutcome]) -> dict:
    """Counts by status plus how many were resumed from a manifest."""
    counts = {
        STATUS_OK: 0,
        STATUS_FAILED: 0,
        STATUS_TIMED_OUT: 0,
        STATUS_CRASHED: 0,
        "resumed": 0,
        "total": 0,
    }
    for outcome in outcomes:
        counts["total"] += 1
        counts[outcome.status] = counts.get(outcome.status, 0) + 1
        if outcome.resumed:
            counts["resumed"] += 1
    return counts


# ----------------------------------------------------------------------
# The sweep manifest: append-only JSONL checkpoint
# ----------------------------------------------------------------------
class SweepManifest:
    """Append-only JSONL journal of :class:`TrialOutcome` records.

    One JSON object per line, keyed by the content-addressed trial key.
    Appends are a single flushed + fsynced write, so a killed driver can
    tear at most the final line; :meth:`load` skips unparseable lines
    (counted in ``torn_lines``) and lets later records win over earlier
    ones under the same key, so re-attempted failures supersede their
    old entries without rewriting the file.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.torn_lines = 0

    def load(self) -> dict[str, dict]:
        """Key -> latest record.  Missing file = empty manifest."""
        records: dict[str, dict] = {}
        self.torn_lines = 0
        try:
            text = self.path.read_text()
        except OSError:
            return records
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self.torn_lines += 1  # killed mid-append: skip the torn line
                continue
            if (
                not isinstance(record, dict)
                or record.get("schema") != MANIFEST_SCHEMA
                or not isinstance(record.get("key"), str)
            ):
                self.torn_lines += 1
                continue
            records[record["key"]] = record
        return records

    def completed_keys(self) -> set[str]:
        """Keys whose latest record is ``ok`` (skipped on resume)."""
        return {
            key
            for key, record in self.load().items()
            if record.get("status") == STATUS_OK
        }

    def append(self, outcome: TrialOutcome) -> None:
        line = json.dumps(outcome.to_record(), sort_keys=True, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a+b") as handle:
            # A run killed mid-append can leave a torn line with no
            # newline; terminate it so this record is not swallowed
            # into it (the torn fragment then parses as its own bad
            # line and is skipped by load()).
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write((line + "\n").encode())
            handle.flush()
            os.fsync(handle.fileno())


# ----------------------------------------------------------------------
# Supervised execution
# ----------------------------------------------------------------------
def _qualname(fn: Callable) -> str:
    module = getattr(fn, "__module__", "?")
    name = getattr(fn, "__qualname__", None) or repr(fn)
    return f"{module}.{name}"


def trial_payload(experiment: Callable, seed: int, extra: dict | None = None) -> dict:
    """Canonical manifest payload for one ``experiment(seed)`` trial.

    The manifest key is :func:`payload_key` over this payload — the same
    derivation as the result cache, so it embeds the source-tree digest:
    editing the simulator invalidates old manifests wholesale (a resume
    after a source change correctly re-runs everything).
    """
    payload = {
        "kind": "supervised_trial",
        "experiment": _qualname(experiment),
        "seed": seed,
    }
    if extra:
        payload.update(extra)
    return payload


def _remote_traceback(exc: BaseException) -> str | None:
    """The worker-side traceback text concurrent.futures smuggles over."""
    cause = exc.__cause__
    if cause is not None and type(cause).__name__ == "_RemoteTraceback":
        return str(cause)
    return None


def _classify(exc: BaseException) -> str:
    if isinstance(exc, SimBudgetExceeded):
        return STATUS_TIMED_OUT
    if isinstance(exc, BrokenProcessPool):
        return STATUS_CRASHED
    return STATUS_FAILED


def _serial_attempts(
    fn: Callable[[Any], Any],
    item: Any,
    index: int,
    key: str,
    seed: int | None,
    payload: dict | None,
    policy: RetryPolicy,
    prior_attempts: int,
    attempts_budget: int,
) -> TrialOutcome:
    """Run ``fn(item)`` in-process up to ``attempts_budget`` more times.

    With ``policy.trace_ring`` set, each attempt runs under a fresh
    process-global ring-buffer tracer; the *last failing* attempt's ring
    is attached to the failure outcome (a succeeding attempt discards
    its ring — successes carry no trace).
    """
    attempts = prior_attempts
    status, error, tb = STATUS_FAILED, None, None
    trace: list[dict] | None = None
    for _ in range(max(1, attempts_budget)):
        if attempts > prior_attempts:
            time.sleep(policy.backoff_s(attempts, index))
        attempts += 1
        ring = None
        if policy.trace_ring > 0:
            from ..obs import RingBufferTracer, tracing

            ring = RingBufferTracer(capacity=policy.trace_ring)
        try:
            if ring is not None:
                with tracing(ring):
                    value = fn(item)
            else:
                value = fn(item)
        except Exception as exc:
            status = _classify(exc)
            error = repr(exc)
            tb = traceback_mod.format_exc()
            trace = ring.snapshot() if ring is not None else None
        else:
            return TrialOutcome(
                status=STATUS_OK,
                key=key,
                value=value,
                seed=seed,
                payload=payload,
                attempts=attempts,
            )
    return TrialOutcome(
        status=status,
        key=key,
        seed=seed,
        payload=payload,
        error=error,
        traceback=tb,
        attempts=attempts,
        trace=trace,
    )


def supervised_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    payloads: Sequence[dict] | None = None,
    seeds: Sequence[int] | None = None,
    jobs: int | None = None,
    policy: RetryPolicy | None = None,
    manifest: str | Path | SweepManifest | None = None,
    resume_statuses: Sequence[str] = (STATUS_OK,),
) -> list[TrialOutcome]:
    """``fn`` over ``items`` with supervision, retries, and checkpointing.

    Returns one :class:`TrialOutcome` per item, in input order — never
    raises for a failing item.  ``payloads`` (one canonical dict per
    item) derive the content-addressed keys; when omitted, a generic
    payload from the function qualname and item index is used (resume
    still works, but renaming ``fn`` orphans old manifest entries).

    With ``manifest`` set, every fresh outcome is journaled and items
    whose key is already recorded with a status in ``resume_statuses``
    are *not* re-run: their outcomes are rebuilt from the journal
    (``resumed=True``, bit-identical values).  The default treats only
    ``ok`` as final — failed entries are re-attempted, which is right
    for transiently-failing sweeps.  Callers whose workload is
    *deterministic* (the adversary search) widen this to ``failed`` and
    ``timed-out`` as well, so a recorded deterministic failure is not
    pointlessly retried on resume; ``crashed-worker`` should stay out of
    the set — a dead worker says nothing about the workload.

    Execution: picklable workloads fan out over a process pool
    (``jobs``/``REPRO_JOBS``); worker exceptions, watchdog trips and
    dead workers mark only the affected items, which are retried on a
    fresh pool per :class:`RetryPolicy` and finally (except after
    crashes) re-run serially in-process.  ``jobs=1`` or unpicklable
    workloads run the same supervision loop serially.
    """
    materialized = list(items)
    n = len(materialized)
    if seeds is not None:
        seeds = list(seeds)
        if len(seeds) != n:
            raise ValueError(f"{len(seeds)} seeds for {n} items")
    if payloads is None:
        payloads = [
            {
                "kind": "supervised_map",
                "fn": _qualname(fn),
                "index": i,
                "seed": None if seeds is None else seeds[i],
            }
            for i in range(n)
        ]
    else:
        payloads = list(payloads)
        if len(payloads) != n:
            raise ValueError(f"{len(payloads)} payloads for {n} items")
    seed_list: list[int | None] = (
        list(seeds) if seeds is not None else [p.get("seed") for p in payloads]
    )
    keys = [payload_key(hex_floats(payload)) for payload in payloads]
    policy = policy or RetryPolicy()
    max_attempts = policy.max_attempts()
    journal = (
        manifest
        if isinstance(manifest, SweepManifest) or manifest is None
        else SweepManifest(manifest)
    )

    outcomes: list[TrialOutcome | None] = [None] * n
    pending: list[int] = []
    if journal is not None:
        existing = journal.load()
    else:
        existing = {}
    for i, key in enumerate(keys):
        record = existing.get(key)
        if record is not None and record.get("status") in resume_statuses:
            try:
                outcomes[i] = TrialOutcome.from_record(record)
                continue
            except (KeyError, ValueError, TypeError):
                pass  # corrupt record: treat as not completed
        pending.append(i)

    def finish(i: int, outcome: TrialOutcome) -> None:
        outcomes[i] = outcome
        if journal is not None:
            journal.append(outcome)

    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    pool_ok = (
        jobs > 1
        and len(pending) > 1
        and _is_picklable(fn)
        and _is_picklable(materialized[pending[0]])
    )

    if not pool_ok:
        for i in pending:
            finish(
                i,
                _serial_attempts(
                    fn,
                    materialized[i],
                    i,
                    keys[i],
                    seed_list[i],
                    payloads[i],
                    policy,
                    prior_attempts=0,
                    attempts_budget=max_attempts,
                ),
            )
        return [outcome for outcome in outcomes if outcome is not None]

    attempts = [0] * n
    last_failure: dict[int, tuple[str, str | None, str | None]] = {}
    round_index = 0
    while True:
        retryable = [
            i for i in pending if outcomes[i] is None and attempts[i] < max_attempts
        ]
        if not retryable:
            break
        if round_index > 0:
            # One deterministic, jittered pause per retry round; per-item
            # backoff applies on the serial paths.
            time.sleep(policy.backoff_s(round_index, retryable[0]))
        round_index += 1
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(retryable)), initializer=_init_worker
        ) as pool:
            futures = {}
            try:
                for i in retryable:
                    futures[i] = pool.submit(fn, materialized[i])
            except BrokenProcessPool as exc:
                # The pool died during submission; charge a crash attempt
                # to every item that never got a future.
                for i in retryable:
                    if i not in futures:
                        attempts[i] += 1
                        last_failure[i] = (STATUS_CRASHED, repr(exc), None)
            for i in list(futures):
                try:
                    value = pool_trial_result(futures[i])
                except BrokenProcessPool as exc:
                    # The pool is dead: this and every still-unfinished
                    # future fails the same way.  Blame is ambiguous, so
                    # each affected item gets a crash attempt recorded
                    # and the loop restarts on a fresh pool.
                    attempts[i] += 1
                    last_failure[i] = (STATUS_CRASHED, repr(exc), None)
                except Exception as exc:
                    if not _is_picklable(materialized[i]):
                        # Mid-stream pickling failure: the item never
                        # reached a worker.  Degrade to the serial
                        # supervision loop for this item alone.
                        finish(
                            i,
                            _serial_attempts(
                                fn,
                                materialized[i],
                                i,
                                keys[i],
                                seed_list[i],
                                payloads[i],
                                policy,
                                prior_attempts=attempts[i],
                                attempts_budget=max_attempts - attempts[i],
                            ),
                        )
                        continue
                    attempts[i] += 1
                    last_failure[i] = (
                        _classify(exc),
                        repr(exc),
                        _remote_traceback(exc),
                    )
                else:
                    attempts[i] += 1
                    finish(
                        i,
                        TrialOutcome(
                            status=STATUS_OK,
                            key=keys[i],
                            value=value,
                            seed=seed_list[i],
                            payload=payloads[i],
                            attempts=attempts[i],
                        ),
                    )

    # Pool retries exhausted: one last in-process attempt for items that
    # failed with an exception (real traceback, attributable record);
    # crashed items are recorded as-is — re-running a worker-killer
    # in-process would take the driver down with it.
    for i in pending:
        if outcomes[i] is not None:
            continue
        status, error, tb = last_failure.get(i, (STATUS_FAILED, None, None))
        if policy.final_serial and status != STATUS_CRASHED:
            finish(
                i,
                _serial_attempts(
                    fn,
                    materialized[i],
                    i,
                    keys[i],
                    seed_list[i],
                    payloads[i],
                    policy,
                    prior_attempts=attempts[i],
                    attempts_budget=1,
                ),
            )
        else:
            finish(
                i,
                TrialOutcome(
                    status=status,
                    key=keys[i],
                    seed=seed_list[i],
                    payload=payloads[i],
                    error=error,
                    traceback=tb,
                    attempts=attempts[i],
                ),
            )
    return [outcome for outcome in outcomes if outcome is not None]


def pool_trial_result(future) -> Any:
    """Bare future result for the supervised loop (exceptions classified
    by the caller).  Lives here so the ``no-bare-subprocess-result``
    lint rule can scope bare ``.result()`` calls to this module."""
    return future.result()


# ----------------------------------------------------------------------
# The Fig-8 robustness matrix as a supervised, resumable sweep
# ----------------------------------------------------------------------
def _pair_cell(item: dict) -> dict[str, float]:
    """One (config, seed) cell of the Fig-8 matrix — module-level so it
    pickles into pool workers.  ``jobs=1`` keeps the nested ``run_pair``
    dispatch serial inside a worker."""
    from .runner import run_pair
    from .scenarios import LinkConfig

    config = LinkConfig(**item["config"])
    pair = run_pair(
        item["primary"],
        item["scavenger"],
        config,
        duration_s=item["duration_s"],
        seed=item["seed"],
        jobs=1,
    )
    return asdict(pair)


def run_matrix(
    primary: str = "cubic",
    scavenger: str = "proteus-s",
    configs: Sequence[Any] | None = None,
    n_trials: int = 1,
    base_seed: int = 1,
    duration_s: float = 10.0,
    jobs: int | None = None,
    policy: RetryPolicy | None = None,
    manifest: str | Path | SweepManifest | None = None,
) -> list[TrialOutcome]:
    """The Fig-8 scenario x seed matrix as a supervised, resumable sweep.

    Each cell is one :func:`~repro.harness.runner.run_pair` call for one
    ``(LinkConfig, seed)``; the outcome value is the ``PairResult`` as a
    dict of floats.  With ``manifest`` set the sweep checkpoints every
    cell and ``repro sweep --resume <manifest>`` tops up an interrupted
    run.  ``configs`` defaults to the full 180-configuration
    :func:`~repro.harness.scenarios.config_matrix`.
    """
    from .scenarios import config_matrix

    if n_trials < 1:
        raise ValueError("n_trials must be positive")
    if configs is None:
        configs = config_matrix()
    items: list[dict] = []
    payloads: list[dict] = []
    seeds: list[int] = []
    for config in configs:
        for trial in range(n_trials):
            seed = base_seed + trial
            item = {
                "primary": primary,
                "scavenger": scavenger,
                "config": asdict(config),
                "duration_s": duration_s,
                "seed": seed,
            }
            items.append(item)
            payloads.append({"kind": "fig8_pair_cell", **item})
            seeds.append(seed)
    return supervised_map(
        _pair_cell,
        items,
        payloads=payloads,
        seeds=seeds,
        jobs=jobs,
        policy=policy,
        manifest=manifest,
    )
