"""Standard experiment scenarios from the paper's evaluation (§6).

:class:`LinkConfig` captures one bottleneck configuration; the module
constants are the setups the paper names explicitly:

* ``EMULAB_DEFAULT`` — 50 Mbps, 30 ms RTT (used "unless otherwise
  specified"), with the shallow (75 KB = 0.4 BDP) and large (375 KB =
  2 BDP) buffer variants of §6.2;
* ``FIG2_LINK`` — 100 Mbps, 60 ms, 1500 KB (2 BDP) for the competition-
  indicator study;
* :func:`config_matrix` — the 180-configuration robustness matrix of
  Fig 8;
* :func:`wifi_sites` — the noise-model stand-ins for the paper's four
  WiFi sites x 16 AWS paths.

The second half of the module is the declarative **timeline spec**: a
:class:`Timeline` is a tuple of serialisable step dataclasses (bandwidth
steps and flaps, delay shifts, outage windows, trace playback,
Gilbert-Elliott burst loss) that resolves to primitive
:class:`~repro.sim.dynamics.LinkEvent` objects applied by the runner
mid-run.  Because the spec round-trips through :meth:`Timeline.to_dict`,
it participates in the result-cache key: editing only the timeline
invalidates cached runs (see :mod:`repro.harness.cache`).

The third section is the declarative **topology spec**:
:class:`TopologySpec` names a graph shape (dumbbell, parking-lot,
multi-dumbbell), a congested-hop count, and a per-hop queue discipline,
builds the :class:`~repro.sim.topology.Topology` for a run, and
serialises into the same cache key / JSON machinery as timelines (see
``docs/TOPOLOGY.md``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path

from ..core.rng import Rng, spawn
from ..sim.aqm import (
    CoDelDiscipline,
    DynamicLink,
    HeadDropDiscipline,
    RandomDropDiscipline,
    REDDiscipline,
    TailDropDiscipline,
)
from ..sim.dynamics import LinkEvent
from ..sim.noise import NoiseModel, wifi_noise
from ..sim.topology import Dumbbell, MultiDumbbell, ParkingLot, Topology


@dataclass(frozen=True)
class LinkConfig:
    """One bottleneck configuration."""

    bandwidth_mbps: float
    rtt_ms: float
    buffer_kb: float
    loss_rate: float = 0.0
    noise_severity: float = 0.0  # forward-path WiFi-like noise
    reverse_noise_severity: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0 or self.rtt_ms <= 0 or self.buffer_kb <= 0:
            raise ValueError("bandwidth, rtt and buffer must be positive")

    @property
    def bandwidth_bps(self) -> float:
        return self.bandwidth_mbps * 1e6

    @property
    def rtt_s(self) -> float:
        return self.rtt_ms / 1e3

    @property
    def buffer_bytes(self) -> float:
        return self.buffer_kb * 1e3

    @property
    def bdp_bytes(self) -> float:
        return self.bandwidth_bps * self.rtt_s / 8.0

    @property
    def buffer_bdp(self) -> float:
        return self.buffer_bytes / self.bdp_bytes

    def with_buffer_kb(self, buffer_kb: float) -> "LinkConfig":
        return replace(self, buffer_kb=buffer_kb)

    def with_buffer_bdp(self, multiple: float) -> "LinkConfig":
        return replace(self, buffer_kb=multiple * self.bdp_bytes / 1e3)

    def with_loss(self, loss_rate: float) -> "LinkConfig":
        return replace(self, loss_rate=loss_rate)

    def make_noise(self) -> NoiseModel | None:
        if self.noise_severity > 0:
            return wifi_noise(self.noise_severity)
        return None

    def make_reverse_noise(self) -> NoiseModel | None:
        if self.reverse_noise_severity > 0:
            return wifi_noise(self.reverse_noise_severity)
        return None


EMULAB_DEFAULT = LinkConfig(
    bandwidth_mbps=50.0, rtt_ms=30.0, buffer_kb=375.0, label="emulab-default"
)
EMULAB_SHALLOW = EMULAB_DEFAULT.with_buffer_kb(75.0)  # 0.4 BDP (§6.2)
FIG2_LINK = LinkConfig(
    bandwidth_mbps=100.0, rtt_ms=60.0, buffer_kb=1500.0, label="fig2"
)

PRIMARY_PROTOCOLS = ("cubic", "bbr", "copa", "proteus-p", "vivace")
SCAVENGER_PROTOCOLS = ("proteus-s", "ledbat", "ledbat-25")

MATRIX_BANDWIDTHS_MBPS = (20.0, 50.0, 100.0, 200.0, 300.0, 500.0)
MATRIX_RTTS_MS = (5.0, 10.0, 30.0, 60.0, 100.0, 200.0)
MATRIX_BUFFER_BDP = (0.2, 0.5, 1.0, 2.0, 5.0)


def config_matrix(
    bandwidths_mbps=MATRIX_BANDWIDTHS_MBPS,
    rtts_ms=MATRIX_RTTS_MS,
    buffer_bdps=MATRIX_BUFFER_BDP,
) -> list[LinkConfig]:
    """The Fig 8 robustness matrix (180 configs at full scale)."""
    configs: list[LinkConfig] = []
    for bw in bandwidths_mbps:
        for rtt in rtts_ms:
            base = LinkConfig(bandwidth_mbps=bw, rtt_ms=rtt, buffer_kb=1.0)
            for mult in buffer_bdps:
                config = base.with_buffer_bdp(mult)
                configs.append(
                    replace(config, label=f"{bw:g}mbps-{rtt:g}ms-{mult:g}bdp")
                )
    return configs


def wifi_sites(n_sites: int = 4, n_paths: int = 4) -> list[LinkConfig]:
    """WiFi scenario matrix standing in for the paper's site x AWS grid.

    Each site gets a noise severity (residential milder, restaurant
    noisier); each path a different bandwidth/RTT, covering near and far
    AWS regions.
    """
    severities = [0.6, 0.9, 1.3, 1.8][:n_sites]
    path_params = [
        (40.0, 30.0),
        (30.0, 60.0),
        (25.0, 120.0),
        (20.0, 200.0),
    ][:n_paths]
    configs: list[LinkConfig] = []
    for site, severity in enumerate(severities):
        for path, (bw, rtt) in enumerate(path_params):
            config = LinkConfig(
                bandwidth_mbps=bw,
                rtt_ms=rtt,
                buffer_kb=1.5 * bw * rtt / 8.0,  # 1.5 BDP in KB
                noise_severity=severity,
                reverse_noise_severity=severity,
                label=f"site{site}-path{path}",
            )
            configs.append(config)
    return configs


# ----------------------------------------------------------------------
# Declarative link-dynamics timelines
# ----------------------------------------------------------------------
BOTTLENECK = "bottleneck"
"""Default target link of timeline steps (the dumbbell's forward link)."""


@dataclass(frozen=True)
class BandwidthStep:
    """Set the link rate to ``bandwidth_mbps`` at ``at_s``."""

    at_s: float
    bandwidth_mbps: float
    link: str = BOTTLENECK

    kind = "bandwidth-step"

    def __post_init__(self) -> None:
        if self.at_s < 0 or self.bandwidth_mbps <= 0:
            raise ValueError("at_s must be >= 0 and bandwidth_mbps positive")

    def events(self) -> list[LinkEvent]:
        return [
            LinkEvent(self.at_s, self.link, "bandwidth", (self.bandwidth_mbps * 1e6,))
        ]


@dataclass(frozen=True)
class DelayStep:
    """Set the one-way propagation delay to ``delay_ms`` at ``at_s``."""

    at_s: float
    delay_ms: float
    link: str = BOTTLENECK

    kind = "delay-step"

    def __post_init__(self) -> None:
        if self.at_s < 0 or self.delay_ms < 0:
            raise ValueError("at_s and delay_ms must be non-negative")

    def events(self) -> list[LinkEvent]:
        return [LinkEvent(self.at_s, self.link, "delay", (self.delay_ms / 1e3,))]


@dataclass(frozen=True)
class Outage:
    """Drop every packet offered during ``[start_s, end_s)``."""

    start_s: float
    end_s: float
    link: str = BOTTLENECK

    kind = "outage"

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise ValueError("need 0 <= start_s < end_s")

    def events(self) -> list[LinkEvent]:
        return [
            LinkEvent(self.start_s, self.link, "down"),
            LinkEvent(self.end_s, self.link, "up"),
        ]


@dataclass(frozen=True)
class LossStep:
    """Set i.i.d. random loss to ``loss_rate`` at ``at_s``.

    Clears any stateful (Gilbert-Elliott) loss model on the link, so the
    two loss mechanisms never run at once.
    """

    at_s: float
    loss_rate: float
    link: str = BOTTLENECK

    kind = "loss-step"

    def __post_init__(self) -> None:
        if self.at_s < 0 or not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("at_s must be >= 0 and loss_rate in [0, 1)")

    def events(self) -> list[LinkEvent]:
        return [LinkEvent(self.at_s, self.link, "loss", (self.loss_rate,))]


@dataclass(frozen=True)
class GilbertLoss:
    """Install a Gilbert-Elliott burst-loss channel at ``at_s``.

    See :class:`repro.sim.dynamics.GilbertElliott` for the chain's
    semantics; the stationary loss rate is
    ``p_enter_bad * loss_bad / (p_enter_bad + p_exit_bad)`` for
    ``loss_good = 0``.
    """

    at_s: float
    p_enter_bad: float
    p_exit_bad: float
    loss_good: float = 0.0
    loss_bad: float = 1.0
    link: str = BOTTLENECK

    kind = "gilbert-loss"

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("at_s must be non-negative")
        for p in (self.p_enter_bad, self.p_exit_bad, self.loss_good, self.loss_bad):
            if not 0.0 <= p <= 1.0:
                raise ValueError("Gilbert-Elliott parameters are probabilities")
        if self.p_exit_bad <= 0.0:
            raise ValueError("p_exit_bad must be positive")

    def events(self) -> list[LinkEvent]:
        return [
            LinkEvent(
                self.at_s,
                self.link,
                "gilbert",
                (self.p_enter_bad, self.p_exit_bad, self.loss_good, self.loss_bad),
            )
        ]


@dataclass(frozen=True)
class BandwidthFlap:
    """Alternate the link rate between ``low_mbps`` and ``high_mbps``.

    Starting at ``start_s`` the rate drops to ``low_mbps``, recovers to
    ``high_mbps`` half a period later, and so on; at ``end_s`` the rate
    is restored to ``high_mbps`` regardless of phase.  Models a flapping
    WiFi link whose effective capacity collapses during interference
    bursts.
    """

    start_s: float
    end_s: float
    period_s: float
    low_mbps: float
    high_mbps: float
    link: str = BOTTLENECK

    kind = "bandwidth-flap"

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise ValueError("need 0 <= start_s < end_s")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.low_mbps <= 0 or self.high_mbps <= 0:
            raise ValueError("rates must be positive")

    def events(self) -> list[LinkEvent]:
        events: list[LinkEvent] = []
        half_s = self.period_s / 2.0
        k = 0
        while True:
            # Index-based times: no accumulated float drift across flaps.
            at_s = self.start_s + k * half_s
            if at_s >= self.end_s:
                break
            rate_mbps = self.low_mbps if k % 2 == 0 else self.high_mbps
            events.append(LinkEvent(at_s, self.link, "bandwidth", (rate_mbps * 1e6,)))
            k += 1
        events.append(LinkEvent(self.end_s, self.link, "bandwidth", (self.high_mbps * 1e6,)))
        return events


@dataclass(frozen=True)
class BandwidthTrace:
    """Play back a recorded bandwidth trace, one sample per interval.

    Sample ``k`` of ``bandwidths_mbps`` takes effect at
    ``start_s + k * interval_s`` — the mobility-style playback used for
    cellular/walking traces.
    """

    start_s: float
    interval_s: float
    bandwidths_mbps: tuple[float, ...]
    link: str = BOTTLENECK

    kind = "bandwidth-trace"

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.interval_s <= 0:
            raise ValueError("need start_s >= 0 and interval_s > 0")
        if not self.bandwidths_mbps:
            raise ValueError("bandwidths_mbps must be non-empty")
        if any(bw <= 0 for bw in self.bandwidths_mbps):
            raise ValueError("trace rates must be positive")
        # JSON round-trips lists; the spec itself stays hashable.
        object.__setattr__(self, "bandwidths_mbps", tuple(self.bandwidths_mbps))

    def events(self) -> list[LinkEvent]:
        return [
            LinkEvent(
                self.start_s + k * self.interval_s,
                self.link,
                "bandwidth",
                (bw * 1e6,),
            )
            for k, bw in enumerate(self.bandwidths_mbps)
        ]


STEP_KINDS = {
    step.kind: step
    for step in (
        BandwidthStep,
        DelayStep,
        Outage,
        LossStep,
        GilbertLoss,
        BandwidthFlap,
        BandwidthTrace,
    )
}

TimelineStep = (
    BandwidthStep
    | DelayStep
    | Outage
    | LossStep
    | GilbertLoss
    | BandwidthFlap
    | BandwidthTrace
)


@dataclass(frozen=True)
class Timeline:
    """An ordered collection of link-dynamics steps.

    The spec is pure data: :meth:`resolve` expands it to primitive link
    events for :class:`~repro.sim.dynamics.TimelineDriver`, and
    :meth:`to_dict` serialises it for JSON files and the result-cache
    key.  ``label`` names the timeline in reports.
    """

    steps: tuple[TimelineStep, ...]
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))

    def resolve(self) -> list[LinkEvent]:
        """Primitive events, sorted by time (ties keep step order)."""
        events = [event for step in self.steps for event in step.events()]
        events.sort(key=lambda event: event.time_s)
        return events

    def to_dict(self) -> dict:
        """JSON-serialisable form; exact inverse of :func:`timeline_from_dict`."""
        steps = []
        for step in self.steps:
            record = asdict(step)
            record["kind"] = step.kind
            steps.append(record)
        return {"label": self.label, "steps": steps}

    def validate(self) -> "Timeline":
        """Check timeline-level invariants; returns ``self`` if sound.

        Step-level invariants (non-negative times, positive rates) are
        enforced by each step's constructor; this adds the cross-step
        ones mutation can break: steps must be sorted by start time, and
        outage windows on the same link must not overlap.  Raises
        :class:`ValueError` with the offending step, so a bad mutated
        timeline fails fast instead of deep inside the simulator.
        """
        last_start = 0.0
        outage_end: dict[str, float] = {}
        for i, step in enumerate(self.steps):
            start_s = step_start_s(step)
            if start_s < last_start:
                raise ValueError(
                    f"timeline steps must be sorted by start time: step {i} "
                    f"({step.kind}) starts at {start_s:g}s after a step "
                    f"starting at {last_start:g}s"
                )
            last_start = start_s
            if isinstance(step, Outage):
                prev_end = outage_end.get(step.link, 0.0)
                if step.start_s < prev_end:
                    raise ValueError(
                        f"overlapping outages on link {step.link!r}: step {i} "
                        f"starts at {step.start_s:g}s before the previous "
                        f"outage ends at {prev_end:g}s"
                    )
                outage_end[step.link] = step.end_s
            for field_name in ("bandwidth_mbps", "low_mbps", "high_mbps"):
                rate = getattr(step, field_name, None)
                if rate is not None and rate <= 0:
                    raise ValueError(
                        f"step {i} ({step.kind}) has non-positive "
                        f"{field_name}={rate!r}"
                    )
        return self

    def merge(self, other: "Timeline", label: str | None = None) -> "Timeline":
        """Combine two timelines into one sorted, validated timeline.

        Steps are stably ordered by start time (ties keep ``self`` before
        ``other``); the result is :meth:`validate`-d, so merging e.g. two
        outage schedules that overlap on the same link fails fast.
        """
        steps = sorted(self.steps + other.steps, key=step_start_s)
        if label is None:
            label = "+".join(part for part in (self.label, other.label) if part)
        return Timeline(tuple(steps), label=label).validate()

    def perturb(
        self,
        rng: Rng,
        *,
        time_jitter_s: float = 1.0,
        magnitude_frac: float = 0.2,
    ) -> "Timeline":
        """A jittered copy of this timeline — valid by construction.

        Each step's start time shifts by up to ``±time_jitter_s`` and its
        magnitudes (rates, delays, loss probabilities, periods) scale by
        up to ``±magnitude_frac``, all clamped to each step's legal
        range.  The steps are then re-sorted and outage windows nudged
        forward past any overlap the jitter introduced, so the result
        always passes :meth:`validate`.  Draws come only from ``rng``:
        the same seeded stream reproduces the same perturbation.
        """
        steps = [
            _perturb_step(step, rng, time_jitter_s, magnitude_frac)
            for step in self.steps
        ]
        steps.sort(key=step_start_s)
        # Repair outage overlaps introduced by the time jitter: slide
        # each outage forward to start at the previous one's end
        # (duration preserved), per link.
        outage_end: dict[str, float] = {}
        for i, step in enumerate(steps):
            if not isinstance(step, Outage):
                continue
            prev_end = outage_end.get(step.link, 0.0)
            if step.start_s < prev_end:
                duration_s = step.end_s - step.start_s
                step = replace(
                    step, start_s=prev_end, end_s=prev_end + duration_s
                )
                steps[i] = step
            outage_end[step.link] = step.end_s
        steps.sort(key=step_start_s)
        return Timeline(tuple(steps), label=self.label).validate()


def step_start_s(step: TimelineStep) -> float:
    """The simulated time at which ``step`` first takes effect."""
    at_s = getattr(step, "at_s", None)
    if at_s is not None:
        return at_s
    return step.start_s


def _jitter_time(at_s: float, rng: Rng, time_jitter_s: float) -> float:
    return max(0.0, at_s + rng.uniform(-time_jitter_s, time_jitter_s))


def _scale(value: float, rng: Rng, frac: float, lo: float, hi: float) -> float:
    return min(hi, max(lo, value * (1.0 + rng.uniform(-frac, frac))))


def _perturb_step(
    step: TimelineStep, rng: Rng, time_jitter_s: float, frac: float
) -> TimelineStep:
    """One jittered copy of ``step``, clamped to its legal ranges.

    Every branch draws the same number of times from ``rng`` per field
    it perturbs, keeping the stream consumption deterministic per step
    kind.
    """
    if isinstance(step, BandwidthStep):
        return replace(
            step,
            at_s=_jitter_time(step.at_s, rng, time_jitter_s),
            bandwidth_mbps=_scale(step.bandwidth_mbps, rng, frac, 0.5, 1e4),
        )
    if isinstance(step, DelayStep):
        return replace(
            step,
            at_s=_jitter_time(step.at_s, rng, time_jitter_s),
            delay_ms=max(0.0, _scale(step.delay_ms, rng, frac, 0.0, 1e4)),
        )
    if isinstance(step, Outage):
        # Shift the whole window (duration preserved), then rescale the
        # duration with a floor so the outage never becomes empty.
        shift_s = rng.uniform(-time_jitter_s, time_jitter_s)
        start_s = max(0.0, step.start_s + shift_s)
        duration_s = _scale(step.end_s - step.start_s, rng, frac, 0.05, 1e4)
        return replace(step, start_s=start_s, end_s=start_s + duration_s)
    if isinstance(step, LossStep):
        return replace(
            step,
            at_s=_jitter_time(step.at_s, rng, time_jitter_s),
            loss_rate=_scale(step.loss_rate, rng, frac, 0.0, 0.95),
        )
    if isinstance(step, GilbertLoss):
        return replace(
            step,
            at_s=_jitter_time(step.at_s, rng, time_jitter_s),
            p_enter_bad=_scale(step.p_enter_bad, rng, frac, 0.0, 1.0),
            p_exit_bad=_scale(step.p_exit_bad, rng, frac, 1e-4, 1.0),
            loss_bad=_scale(step.loss_bad, rng, frac, 0.0, 1.0),
        )
    if isinstance(step, BandwidthFlap):
        shift_s = rng.uniform(-time_jitter_s, time_jitter_s)
        start_s = max(0.0, step.start_s + shift_s)
        duration_s = _scale(step.end_s - step.start_s, rng, frac, 0.1, 1e4)
        return replace(
            step,
            start_s=start_s,
            end_s=start_s + duration_s,
            period_s=_scale(step.period_s, rng, frac, 0.1, 1e3),
            low_mbps=_scale(step.low_mbps, rng, frac, 0.5, 1e4),
            high_mbps=_scale(step.high_mbps, rng, frac, 0.5, 1e4),
        )
    if isinstance(step, BandwidthTrace):
        return replace(
            step,
            start_s=_jitter_time(step.start_s, rng, time_jitter_s),
            interval_s=_scale(step.interval_s, rng, frac, 0.05, 1e3),
            bandwidths_mbps=tuple(
                _scale(bw, rng, frac, 0.5, 1e4) for bw in step.bandwidths_mbps
            ),
        )
    raise TypeError(f"unknown timeline step type {type(step).__name__}")


def timeline_from_dict(data: dict) -> Timeline:
    """Rebuild a :class:`Timeline` from :meth:`Timeline.to_dict` output."""
    if not isinstance(data, dict) or not isinstance(data.get("steps"), list):
        raise ValueError("timeline document must be a dict with a 'steps' list")
    steps = []
    for record in data["steps"]:
        record = dict(record)
        kind = record.pop("kind", None)
        cls = STEP_KINDS.get(kind)
        if cls is None:
            raise ValueError(
                f"unknown timeline step kind {kind!r}; "
                f"known kinds: {sorted(STEP_KINDS)}"
            )
        steps.append(cls(**record))
    return Timeline(tuple(steps), label=str(data.get("label", "")))


def _step_down() -> Timeline:
    """Primary-arrival emulation: capacity collapses 40 -> 10 Mbps at t=30 s."""
    return Timeline(
        (BandwidthStep(at_s=30.0, bandwidth_mbps=10.0),), label="step-down"
    )


def _flaky_wifi() -> Timeline:
    """Interference bursts: 5x capacity collapses plus a delay shift."""
    return Timeline(
        (
            BandwidthFlap(
                start_s=8.0, end_s=28.0, period_s=4.0, low_mbps=6.0, high_mbps=30.0
            ),
            DelayStep(at_s=8.0, delay_ms=25.0),
        ),
        label="flaky-wifi",
    )


def _mobility_trace() -> Timeline:
    """Walking-pace cellular trace: capacity wanders, briefly blacks out."""
    return Timeline(
        (
            BandwidthTrace(
                start_s=5.0,
                interval_s=3.0,
                bandwidths_mbps=(24.0, 16.0, 9.0, 4.0, 7.0, 14.0, 22.0, 30.0),
            ),
            Outage(start_s=17.5, end_s=18.5),
        ),
        label="mobility-trace",
    )


def _bursty_loss() -> Timeline:
    """Correlated loss runs: a Gilbert-Elliott channel switches on at t=10 s."""
    return Timeline(
        (
            GilbertLoss(at_s=10.0, p_enter_bad=0.01, p_exit_bad=0.25, loss_bad=0.5),
            LossStep(at_s=40.0, loss_rate=0.0),
        ),
        label="bursty-loss",
    )


TIMELINES = {
    "step-down": _step_down,
    "flaky-wifi": _flaky_wifi,
    "mobility-trace": _mobility_trace,
    "bursty-loss": _bursty_loss,
}
"""Named preset timelines (the paper-motivated dynamic scenarios)."""


def load_timeline(name_or_path: str) -> Timeline:
    """A preset timeline by name, or one loaded from a JSON file.

    Presets (:data:`TIMELINES`) win; anything else is treated as a path
    to a JSON document in the :meth:`Timeline.to_dict` format.
    """
    factory = TIMELINES.get(name_or_path)
    if factory is not None:
        return factory()
    path = Path(name_or_path)
    if not path.exists():
        raise ValueError(
            f"unknown timeline {name_or_path!r}: not a preset "
            f"({sorted(TIMELINES)}) and no such file"
        )
    return timeline_from_dict(json.loads(path.read_text()))


# ----------------------------------------------------------------------
# Declarative multi-hop topology specs
# ----------------------------------------------------------------------
TOPOLOGY_PRESETS = ("dumbbell", "parking-lot", "multi-dumbbell")
"""Graph shapes a :class:`TopologySpec` can name."""

AQM_KINDS = ("", "taildrop", "head-drop", "random-drop", "red", "codel")
"""Per-hop queue disciplines; ``""`` keeps hops analytic (FIFO
:class:`~repro.sim.link.Link`), anything else makes the congested hops
event-based :class:`~repro.sim.aqm.DynamicLink` instances."""


@dataclass(frozen=True)
class TopologySpec:
    """Serialisable description of a multi-hop topology.

    Like :class:`Timeline`, the spec is pure data: :meth:`build`
    instantiates the graph against a simulator and a
    :class:`LinkConfig` (which supplies per-hop bandwidth, RTT, buffer,
    loss, and noise), and :meth:`to_dict` serialises it for JSON files
    and the result-cache key — editing only the topology invalidates
    cached runs.

    Args:
        preset: One of :data:`TOPOLOGY_PRESETS`.  ``"dumbbell"`` is the
            classic single bottleneck (with an AQM bottleneck when
            ``aqm`` is set), ``"parking-lot"`` chains ``n_hops``
            bottlenecks in series, ``"multi-dumbbell"`` fans ``n_hops``
            access bottlenecks into one shared core.
        n_hops: Congested hop count (parking-lot) or access-group count
            (multi-dumbbell); ignored by ``"dumbbell"``.
        aqm: Queue discipline on the congested hops, one of
            :data:`AQM_KINDS`.
        core_mbps: Shared-core rate for ``"multi-dumbbell"``; ``0``
            reuses the access rate (a congested core whenever more than
            one group is active).
        label: Name for reports and summaries.
    """

    preset: str = "parking-lot"
    n_hops: int = 2
    aqm: str = ""
    core_mbps: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.preset not in TOPOLOGY_PRESETS:
            raise ValueError(
                f"unknown topology preset {self.preset!r}; "
                f"expected one of {TOPOLOGY_PRESETS}"
            )
        if self.n_hops < 1:
            raise ValueError("n_hops must be >= 1")
        if self.aqm not in AQM_KINDS:
            raise ValueError(
                f"unknown aqm {self.aqm!r}; expected one of {AQM_KINDS}"
            )
        if self.core_mbps < 0:
            raise ValueError("core_mbps must be non-negative")

    def to_dict(self) -> dict:
        """JSON-serialisable form; exact inverse of :func:`topology_from_dict`."""
        record = asdict(self)
        record["kind"] = "topology"
        return record

    def make_discipline(self, config: LinkConfig):
        """A fresh discipline instance for one hop (disciplines carry
        per-queue state and must never be shared between links)."""
        buffer_bytes = config.buffer_bytes
        if self.aqm == "":
            return None
        if self.aqm == "taildrop":
            return TailDropDiscipline(buffer_bytes)
        if self.aqm == "head-drop":
            return HeadDropDiscipline(buffer_bytes)
        if self.aqm == "random-drop":
            return RandomDropDiscipline(buffer_bytes)
        if self.aqm == "red":
            return REDDiscipline(buffer_bytes)
        if self.aqm == "codel":
            return CoDelDiscipline(buffer_bytes)
        raise ValueError(f"unknown aqm {self.aqm!r}")  # pragma: no cover

    def build(self, sim, config: LinkConfig, rng: Rng | None = None) -> Topology:
        """Instantiate the topology graph for one run."""
        if rng is None:
            rng = Rng(0)
        if self.preset == "dumbbell":
            bottleneck = None
            if self.aqm:
                bottleneck = DynamicLink(
                    sim,
                    rate_bps=config.bandwidth_bps,
                    delay_s=config.rtt_s / 2.0,
                    discipline=self.make_discipline(config),
                    loss_rate=config.loss_rate,
                    noise=config.make_noise(),
                    rng=spawn(rng, "bottleneck"),
                    name="bottleneck",
                )
            return Dumbbell(
                sim,
                bandwidth_bps=config.bandwidth_bps,
                rtt_s=config.rtt_s,
                buffer_bytes=config.buffer_bytes,
                loss_rate=config.loss_rate,
                noise=config.make_noise(),
                reverse_noise=config.make_reverse_noise(),
                rng=rng,
                bottleneck=bottleneck,
            )
        if self.preset == "parking-lot":
            factory = None
            if self.aqm:
                factory = lambda _hop: self.make_discipline(config)  # noqa: E731
            return ParkingLot(
                sim,
                n_hops=self.n_hops,
                bandwidth_bps=config.bandwidth_bps,
                rtt_s=config.rtt_s,
                buffer_bytes=config.buffer_bytes,
                loss_rate=config.loss_rate,
                noise=config.make_noise(),
                rng=rng,
                discipline_factory=factory,
            )
        if self.preset == "multi-dumbbell":
            core_bps = (
                self.core_mbps * 1e6 if self.core_mbps > 0 else config.bandwidth_bps
            )
            return MultiDumbbell(
                sim,
                n_groups=self.n_hops,
                bandwidth_bps=config.bandwidth_bps,
                core_bandwidth_bps=core_bps,
                rtt_s=config.rtt_s,
                buffer_bytes=config.buffer_bytes,
                loss_rate=config.loss_rate,
                noise=config.make_noise(),
                rng=rng,
                core_discipline=self.make_discipline(config) if self.aqm else None,
            )
        raise ValueError(f"unknown preset {self.preset!r}")  # pragma: no cover


def topology_from_dict(data: dict) -> TopologySpec:
    """Rebuild a :class:`TopologySpec` from :meth:`TopologySpec.to_dict`."""
    if not isinstance(data, dict):
        raise ValueError("topology document must be a dict")
    record = dict(data)
    kind = record.pop("kind", "topology")
    if kind != "topology":
        raise ValueError(f"not a topology document (kind={kind!r})")
    return TopologySpec(**record)


TOPOLOGIES = {
    "parking-lot": lambda: TopologySpec(
        preset="parking-lot", n_hops=3, label="parking-lot"
    ),
    "parking-lot-codel": lambda: TopologySpec(
        preset="parking-lot", n_hops=3, aqm="codel", label="parking-lot-codel"
    ),
    "shared-core": lambda: TopologySpec(
        preset="multi-dumbbell", n_hops=4, label="shared-core"
    ),
    "dumbbell-codel": lambda: TopologySpec(
        preset="dumbbell", aqm="codel", label="dumbbell-codel"
    ),
    "dumbbell-red": lambda: TopologySpec(
        preset="dumbbell", aqm="red", label="dumbbell-red"
    ),
}
"""Named preset topologies for the CLI and scale scenarios."""


def load_topology(name_or_path: str) -> TopologySpec:
    """A preset topology by name, or one loaded from a JSON file.

    Presets (:data:`TOPOLOGIES`) win; anything else is treated as a path
    to a JSON document in the :meth:`TopologySpec.to_dict` format.
    """
    factory = TOPOLOGIES.get(name_or_path)
    if factory is not None:
        return factory()
    path = Path(name_or_path)
    if not path.exists():
        raise ValueError(
            f"unknown topology {name_or_path!r}: not a preset "
            f"({sorted(TOPOLOGIES)}) and no such file"
        )
    return topology_from_dict(json.loads(path.read_text()))
