"""Standard experiment scenarios from the paper's evaluation (§6).

:class:`LinkConfig` captures one bottleneck configuration; the module
constants are the setups the paper names explicitly:

* ``EMULAB_DEFAULT`` — 50 Mbps, 30 ms RTT (used "unless otherwise
  specified"), with the shallow (75 KB = 0.4 BDP) and large (375 KB =
  2 BDP) buffer variants of §6.2;
* ``FIG2_LINK`` — 100 Mbps, 60 ms, 1500 KB (2 BDP) for the competition-
  indicator study;
* :func:`config_matrix` — the 180-configuration robustness matrix of
  Fig 8;
* :func:`wifi_sites` — the noise-model stand-ins for the paper's four
  WiFi sites x 16 AWS paths.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..sim.noise import NoiseModel, wifi_noise


@dataclass(frozen=True)
class LinkConfig:
    """One bottleneck configuration."""

    bandwidth_mbps: float
    rtt_ms: float
    buffer_kb: float
    loss_rate: float = 0.0
    noise_severity: float = 0.0  # forward-path WiFi-like noise
    reverse_noise_severity: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0 or self.rtt_ms <= 0 or self.buffer_kb <= 0:
            raise ValueError("bandwidth, rtt and buffer must be positive")

    @property
    def bandwidth_bps(self) -> float:
        return self.bandwidth_mbps * 1e6

    @property
    def rtt_s(self) -> float:
        return self.rtt_ms / 1e3

    @property
    def buffer_bytes(self) -> float:
        return self.buffer_kb * 1e3

    @property
    def bdp_bytes(self) -> float:
        return self.bandwidth_bps * self.rtt_s / 8.0

    @property
    def buffer_bdp(self) -> float:
        return self.buffer_bytes / self.bdp_bytes

    def with_buffer_kb(self, buffer_kb: float) -> "LinkConfig":
        return replace(self, buffer_kb=buffer_kb)

    def with_buffer_bdp(self, multiple: float) -> "LinkConfig":
        return replace(self, buffer_kb=multiple * self.bdp_bytes / 1e3)

    def with_loss(self, loss_rate: float) -> "LinkConfig":
        return replace(self, loss_rate=loss_rate)

    def make_noise(self) -> NoiseModel | None:
        if self.noise_severity > 0:
            return wifi_noise(self.noise_severity)
        return None

    def make_reverse_noise(self) -> NoiseModel | None:
        if self.reverse_noise_severity > 0:
            return wifi_noise(self.reverse_noise_severity)
        return None


EMULAB_DEFAULT = LinkConfig(
    bandwidth_mbps=50.0, rtt_ms=30.0, buffer_kb=375.0, label="emulab-default"
)
EMULAB_SHALLOW = EMULAB_DEFAULT.with_buffer_kb(75.0)  # 0.4 BDP (§6.2)
FIG2_LINK = LinkConfig(
    bandwidth_mbps=100.0, rtt_ms=60.0, buffer_kb=1500.0, label="fig2"
)

PRIMARY_PROTOCOLS = ("cubic", "bbr", "copa", "proteus-p", "vivace")
SCAVENGER_PROTOCOLS = ("proteus-s", "ledbat", "ledbat-25")

MATRIX_BANDWIDTHS_MBPS = (20.0, 50.0, 100.0, 200.0, 300.0, 500.0)
MATRIX_RTTS_MS = (5.0, 10.0, 30.0, 60.0, 100.0, 200.0)
MATRIX_BUFFER_BDP = (0.2, 0.5, 1.0, 2.0, 5.0)


def config_matrix(
    bandwidths_mbps=MATRIX_BANDWIDTHS_MBPS,
    rtts_ms=MATRIX_RTTS_MS,
    buffer_bdps=MATRIX_BUFFER_BDP,
) -> list[LinkConfig]:
    """The Fig 8 robustness matrix (180 configs at full scale)."""
    configs: list[LinkConfig] = []
    for bw in bandwidths_mbps:
        for rtt in rtts_ms:
            base = LinkConfig(bandwidth_mbps=bw, rtt_ms=rtt, buffer_kb=1.0)
            for mult in buffer_bdps:
                config = base.with_buffer_bdp(mult)
                configs.append(
                    replace(config, label=f"{bw:g}mbps-{rtt:g}ms-{mult:g}bdp")
                )
    return configs


def wifi_sites(n_sites: int = 4, n_paths: int = 4) -> list[LinkConfig]:
    """WiFi scenario matrix standing in for the paper's site x AWS grid.

    Each site gets a noise severity (residential milder, restaurant
    noisier); each path a different bandwidth/RTT, covering near and far
    AWS regions.
    """
    severities = [0.6, 0.9, 1.3, 1.8][:n_sites]
    path_params = [
        (40.0, 30.0),
        (30.0, 60.0),
        (25.0, 120.0),
        (20.0, 200.0),
    ][:n_paths]
    configs: list[LinkConfig] = []
    for site, severity in enumerate(severities):
        for path, (bw, rtt) in enumerate(path_params):
            config = LinkConfig(
                bandwidth_mbps=bw,
                rtt_ms=rtt,
                buffer_kb=1.5 * bw * rtt / 8.0,  # 1.5 BDP in KB
                noise_severity=severity,
                reverse_noise_severity=severity,
                label=f"site{site}-path{path}",
            )
            configs.append(config)
    return configs
