"""Performance benchmark suite (``repro bench``).

Two layers of measurement, both emitted to ``BENCH_sim.json``:

* **Engine microbenchmarks** — raw event throughput of the simulation
  engine's two scheduling paths (cancellable :class:`Event` entries vs
  the allocation-free fast path), plus events/sec of a real
  congestion-control scenario.  These are the regression gate: CI runs
  ``repro bench --quick --check-against benchmarks/perf/baseline.json``
  and fails on a >30% events/sec drop.

* **Figure workloads** — representative paper-figure scenarios timed
  end-to-end (wall seconds per figure and for the whole suite).  These
  exercise the parallel trial executor and the result cache: a warm
  re-run of an unchanged figure is a set of cache hits and completes in
  a small fraction of its cold time.

Wall-clock reads live here — *outside* ``sim/``/``core/``/``protocols/``
— so the ``no-wallclock`` lint rule still guarantees that nothing inside
the simulated world can see the host clock.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..sim import Fidelity, Simulator, resolve_fidelity
from . import cache as cache_mod
from .cache import disable_cache, enable_cache, reset_cache_state
from .parallel import default_jobs
from .runner import FlowSpec, run_flows, run_homogeneous, run_many, run_pair
from .scenarios import (
    EMULAB_DEFAULT,
    EMULAB_SHALLOW,
    BandwidthStep,
    GilbertLoss,
    LinkConfig,
    Timeline,
)
from .trials import run_trials

SCHEMA_VERSION = 2
HISTORY_SCHEMA_VERSION = 1
REGRESSION_TOLERANCE = 0.30
"""CI gate: fail when events/sec drops more than this vs the baseline."""

BASELINE_DERATE = 0.6
"""Default floor = measured rate x this factor, so ordinary CI-runner
variance (shared cores, thermal throttling) never false-positives.
``--update-baseline`` preserves a baseline's own ``derate`` once set."""

HISTORY_LIMIT = 200
"""Runs kept in the committed ``BENCH_sim.json`` trajectory."""

_CHAINS = 64
"""Concurrent self-rescheduling chains in the microbenchmark — keeps the
heap at a realistic depth instead of benchmarking a one-element heap."""


# ----------------------------------------------------------------------
# Engine microbenchmarks
# ----------------------------------------------------------------------
def engine_events_per_sec(n_events: int = 200_000, fast: bool = True) -> float:
    """Throughput of ``n_events`` no-op callbacks through the engine.

    ``fast=True`` exercises :meth:`Simulator.schedule_fast` (tuple-only
    heap entries); ``fast=False`` the cancellable :class:`Event` path.
    """
    sim = Simulator(check_invariants=False)
    remaining = n_events - _CHAINS

    if fast:

        def tick() -> None:
            nonlocal remaining
            if remaining > 0:
                remaining -= 1
                sim.schedule_fast(0.001, tick)

    else:

        def tick() -> None:
            nonlocal remaining
            if remaining > 0:
                remaining -= 1
                sim.schedule(0.001, tick)

    for i in range(_CHAINS):
        sim.schedule_fast_at(i * 1e-5, tick)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return sim.events_fired / elapsed


def scenario_events_per_sec(
    duration_s: float = 6.0, fidelity: Fidelity | str | None = None
) -> tuple[float, int, int, float]:
    """(effective events/sec, fired, virtual, wall_s) of a real scenario.

    Runs live (never through the cache): the point is to measure the
    simulator, not the JSON decoder.  The rate counts *effective* events
    ``(fired + virtual) / wall`` — in hybrid fidelity the engine absorbs
    collapsed packet legs and paced-burst ticks into closed-form updates
    (``Simulator.events_virtual``), and those represent real simulated
    work that packet-exact mode would have dispatched one by one.  In
    exact mode ``virtual == 0`` and the rate is plain fired-per-second.
    """
    config = LinkConfig(bandwidth_mbps=50.0, rtt_ms=30.0, buffer_kb=375.0)
    specs = [FlowSpec("cubic"), FlowSpec("proteus-s", start_time=1.0)]
    saved = cache_mod._ACTIVE
    disable_cache()
    try:
        start = time.perf_counter()
        result = run_flows(
            specs, config, duration_s=duration_s, seed=1, fidelity=fidelity
        )
        elapsed = time.perf_counter() - start
    finally:
        cache_mod._ACTIVE = saved
    assert result.dumbbell is not None  # live run, never cache-rebuilt
    sim = result.dumbbell.sim
    fired = sim.events_fired
    virtual = sim.events_virtual
    return (fired + virtual) / elapsed, fired, virtual, elapsed


def scale_events_per_sec(
    n_flows: int = 1000, duration_s: float = 10.0
) -> tuple[float, int, int, float]:
    """(events/sec, fired, virtual, wall_s) of the many-flow scale bench.

    Runs :func:`~repro.harness.runner.run_many` — ~``n_flows`` short
    primary transfers against four long-lived scavengers over the
    ``shared-core`` multi-dumbbell — live, never through the cache.
    This is the flow-count stress axis the two-flow scenario bench
    cannot see: per-flow bookkeeping, topology routing, and the event
    heap at thousands of concurrent arrivals.
    """
    config = LinkConfig(bandwidth_mbps=50.0, rtt_ms=30.0, buffer_kb=375.0)
    saved = cache_mod._ACTIVE
    disable_cache()
    try:
        start = time.perf_counter()
        result = run_many(
            "cubic", "proteus-s", config,
            n_flows=n_flows, n_scavengers=4, duration_s=duration_s, seed=1,
        )
        elapsed = time.perf_counter() - start
    finally:
        cache_mod._ACTIVE = saved
    assert result.dumbbell is not None  # live run, never cache-rebuilt
    sim = result.dumbbell.sim
    fired = sim.events_fired
    virtual = sim.events_virtual
    return (fired + virtual) / elapsed, fired, virtual, elapsed


def tracing_overhead(duration_s: float = 3.0) -> dict:
    """Events/sec of the scenario bench with tracing off vs on.

    The disabled number backs the "zero overhead when off" claim in
    ``docs/OBSERVABILITY.md`` (the hot loops guard every emit behind a
    single ``is not None`` test); the enabled number quantifies what a
    :class:`~repro.obs.CollectingTracer` costs when you do turn it on.
    """
    from ..obs import CollectingTracer

    config = LinkConfig(bandwidth_mbps=50.0, rtt_ms=30.0, buffer_kb=375.0)
    specs = [FlowSpec("cubic"), FlowSpec("proteus-s", start_time=1.0)]
    saved = cache_mod._ACTIVE
    disable_cache()
    try:
        start = time.perf_counter()
        off = run_flows(specs, config, duration_s=duration_s, seed=1)
        off_wall = time.perf_counter() - start
        tracer = CollectingTracer()
        start = time.perf_counter()
        on = run_flows(specs, config, duration_s=duration_s, seed=1, tracer=tracer)
        on_wall = time.perf_counter() - start
    finally:
        cache_mod._ACTIVE = saved
    assert off.dumbbell is not None and on.dumbbell is not None
    off_rate = off.dumbbell.sim.events_fired / off_wall
    on_rate = on.dumbbell.sim.events_fired / on_wall
    return {
        "duration_s": duration_s,
        "disabled_events_per_sec": off_rate,
        "enabled_events_per_sec": on_rate,
        "trace_events": len(tracer),
        "enabled_slowdown": off_rate / on_rate if on_rate > 0 else float("inf"),
    }


def adversary_evals_per_sec(budget: int = 6, duration_s: float = 4.0) -> dict:
    """Evaluations/sec of a tiny ``repro attack`` campaign.

    Times the full adversarial-search loop — genome sampling/mutation,
    the per-eval simulation runs (two per eval for ``primary_harm``),
    manifest checkpointing — end to end, serially and with the result
    cache disabled, so the number tracks what one search evaluation
    actually costs.  Shrinking is skipped: its cost depends on whether a
    violation happened to be found, which would make the rate noisy.
    """
    import shutil
    import tempfile

    from ..adversary import CampaignConfig, run_campaign

    config = CampaignConfig(
        objective="primary_harm",
        budget=budget,
        seed=11,
        generation_size=max(2, budget // 2),
        duration_s=duration_s,
    )
    out_dir = tempfile.mkdtemp(prefix="repro-bench-adversary-")
    saved = cache_mod._ACTIVE
    disable_cache()
    try:
        start = time.perf_counter()
        result = run_campaign(config, out_dir, jobs=1, shrink=False)
        elapsed = time.perf_counter() - start
    finally:
        cache_mod._ACTIVE = saved
        shutil.rmtree(out_dir, ignore_errors=True)
    evals = len(result.evaluated)
    return {
        "evals": evals,
        "duration_s": duration_s,
        "wall_s": elapsed,
        "evals_per_sec": evals / elapsed if elapsed > 0 else 0.0,
    }


# ----------------------------------------------------------------------
# Figure workloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FigureBench:
    """One timed figure-shaped workload."""

    name: str
    run: Callable[[float], object]  # duration multiplier -> result


def _fig03_buffer_point(scale_f: float) -> object:
    return run_flows(
        [FlowSpec("proteus-p")], EMULAB_SHALLOW, duration_s=8.0 * scale_f, seed=2
    )


def _fig05_fairness(scale_f: float) -> object:
    return run_homogeneous(
        "proteus-s", 3, EMULAB_DEFAULT, stagger_s=2.0, measure_s=8.0 * scale_f, seed=2
    )


def _fig07_pair(scale_f: float) -> object:
    return run_pair("cubic", "proteus-s", EMULAB_DEFAULT, duration_s=10.0 * scale_f, seed=3)


def _trial_experiment(seed: int) -> float:
    """Module-level (hence picklable) experiment for the trial sweep."""
    result = run_flows(
        [FlowSpec("cubic"), FlowSpec("proteus-s", start_time=1.0)],
        EMULAB_DEFAULT,
        duration_s=6.0,
        seed=seed,
    )
    return result.throughput_mbps(0)


def _trials_sweep(scale_f: float) -> object:
    return run_trials(_trial_experiment, n_trials=max(2, int(4 * scale_f)), base_seed=1)


def _dynamics_step(scale_f: float) -> object:
    """Timeline scenario: bandwidth step-down plus burst loss mid-run.

    Exercises the dynamics subsystem (backlog remap, Gilbert-Elliott
    chain, timeline-aware cache keys) in the CI bench smoke job.
    """
    duration_s = 10.0 * scale_f
    timeline = Timeline(
        (
            BandwidthStep(at_s=0.4 * duration_s, bandwidth_mbps=10.0),
            GilbertLoss(
                at_s=0.6 * duration_s, p_enter_bad=0.01, p_exit_bad=0.3, loss_bad=0.5
            ),
        ),
        label="bench-dynamics",
    )
    return run_flows(
        [FlowSpec("cubic"), FlowSpec("proteus-s", start_time=1.0)],
        EMULAB_DEFAULT,
        duration_s=duration_s,
        seed=4,
        timeline=timeline,
    )


FIGURE_BENCHES: tuple[FigureBench, ...] = (
    FigureBench("fig03_buffer_point", _fig03_buffer_point),
    FigureBench("fig05_fairness", _fig05_fairness),
    FigureBench("fig07_pair", _fig07_pair),
    FigureBench("trials_pair_sweep", _trials_sweep),
    FigureBench("dynamics_step_timeline", _dynamics_step),
)


# ----------------------------------------------------------------------
# Suite driver
# ----------------------------------------------------------------------
def run_bench(
    quick: bool = False,
    jobs: int | None = None,
    use_cache: bool = True,
    cache_root: str | Path | None = None,
    fidelity: Fidelity | str | None = None,
) -> dict:
    """Run the full benchmark suite and return the result record.

    ``fidelity`` selects the execution mode of the *scenario* bench (the
    headline events/sec number); ``None`` resolves ``REPRO_FIDELITY``
    (exact by default), so CI can run the suite once per mode.  The
    engine microbenchmarks are mode-independent — batched same-timestamp
    dispatch is always on — and the figure workloads run at the same
    mode so their wall times track what a sweep at that fidelity costs.
    """
    fid = resolve_fidelity(fidelity)
    if jobs is None:
        jobs = default_jobs()
    if use_cache:
        cache = enable_cache(cache_root)
    else:
        cache = None
        disable_cache()
    try:
        suite_start = time.perf_counter()
        n_events = 50_000 if quick else 200_000
        engine = {
            "n_events": n_events,
            "fast_events_per_sec": engine_events_per_sec(n_events, fast=True),
            "event_events_per_sec": engine_events_per_sec(n_events, fast=False),
        }
        scenario_duration = 3.0 if quick else 6.0
        # Best of two draws: the scenario bench is a short single-process
        # run, so one unlucky scheduler preemption otherwise dominates.
        best = max(
            (scenario_events_per_sec(scenario_duration, fidelity=fid)
             for _ in range(2)),
            key=lambda r: r[0],
        )
        events_per_sec, fired, virtual, wall = best
        scenario = {
            "duration_s": scenario_duration,
            "fidelity": fid.mode,
            "events": fired,
            "events_virtual": virtual,
            "wall_s": wall,
            "events_per_sec": events_per_sec,
        }
        n_flows = 250 if quick else 1000
        scale_rate, scale_fired, scale_virtual, scale_wall = scale_events_per_sec(
            n_flows=n_flows, duration_s=4.0 if quick else 10.0
        )
        scale_bench = {
            "n_flows": n_flows,
            "events": scale_fired,
            "events_virtual": scale_virtual,
            "wall_s": scale_wall,
            "events_per_sec": scale_rate,
        }
        scale_f = 0.4 if quick else 1.0
        figures = {}
        for bench in FIGURE_BENCHES:
            start = time.perf_counter()
            bench.run(scale_f)
            figures[bench.name] = {"wall_s": time.perf_counter() - start}
        tracing = tracing_overhead(1.5 if quick else 3.0)
        adversary = adversary_evals_per_sec(
            budget=4 if quick else 6, duration_s=3.0 if quick else 4.0
        )
        record = {
            "schema": SCHEMA_VERSION,
            "quick": quick,
            "jobs": jobs,
            "fidelity": fid.mode,
            "engine": engine,
            "scenario": scenario,
            # Headline number for the CI regression gate (effective
            # events/sec: fired + virtual over wall).
            "events_per_sec": events_per_sec,
            # Many-flow topology stress (see scale_events_per_sec);
            # gated separately by the baseline's scale.events_per_sec.
            "scale": scale_bench,
            "tracing": tracing,
            # Adversarial-search throughput (repro attack); recorded into
            # the history trajectory, not gated by the baseline.
            "adversary": adversary,
            "figures": figures,
            "cache": {
                "enabled": cache is not None,
                **(
                    cache.stats()
                    if cache
                    else {"hits": 0, "misses": 0, "stores": 0, "quarantined": 0}
                ),
            },
            "suite_wall_s": time.perf_counter() - suite_start,
        }
        return record
    finally:
        reset_cache_state()


def profile_scenario(
    duration_s: float = 3.0,
    fidelity: Fidelity | str | None = None,
    top: int = 20,
) -> str:
    """cProfile the scenario bench; returns the top-*N* report as text.

    CI attaches this to the workflow run (``repro bench --profile``) so a
    hot-path regression flagged by the baseline gate is diagnosable from
    the artifact alone — the cumulative-time ranking points at the layer
    (engine dispatch, link send, sender tick, stats append) that grew.
    """
    import cProfile
    import io
    import pstats

    fid = resolve_fidelity(fidelity)
    profiler = cProfile.Profile()
    profiler.enable()
    scenario_events_per_sec(duration_s, fidelity=fid)
    profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(top)
    header = (
        f"# repro bench --profile: scenario bench, fidelity={fid.mode}, "
        f"duration_s={duration_s}, top {top} by cumulative time\n"
    )
    return header + buf.getvalue()


# ----------------------------------------------------------------------
# Trajectory history and baseline management
# ----------------------------------------------------------------------
def machine_tag() -> dict:
    """Stable-ish description of the host a bench run executed on.

    Rates are only comparable within one machine class; the tag lets the
    committed trajectory hold entries from laptops and CI runners side
    by side without anyone mistaking a hardware change for a regression.
    """
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "node": platform.node(),
        "ci": bool(os.environ.get("CI")),
    }


def history_entry(record: dict) -> dict:
    """Compact per-run summary appended to the ``BENCH_sim.json`` history.

    Full records (figure wall times, cache stats, tracing section) are
    large and machine-noisy; the trajectory keeps just the gated rates
    plus enough context to interpret them.
    """
    from datetime import datetime, timezone

    scenario = record.get("scenario", {})
    engine = record.get("engine", {})
    return {
        "recorded_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": machine_tag(),
        "schema": record.get("schema"),
        "quick": record.get("quick"),
        "fidelity": record.get("fidelity"),
        "events_per_sec": record.get("events_per_sec"),
        "scale_events_per_sec": record.get("scale", {}).get("events_per_sec"),
        "scenario_events": scenario.get("events"),
        "scenario_events_virtual": scenario.get("events_virtual"),
        "engine_fast_events_per_sec": engine.get("fast_events_per_sec"),
        "engine_event_events_per_sec": engine.get("event_events_per_sec"),
        "adversary_evals_per_sec": record.get("adversary", {}).get(
            "evals_per_sec"
        ),
        "tracing_enabled_slowdown": record.get("tracing", {}).get(
            "enabled_slowdown"
        ),
        "suite_wall_s": record.get("suite_wall_s"),
    }


def append_history(path: str | Path, record: dict) -> int:
    """Append ``record``'s summary to the trajectory file; returns its size.

    The file is ``{"history_schema": 1, "runs": [entry, ...]}``; a legacy
    single-record file (pre-history ``repro bench --out``) or unreadable
    JSON is replaced by a fresh history.  Only the newest
    :data:`HISTORY_LIMIT` runs are kept.
    """
    path = Path(path)
    history: dict = {"history_schema": HISTORY_SCHEMA_VERSION, "runs": []}
    try:
        data = json.loads(path.read_text())
        if isinstance(data, dict) and isinstance(data.get("runs"), list):
            history["runs"] = data["runs"]
    except (OSError, ValueError):
        pass
    history["runs"].append(history_entry(record))
    history["runs"] = history["runs"][-HISTORY_LIMIT:]
    path.write_text(json.dumps(history, indent=2) + "\n")
    return len(history["runs"])


def update_baseline(path: str | Path, record: dict) -> dict:
    """Write derated floors from ``record`` to the committed baseline.

    Replaces the manual copy-with-x0.6 step the baseline's comment used
    to prescribe: every gated rate becomes ``measured x derate`` (the
    baseline's own ``derate`` key, default :data:`BASELINE_DERATE`),
    rounded down to the nearest 1000 events/sec.  The ``_comment`` and
    ``derate`` keys of an existing baseline are preserved; the scenario
    floor is written per fidelity mode — the top-level ``events_per_sec``
    stays the packet-exact floor and hybrid runs update
    ``fidelity.hybrid.events_per_sec`` — so one file gates both CI modes.
    """
    path = Path(path)
    baseline: dict = {}
    try:
        existing = json.loads(path.read_text())
        if isinstance(existing, dict):
            baseline = existing
    except (OSError, ValueError):
        pass
    derate = float(baseline.get("derate", BASELINE_DERATE))
    baseline.setdefault(
        "_comment",
        "Committed perf baseline for the CI bench-smoke gate "
        "(repro bench --check-against). Floors are measured rates derated "
        "by `derate` so CI-runner variance never false-positives. "
        "Regenerate with: PYTHONPATH=src python -m repro bench "
        "--update-baseline (once per fidelity mode).",
    )
    baseline["derate"] = derate
    baseline["schema"] = record.get("schema", SCHEMA_VERSION)

    def floor(rate: float) -> int:
        return int(rate * derate // 1000 * 1000)

    engine = record.get("engine", {})
    baseline.setdefault("engine", {})
    baseline["engine"]["fast_events_per_sec"] = floor(engine["fast_events_per_sec"])
    baseline["engine"]["event_events_per_sec"] = floor(
        engine["event_events_per_sec"]
    )
    mode = record.get("fidelity", "exact")
    if mode == "exact":
        baseline["events_per_sec"] = floor(record["events_per_sec"])
        if "scale" in record:
            baseline.setdefault("scale", {})
            baseline["scale"]["events_per_sec"] = floor(
                record["scale"]["events_per_sec"]
            )
    else:
        baseline.setdefault("fidelity", {})
        baseline["fidelity"][mode] = {
            "events_per_sec": floor(record["events_per_sec"])
        }
    path.write_text(json.dumps(baseline, indent=2) + "\n")
    return baseline


def write_bench_json(path: str | Path, record: dict) -> None:
    Path(path).write_text(json.dumps(record, indent=2) + "\n")


def check_regression(
    record: dict, baseline: dict, tolerance: float | None = None
) -> list[str]:
    """Compare against a committed baseline; returns failure messages.

    Only events/sec rates are gated (wall times shift with machine load
    and scenario edits; throughput of the fixed microbenchmark is the
    stable signal).  A metric missing from the baseline is skipped so the
    gate never blocks adding new measurements.  ``tolerance`` overrides
    the default :data:`REGRESSION_TOLERANCE` fractional drop — CI runs a
    second, tighter pass (``--tolerance 0.05``) with tracing disabled to
    enforce the observability layer's when-off overhead budget.

    The scenario floor is fidelity-aware: a record produced in a
    non-exact mode is compared against the baseline's
    ``fidelity.<mode>.events_per_sec`` floor when one is committed, so a
    hybrid CI run is held to the hybrid speedup target rather than the
    (much lower) packet-exact floor.
    """
    if tolerance is None:
        tolerance = REGRESSION_TOLERANCE
    failures: list[str] = []
    mode = record.get("fidelity", "exact")
    scenario_name = "events_per_sec"
    scenario_ref = baseline.get("events_per_sec")
    per_mode = baseline.get("fidelity", {}).get(mode)
    if mode != "exact" and isinstance(per_mode, dict):
        scenario_name = f"fidelity.{mode}.events_per_sec"
        scenario_ref = per_mode.get("events_per_sec")
    # The scale floor is only meaningful in exact mode (run_many's
    # bounded short flows all take the packet-exact path anyway, but a
    # hybrid record's wall time includes hybrid scheduling overheads the
    # exact floor was not measured under).
    scale_ref = baseline.get("scale", {}).get("events_per_sec") if mode == "exact" else None
    checks = (
        (scenario_name, record.get("events_per_sec"), scenario_ref),
        (
            "scale.events_per_sec",
            record.get("scale", {}).get("events_per_sec"),
            scale_ref,
        ),
        (
            "engine.fast_events_per_sec",
            record.get("engine", {}).get("fast_events_per_sec"),
            baseline.get("engine", {}).get("fast_events_per_sec"),
        ),
        (
            "engine.event_events_per_sec",
            record.get("engine", {}).get("event_events_per_sec"),
            baseline.get("engine", {}).get("event_events_per_sec"),
        ),
    )
    for name, current, reference in checks:
        if current is None or reference is None or reference <= 0:
            continue
        floor = (1.0 - tolerance) * reference
        if current < floor:
            failures.append(
                f"{name} regressed: {current:,.0f}/s < {floor:,.0f}/s "
                f"(baseline {reference:,.0f}/s - {tolerance:.0%})"
            )
    return failures
