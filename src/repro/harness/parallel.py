"""Process-pool experiment execution.

The paper's evaluation is a large scenario x seed matrix ("the mean of at
least 10 trials in each scenario", 22 figures), and every seeded
simulation is independent and deterministic.  That makes the figure suite
embarrassingly parallel: :class:`ParallelExecutor` fans experiment calls
across worker processes and returns results in *submission order* (ordered
by seed, not by completion), so parallel execution is byte-identical to
serial — the determinism digest gate in ``tests/test_determinism.py``
asserts exactly that.

Concurrency is controlled by the ``REPRO_JOBS`` environment variable
(default ``os.cpu_count()``); ``REPRO_JOBS=1`` is an *exact* serial
fallback — no pool, no pickling, same call stack — so CI and debugging
behave identically to the pre-parallel harness.

Experiment callables that cannot be pickled (lambdas, closures, bound
locals — common in tests) silently fall back to the serial path rather
than failing: parallelism is an optimisation, never a behaviour change.
Worker processes run with ``REPRO_JOBS=1`` so nested harness calls
(e.g. :func:`repro.harness.runner.run_pair` inside a trial) never fork a
pool-per-worker fan-out bomb.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any, TypeVar

T = TypeVar("T")
R = TypeVar("R")

_FORCE_SERIAL_ENV = {"REPRO_JOBS": "1"}


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default: ``os.cpu_count()``)."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        try:
            jobs = int(raw)
        except ValueError as exc:
            raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}") from exc
        if jobs < 1:
            raise ValueError(f"REPRO_JOBS must be >= 1, got {jobs}")
        return jobs
    return os.cpu_count() or 1


def _is_picklable(obj: Any) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:  # pickle raises a zoo: PicklingError, TypeError, ...
        return False
    return True


def _init_worker() -> None:  # pragma: no cover - runs in the child
    """Pin workers to serial so nested harness calls never fork again."""
    os.environ.update(_FORCE_SERIAL_ENV)


class ParallelExecutor:
    """Fans independent experiment calls across a process pool.

    Args:
        jobs: Worker count; ``None`` reads ``REPRO_JOBS`` /
            ``os.cpu_count()``.  ``1`` short-circuits to exact serial
            execution in the calling process.
    """

    def __init__(self, jobs: int | None = None):
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """``[fn(x) for x in items]`` with deterministic result order.

        Results are ordered by input position regardless of which worker
        finishes first.  Falls back to the serial comprehension when the
        pool would not help (one job, one item) or when ``fn``/``items``
        cannot cross a process boundary.
        """
        materialized = list(items)
        if (
            self.jobs <= 1
            or len(materialized) <= 1
            or not _is_picklable(fn)
            or not _is_picklable(materialized)
        ):
            return [fn(item) for item in materialized]
        workers = min(self.jobs, len(materialized))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker
        ) as pool:
            # Executor.map preserves submission order by construction.
            return list(pool.map(fn, materialized))

    def run_all(self, calls: Sequence[tuple[Callable[..., R], tuple]]) -> list[R]:
        """Run ``fn(*args)`` for each ``(fn, args)`` pair, ordered as given.

        The heterogeneous sibling of :meth:`map`, used to dispatch e.g. a
        solo baseline and its paired run concurrently.
        """
        materialized = list(calls)
        if (
            self.jobs <= 1
            or len(materialized) <= 1
            or not _is_picklable(materialized)
        ):
            return [fn(*args) for fn, args in materialized]
        workers = min(self.jobs, len(materialized))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker
        ) as pool:
            futures = [pool.submit(fn, *args) for fn, args in materialized]
            return [future.result() for future in futures]


def pmap(fn: Callable[[T], R], items: Iterable[T], jobs: int | None = None) -> list[R]:
    """Module-level convenience for ``ParallelExecutor(jobs).map``."""
    return ParallelExecutor(jobs).map(fn, items)
