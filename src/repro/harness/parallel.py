"""Process-pool experiment execution.

The paper's evaluation is a large scenario x seed matrix ("the mean of at
least 10 trials in each scenario", 22 figures), and every seeded
simulation is independent and deterministic.  That makes the figure suite
embarrassingly parallel: :class:`ParallelExecutor` fans experiment calls
across worker processes and returns results in *submission order* (ordered
by seed, not by completion), so parallel execution is byte-identical to
serial — the determinism digest gate in ``tests/test_determinism.py``
asserts exactly that.

Concurrency is controlled by the ``REPRO_JOBS`` environment variable
(default ``os.cpu_count()``); ``REPRO_JOBS=1`` is an *exact* serial
fallback — no pool, no pickling, same call stack — so CI and debugging
behave identically to the pre-parallel harness.

Experiment callables that cannot be pickled (lambdas, closures, bound
locals — common in tests) silently fall back to the serial path rather
than failing: parallelism is an optimisation, never a behaviour change.
The picklability probe is cheap — only ``fn`` and the *first* item are
test-pickled up front; an item deeper in the stream that turns out
unpicklable is computed in-process on its own (a per-item fallback)
instead of silently serialising the whole sweep or aborting it.
Worker processes run with ``REPRO_JOBS=1`` so nested harness calls
(e.g. :func:`repro.harness.runner.run_pair` inside a trial) never fork a
pool-per-worker fan-out bomb.

Failure semantics differ by method: :meth:`ParallelExecutor.map`
re-raises a worker exception unchanged (byte-compatible with the serial
comprehension), while :meth:`ParallelExecutor.run_all` — whose calls are
heterogeneous — wraps it in :class:`ParallelCallError` carrying the call
index and repr so the failing ``(fn, args)`` is attributable.  Both
route ``future.result()`` through :mod:`repro.harness.supervise` (the
``no-bare-subprocess-result`` lint rule enforces that repo-wide);
fault-*tolerant* execution with retries, crash recovery and manifest
journaling lives there too.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any, TypeVar

T = TypeVar("T")
R = TypeVar("R")

_FORCE_SERIAL_ENV = {"REPRO_JOBS": "1"}


class ParallelCallError(RuntimeError):
    """A pool-dispatched call failed; names *which* call.

    ``future.result()`` re-raises a worker exception with a traceback
    that ends inside the pool plumbing — useless for telling apart the
    forty identical-looking calls of a sweep.  This wrapper carries the
    submission index and the call's repr; the original exception is
    chained as ``__cause__``.
    """

    def __init__(self, message: str, index: int | None = None):
        super().__init__(message)
        self.index = index


def call_repr(fn: Callable[..., Any], args: tuple) -> str:
    """``module.qualname(arg, ...)`` for failure attribution."""
    name = getattr(fn, "__qualname__", None) or repr(fn)
    inner = ", ".join(repr(a) for a in args)
    return f"{name}({inner})"


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default: ``os.cpu_count()``)."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        try:
            jobs = int(raw)
        except ValueError as exc:
            raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}") from exc
        if jobs < 1:
            raise ValueError(f"REPRO_JOBS must be >= 1, got {jobs}")
        return jobs
    return os.cpu_count() or 1


def _is_picklable(obj: Any) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:  # pickle raises a zoo: PicklingError, TypeError, ...
        return False
    return True


def _init_worker() -> None:  # pragma: no cover - runs in the child
    """Pin workers to serial so nested harness calls never fork again."""
    os.environ.update(_FORCE_SERIAL_ENV)


class ParallelExecutor:
    """Fans independent experiment calls across a process pool.

    Args:
        jobs: Worker count; ``None`` reads ``REPRO_JOBS`` /
            ``os.cpu_count()``.  ``1`` short-circuits to exact serial
            execution in the calling process.
    """

    def __init__(self, jobs: int | None = None):
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """``[fn(x) for x in items]`` with deterministic result order.

        Results are ordered by input position regardless of which worker
        finishes first.  Falls back to the serial comprehension when the
        pool would not help (one job, one item) or when ``fn``/``items``
        cannot cross a process boundary.
        """
        materialized = list(items)
        if (
            self.jobs <= 1
            or len(materialized) <= 1
            or not _is_picklable(fn)
            # Probe only the first item: pickling the whole materialized
            # list up front doubled the serialisation cost of every
            # sweep.  A later item that cannot cross the process
            # boundary is handled per-item below.
            or not _is_picklable(materialized[0])
        ):
            return [fn(item) for item in materialized]
        # Lazy import: supervise builds on this module.
        from .supervise import pool_map_result

        workers = min(self.jobs, len(materialized))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker
        ) as pool:
            futures = [pool.submit(fn, item) for item in materialized]
            # Collected in submission order, so results stay ordered by
            # input position regardless of completion order.
            return [
                pool_map_result(future, fn, item)
                for future, item in zip(futures, materialized)
            ]

    def run_all(self, calls: Sequence[tuple[Callable[..., R], tuple]]) -> list[R]:
        """Run ``fn(*args)`` for each ``(fn, args)`` pair, ordered as given.

        The heterogeneous sibling of :meth:`map`, used to dispatch e.g. a
        solo baseline and its paired run concurrently.  A worker failure
        is re-raised as :class:`ParallelCallError` naming the call index
        and repr (original exception chained); the serial path re-raises
        unchanged because its traceback already reaches the call site.
        """
        materialized = list(calls)
        if (
            self.jobs <= 1
            or len(materialized) <= 1
            or not _is_picklable(materialized[0])
        ):
            return [fn(*args) for fn, args in materialized]
        from .supervise import pool_call_result

        workers = min(self.jobs, len(materialized))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker
        ) as pool:
            futures = [pool.submit(fn, *args) for fn, args in materialized]
            return [
                pool_call_result(future, index, fn, args)
                for index, (future, (fn, args)) in enumerate(
                    zip(futures, materialized)
                )
            ]


def pmap(fn: Callable[[T], R], items: Iterable[T], jobs: int | None = None) -> list[R]:
    """Module-level convenience for ``ParallelExecutor(jobs).map``."""
    return ParallelExecutor(jobs).map(fn, items)
