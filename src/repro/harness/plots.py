"""Dependency-free ASCII visualisation for time series and CDFs.

The paper's figures are line plots; these helpers render their gist in a
terminal so benchmark logs stay self-contained (no matplotlib in the
offline environment).
"""

from __future__ import annotations

from collections.abc import Sequence

_BLOCKS = " .:-=+*#%@"


def sparkline(values: Sequence[float], lo: float | None = None,
              hi: float | None = None) -> str:
    """One-line density plot of ``values`` scaled between lo and hi."""
    if not values:
        raise ValueError("no values")
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    if hi <= lo:
        return _BLOCKS[0] * len(values)
    span = hi - lo
    chars = []
    top = len(_BLOCKS) - 1
    for v in values:
        index = int((min(max(v, lo), hi) - lo) / span * top)
        chars.append(_BLOCKS[index])
    return "".join(chars)


def timeseries_plot(
    series: dict[str, list[tuple[float, float]]],
    width: int = 60,
    label_width: int = 12,
) -> str:
    """Multi-line sparkline plot, one row per named series, shared scale.

    Input series are (time, value) pairs (e.g. from
    ``FlowStats.throughput_series``); each is resampled to ``width``
    columns by nearest-point lookup.
    """
    if not series:
        raise ValueError("no series")
    if width < 2:
        raise ValueError("width must be at least 2")
    all_values = [v for pts in series.values() for _, v in pts if pts]
    if not all_values:
        raise ValueError("series are empty")
    lo, hi = min(all_values), max(all_values)
    lines = [f"{'':<{label_width}}  scale: {lo:.1f} .. {hi:.1f}"]
    for name, pts in series.items():
        if not pts:
            continue
        resampled = _resample([v for _, v in pts], width)
        lines.append(f"{name[:label_width]:<{label_width}}  {sparkline(resampled, lo, hi)}")
    return "\n".join(lines)


def _resample(values: Sequence[float], width: int) -> list[float]:
    if len(values) <= width:
        return list(values)
    step = len(values) / width
    return [values[min(len(values) - 1, int(i * step))] for i in range(width)]


def cdf_plot(samples: Sequence[float], width: int = 50, rows: int = 5) -> str:
    """Coarse ASCII CDF: one row per quantile band, marking its position."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    lo, hi = ordered[0], ordered[-1]
    span = hi - lo if hi > lo else 1.0
    lines = []
    for r in range(rows, 0, -1):
        q = r / rows
        value = ordered[min(len(ordered) - 1, int(q * len(ordered)) - 1)]
        pos = int((value - lo) / span * (width - 1))
        line = [" "] * width
        line[pos] = "|"
        lines.append(f"p{int(q * 100):3d} {''.join(line)} {value:.3f}")
    return "\n".join(lines)
