"""On-disk content-addressed result cache for simulation runs.

Every seeded run is deterministic, so its full measurement record is a
pure function of (scenario config, seed, simulator source).  The cache
exploits that: a run's :class:`~repro.sim.trace.FlowStats` records are
stored as JSON under ``.repro-cache/`` keyed by

    sha256(canonical scenario payload + seed + source-tree digest)

where the source-tree digest hashes every ``.py`` file under the
installed ``repro`` package.  Re-running an unchanged benchmark is a
cache hit; *any* source edit changes the digest and invalidates every
entry cleanly (stale entries are simply never addressed again).

Floats are serialised via ``float.hex()`` — exact representation, no
rounding — so a cache round-trip is byte-identical to recomputation and
the determinism digest gate (``repro.devtools.trace_digest``) cannot
tell them apart.  A corrupt or truncated cache entry is treated as a
miss and recomputed, never an error; on first detection the torn file is
**quarantined** (moved aside to ``<key>.corrupt``) so every later run
under the same key is a clean miss instead of a re-read/re-parse/re-fail
cycle.  Quarantines are counted in :meth:`ResultCache.stats` and
surfaced by ``repro bench``.

The cache is opt-in: set ``REPRO_CACHE=1`` (and optionally
``REPRO_CACHE_DIR``), or call :func:`enable_cache` programmatically.
``repro bench`` enables it by default.
"""

from __future__ import annotations

import hashlib
import json
import os
from array import array
from pathlib import Path
from typing import Any, Iterable

from ..sim.trace import FlowStats

SCHEMA_VERSION = 1

# ----------------------------------------------------------------------
# Source-tree digest
# ----------------------------------------------------------------------
_SOURCE_DIGEST: str | None = None


def source_digest() -> str:
    """sha256 over every ``.py`` file of the installed ``repro`` package.

    Computed once per process (hashing ~150 files per ``run_flows`` call
    would dwarf small runs); tests poke :func:`reset_source_digest_cache`
    after editing files.
    """
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        package_root = Path(__file__).resolve().parent.parent
        hasher = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            hasher.update(path.relative_to(package_root).as_posix().encode())
            hasher.update(b"\0")
            hasher.update(path.read_bytes())
            hasher.update(b"\0")
        _SOURCE_DIGEST = hasher.hexdigest()
    return _SOURCE_DIGEST


def reset_source_digest_cache() -> None:
    """Forget the memoised source digest (test hook)."""
    global _SOURCE_DIGEST
    _SOURCE_DIGEST = None


# ----------------------------------------------------------------------
# FlowStats (de)serialisation — exact float round-trip via float.hex()
# ----------------------------------------------------------------------
def _hex_list(values: Iterable[float]) -> list[str]:
    return [float(v).hex() for v in values]


def hex_floats(value: Any) -> Any:
    """Recursively replace floats with exact ``float.hex()`` strings.

    Cache payloads must address *exact* float values: two timelines that
    differ by one ULP are different experiments.  ``json.dumps`` would
    round-trip doubles faithfully, but routing every payload float
    through the same hex encoding as the stored records keeps the key
    derivation independent of JSON float formatting.  Bools and ints
    pass through untouched.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, dict):
        return {key: hex_floats(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [hex_floats(item) for item in value]
    return value


def payload_key(payload: dict) -> str:
    """Content address of a canonicalised payload (incl. source digest).

    The single key derivation shared by the result cache and the sweep
    manifests of :mod:`repro.harness.supervise`: ``sha256`` over the
    canonical JSON of ``{schema, source-tree digest, **payload}``.
    Callers hex-encode floats first (:func:`hex_floats`) so keys address
    *exact* values.
    """
    canonical = json.dumps(
        {"schema": SCHEMA_VERSION, "source": source_digest(), **payload},
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def _opt_hex(value: float | None) -> str | None:
    return None if value is None else float(value).hex()


def _opt_unhex(value: str | None) -> float | None:
    return None if value is None else float.fromhex(value)


def stats_to_record(stats: FlowStats) -> dict:
    """JSON-safe dict capturing one flow's full measurement record."""
    return {
        "flow_id": stats.flow_id,
        "start_time": float(stats.start_time).hex(),
        "end_time": _opt_hex(stats.end_time),
        "ack_times": _hex_list(stats.ack_times),
        "acked_bytes": list(stats.acked_bytes),
        "rtts": _hex_list(stats.rtts),
        "total_acked_bytes": stats.total_acked_bytes,
        "delivered_bytes": stats.delivered_bytes,
        "first_delivery": _opt_hex(stats.first_delivery),
        "last_delivery": _opt_hex(stats.last_delivery),
        "loss_times": _hex_list(stats.loss_times),
        "packets_sent": stats.packets_sent,
    }


def stats_from_record(record: dict) -> FlowStats:
    """Rebuild a :class:`FlowStats` bit-identical to the one serialised."""
    stats = FlowStats(flow_id=record["flow_id"])
    stats.start_time = float.fromhex(record["start_time"])
    stats.end_time = _opt_unhex(record["end_time"])
    stats.ack_times = array("d", (float.fromhex(v) for v in record["ack_times"]))
    stats.acked_bytes = array("q", record["acked_bytes"])
    stats.rtts = array("d", (float.fromhex(v) for v in record["rtts"]))
    stats.total_acked_bytes = record["total_acked_bytes"]
    stats.delivered_bytes = record["delivered_bytes"]
    stats.first_delivery = _opt_unhex(record["first_delivery"])
    stats.last_delivery = _opt_unhex(record["last_delivery"])
    stats.loss_times = array("d", (float.fromhex(v) for v in record["loss_times"]))
    stats.packets_sent = record["packets_sent"]
    return stats


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed store of run results under ``root``.

    Entries are one JSON file per key at ``root/<k[:2]>/<k>.json`` (the
    two-char fan-out keeps directories small on big sweeps).  Writes are
    atomic (tempfile + rename) so a crashed run never leaves a torn entry
    that a later run would trust.  An entry that turns out corrupt anyway
    (truncated by a full disk, hand-edited, ...) is quarantined to
    ``<key>.corrupt`` on first read so it is detected once, not on every
    subsequent run.
    """

    def __init__(self, root: str | Path | None = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0

    def stats(self) -> dict:
        """Counter snapshot: hits, misses, stores, quarantined."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
        }

    # -- keys ----------------------------------------------------------
    def key_for(self, payload: dict) -> str:
        """Content address of a canonicalised scenario payload."""
        return payload_key(payload)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, key: str) -> None:
        """Move a corrupt entry aside to ``<key>.corrupt``.

        The original path then reads as a clean miss (and a recompute
        heals it with a fresh store); the quarantined file is kept for
        post-mortems rather than deleted.
        """
        path = self._path(key)
        try:
            path.replace(path.with_suffix(".corrupt"))
        except OSError:
            return  # already gone (e.g. a racing run quarantined it)
        self.quarantined += 1

    # -- raw records ---------------------------------------------------
    def load(self, key: str) -> dict | None:
        """The record stored under ``key``; None on miss or corruption."""
        path = self._path(key)
        try:
            with path.open("r") as handle:
                record = json.load(handle)
        except OSError:
            return None  # missing or unreadable: a plain miss
        except ValueError:
            self._quarantine(key)  # torn JSON: move aside, then miss
            return None
        if not isinstance(record, dict) or record.get("schema") != SCHEMA_VERSION:
            self._quarantine(key)  # wrong shape under the right key
            return None
        return record

    def store(self, key: str, record: dict) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps({"schema": SCHEMA_VERSION, **record}))
        tmp.replace(path)
        self.stores += 1

    # -- run-level helpers --------------------------------------------
    def load_stats(self, key: str) -> list[FlowStats] | None:
        """Rebuilt per-flow stats for ``key``; None on miss/corruption."""
        record = self.load(key)
        if record is None:
            self.misses += 1
            return None
        try:
            stats = [stats_from_record(entry) for entry in record["stats"]]
        except (KeyError, TypeError, ValueError, OverflowError):
            self._quarantine(key)
            self.misses += 1
            return None  # corrupt entry: quarantined, fall back to recompute
        self.hits += 1
        return stats

    def store_stats(self, key: str, stats: Iterable[FlowStats]) -> None:
        self.store(key, {"stats": [stats_to_record(s) for s in stats]})

    def load_run(self, key: str) -> tuple[list[FlowStats], dict | None] | None:
        """Rebuilt stats plus the stored metrics snapshot for ``key``.

        Returns ``(stats, snapshot)`` on a hit (``snapshot`` is None for
        records written by :meth:`store_stats`, which carry no metrics),
        or None on miss/corruption — same hit/miss/quarantine accounting
        as :meth:`load_stats`.
        """
        record = self.load(key)
        if record is None:
            self.misses += 1
            return None
        try:
            stats = [stats_from_record(entry) for entry in record["stats"]]
            snapshot = record.get("metrics")
            if snapshot is not None and not isinstance(snapshot, dict):
                raise TypeError("metrics snapshot must be a dict")
        except (KeyError, TypeError, ValueError, OverflowError):
            self._quarantine(key)
            self.misses += 1
            return None  # corrupt entry: quarantined, fall back to recompute
        self.hits += 1
        return stats, snapshot

    def store_run(
        self,
        key: str,
        stats: Iterable[FlowStats],
        metrics: dict | None = None,
    ) -> None:
        """Store a run's stats and (optionally) its metrics snapshot."""
        record: dict = {"stats": [stats_to_record(s) for s in stats]}
        if metrics is not None:
            record["metrics"] = metrics
        self.store(key, record)


# ----------------------------------------------------------------------
# Active-cache plumbing (consulted by repro.harness.runner.run_flows)
# ----------------------------------------------------------------------
_UNSET: Any = object()
_ACTIVE: ResultCache | None = _UNSET
_ENV_CACHE: ResultCache | None = None


def active_cache() -> ResultCache | None:
    """The cache ``run_flows`` should consult, or None.

    Priority: an explicit :func:`enable_cache`/:func:`disable_cache`
    call, then the ``REPRO_CACHE`` environment variable.
    """
    global _ENV_CACHE
    if _ACTIVE is not _UNSET:
        return _ACTIVE
    if os.environ.get("REPRO_CACHE", "") in ("", "0"):
        return None
    if _ENV_CACHE is None:
        _ENV_CACHE = ResultCache()
    return _ENV_CACHE


def enable_cache(root: str | Path | None = None) -> ResultCache:
    """Activate result caching for this process; returns the cache."""
    global _ACTIVE
    _ACTIVE = ResultCache(root)
    return _ACTIVE


def disable_cache() -> None:
    """Deactivate result caching (overrides ``REPRO_CACHE``)."""
    global _ACTIVE
    _ACTIVE = None


def reset_cache_state() -> None:
    """Back to env-driven defaults (test hook)."""
    global _ACTIVE, _ENV_CACHE
    _ACTIVE = _UNSET
    _ENV_CACHE = None
