"""The serializable scenario genome the adversarial search mutates.

A :class:`ScenarioGenome` is pure data: one bottleneck configuration,
a :class:`~repro.harness.scenarios.Timeline` of link dynamics, an
optional :class:`~repro.harness.scenarios.TopologySpec`, and a mix of
competing traffic flows (:class:`TrafficSpec`) — everything an
evaluation run needs beyond the controller under test.  It round-trips
through :meth:`ScenarioGenome.to_dict` exactly, so a genome *is* its
cache/manifest key and an archived counterexample replays bit-identically.

Sampling, mutation and crossover draw exclusively from a seeded
:class:`~repro.core.rng.Rng`: the same stream always proposes the same
genome.  :meth:`ScenarioGenome.size` is the shrinking metric — timeline
steps, traffic flows, and "unrounded" scalar parameters each count one
unit, so every accepted shrink step strictly decreases it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.rng import Rng
from ..harness.scenarios import (
    BandwidthFlap,
    BandwidthStep,
    DelayStep,
    LinkConfig,
    LossStep,
    Outage,
    Timeline,
    TimelineStep,
    TopologySpec,
    step_start_s,
    timeline_from_dict,
    topology_from_dict,
)

GENOME_SCHEMA = 1

#: Hostile/competing cross-traffic protocols the sampler may draw.
HOSTILE_PROTOCOLS = ("burst-flood", "onoff")
CROSS_PRIMARY_PROTOCOLS = ("cubic", "bbr")

# Sampling ranges (kept modest so one evaluation stays cheap).
_BW_RANGE_MBPS = (8.0, 60.0)
_RTT_RANGE_MS = (10.0, 80.0)
_BUFFER_RANGE_BDP = (0.3, 2.0)
_NOISE_RANGE = (0.0, 1.5)


@dataclass(frozen=True)
class TrafficSpec:
    """One competing cross-traffic flow in a scenario genome.

    ``params`` are JSON-able keyword arguments forwarded to
    :func:`repro.protocols.make_sender` (e.g. ``burst_packets`` for a
    flooder); the flow's jitter seed derives from the run seed and flow
    index inside the runner, so it is not part of the genome.
    """

    protocol: str
    start_s: float = 0.0
    params: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "start_s": self.start_s,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrafficSpec":
        return cls(
            protocol=str(data["protocol"]),
            start_s=float(data.get("start_s", 0.0)),
            params=dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class ScenarioGenome:
    """A complete adversarial scenario, serializable and shrinkable."""

    bandwidth_mbps: float
    rtt_ms: float
    buffer_kb: float
    duration_s: float
    noise_severity: float = 0.0
    timeline: Timeline = Timeline(())
    topology: TopologySpec | None = None
    traffic: tuple[TrafficSpec, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "traffic", tuple(self.traffic))
        if self.bandwidth_mbps <= 0 or self.rtt_ms <= 0 or self.buffer_kb <= 0:
            raise ValueError("bandwidth, rtt and buffer must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.noise_severity < 0:
            raise ValueError("noise_severity must be non-negative")
        self.timeline.validate()

    # ------------------------------------------------------------------
    # Evaluation glue
    # ------------------------------------------------------------------
    def link_config(self) -> LinkConfig:
        return LinkConfig(
            bandwidth_mbps=self.bandwidth_mbps,
            rtt_ms=self.rtt_ms,
            buffer_kb=self.buffer_kb,
            noise_severity=self.noise_severity,
            label=self.label or "adversary",
        )

    # ------------------------------------------------------------------
    # Serialization (exact JSON round-trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": GENOME_SCHEMA,
            "bandwidth_mbps": self.bandwidth_mbps,
            "rtt_ms": self.rtt_ms,
            "buffer_kb": self.buffer_kb,
            "duration_s": self.duration_s,
            "noise_severity": self.noise_severity,
            "timeline": self.timeline.to_dict(),
            "topology": None if self.topology is None else self.topology.to_dict(),
            "traffic": [flow.to_dict() for flow in self.traffic],
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioGenome":
        if not isinstance(data, dict):
            raise ValueError("genome document must be a dict")
        schema = data.get("schema", GENOME_SCHEMA)
        if schema != GENOME_SCHEMA:
            raise ValueError(f"unsupported genome schema {schema!r}")
        topology = data.get("topology")
        return cls(
            bandwidth_mbps=float(data["bandwidth_mbps"]),
            rtt_ms=float(data["rtt_ms"]),
            buffer_kb=float(data["buffer_kb"]),
            duration_s=float(data["duration_s"]),
            noise_severity=float(data.get("noise_severity", 0.0)),
            timeline=timeline_from_dict(
                data.get("timeline", {"label": "", "steps": []})
            ),
            topology=None if topology is None else topology_from_dict(topology),
            traffic=tuple(
                TrafficSpec.from_dict(flow) for flow in data.get("traffic", [])
            ),
            label=str(data.get("label", "")),
        )

    # ------------------------------------------------------------------
    # Shrinking metric
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Complexity units for delta-debugging: strictly decreasing
        under every accepted shrink step (dropped timeline steps,
        dropped traffic flows, rounded scalar parameters)."""
        scalars = (
            self.bandwidth_mbps,
            self.rtt_ms,
            self.buffer_kb,
            self.duration_s,
            self.noise_severity,
        )
        unrounded = sum(1 for value in scalars if value != _round_param(value))
        return len(self.timeline.steps) + len(self.traffic) + unrounded


def _round_param(value: float) -> float:
    """The "round" form of a scalar knob (one decimal place)."""
    return round(value, 1)


def rounded_scalars(genome: ScenarioGenome) -> ScenarioGenome | None:
    """``genome`` with every scalar knob rounded; ``None`` if already round."""
    fields = {}
    for name in (
        "bandwidth_mbps",
        "rtt_ms",
        "buffer_kb",
        "duration_s",
        "noise_severity",
    ):
        value = getattr(genome, name)
        floor = 0.0 if name == "noise_severity" else 0.1
        rounded = max(_round_param(value), floor)
        if rounded != value:
            fields[name] = rounded
    if not fields:
        return None
    return replace(genome, **fields)


# ----------------------------------------------------------------------
# Seeded sampling
# ----------------------------------------------------------------------
def _sample_step(rng: Rng, duration_s: float) -> TimelineStep:
    """One random link-dynamics step within the run's duration."""
    kind = rng.choice(["bandwidth-step", "delay-step", "outage", "loss-step", "flap"])
    at_s = rng.uniform(0.1 * duration_s, 0.8 * duration_s)
    if kind == "bandwidth-step":
        return BandwidthStep(at_s=at_s, bandwidth_mbps=rng.uniform(2.0, 40.0))
    if kind == "delay-step":
        return DelayStep(at_s=at_s, delay_ms=rng.uniform(5.0, 120.0))
    if kind == "outage":
        return Outage(start_s=at_s, end_s=at_s + rng.uniform(0.1, 0.6))
    if kind == "loss-step":
        return LossStep(at_s=at_s, loss_rate=rng.uniform(0.0, 0.08))
    period_s = rng.uniform(0.5, 3.0)
    return BandwidthFlap(
        start_s=at_s,
        end_s=at_s + rng.uniform(2.0, 0.9 * duration_s),
        period_s=period_s,
        low_mbps=rng.uniform(1.0, 8.0),
        high_mbps=rng.uniform(10.0, 50.0),
    )


def _sample_timeline(rng: Rng, duration_s: float) -> Timeline:
    n_steps = rng.randint(0, 3)
    steps = sorted(
        (_sample_step(rng, duration_s) for _ in range(n_steps)),
        key=_start_key,
    )
    return Timeline(tuple(steps), label="sampled").perturb(
        rng, time_jitter_s=0.0, magnitude_frac=0.0
    )


def _start_key(step: TimelineStep) -> float:
    return step_start_s(step)


def _sample_traffic(rng: Rng, duration_s: float) -> tuple[TrafficSpec, ...]:
    flows: list[TrafficSpec] = []
    for _ in range(rng.randint(0, 2)):
        protocol = rng.choice(list(HOSTILE_PROTOCOLS))
        start_s = rng.uniform(0.0, 0.4 * duration_s)
        if protocol == "burst-flood":
            params = {
                "burst_packets": rng.randint(8, 96),
                "period_s": rng.uniform(0.1, 1.0),
            }
        else:
            params = {
                "on_mbps": rng.uniform(2.0, 30.0),
                "on_s": rng.uniform(0.2, 2.0),
                "off_s": rng.uniform(0.2, 2.0),
            }
        flows.append(TrafficSpec(protocol=protocol, start_s=start_s, params=params))
    if rng.random() < 0.3:
        flows.append(
            TrafficSpec(
                protocol=rng.choice(list(CROSS_PRIMARY_PROTOCOLS)),
                start_s=rng.uniform(0.0, 0.4 * duration_s),
            )
        )
    return tuple(flows)


def sample_genome(rng: Rng, *, duration_s: float = 8.0) -> ScenarioGenome:
    """One random scenario genome drawn entirely from ``rng``."""
    bandwidth_mbps = rng.uniform(*_BW_RANGE_MBPS)
    rtt_ms = rng.uniform(*_RTT_RANGE_MS)
    bdp_kb = bandwidth_mbps * 1e6 * (rtt_ms / 1e3) / 8.0 / 1e3
    buffer_kb = max(10.0, bdp_kb * rng.uniform(*_BUFFER_RANGE_BDP))
    noise_severity = rng.uniform(*_NOISE_RANGE) if rng.random() < 0.4 else 0.0
    return ScenarioGenome(
        bandwidth_mbps=bandwidth_mbps,
        rtt_ms=rtt_ms,
        buffer_kb=buffer_kb,
        duration_s=duration_s,
        noise_severity=noise_severity,
        timeline=_sample_timeline(rng, duration_s),
        traffic=_sample_traffic(rng, duration_s),
        label="sampled",
    )


# ----------------------------------------------------------------------
# Mutation / crossover
# ----------------------------------------------------------------------
def mutate(genome: ScenarioGenome, rng: Rng) -> ScenarioGenome:
    """One mutated copy of ``genome`` (always a valid genome)."""
    choice = rng.random()
    if choice < 0.3:
        # Jitter the link scalars.
        return replace(
            genome,
            bandwidth_mbps=max(1.0, genome.bandwidth_mbps * rng.uniform(0.7, 1.3)),
            rtt_ms=max(2.0, genome.rtt_ms * rng.uniform(0.7, 1.3)),
            buffer_kb=max(10.0, genome.buffer_kb * rng.uniform(0.7, 1.3)),
            noise_severity=min(
                2.0, max(0.0, genome.noise_severity + rng.uniform(-0.3, 0.3))
            ),
            label="mutated",
        )
    if choice < 0.5:
        # Perturb the timeline in place.
        return replace(
            genome,
            timeline=genome.timeline.perturb(
                rng, time_jitter_s=0.5, magnitude_frac=0.25
            ),
            label="mutated",
        )
    if choice < 0.7:
        # Add or drop one timeline step.
        steps = list(genome.timeline.steps)
        if steps and rng.random() < 0.5:
            steps.pop(rng.randrange(len(steps)))
        else:
            steps.append(_sample_step(rng, genome.duration_s))
        steps.sort(key=_start_key)
        timeline = Timeline(tuple(steps), label=genome.timeline.label).perturb(
            rng, time_jitter_s=0.0, magnitude_frac=0.0
        )
        return replace(genome, timeline=timeline, label="mutated")
    # Add, drop, or resample a traffic flow.
    flows = list(genome.traffic)
    if flows and rng.random() < 0.5:
        flows.pop(rng.randrange(len(flows)))
    else:
        flows.extend(_sample_traffic(rng, genome.duration_s))
        flows = flows[:4]  # keep evaluations bounded
    return replace(genome, traffic=tuple(flows), label="mutated")


def crossover(a: ScenarioGenome, b: ScenarioGenome, rng: Rng) -> ScenarioGenome:
    """Recombine two genomes: link from one, dynamics/traffic mixed."""
    link_parent, other = (a, b) if rng.random() < 0.5 else (b, a)
    timeline = a.timeline if rng.random() < 0.5 else b.timeline
    traffic = tuple(
        flow for flow in a.traffic + b.traffic if rng.random() < 0.5
    )[:4]
    return ScenarioGenome(
        bandwidth_mbps=link_parent.bandwidth_mbps,
        rtt_ms=link_parent.rtt_ms,
        buffer_kb=link_parent.buffer_kb,
        duration_s=link_parent.duration_s,
        noise_severity=other.noise_severity if rng.random() < 0.3 else link_parent.noise_severity,
        timeline=timeline,
        topology=link_parent.topology,
        traffic=traffic,
        label="crossover",
    )
