"""Violation objectives the adversarial search maximizes.

Two objectives target the two halves of the scavenger guarantee
(PAPER.md §1): a scavenger must not *harm* primaries, and it must not
*starve* when spare capacity exists.

* ``primary_harm`` — run the scenario twice: once with the primary and
  the genome's cross traffic only (the baseline), once with the
  controller under test added.  The score is the fraction of the
  baseline primary throughput the scavenger's presence removed; a
  violation means the scavenger stole more than the threshold.
* ``starvation`` — run the full scenario once and compare the
  controller's throughput against the spare capacity left over after
  every other flow is accounted for (capacity is integrated from the
  genome's timeline, outages count as zero).  A high score means lots
  of idle capacity while the scavenger sat at ~0.

:func:`evaluate_genome` is the single module-level entry point — it is
picklable, so :func:`repro.harness.supervise.supervised_map` can fan
evaluations out over a process pool, and crashes/timeouts inside it
become structured trial outcomes instead of campaign aborts.  Its
return value is a flat dict of JSON-able scalars, so manifests and
archived artifacts round-trip the score bit-exactly.
"""

from __future__ import annotations

from ..harness.runner import FlowSpec, RunResult, run_flows
from .genome import ScenarioGenome

EVAL_SCHEMA = 1

OBJECTIVES = ("primary_harm", "starvation")

DEFAULT_THRESHOLDS = {"primary_harm": 0.10, "starvation": 0.25}
"""Violation thresholds: ``primary_harm`` is the stolen fraction of the
baseline primary throughput; ``starvation`` is the spare-capacity score
of :func:`starvation_score`."""

#: Event budget per evaluation run — trips the engine watchdog
#: (``SimBudgetExceeded``) on pathological genomes, which the
#: supervision layer records as a ``timed-out`` outcome.
DEFAULT_MAX_EVENTS = 3_000_000

_CONTROLLER_START_S = 0.2
_STARVATION_WEIGHT = 10.0


def eval_item(
    genome: ScenarioGenome,
    *,
    objective: str,
    controller: dict,
    primary: str = "cubic",
    seed: int = 0,
    threshold: float | None = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> dict:
    """The canonical, JSON-able evaluation request for one genome.

    The same dict is the :func:`supervised_map` payload (so its content
    hash is the manifest/cache key) and the argument
    :func:`evaluate_genome` receives in a worker.
    """
    if objective not in OBJECTIVES:
        raise ValueError(f"unknown objective {objective!r}; known: {OBJECTIVES}")
    if threshold is None:
        threshold = DEFAULT_THRESHOLDS[objective]
    return {
        "kind": "adversary-eval",
        "schema": EVAL_SCHEMA,
        "objective": objective,
        "genome": genome.to_dict(),
        "controller": {
            "protocol": str(controller["protocol"]),
            "params": dict(controller.get("params", {})),
        },
        "primary": primary,
        "seed": seed,
        "threshold": threshold,
        "max_events": max_events,
    }


def _traffic_specs(genome: ScenarioGenome) -> list[FlowSpec]:
    return [
        FlowSpec(
            protocol=flow.protocol,
            start_time=flow.start_s,
            kwargs=dict(flow.params),
        )
        for flow in genome.traffic
    ]


def _run(genome: ScenarioGenome, specs: list[FlowSpec], seed: int, max_events: int) -> RunResult:
    return run_flows(
        specs,
        genome.link_config(),
        duration_s=genome.duration_s,
        seed=seed,
        timeline=genome.timeline,
        topology=genome.topology,
        max_events=max_events,
        fidelity="exact",
    )


def average_capacity_mbps(
    genome: ScenarioGenome, window: tuple[float, float]
) -> float:
    """Time-averaged bottleneck capacity over ``window``.

    Integrates the piecewise-constant bandwidth implied by the genome's
    base rate and its timeline's ``bandwidth`` events; ``down``/``up``
    outage events count as zero capacity.  Only the default bottleneck
    link is considered — for multi-hop topologies this is the per-hop
    rate, an upper bound on end-to-end capacity (documented in
    ``docs/ADVERSARY.md``).
    """
    t0, t1 = window
    if t1 <= t0:
        return genome.bandwidth_mbps
    # Walk the resolved events once, tracking (rate, up/down) state.
    rate_mbps = genome.bandwidth_mbps
    up = True
    integral = 0.0
    cursor = t0
    for event in genome.timeline.resolve():
        if event.kind == "bandwidth":
            new_rate, new_up = event.value[0] / 1e6, up
        elif event.kind == "down":
            new_rate, new_up = rate_mbps, False
        elif event.kind == "up":
            new_rate, new_up = rate_mbps, True
        else:
            continue
        at_s = min(max(event.time_s, t0), t1)
        integral += (rate_mbps if up else 0.0) * (at_s - cursor)
        cursor = at_s
        rate_mbps, up = new_rate, new_up
    integral += (rate_mbps if up else 0.0) * (t1 - cursor)
    return integral / (t1 - t0)


def starvation_score(
    capacity_mbps: float, others_mbps: float, scavenger_mbps: float
) -> float:
    """Spare-capacity starvation score (higher = worse starvation).

    ``spare_frac - 10 * scavenger_frac``: positive only when idle
    capacity remains that the scavenger failed to claim, discounted
    steeply by whatever the scavenger *did* get — a scavenger at 5% of
    capacity never scores above 0.5 regardless of spare room.
    """
    if capacity_mbps <= 0:
        return 0.0
    spare_frac = max(0.0, capacity_mbps - others_mbps - scavenger_mbps) / capacity_mbps
    scavenger_frac = scavenger_mbps / capacity_mbps
    return max(0.0, spare_frac - _STARVATION_WEIGHT * scavenger_frac)


def evaluate_genome(item: dict) -> dict:
    """Evaluate one genome against the controller under test.

    Returns a flat dict of JSON-able scalars: the objective ``score``,
    a ``violation`` flag (score above the item's threshold), and the
    per-run throughput diagnostics.  Deterministic in ``item`` alone.
    """
    genome = ScenarioGenome.from_dict(item["genome"])
    objective = item["objective"]
    controller = item["controller"]
    primary = item.get("primary", "cubic")
    seed = int(item.get("seed", 0))
    threshold = float(item.get("threshold", DEFAULT_THRESHOLDS[objective]))
    max_events = int(item.get("max_events", DEFAULT_MAX_EVENTS))

    base_specs = [FlowSpec(protocol=primary)] + _traffic_specs(genome)
    controller_spec = FlowSpec(
        protocol=controller["protocol"],
        start_time=_CONTROLLER_START_S,
        kwargs=dict(controller.get("params", {})),
    )
    attack = _run(genome, base_specs + [controller_spec], seed, max_events)
    scavenger_mbps = attack.throughput_mbps(len(base_specs))
    primary_with_mbps = attack.throughput_mbps(0)

    if objective == "primary_harm":
        baseline = _run(genome, base_specs, seed, max_events)
        primary_solo_mbps = baseline.throughput_mbps(0)
        if primary_solo_mbps <= 0:
            score = 0.0
        else:
            score = max(0.0, 1.0 - primary_with_mbps / primary_solo_mbps)
        result = {
            "score": score,
            "violation": score > threshold,
            "primary_solo_mbps": primary_solo_mbps,
            "primary_with_mbps": primary_with_mbps,
            "scavenger_mbps": scavenger_mbps,
        }
    else:
        window = attack.measurement_window()
        capacity_mbps = average_capacity_mbps(genome, window)
        others_mbps = sum(
            attack.throughput_mbps(i) for i in range(len(base_specs))
        )
        score = starvation_score(capacity_mbps, others_mbps, scavenger_mbps)
        result = {
            "score": score,
            "violation": score > threshold,
            "capacity_mbps": capacity_mbps,
            "others_mbps": others_mbps,
            "scavenger_mbps": scavenger_mbps,
        }
    result["objective"] = objective
    result["threshold"] = threshold
    return result
