"""Adversarial scenario search against the scavenger guarantee.

This package actively *searches* for scenarios that break the two
halves of the Proteus-S guarantee — harming primaries, or starving
while capacity sits idle — in the spirit of CCLab-style adversarial
testing of congestion controllers (see ``docs/ADVERSARY.md`` and the
``repro attack`` CLI).

The moving parts:

* :mod:`~repro.adversary.genome` — the serializable
  :class:`ScenarioGenome` (link knobs + timeline + topology + hostile
  traffic mix) with seeded sampling, mutation, and crossover;
* :mod:`~repro.adversary.objectives` — the ``primary_harm`` and
  ``starvation`` violation objectives and the picklable
  :func:`evaluate_genome` worker entry point;
* :mod:`~repro.adversary.search` — the resumable campaign loop over
  :func:`~repro.harness.supervise.supervised_map`;
* :mod:`~repro.adversary.shrink` — delta-debugging of found
  counterexamples to minimal reproducers.
"""

from .genome import (
    ScenarioGenome,
    TrafficSpec,
    crossover,
    mutate,
    sample_genome,
)
from .objectives import (
    DEFAULT_THRESHOLDS,
    OBJECTIVES,
    eval_item,
    evaluate_genome,
)
from .search import (
    CampaignConfig,
    CampaignResult,
    artifact_record,
    replay_artifact,
    run_campaign,
)
from .shrink import ShrinkResult, shrink_item

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "DEFAULT_THRESHOLDS",
    "OBJECTIVES",
    "ScenarioGenome",
    "ShrinkResult",
    "TrafficSpec",
    "artifact_record",
    "crossover",
    "eval_item",
    "evaluate_genome",
    "mutate",
    "replay_artifact",
    "run_campaign",
    "sample_genome",
    "shrink_item",
]
