"""The seeded, resumable adversarial search campaign.

A campaign evaluates ``budget`` scenario genomes against a controller
under test, generation by generation: the first generation is random
samples, later ones mix elite mutation, crossover, and fresh samples.
Every candidate-proposal decision draws from a per-generation
:class:`~repro.core.rng.Rng` stream keyed by the campaign seed and the
generation index, and depends otherwise only on the *recorded* outcomes
of earlier evaluations — so a resumed campaign (whose finished
evaluations are rebuilt from the manifest) proposes byte-identical
candidates and the final manifest/artifacts match an uninterrupted run
exactly.

Evaluations fan out through
:func:`~repro.harness.supervise.supervised_map`: crashes and watchdog
trips are structured outcomes (and legitimate search *findings*), the
append-only manifest checkpoints every result, and identical genomes —
whose canonical payload is the manifest key — are never re-evaluated.

Campaign directory layout::

    <out>/campaign.json        # config record, validated on --resume
    <out>/manifest.jsonl       # append-only evaluation journal
    <out>/best.json            # best-scoring genome artifact
    <out>/best_shrunk.json     # shrunk reproducer (when a violation was found)
    <out>/counterexamples/     # every new-best violating genome
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..core.rng import Rng
from ..harness.supervise import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMED_OUT,
    SweepManifest,
    TrialOutcome,
    decode_value,
    encode_value,
    supervised_map,
)
from ..obs.metrics import MetricsRegistry
from ..obs.trace import active_tracer
from .genome import ScenarioGenome, crossover, mutate, sample_genome
from .objectives import (
    DEFAULT_MAX_EVENTS,
    DEFAULT_THRESHOLDS,
    OBJECTIVES,
    eval_item,
    evaluate_genome,
)
from .shrink import ShrinkResult, shrink_item

CAMPAIGN_SCHEMA = 1
ARTIFACT_SCHEMA = 1

_FRESH_FRAC = 0.2
_MUTATE_FRAC = 0.6  # of the non-fresh remainder; rest is crossover


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that defines a campaign (and its manifest keys)."""

    objective: str
    controller: dict = field(
        default_factory=lambda: {"protocol": "proteus-s", "params": {}}
    )
    primary: str = "cubic"
    budget: int = 200
    seed: int = 0
    generation_size: int = 20
    elite_count: int = 5
    duration_s: float = 8.0
    threshold: float | None = None
    max_events: int = DEFAULT_MAX_EVENTS

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; known: {OBJECTIVES}"
            )
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.generation_size < 1 or self.elite_count < 1:
            raise ValueError("generation_size and elite_count must be >= 1")

    @property
    def resolved_threshold(self) -> float:
        if self.threshold is not None:
            return self.threshold
        return DEFAULT_THRESHOLDS[self.objective]

    def to_dict(self) -> dict:
        return {
            "schema": CAMPAIGN_SCHEMA,
            "kind": "adversary-campaign",
            "objective": self.objective,
            "controller": {
                "protocol": str(self.controller["protocol"]),
                "params": dict(self.controller.get("params", {})),
            },
            "primary": self.primary,
            "budget": self.budget,
            "seed": self.seed,
            "generation_size": self.generation_size,
            "elite_count": self.elite_count,
            "duration_s": self.duration_s,
            "threshold": self.threshold,
            "max_events": self.max_events,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignConfig":
        if data.get("kind") != "adversary-campaign":
            raise ValueError("not a campaign document")
        if data.get("schema") != CAMPAIGN_SCHEMA:
            raise ValueError(f"unsupported campaign schema {data.get('schema')!r}")
        return cls(
            objective=data["objective"],
            controller=data["controller"],
            primary=data.get("primary", "cubic"),
            budget=int(data["budget"]),
            seed=int(data["seed"]),
            generation_size=int(data.get("generation_size", 20)),
            elite_count=int(data.get("elite_count", 5)),
            duration_s=float(data.get("duration_s", 8.0)),
            threshold=data.get("threshold"),
            max_events=int(data.get("max_events", DEFAULT_MAX_EVENTS)),
        )


@dataclass
class Evaluated:
    """One evaluated genome, in evaluation order."""

    index: int
    genome: ScenarioGenome
    outcome: TrialOutcome

    @property
    def score(self) -> float | None:
        if not self.outcome.ok or not isinstance(self.outcome.value, dict):
            return None
        return float(self.outcome.value["score"])

    @property
    def violation(self) -> bool:
        return bool(
            self.outcome.ok
            and isinstance(self.outcome.value, dict)
            and self.outcome.value.get("violation")
        )


@dataclass
class CampaignResult:
    """Summary of a finished (or resumed-and-finished) campaign."""

    config: CampaignConfig
    evaluated: list[Evaluated]
    best: Evaluated | None
    shrunk: ShrinkResult | None
    out_dir: Path

    @property
    def violations(self) -> list[Evaluated]:
        return [e for e in self.evaluated if e.violation]

    def summary(self) -> dict:
        statuses: dict[str, int] = {}
        for e in self.evaluated:
            statuses[e.outcome.status] = statuses.get(e.outcome.status, 0) + 1
        return {
            "objective": self.config.objective,
            "budget": self.config.budget,
            "evaluations": len(self.evaluated),
            "statuses": statuses,
            "violations": len(self.violations),
            "best_score": None if self.best is None else self.best.score,
            "best_violation": self.best is not None and self.best.violation,
            "shrunk_size": None if self.shrunk is None else self.shrunk.size,
        }


def _write_json(path: Path, record: dict) -> None:
    path.write_text(json.dumps(record, sort_keys=True, indent=1) + "\n")


def artifact_record(
    config: CampaignConfig,
    item: dict,
    value: dict,
    *,
    eval_index: int,
    parent: dict | None = None,
) -> dict:
    """A replayable JSON artifact for one evaluated genome.

    ``value`` is stored through the manifest's tagged float-hex encoding,
    so ``repro attack --replay`` can compare a recomputed evaluation for
    bit-exact equality.
    """
    genome = ScenarioGenome.from_dict(item["genome"])
    record = {
        "schema": ARTIFACT_SCHEMA,
        "kind": "adversary-artifact",
        "campaign": config.to_dict(),
        "eval_index": eval_index,
        "item": item,
        "value": encode_value(value),
        "score": float(value["score"]).hex(),
        "violation": bool(value.get("violation")),
        "size": genome.size(),
    }
    if parent is not None:
        record["parent"] = parent
    return record


def replay_artifact(path: str | Path) -> dict:
    """Re-evaluate an archived artifact and compare bit-exactly.

    Returns a report dict with the recorded and recomputed scores and a
    ``match`` flag — ``True`` only when the full recomputed value dict
    equals the recorded one (floats compared after exact ``float.hex``
    round-trip, so any drift at all fails the replay).
    """
    record = json.loads(Path(path).read_text())
    if record.get("kind") != "adversary-artifact":
        raise ValueError(f"{path} is not an adversary artifact")
    expected = decode_value(record["value"])
    recomputed = evaluate_genome(record["item"])
    return {
        "match": recomputed == expected,
        "recorded_score": expected["score"],
        "recomputed_score": recomputed["score"],
        "violation": bool(record.get("violation")),
        "objective": record["item"]["objective"],
        "size": record.get("size"),
    }


def _propose(
    config: CampaignConfig,
    generation: int,
    evaluated: list[Evaluated],
    count: int,
) -> list[ScenarioGenome]:
    """Candidates for one generation — a pure function of the record."""
    rng = Rng(f"adversary:{config.seed}:gen:{generation}")
    scored = [e for e in evaluated if e.score is not None]
    scored.sort(key=lambda e: (-e.score, e.index))
    elites = [e.genome for e in scored[: config.elite_count]]
    genomes: list[ScenarioGenome] = []
    for _ in range(count):
        if not elites:
            genomes.append(sample_genome(rng, duration_s=config.duration_s))
            continue
        draw = rng.random()
        if draw < _FRESH_FRAC:
            genomes.append(sample_genome(rng, duration_s=config.duration_s))
        elif draw < _FRESH_FRAC + (1.0 - _FRESH_FRAC) * _MUTATE_FRAC or len(elites) < 2:
            genomes.append(mutate(rng.choice(elites), rng))
        else:
            a, b = rng.sample(elites, 2)
            genomes.append(crossover(a, b, rng))
    return genomes


def run_campaign(
    config: CampaignConfig,
    out_dir: str | Path,
    *,
    jobs: int | None = None,
    shrink: bool = True,
    resume: bool = False,
    metrics: MetricsRegistry | None = None,
) -> CampaignResult:
    """Run (or resume) one adversarial search campaign.

    ``out_dir`` is created if missing; an existing campaign directory is
    only reused with ``resume=True``, and its recorded config must match
    ``config`` exactly — resuming under a different objective or seed
    would silently corrupt the manifest.  ``shrink=False`` skips the
    delta-debugging pass on the best violation.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    campaign_path = out / "campaign.json"
    manifest_path = out / "manifest.jsonl"
    if campaign_path.exists():
        if not resume:
            raise FileExistsError(
                f"{campaign_path} exists; pass resume=True (CLI: --resume) "
                "to continue the recorded campaign"
            )
        recorded = json.loads(campaign_path.read_text())
        if recorded != config.to_dict():
            raise ValueError(
                f"campaign config mismatch with {campaign_path}; "
                "resume must use the original objective/seed/budget knobs"
            )
    else:
        _write_json(campaign_path, config.to_dict())
    manifest = SweepManifest(manifest_path)
    tracer = active_tracer()
    if metrics is None:
        metrics = MetricsRegistry()
    evals_counter = metrics.counter("adversary.evals", objective=config.objective)
    violation_counter = metrics.counter(
        "adversary.violations", objective=config.objective
    )
    best_gauge = metrics.gauge("adversary.best_score", objective=config.objective)

    counter_dir = out / "counterexamples"
    evaluated: list[Evaluated] = []
    best: Evaluated | None = None
    generation = 0
    while len(evaluated) < config.budget:
        count = min(config.generation_size, config.budget - len(evaluated))
        genomes = _propose(config, generation, evaluated, count)
        items = [
            eval_item(
                genome,
                objective=config.objective,
                controller=config.controller,
                primary=config.primary,
                seed=config.seed,
                threshold=config.threshold,
                max_events=config.max_events,
            )
            for genome in genomes
        ]
        outcomes = supervised_map(
            evaluate_genome,
            items,
            payloads=items,
            jobs=jobs,
            manifest=manifest,
            # Evaluations are deterministic, so a recorded failure or
            # watchdog trip is as final as an ok result: skipping them on
            # resume keeps the journal byte-identical to an uninterrupted
            # run.  Only crashed-worker entries are re-attempted.
            resume_statuses=(STATUS_OK, STATUS_FAILED, STATUS_TIMED_OUT),
        )
        gen_best: float | None = None
        for item, genome, outcome in zip(items, genomes, outcomes):
            entry = Evaluated(index=len(evaluated), genome=genome, outcome=outcome)
            evaluated.append(entry)
            evals_counter.inc()
            score = entry.score
            if score is not None and (gen_best is None or score > gen_best):
                gen_best = score
            if tracer is not None:
                tracer.emit(
                    "adversary.eval",
                    float(entry.index),
                    status=outcome.status,
                    score=-1.0 if score is None else score,
                    violation=entry.violation,
                )
            if entry.violation:
                violation_counter.inc()
            is_new_best = score is not None and (
                best is None or score > best.score
            )
            if is_new_best:
                best = entry
                best_gauge.set(score)
                if entry.violation:
                    counter_dir.mkdir(exist_ok=True)
                    _write_json(
                        counter_dir / f"eval-{entry.index:04d}.json",
                        artifact_record(
                            config, item, outcome.value, eval_index=entry.index
                        ),
                    )
                    if tracer is not None:
                        tracer.emit(
                            "adversary.violation",
                            float(entry.index),
                            score=score,
                            objective=config.objective,
                        )
        if tracer is not None:
            tracer.emit(
                "adversary.generation",
                float(generation),
                evaluated=len(evaluated),
                best_score=-1.0 if gen_best is None else gen_best,
            )
        generation += 1

    shrunk: ShrinkResult | None = None
    if best is not None:
        best_item = eval_item(
            best.genome,
            objective=config.objective,
            controller=config.controller,
            primary=config.primary,
            seed=config.seed,
            threshold=config.threshold,
            max_events=config.max_events,
        )
        _write_json(
            out / "best.json",
            artifact_record(
                config, best_item, best.outcome.value, eval_index=best.index
            ),
        )
        if shrink and best.violation:

            def on_step(parent_size: int, size: int, score: float) -> None:
                if tracer is not None:
                    tracer.emit(
                        "adversary.shrink",
                        float(best.index),
                        from_size=parent_size,
                        to_size=size,
                        score=score,
                    )

            shrunk = shrink_item(best_item, on_step=on_step)
            _write_json(
                out / "best_shrunk.json",
                artifact_record(
                    config,
                    shrunk.item,
                    shrunk.value,
                    eval_index=best.index,
                    parent={
                        "size": shrunk.parent_size,
                        "eval_index": best.index,
                        "score": float(best.score).hex(),
                    },
                ),
            )
    return CampaignResult(
        config=config,
        evaluated=evaluated,
        best=best,
        shrunk=shrunk,
        out_dir=out,
    )
