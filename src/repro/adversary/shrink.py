"""Delta-debugging shrinker for found counterexamples.

Given an evaluation item whose genome violates an objective, greedily
try strictly-smaller variants — drop one timeline step, drop one
traffic flow, round the scalar knobs — keeping a variant only if it
*still* violates.  Every accepted step decreases
:meth:`ScenarioGenome.size` by at least one, so the loop terminates and
the final reproducer is strictly smaller than its parent whenever any
step was accepted at all.

Candidate evaluations run in-process (the shrink phase is sequential by
nature); a candidate that crashes or trips the event watchdog is simply
rejected.  Because every evaluation goes through the same
:func:`~repro.adversary.objectives.evaluate_genome`, identical genomes
hit the harness result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator

from ..harness.scenarios import Timeline
from .genome import ScenarioGenome, rounded_scalars
from .objectives import evaluate_genome


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one shrink run."""

    item: dict  # the shrunk evaluation item
    value: dict  # evaluate_genome output for the shrunk item
    parent_size: int
    size: int
    steps: int  # accepted shrink steps

    @property
    def reduced(self) -> bool:
        return self.size < self.parent_size


def _candidates(genome: ScenarioGenome) -> Iterator[ScenarioGenome]:
    """Strictly-smaller one-step variants, in a deterministic order."""
    steps = genome.timeline.steps
    for i in range(len(steps)):
        timeline = Timeline(
            steps[:i] + steps[i + 1 :], label=genome.timeline.label
        )
        yield replace(genome, timeline=timeline)
    for i in range(len(genome.traffic)):
        yield replace(
            genome, traffic=genome.traffic[:i] + genome.traffic[i + 1 :]
        )
    rounded = rounded_scalars(genome)
    if rounded is not None:
        yield rounded


def shrink_item(
    item: dict,
    *,
    evaluate: Callable[[dict], dict] = evaluate_genome,
    on_step: Callable[[int, int, float], None] | None = None,
) -> ShrinkResult:
    """Shrink a violating evaluation item to a minimal reproducer.

    ``item`` must be an :func:`~repro.adversary.objectives.eval_item`
    dict whose genome violates its objective (the caller has already
    evaluated it).  ``on_step(parent_size, size, score)`` is invoked
    after each accepted step (used for ``adversary.shrink`` trace
    events).  Returns the last still-violating item — ``item`` itself,
    re-evaluated, when nothing could be removed.
    """
    genome = ScenarioGenome.from_dict(item["genome"])
    value = evaluate(item)
    if not value.get("violation"):
        raise ValueError("shrink requires a violating evaluation item")
    parent_size = genome.size()
    accepted = 0
    improved = True
    while improved:
        improved = False
        for candidate in _candidates(genome):
            try:
                candidate_item = dict(item, genome=candidate.to_dict())
                candidate_value = evaluate(candidate_item)
            except Exception:
                continue  # crash/timeout while shrinking: reject candidate
            if not candidate_value.get("violation"):
                continue
            genome = candidate
            item = candidate_item
            value = candidate_value
            accepted += 1
            if on_step is not None:
                on_step(parent_size, genome.size(), float(value["score"]))
            improved = True
            break
    return ShrinkResult(
        item=item,
        value=value,
        parent_size=parent_size,
        size=genome.size(),
        steps=accepted,
    )
