"""Latency-noise models for emulating wireless (WiFi-like) paths.

The paper's live-Internet WiFi experiments (§6.2.1) attribute scavenger
misbehaviour to two non-congestion phenomena:

1. random RTT variability — "typical RTT deviation is up to 5 ms but RTT
   occasionally spikes tens of milliseconds higher";
2. bursty ACK reception "even on a non-congested link, possibly due to
   irregular MAC scheduling".

Both are modelled here as per-packet extra propagation delay.  Links
enforce FIFO delivery, so a large delay injected on one packet naturally
compresses the packets behind it into a burst — exactly the ACK-batching
effect the paper's per-ACK filter targets.
"""

from __future__ import annotations

from typing import Protocol

from ..core.rng import Rng


class NoiseModel(Protocol):
    """Produces a non-negative extra delay (seconds) for each packet."""

    def sample(self, now: float, rng: Rng) -> float:
        """Extra one-way delay for a packet entering the link at ``now``."""
        ...


class NoNoise:
    """Clean channel: zero extra delay."""

    def sample(self, now: float, rng: Rng) -> float:
        return 0.0


class GaussianJitter:
    """Per-packet i.i.d. Gaussian jitter, truncated at zero.

    A building block for mildly noisy paths; ``std`` of 1-2 ms is typical
    of a lightly loaded WiFi link.
    """

    def __init__(self, std_s: float, mean_s: float = 0.0):
        if std_s < 0:
            raise ValueError("std_s must be non-negative")
        self.std_s = std_s
        self.mean_s = mean_s

    def sample(self, now: float, rng: Rng) -> float:
        return max(0.0, rng.gauss(self.mean_s, self.std_s))


class SpikeNoise:
    """Occasional delay spikes of tens of milliseconds.

    Spikes arrive as a Poisson process; while a spike is active every
    packet is held by the spike magnitude.  Combined with FIFO ordering
    this produces the burst-then-silence ACK pattern of MAC scheduling.
    """

    def __init__(
        self,
        rate_hz: float,
        magnitude_s: float = 0.030,
        duration_s: float = 0.020,
    ):
        if rate_hz < 0:
            raise ValueError("rate_hz must be non-negative")
        self.rate_hz = rate_hz
        self.magnitude_s = magnitude_s
        self.duration_s = duration_s
        self._next_spike: float | None = None
        self._spike_scale = 1.0

    def sample(self, now: float, rng: Rng) -> float:
        if self.rate_hz <= 0:
            return 0.0
        if self._next_spike is None:
            self._next_spike = now + rng.expovariate(self.rate_hz)
            self._spike_scale = rng.uniform(0.5, 1.0)
        # Advance past expired spike windows (exponential inter-spike gaps);
        # each window draws its magnitude once, shared by every packet in it.
        while now >= self._next_spike + self.duration_s:
            self._next_spike += self.duration_s + rng.expovariate(self.rate_hz)
            self._spike_scale = rng.uniform(0.5, 1.0)
        if now >= self._next_spike:
            return self._spike_scale * self.magnitude_s
        return 0.0


class CompositeNoise:
    """Sum of independent noise components."""

    def __init__(self, *components: NoiseModel):
        self.components = components

    def sample(self, now: float, rng: Rng) -> float:
        return sum(c.sample(now, rng) for c in self.components)


def wifi_noise(severity: float = 1.0) -> CompositeNoise:
    """A WiFi-like noise profile matching the paper's description.

    ``severity`` scales both the baseline jitter and the spike frequency;
    1.0 corresponds to "typical RTT deviation up to 5 ms with occasional
    spikes tens of milliseconds higher".  Each direction of a path usually
    gets its own instance (uplink noisier than the wired downlink).
    """
    if severity < 0:
        raise ValueError("severity must be non-negative")
    return CompositeNoise(
        GaussianJitter(std_s=0.0015 * severity),
        SpikeNoise(
            rate_hz=0.5 * severity,
            magnitude_s=0.030,
            duration_s=0.015 + 0.010 * severity,
        ),
    )
