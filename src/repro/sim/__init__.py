"""Packet-level discrete-event network simulator.

This package is the testbed substrate for the reproduction: the stand-in
for the paper's Emulab links and live-Internet paths.  It provides an
event engine, links with tail-drop FIFO buffers, random loss, latency
noise models, flows with exact timestamp echo, and per-flow statistics.
"""

from .aqm import (
    CoDelDiscipline,
    DynamicLink,
    HeadDropDiscipline,
    RandomDropDiscipline,
    REDDiscipline,
    TailDropDiscipline,
    cellular_rate,
    step_rate,
)
from .dynamics import (
    DynamicsError,
    DynamicsLog,
    GilbertElliott,
    LinkEvent,
    TimelineDriver,
)
from .engine import Event, SimBudgetExceeded, SimulationError, Simulator
from .fidelity import (
    EXACT,
    HYBRID,
    Fidelity,
    activate_fastforward,
    resolve_fidelity,
)
from .flow import Flow, FlowReceiver, Path
from .invariants import InvariantChecker, InvariantError
from .link import Link, LinkStats
from .noise import (
    CompositeNoise,
    GaussianJitter,
    NoNoise,
    SpikeNoise,
    wifi_noise,
)
from .packet import ACK_BYTES, MTU_BYTES, Packet
from .rng import Rng, make_rng, spawn
from .topology import (
    Dumbbell,
    MultiDumbbell,
    ParkingLot,
    Topology,
    TopologyError,
    mbps,
)
from .trace import FlowStats

__all__ = [
    "ACK_BYTES",
    "CoDelDiscipline",
    "CompositeNoise",
    "Dumbbell",
    "DynamicLink",
    "HeadDropDiscipline",
    "MultiDumbbell",
    "ParkingLot",
    "RandomDropDiscipline",
    "REDDiscipline",
    "TailDropDiscipline",
    "Topology",
    "TopologyError",
    "cellular_rate",
    "step_rate",
    "DynamicsError",
    "DynamicsLog",
    "EXACT",
    "Event",
    "Fidelity",
    "Flow",
    "FlowReceiver",
    "FlowStats",
    "GaussianJitter",
    "GilbertElliott",
    "HYBRID",
    "LinkEvent",
    "TimelineDriver",
    "InvariantChecker",
    "InvariantError",
    "Link",
    "LinkStats",
    "MTU_BYTES",
    "NoNoise",
    "Packet",
    "Path",
    "Rng",
    "SimBudgetExceeded",
    "SimulationError",
    "Simulator",
    "SpikeNoise",
    "activate_fastforward",
    "make_rng",
    "resolve_fidelity",
    "mbps",
    "spawn",
    "wifi_noise",
]
