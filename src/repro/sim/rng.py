"""Compatibility shim: the seeded RNG now lives in :mod:`repro.core.rng`.

The :class:`Rng` started life in the sim package, but it is pure
control-law infrastructure with no dependency on the event loop, and
``repro.core`` (the bottom of the layer DAG) needs it for dithering in
the rate controller — so the implementation moved down a layer.  This
module re-exports it so ``repro.sim.rng`` imports keep working.
"""

from __future__ import annotations

from ..core.rng import Rng, make_rng, spawn

__all__ = ["Rng", "make_rng", "spawn"]
