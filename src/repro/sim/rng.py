"""Seeded randomness helpers.

Every stochastic component in the simulator draws from a ``random.Random``
handed to it explicitly, so experiments are reproducible from a single
seed.  :func:`spawn` derives independent child streams for components so
adding a new consumer does not perturb existing ones.
"""

from __future__ import annotations

import random


def make_rng(seed: int | None) -> random.Random:
    """Create a new RNG. ``None`` seeds from the OS (non-reproducible)."""
    return random.Random(seed)


def spawn(parent: random.Random, label: str) -> random.Random:
    """Derive an independent child RNG from ``parent`` keyed by ``label``.

    The child stream depends on the parent's current state and the label,
    not on how many other children were spawned afterwards (the parent is
    not mutated), so component streams are stable under refactoring.
    """
    state_words = parent.getstate()[1][:4]
    return random.Random(f"{state_words}:{label}")
