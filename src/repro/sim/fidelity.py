"""Execution-fidelity model: packet-exact vs hybrid fast-forward.

The PCC architecture acts only at monitor-interval boundaries, so
packet-level fidelity *between* MI edges is usually wasted work: the
arrival process on a link is rate-stable until the next control decision,
timeline event, or queue transition.  The hybrid mode exploits that in
two ways (see ``docs/PERFORMANCE.md`` for the full model):

* **collapsed packet legs** — the data-delivery and ACK-delivery hops of
  an eligible flow are computed analytically at send time (the link's
  queue is already analytic, so the delivery timestamp is a closed-form
  expression) and only *one* engine event fires per packet: the ACK
  arriving back at the sender.  Byte counts, stats and timestamps match
  the packet-exact chain; what is lost is the interleaving of the
  intermediate hops with other same-window events.
* **paced-send bursts (fluid fast-forward)** — a rate-paced sender whose
  rate is provably stable up to a horizon (for PCC senders: the MI-close
  event) transmits a whole burst of future packets in one engine event,
  advancing link byte/backlog accounting analytically to the burst end.
  Each skip is documented by a ``sim.fastforward`` trace event.

Eligibility is conservative: any randomness on the path (loss, noise),
an outage, a pending timeline event inside the horizon, multi-hop paths,
bounded/chunked flows, or application delivery callbacks all force the
packet-exact path.  Packet-exact mode (``REPRO_FIDELITY=exact``, the
default) never enters any of these code paths and stays byte-identical
to the reference implementation.

Fidelity is part of every harness cache key: an exact and a hybrid run
of the same scenario are different experiments.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

FIDELITY_MODES = ("exact", "hybrid")

_DEFAULT_BURST_PACKETS = 16
"""Upper bound on packets fast-forwarded per burst.

At 50 Mbps and 1500-byte packets a 16-packet burst spans ~3.8 ms —
comfortably inside one monitor interval (>= 10 ms), so rate staleness
within a burst is bounded well below one control decision.
"""

_DEFAULT_HORIZON_F = 0.25
"""Burst horizon as a fraction of the sender's smoothed RTT.

Bounds how far ahead of other flows a bursting sender may virtually
advance the shared link state; the cross-flow serialization error of the
hybrid mode is at most this far."""

_SHARED_BURST_CAP = 4
"""Burst cap on links carrying more than one flow.

A burst pre-claims the link transmitter at virtual future times, so a
cross packet arriving mid-window queues behind the *whole* remaining
burst instead of interleaving by send time — each pre-claimed packet
inflates a competitor's queueing delay by up to one serialization time.
Long bursts therefore distort exactly the RTT signal the Proteus
competition detector feeds on (measured on the two-flow bench scenario
at 12 s: 16-packet bursts let the scavenger hold ~17 Mbps where
packet-exact yields to ~9; 4-packet bursts track the exact ensemble
mean within ~10% while keeping nearly all of the tick-absorption win).
Flows that are the *sole* user of both their links have nobody to
distort and burst to the full ``Fidelity.burst_packets``."""


@dataclass(frozen=True)
class Fidelity:
    """Resolved execution-fidelity configuration for one simulation.

    Args:
        mode: ``"exact"`` (reference packet-level path everywhere) or
            ``"hybrid"`` (collapsed legs + paced bursts where eligible).
        burst_packets: Max packets per fast-forward burst (hybrid only).
        burst_horizon_frac: Max burst span as a fraction of the
            sender's smoothed RTT (hybrid only).
        use_numpy: Vectorize burst planning with numpy when available
            (pure-Python planner remains the reference implementation
            and is used for small bursts either way).
    """

    mode: str = "exact"
    burst_packets: int = _DEFAULT_BURST_PACKETS
    burst_horizon_frac: float = _DEFAULT_HORIZON_F
    use_numpy: bool = True

    def __post_init__(self) -> None:
        if self.mode not in FIDELITY_MODES:
            raise ValueError(
                f"unknown fidelity mode {self.mode!r}; expected one of {FIDELITY_MODES}"
            )
        if self.burst_packets < 1:
            raise ValueError("burst_packets must be >= 1")
        if not 0.0 < self.burst_horizon_frac <= 1.0:
            raise ValueError("burst_horizon_frac must be in (0, 1]")

    @property
    def hybrid(self) -> bool:
        return self.mode == "hybrid"

    def key(self) -> dict:
        """Canonical cache-key payload — every knob that changes
        simulation results.  ``use_numpy`` is included: the vectorized
        burst planner computes the same schedule via closed-form
        arithmetic, which can differ from the sequential reference in
        the lowest float bits."""
        return {
            "mode": self.mode,
            "burst_packets": self.burst_packets,
            "burst_horizon_frac": float(self.burst_horizon_frac).hex(),
            "use_numpy": bool(self.use_numpy),
        }


EXACT = Fidelity(mode="exact")
HYBRID = Fidelity(mode="hybrid")


def activate_fastforward(sim, flows) -> int:
    """Enable collapsed sends for every eligible flow; returns the count.

    Must be called after the *entire* flow set of a scenario exists:
    eligibility is a property of all flows sharing a link, not of one
    flow alone.  A flow may collapse when

    * it is unbounded and not chunked (no completion bookkeeping rides
      on delivery timing) and has no ``on_delivery`` callback,
    * its forward and reverse paths are single-hop and every link on
      them supports the analytic collapse (``can_fastforward`` — true
      for the analytic ``Link``, false for the event-based
      ``DynamicLink``, whose explicit queue cannot be advanced in
      closed form), and
    * **every** flow using its links is itself collapse-capable — a
      packet-exact flow sharing a link with collapsed traffic would see
      the link's transmitter pre-claimed at virtual future times,
      distorting its queueing in a way packet-exact mode never would.

    Senders that support paced bursts (``ff_supports_burst``) are armed
    as a side effect.  No-op (returns 0) in packet-exact mode.
    """
    if not sim.fidelity.hybrid:
        return 0
    flows = list(flows)

    def capable(flow) -> bool:
        return (
            flow.bytes_unsent == float("inf")
            and flow.on_delivery is None
            and not flow.completed
            and len(flow.forward_path.links) == 1
            and len(flow.reverse_path.links) == 1
            and all(
                getattr(link, "can_fastforward", False)
                for link in (*flow.forward_path.links, *flow.reverse_path.links)
            )
        )

    caps = {id(f): capable(f) for f in flows}
    users: dict[int, list] = {}
    for f in flows:
        for link in (*f.forward_path.links, *f.reverse_path.links):
            users.setdefault(id(link), []).append(f)
    link_ok = {lid: all(caps[id(f)] for f in fl) for lid, fl in users.items()}
    enabled = 0
    fid = sim.fidelity
    for f in flows:
        fwd_id = id(f.forward_path.links[0])
        rev_id = id(f.reverse_path.links[0])
        ok = caps[id(f)] and link_ok[fwd_id] and link_ok[rev_id]
        f.ff_collapse = ok
        if ok:
            enabled += 1
            if getattr(f.sender, "ff_supports_burst", False):
                f.sender.ff_burst_armed = True
                # Solo flows burst freely; shared links get the short
                # cap (see _SHARED_BURST_CAP) to bound the pre-claim
                # distortion of competing flows' queueing delay.
                solo = len(users[fwd_id]) == 1 and len(users[rev_id]) == 1
                f.sender.ff_burst_cap = (
                    fid.burst_packets
                    if solo
                    else min(fid.burst_packets, _SHARED_BURST_CAP)
                )
    return enabled


def resolve_fidelity(mode: "Fidelity | str | None" = None) -> Fidelity:
    """Resolve a fidelity request to a :class:`Fidelity` instance.

    ``None`` consults the ``REPRO_FIDELITY`` environment variable
    (``exact`` when unset), so whole suites and CI jobs can switch mode
    without threading an argument through every entry point.  A string
    names a mode; a :class:`Fidelity` passes through unchanged.
    """
    if isinstance(mode, Fidelity):
        return mode
    if mode is None:
        mode = os.environ.get("REPRO_FIDELITY", "").strip() or "exact"
    if mode == "exact":
        return EXACT
    if mode == "hybrid":
        return HYBRID
    raise ValueError(
        f"unknown fidelity mode {mode!r}; expected one of {FIDELITY_MODES}"
    )
