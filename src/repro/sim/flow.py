"""Flow wiring: sender endpoint, path, receiver, and the ACK channel.

A :class:`Flow` connects one sender (a congestion-control object from
:mod:`repro.protocols` or :mod:`repro.core`) to a receiver across a
forward :class:`Path` of links, with ACKs returning over a reverse path.
The flow owns sequence numbering, the per-flow stats record, and data
availability (bulk transfer by default; applications can meter bytes in
for chunked workloads).
"""

from __future__ import annotations

import heapq
from typing import Callable, Protocol

from .engine import Simulator
from .link import Link
from .packet import ACK_BYTES, Packet
from .trace import FlowStats

_INF = float("inf")


class SenderProtocol(Protocol):
    """What a Flow requires of a sender object (see protocols.base)."""

    def bind(self, sim: Simulator, flow: "Flow") -> None: ...
    def start(self) -> None: ...
    def handle_ack_packet(self, ack: Packet) -> None: ...
    def on_data_available(self) -> None: ...
    def stop(self) -> None: ...


class Path:
    """An ordered sequence of links from one host to another."""

    def __init__(self, links: list[Link]):
        if not links:
            raise ValueError("a path needs at least one link")
        self.links = links

    def base_delay(self) -> float:
        """Sum of propagation delays (no queueing/serialization)."""
        return sum(link.delay_s for link in self.links)

    def min_base_delay(self) -> float:
        """Sum of the smallest propagation delay each link ever had.

        Equal to :meth:`base_delay` on static links; diverges only when a
        timeline raises a link's delay mid-run (``min_delay_s`` tracks the
        floor on links that support dynamics).
        """
        return sum(
            getattr(link, "min_delay_s", link.delay_s) for link in self.links
        )

    def send(self, packet: Packet, dst: "ReceiverLike") -> bool:
        """Send ``packet`` toward ``dst``. Returns False on first-hop drop."""
        links = self.links
        if len(links) == 1:
            return links[0].send(packet, dst)
        return links[0].send(packet, _Hop(links, 1, dst))


class ReceiverLike(Protocol):
    def receive(self, packet: Packet) -> None: ...


class _Hop:
    """Forwards a packet onto the next link of a multi-link path."""

    __slots__ = ("links", "index", "dst")

    def __init__(self, links: list[Link], index: int, dst: ReceiverLike):
        self.links = links
        self.index = index
        self.dst = dst

    def receive(self, packet: Packet) -> None:
        links = self.links
        nxt = self.index + 1
        if nxt == len(links):
            links[self.index].send(packet, self.dst)
        else:
            links[self.index].send(packet, _Hop(links, nxt, self.dst))


class FlowReceiver:
    """Receiver endpoint: records deliveries and returns one ACK per packet."""

    def __init__(self, flow: "Flow"):
        self.flow = flow
        self._ack_seq = 0

    def receive(self, packet: Packet) -> None:
        flow = self.flow
        now = flow.sim.now
        flow.stats.record_delivery(now, packet.size_bytes)
        if flow.on_delivery is not None:
            flow.on_delivery(now, packet.size_bytes)
        self._ack_seq += 1
        ack = Packet(
            flow_id=flow.flow_id,
            seq=self._ack_seq,
            size_bytes=ACK_BYTES,
            sent_time=now,
            is_ack=True,
            data_seq=packet.seq,
            data_sent_time=packet.sent_time,
            data_recv_time=now,
        )
        flow.reverse_path.send(ack, flow.sender_endpoint)
        flow.check_complete()

    def receive_ff(self, packet: Packet, at_s: float) -> None:
        """Collapsed delivery at virtual time ``at_s`` (hybrid fidelity).

        Runs the same bookkeeping as :meth:`receive` with the clock read
        replaced by the analytic delivery time, sends the ACK through the
        reverse link analytically, and schedules the *one* real event of
        the collapsed chain: the ACK arriving back at the sender.  Only
        reachable for flows without completion/delivery callbacks (see
        ``fidelity.activate_fastforward``), so those hooks are skipped.
        """
        flow = self.flow
        sim = flow.sim
        flow.stats.record_delivery(at_s, packet.size_bytes)
        self._ack_seq += 1
        ack = Packet(
            flow_id=flow.flow_id,
            seq=self._ack_seq,
            size_bytes=ACK_BYTES,
            sent_time=at_s,
            is_ack=True,
            data_seq=packet.seq,
            data_sent_time=packet.sent_time,
            data_recv_time=at_s,
        )
        # The skipped data-delivery dispatch, whether or not the ACK
        # also survives the reverse link.
        sim.events_virtual += 1
        ack_at = flow.ff_rev.send_ff(ack, at_s)
        if ack_at is not None:
            # Inlined schedule_fast_at: ack_at >= at_s >= sim.now (link
            # delivery times never precede the send), so the past-time
            # clamp can never trigger on this path.
            sim._seq += 1
            heapq.heappush(
                sim._heap,
                (ack_at, sim._seq, flow.sender.handle_ack_packet, (ack,), None),
            )
        if sim.tracer is not None:
            sim.tracer.emit(
                "sim.fastforward",
                at_s,
                flow=flow.flow_id,
                reason="collapse",
                seq=packet.seq,
                ack_at_s=ack_at,
            )


class _SenderEndpoint:
    """Sender-side ACK sink; dispatches to the congestion controller."""

    __slots__ = ("flow",)

    def __init__(self, flow: "Flow"):
        self.flow = flow

    def receive(self, packet: Packet) -> None:
        self.flow.sender.handle_ack_packet(packet)


class Flow:
    """One transport connection through the simulated network.

    Args:
        sim: The simulator.
        sender: Congestion-control sender (bound to this flow here).
        forward_path: Path carrying data packets.
        reverse_path: Path carrying ACKs.
        flow_id: Identifier recorded in packets and stats.
        size_bytes: Total bytes to deliver, or None for an unbounded bulk
            flow. Chunked applications use ``chunked=True`` + ``add_bytes``.
        chunked: Start with no data and let the application meter bytes in
            with :meth:`add_bytes`; the flow never auto-completes.
        start_time: Absolute simulated time at which the sender starts.
        on_complete: Callback fired once ``size_bytes`` are delivered.
        on_delivery: Callback ``(now, nbytes)`` for every delivered packet.
    """

    def __init__(
        self,
        sim: Simulator,
        sender: SenderProtocol,
        forward_path: Path,
        reverse_path: Path,
        flow_id: int = 0,
        size_bytes: int | None = None,
        start_time: float = 0.0,
        chunked: bool = False,
        on_complete: Callable[["Flow", float], None] | None = None,
        on_delivery: Callable[[float, int], None] | None = None,
    ):
        if chunked and size_bytes is not None:
            raise ValueError("chunked flows meter data via add_bytes")
        self.sim = sim
        self.sender = sender
        self.forward_path = forward_path
        self.reverse_path = reverse_path
        self.flow_id = flow_id
        self.size_bytes = size_bytes
        # Flows created mid-run (e.g. web objects) start immediately.
        self.start_time = max(start_time, sim.now)
        self.on_complete = on_complete
        self.on_delivery = on_delivery
        self.stats = FlowStats(flow_id)
        self.stats.start_time = self.start_time
        self.receiver = FlowReceiver(self)
        self.sender_endpoint = _SenderEndpoint(self)
        if sim.invariants is not None:
            sim.invariants.register_flow(self)
        self.completed = False
        self._next_seq = 0
        # Hybrid-fidelity collapse flag; set by
        # ``fidelity.activate_fastforward`` once the whole flow set is
        # known (eligibility is a property of every flow sharing a link,
        # not of one flow alone).  Always False in packet-exact mode.
        # ``ff_fwd``/``ff_rev`` cache the first hop of each path — for a
        # collapsed flow (single-hop by eligibility) they are *the* links,
        # saving two path traversals per packet on the hot path.
        self.ff_collapse = False
        self.ff_fwd = forward_path.links[0]
        self.ff_rev = reverse_path.links[0]
        # Unbounded flows always have data; bounded/chunked flows meter it.
        if chunked:
            self.bytes_unsent: float = 0.0
        else:
            self.bytes_unsent = float("inf") if size_bytes is None else size_bytes

        sender.bind(sim, self)
        sim.schedule_at(self.start_time, self._start)

    # ------------------------------------------------------------------
    def _start(self) -> None:
        if not self.completed:
            self.sender.start()

    def add_bytes(self, nbytes: int) -> None:
        """Make ``nbytes`` more application data available to send."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if self.bytes_unsent == float("inf"):
            raise RuntimeError("cannot add bytes to an unbounded flow")
        was_idle = self.bytes_unsent <= 0
        self.bytes_unsent += nbytes
        if was_idle:
            self.sender.on_data_available()

    def transmit(self, size_bytes: int) -> tuple[int, bool]:
        """Send one data packet of ``size_bytes``; returns (seq, accepted).

        ``accepted`` is False when the first hop tail-dropped the packet.
        The sender still tracks the sequence number so the drop is detected
        like any other loss (via the ACK gap).
        """
        self._next_seq += 1
        seq = self._next_seq
        packet = Packet(
            flow_id=self.flow_id,
            seq=seq,
            size_bytes=size_bytes,
            sent_time=self.sim.now,
        )
        self.stats.record_send()
        if self.bytes_unsent != float("inf"):
            self.bytes_unsent -= size_bytes
        accepted = self.forward_path.send(packet, self.receiver)
        return seq, accepted

    def transmit_ff(self, size_bytes: int, at_s: float) -> tuple[int, bool]:
        """Collapsed transmit at virtual time ``at_s`` (hybrid fidelity).

        Sends the data packet analytically through the (single-link)
        forward path and runs the receiver + ACK chain inline; the only
        heap event of the whole round trip is the ACK arriving back at
        the sender.  When a link's fast-forward barrier (pending timeline
        event) would be crossed by the packet's virtual window — and the
        send is happening at the real clock, so falling back is still
        possible — the packet takes the packet-exact path instead.

        For healthy static links with no tracer attached the whole
        chain — both link legs, the receiver bookkeeping, and the ACK
        scheduling — is fused inline below with no intermediate packet
        object; the arithmetic is identical to ``Link.send_ff`` +
        ``FlowReceiver.receive_ff``, which remain the reference (and
        only) path whenever a link needs per-packet decisions.

        Returns ``(seq, accepted)`` exactly like :meth:`transmit`.
        """
        sim = self.sim
        fwd = self.ff_fwd
        rev = self.ff_rev
        limit = fwd.ff_barrier_s
        if rev.ff_barrier_s < limit:
            limit = rev.ff_barrier_s
        if limit != _INF:
            ack_at = fwd.peek_round_trip_ff(size_bytes, at_s, rev, ACK_BYTES)
            if ack_at + 1e-6 >= limit and at_s <= sim.now:
                return self.transmit(size_bytes)
        self._next_seq += 1
        seq = self._next_seq
        stats = self.stats
        stats.packets_sent += 1  # record_send, inlined
        if self.bytes_unsent != _INF:
            self.bytes_unsent -= size_bytes
        if (
            sim.tracer is None
            and fwd.loss_model is None
            and fwd.noise is None
            and fwd.loss_rate == 0.0  # repro: noqa[no-float-eq] — gate, not math
            and not fwd._down
            and rev.loss_model is None
            and rev.noise is None
            and rev.loss_rate == 0.0  # repro: noqa[no-float-eq] — gate, not math
            and not rev._down
        ):
            # ---- forward leg (Link.send_ff fast path, inlined) ----
            fwd_stats = fwd.stats
            fwd_stats.offered += 1
            bw = fwd.bandwidth_bps
            busy = fwd._busy_until
            occupancy = (
                (busy - at_s) * bw / 8.0 if busy > at_s else 0.0
            ) + size_bytes
            if occupancy > fwd.buffer_bytes + 1e-6:
                fwd_stats.tail_drops += 1
                return seq, False
            if occupancy > fwd_stats.max_backlog_bytes:
                fwd_stats.max_backlog_bytes = occupancy
            start = busy if busy > at_s else at_s
            fwd._busy_until = busy = start + size_bytes * 8.0 / bw
            deliver_at = busy + fwd.delay_s
            if deliver_at <= fwd._last_delivery:
                deliver_at = fwd._last_delivery + 1e-9
            fwd._last_delivery = deliver_at
            fwd_stats.delivered += 1
            # ---- receiver bookkeeping (receive_ff, inlined) ----
            stats.delivered_bytes += size_bytes
            if stats.first_delivery is None:
                stats.first_delivery = deliver_at
            stats.last_delivery = deliver_at
            receiver = self.receiver
            receiver._ack_seq += 1
            # The skipped data-delivery dispatch, whether or not the ACK
            # also survives the reverse link.
            sim.events_virtual += 1
            # ---- reverse (ACK) leg ----
            rev_stats = rev.stats
            rev_stats.offered += 1
            bw = rev.bandwidth_bps
            busy = rev._busy_until
            occupancy = (
                (busy - deliver_at) * bw / 8.0 if busy > deliver_at else 0.0
            ) + ACK_BYTES
            if occupancy > rev.buffer_bytes + 1e-6:
                rev_stats.tail_drops += 1
                return seq, True
            if occupancy > rev_stats.max_backlog_bytes:
                rev_stats.max_backlog_bytes = occupancy
            start = busy if busy > deliver_at else deliver_at
            rev._busy_until = busy = start + ACK_BYTES * 8.0 / bw
            ack_arrive = busy + rev.delay_s
            if ack_arrive <= rev._last_delivery:
                ack_arrive = rev._last_delivery + 1e-9
            rev._last_delivery = ack_arrive
            rev_stats.delivered += 1
            ack = Packet(
                flow_id=self.flow_id,
                seq=receiver._ack_seq,
                size_bytes=ACK_BYTES,
                sent_time=deliver_at,
                is_ack=True,
                data_seq=seq,
                data_sent_time=at_s,
                data_recv_time=deliver_at,
            )
            # Inlined schedule_fast_at: ack_arrive >= at_s >= sim.now,
            # so the past-time clamp can never trigger on this path.
            sim._seq += 1
            heapq.heappush(
                sim._heap,
                (ack_arrive, sim._seq, self.sender.handle_ack_packet, (ack,), None),
            )
            return seq, True
        packet = Packet(
            flow_id=self.flow_id,
            seq=seq,
            size_bytes=size_bytes,
            sent_time=at_s,
        )
        deliver_at = fwd.send_ff(packet, at_s)
        if deliver_at is None:
            return seq, False
        self.receiver.receive_ff(packet, deliver_at)
        return seq, True

    def requeue_bytes(self, nbytes: int) -> None:
        """Return lost bytes to the unsent pool (models retransmission)."""
        if self.bytes_unsent != float("inf"):
            self.bytes_unsent += nbytes

    def has_data(self) -> bool:
        return self.bytes_unsent > 0 and not self.completed

    def check_complete(self) -> None:
        if (
            not self.completed
            and self.size_bytes is not None
            and self.stats.delivered_bytes >= self.size_bytes
        ):
            self.completed = True
            self.stats.end_time = self.sim.now
            self.sender.stop()
            if self.on_complete is not None:
                self.on_complete(self, self.sim.now)

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently sent data packet."""
        return self._next_seq

    def base_rtt(self) -> float:
        """Propagation-only round-trip time of the flow's paths."""
        return self.forward_path.base_delay() + self.reverse_path.base_delay()

    def min_base_rtt(self) -> float:
        """Smallest propagation-only RTT over the run (see invariants)."""
        return (
            self.forward_path.min_base_delay()
            + self.reverse_path.min_base_delay()
        )
