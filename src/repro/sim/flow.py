"""Flow wiring: sender endpoint, path, receiver, and the ACK channel.

A :class:`Flow` connects one sender (a congestion-control object from
:mod:`repro.protocols` or :mod:`repro.core`) to a receiver across a
forward :class:`Path` of links, with ACKs returning over a reverse path.
The flow owns sequence numbering, the per-flow stats record, and data
availability (bulk transfer by default; applications can meter bytes in
for chunked workloads).
"""

from __future__ import annotations

from typing import Callable, Protocol

from .engine import Simulator
from .link import Link
from .packet import ACK_BYTES, Packet
from .trace import FlowStats


class SenderProtocol(Protocol):
    """What a Flow requires of a sender object (see protocols.base)."""

    def bind(self, sim: Simulator, flow: "Flow") -> None: ...
    def start(self) -> None: ...
    def handle_ack_packet(self, ack: Packet) -> None: ...
    def on_data_available(self) -> None: ...
    def stop(self) -> None: ...


class Path:
    """An ordered sequence of links from one host to another."""

    def __init__(self, links: list[Link]):
        if not links:
            raise ValueError("a path needs at least one link")
        self.links = links

    def base_delay(self) -> float:
        """Sum of propagation delays (no queueing/serialization)."""
        return sum(link.delay_s for link in self.links)

    def min_base_delay(self) -> float:
        """Sum of the smallest propagation delay each link ever had.

        Equal to :meth:`base_delay` on static links; diverges only when a
        timeline raises a link's delay mid-run (``min_delay_s`` tracks the
        floor on links that support dynamics).
        """
        return sum(
            getattr(link, "min_delay_s", link.delay_s) for link in self.links
        )

    def send(self, packet: Packet, dst: "ReceiverLike") -> bool:
        """Send ``packet`` toward ``dst``. Returns False on first-hop drop."""
        links = self.links
        if len(links) == 1:
            return links[0].send(packet, dst)
        return links[0].send(packet, _Hop(links, 1, dst))


class ReceiverLike(Protocol):
    def receive(self, packet: Packet) -> None: ...


class _Hop:
    """Forwards a packet onto the next link of a multi-link path."""

    __slots__ = ("links", "index", "dst")

    def __init__(self, links: list[Link], index: int, dst: ReceiverLike):
        self.links = links
        self.index = index
        self.dst = dst

    def receive(self, packet: Packet) -> None:
        links = self.links
        nxt = self.index + 1
        if nxt == len(links):
            links[self.index].send(packet, self.dst)
        else:
            links[self.index].send(packet, _Hop(links, nxt, self.dst))


class FlowReceiver:
    """Receiver endpoint: records deliveries and returns one ACK per packet."""

    def __init__(self, flow: "Flow"):
        self.flow = flow
        self._ack_seq = 0

    def receive(self, packet: Packet) -> None:
        flow = self.flow
        now = flow.sim.now
        flow.stats.record_delivery(now, packet.size_bytes)
        if flow.on_delivery is not None:
            flow.on_delivery(now, packet.size_bytes)
        self._ack_seq += 1
        ack = Packet(
            flow_id=flow.flow_id,
            seq=self._ack_seq,
            size_bytes=ACK_BYTES,
            sent_time=now,
            is_ack=True,
            data_seq=packet.seq,
            data_sent_time=packet.sent_time,
            data_recv_time=now,
        )
        flow.reverse_path.send(ack, flow.sender_endpoint)
        flow.check_complete()


class _SenderEndpoint:
    """Sender-side ACK sink; dispatches to the congestion controller."""

    __slots__ = ("flow",)

    def __init__(self, flow: "Flow"):
        self.flow = flow

    def receive(self, packet: Packet) -> None:
        self.flow.sender.handle_ack_packet(packet)


class Flow:
    """One transport connection through the simulated network.

    Args:
        sim: The simulator.
        sender: Congestion-control sender (bound to this flow here).
        forward_path: Path carrying data packets.
        reverse_path: Path carrying ACKs.
        flow_id: Identifier recorded in packets and stats.
        size_bytes: Total bytes to deliver, or None for an unbounded bulk
            flow. Chunked applications use ``chunked=True`` + ``add_bytes``.
        chunked: Start with no data and let the application meter bytes in
            with :meth:`add_bytes`; the flow never auto-completes.
        start_time: Absolute simulated time at which the sender starts.
        on_complete: Callback fired once ``size_bytes`` are delivered.
        on_delivery: Callback ``(now, nbytes)`` for every delivered packet.
    """

    def __init__(
        self,
        sim: Simulator,
        sender: SenderProtocol,
        forward_path: Path,
        reverse_path: Path,
        flow_id: int = 0,
        size_bytes: int | None = None,
        start_time: float = 0.0,
        chunked: bool = False,
        on_complete: Callable[["Flow", float], None] | None = None,
        on_delivery: Callable[[float, int], None] | None = None,
    ):
        if chunked and size_bytes is not None:
            raise ValueError("chunked flows meter data via add_bytes")
        self.sim = sim
        self.sender = sender
        self.forward_path = forward_path
        self.reverse_path = reverse_path
        self.flow_id = flow_id
        self.size_bytes = size_bytes
        # Flows created mid-run (e.g. web objects) start immediately.
        self.start_time = max(start_time, sim.now)
        self.on_complete = on_complete
        self.on_delivery = on_delivery
        self.stats = FlowStats(flow_id)
        self.stats.start_time = self.start_time
        self.receiver = FlowReceiver(self)
        self.sender_endpoint = _SenderEndpoint(self)
        if sim.invariants is not None:
            sim.invariants.register_flow(self)
        self.completed = False
        self._next_seq = 0
        # Unbounded flows always have data; bounded/chunked flows meter it.
        if chunked:
            self.bytes_unsent: float = 0.0
        else:
            self.bytes_unsent = float("inf") if size_bytes is None else size_bytes

        sender.bind(sim, self)
        sim.schedule_at(self.start_time, self._start)

    # ------------------------------------------------------------------
    def _start(self) -> None:
        if not self.completed:
            self.sender.start()

    def add_bytes(self, nbytes: int) -> None:
        """Make ``nbytes`` more application data available to send."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if self.bytes_unsent == float("inf"):
            raise RuntimeError("cannot add bytes to an unbounded flow")
        was_idle = self.bytes_unsent <= 0
        self.bytes_unsent += nbytes
        if was_idle:
            self.sender.on_data_available()

    def transmit(self, size_bytes: int) -> tuple[int, bool]:
        """Send one data packet of ``size_bytes``; returns (seq, accepted).

        ``accepted`` is False when the first hop tail-dropped the packet.
        The sender still tracks the sequence number so the drop is detected
        like any other loss (via the ACK gap).
        """
        self._next_seq += 1
        seq = self._next_seq
        packet = Packet(
            flow_id=self.flow_id,
            seq=seq,
            size_bytes=size_bytes,
            sent_time=self.sim.now,
        )
        self.stats.record_send()
        if self.bytes_unsent != float("inf"):
            self.bytes_unsent -= size_bytes
        accepted = self.forward_path.send(packet, self.receiver)
        return seq, accepted

    def requeue_bytes(self, nbytes: int) -> None:
        """Return lost bytes to the unsent pool (models retransmission)."""
        if self.bytes_unsent != float("inf"):
            self.bytes_unsent += nbytes

    def has_data(self) -> bool:
        return self.bytes_unsent > 0 and not self.completed

    def check_complete(self) -> None:
        if (
            not self.completed
            and self.size_bytes is not None
            and self.stats.delivered_bytes >= self.size_bytes
        ):
            self.completed = True
            self.stats.end_time = self.sim.now
            self.sender.stop()
            if self.on_complete is not None:
                self.on_complete(self, self.sim.now)

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently sent data packet."""
        return self._next_seq

    def base_rtt(self) -> float:
        """Propagation-only round-trip time of the flow's paths."""
        return self.forward_path.base_delay() + self.reverse_path.base_delay()

    def min_base_rtt(self) -> float:
        """Smallest propagation-only RTT over the run (see invariants)."""
        return (
            self.forward_path.min_base_delay()
            + self.reverse_path.min_base_delay()
        )
