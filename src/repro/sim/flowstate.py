"""Vectorized per-flow burst state for hybrid fast-forward.

The paced-burst path (:meth:`repro.protocols.base.RateSender._burst_tick`)
sends up to ``Fidelity.burst_packets`` packets in one engine dispatch.
The per-packet reference path walks each packet through
``Flow.transmit_ff`` -> ``Link.send_ff`` -> ``FlowReceiver.receive_ff``
— three Python calls and two packet allocations per packet.  For a
burst on healthy static links all of that is closed-form arithmetic:

* the transmitter-claim recurrence ``busy_i = max(busy_{i-1}, t_i) + tx``
  unrolls to ``busy_i = (i+1)*tx + cummax(t_j - j*tx, busy_0)``,
* delivery times are ``busy_i + delay`` (strictly increasing, so the
  FIFO guard reduces to one boundary check against the link's last
  delivery), and
* the ACK leg is the same recurrence on the reverse link.

This module computes those arrays with numpy and applies the aggregate
state updates (link counters, flow stats, ACK events) in bulk.  The
sequential per-packet path remains the **reference implementation**:
:func:`transmit_burst_ff` returns ``None`` whenever anything needs a
per-packet decision — loss or noise draws, an outage, a tail-drop risk
inside the burst, a fast-forward barrier, a tracer watching, numpy
missing, or a burst too short to amortize array overhead — and the
caller falls back to the reference loop.

The closed-form arithmetic can differ from the sequential recurrence in
the lowest float bits (``(i+1)*tx`` vs repeated addition, and numpy's
pairwise reductions), which is why ``Fidelity.use_numpy`` is part of
the harness cache key.
"""

from __future__ import annotations

import heapq as _heapq

from .packet import ACK_BYTES, Packet

try:  # pragma: no cover - exercised implicitly by the gating tests
    import numpy as _np
except ImportError:  # pragma: no cover - image always ships numpy
    _np = None

MIN_NUMPY_BURST = 24
"""Bursts shorter than this stay on the per-packet reference path.

Each numpy call carries ~1 microsecond of dispatch overhead; below
roughly this many packets the vectorized plan costs more than the
per-packet loop it replaces (measured on the ``repro bench`` scenario:
at the default 16-packet cap the numpy path is ~10% *slower*, at 64
packets ~6% faster).  The default :data:`~repro.sim.fidelity.HYBRID`
configuration therefore never reaches numpy; homogeneous sweeps opt in
by raising ``Fidelity.burst_packets``.
"""


def numpy_available() -> bool:
    return _np is not None


def _link_is_plain(link) -> bool:
    """No per-packet randomness or state machine on this link."""
    return (
        link.loss_model is None
        and link.noise is None
        and link.loss_rate == 0.0  # repro: noqa[no-float-eq] — gate, not math
        and not link._down
        and link.ff_barrier_s == float("inf")
    )


def _claim_times(times, busy0: float, tx: float):
    """Vectorized transmitter-claim recurrence.

    Returns ``busy`` where ``busy[i]`` is the link's ``_busy_until``
    after serializing the ``i``-th packet offered at ``times[i]``:
    ``busy[i] = max(busy[i-1], times[i]) + tx`` with ``busy[-1]=busy0``.
    """
    n = len(times)
    steps = _np.arange(n, dtype=_np.float64)
    offsets = _np.maximum.accumulate(_np.maximum(times - steps * tx, busy0))
    return offsets + (steps + 1.0) * tx


def transmit_burst_ff(flow, times, size_bytes: int):
    """Send a whole paced burst analytically; returns the seqs or None.

    ``times`` are the virtual send times (monotone non-decreasing, all at
    or after ``flow.sim.now``) the caller planned with the same jitter
    draws the reference loop would have used.  On success every packet
    is delivered, its ACK is scheduled, and all link/flow counters match
    what ``len(times)`` calls of ``Flow.transmit_ff`` would have left
    behind (up to float low bits, see module docstring).

    ``None`` means "not eligible": the caller must fall back to the
    per-packet reference path.  No state is mutated in that case.
    """
    n = len(times)
    if _np is None or n < MIN_NUMPY_BURST:
        return None
    sim = flow.sim
    fwd = flow.ff_fwd
    rev = flow.ff_rev
    if (
        sim.tracer is not None
        or not _link_is_plain(fwd)
        or not _link_is_plain(rev)
    ):
        return None

    t = _np.asarray(times, dtype=_np.float64)
    tx = size_bytes * 8.0 / fwd.bandwidth_bps
    busy = _claim_times(t, fwd._busy_until, tx)
    # Tail-drop risk anywhere in the burst -> per-packet path (it records
    # the drop and the loss detection that follows).
    occupancy = _np.maximum(0.0, _np.concatenate(([fwd._busy_until], busy[:-1])) - t) * (
        fwd.bandwidth_bps / 8.0
    ) + size_bytes
    if (occupancy > fwd.buffer_bytes + 1e-6).any():
        return None
    deliver = busy + fwd.delay_s
    if deliver[0] <= fwd._last_delivery:
        # FIFO epsilon chain is inherently sequential; punt (rare).
        return None

    ack_tx = ACK_BYTES * 8.0 / rev.bandwidth_bps
    ack_busy = _claim_times(deliver, rev._busy_until, ack_tx)
    ack_occ = _np.maximum(
        0.0, _np.concatenate(([rev._busy_until], ack_busy[:-1])) - deliver
    ) * (rev.bandwidth_bps / 8.0) + ACK_BYTES
    if (ack_occ > rev.buffer_bytes + 1e-6).any():
        return None
    ack_at = ack_busy + rev.delay_s
    if ack_at[0] <= rev._last_delivery:
        return None

    # ---- Commit: bulk equivalents of the per-packet bookkeeping ----
    fwd._busy_until = float(busy[-1])
    fwd._last_delivery = float(deliver[-1])
    fstats = fwd.stats
    fstats.offered += n
    fstats.delivered += n
    peak = float(occupancy.max())
    if peak > fstats.max_backlog_bytes:
        fstats.max_backlog_bytes = peak
    rev._busy_until = float(ack_busy[-1])
    rev._last_delivery = float(ack_at[-1])
    rstats = rev.stats
    rstats.offered += n
    rstats.delivered += n
    peak = float(ack_occ.max())
    if peak > rstats.max_backlog_bytes:
        rstats.max_backlog_bytes = peak

    stats = flow.stats
    stats.packets_sent += n
    stats.delivered_bytes += n * size_bytes
    if stats.first_delivery is None:
        stats.first_delivery = float(deliver[0])
    stats.last_delivery = float(deliver[-1])

    first_seq = flow._next_seq + 1
    flow._next_seq += n
    receiver = flow.receiver
    handle = flow.sender.handle_ack_packet
    heap = sim._heap
    flow_id = flow.flow_id
    seq = first_seq
    ack_seq = receiver._ack_seq
    for send_t, recv_t, ack_t in zip(t.tolist(), deliver.tolist(), ack_at.tolist()):
        ack_seq += 1
        ack = Packet(
            flow_id=flow_id,
            seq=ack_seq,
            size_bytes=ACK_BYTES,
            sent_time=recv_t,
            is_ack=True,
            data_seq=seq,
            data_sent_time=send_t,
            data_recv_time=recv_t,
        )
        sim._seq += 1
        _heapq.heappush(heap, (ack_t, sim._seq, handle, (ack,), None))
        seq += 1
    receiver._ack_seq = ack_seq
    # One virtual event per collapsed data delivery, exactly like the
    # reference receive_ff path.
    sim.events_virtual += n
    return list(range(first_seq, first_seq + n))
