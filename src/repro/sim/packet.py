"""Packet representation shared by senders, links, and receivers.

One class models both data packets and ACKs to keep the hot path free of
isinstance dispatch.  ACKs echo the data packet's sequence number, sent
timestamp and receive timestamp, which is what timestamp-based protocols
(LEDBAT one-way delay, PCC monitor intervals) need.
"""

from __future__ import annotations

MTU_BYTES = 1500
"""Data packet size (payload + headers) used throughout the reproduction."""

ACK_BYTES = 40
"""Size of an acknowledgment packet."""


class Packet:
    """A simulated packet.

    Attributes:
        flow_id: Integer id of the owning flow.
        seq: Per-flow sequence number (monotonic per direction).
        size_bytes: Wire size; determines serialization time.
        sent_time: When the sender transmitted the packet.
        is_ack: Whether this is an acknowledgment.
        data_seq: For ACKs, sequence of the acknowledged data packet.
        data_sent_time: For ACKs, sent time of the acknowledged data packet.
        data_recv_time: For ACKs, arrival time of the data packet at the
            receiver (enables exact one-way-delay measurement, standing in
            for the timestamp option LEDBAT relies on).
    """

    __slots__ = (
        "flow_id",
        "seq",
        "size_bytes",
        "sent_time",
        "is_ack",
        "data_seq",
        "data_sent_time",
        "data_recv_time",
    )

    def __init__(
        self,
        flow_id: int,
        seq: int,
        size_bytes: int = MTU_BYTES,
        sent_time: float = 0.0,
        is_ack: bool = False,
        data_seq: int = -1,
        data_sent_time: float = 0.0,
        data_recv_time: float = 0.0,
    ):
        self.flow_id = flow_id
        self.seq = seq
        self.size_bytes = size_bytes
        self.sent_time = sent_time
        self.is_ack = is_ack
        self.data_seq = data_seq
        self.data_sent_time = data_sent_time
        self.data_recv_time = data_recv_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ACK" if self.is_ack else "DATA"
        return f"<{kind} flow={self.flow_id} seq={self.seq} t={self.sent_time:.4f}>"
