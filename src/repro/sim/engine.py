"""Discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Everything in
the simulated network (links, senders, application agents) schedules
callbacks on a shared :class:`Simulator` instance.  Simulated time is a
float number of seconds.

The engine is deliberately minimal and allocation-light: a congestion
control experiment pushes millions of events through it, so the heap holds
plain ``(time, seq, fn, args, event)`` tuples and the hot path avoids any
indirection beyond one heap push/pop per event.  Two scheduling paths share
that heap:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return an
  :class:`Event` handle so callers can cancel pending timers (RTO timers,
  pacing ticks);
* :meth:`Simulator.schedule_fast` / :meth:`Simulator.schedule_fast_at`
  skip the ``Event`` allocation entirely for fire-and-forget callbacks.
  Per-packet deliveries dominate the heap in a congestion-control run and
  are never cancelled, so the fast path removes one object allocation and
  one attribute-loaded comparison per packet.

``seq`` is unique per simulator, so tuple comparison never reaches the
callback and no ``__lt__`` dispatch happens during sifting.

Cancellation is lazy (the entry stays in the heap until popped), but the
simulator compacts the heap whenever cancelled events outnumber live ones,
so long-running workloads that arm-and-cancel timers at a high rate do not
leak memory.  Live-event accounting is O(1): ``pending()`` is maintained
as ``heap length - cancelled count`` on every push/pop/cancel/compact, and
the old O(n) scan survives only as a debug assertion under invariant
checking.

Optional runtime invariant checking (``check_invariants=True``, or the
``REPRO_CHECK_INVARIANTS=1`` environment variable) attaches a
:class:`repro.sim.invariants.InvariantChecker` that audits clock
monotonicity, per-link packet conservation, queue non-negativity, and RTT
sample bounds as the simulation runs.
"""

from __future__ import annotations

import heapq
import os
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .invariants import InvariantChecker

_COMPACT_MIN_HEAP = 64
"""Heap size below which compaction is not worth the heapify cost."""


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class Event:
    """A cancellable scheduled callback.

    Events are returned by :meth:`Simulator.schedule` so callers can cancel
    pending timers.  Cancellation is lazy: the heap entry stays queued but
    is skipped when popped; the owning simulator counts cancellations and
    compacts the heap when they dominate it.  Once the event has fired (or
    been dropped by compaction) cancelling is a harmless no-op.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if not self.cancelled:
            self.cancelled = True
            if self.sim is not None:
                self.sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {self.fn.__qualname__} ({state})>"


# Heap entry layout: (time, seq, fn, args, event-or-None).  ``event`` is
# None for the fast path; entries never compare past ``seq``.
_TIME = 0
_FN = 2
_ARGS = 3
_EVENT = 4


class Simulator:
    """The simulation clock and event queue.

    Args:
        check_invariants: Attach a runtime
            :class:`~repro.sim.invariants.InvariantChecker`.  ``None``
            (the default) consults the ``REPRO_CHECK_INVARIANTS``
            environment variable so whole test suites can opt in without
            threading a flag through every harness entry point.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (1.5, ['hello'])
    """

    def __init__(self, check_invariants: bool | None = None) -> None:
        self.now: float = 0.0
        self._heap: list[tuple] = []
        self._seq: int = 0
        self._running = False
        self._cancelled = 0
        self.events_fired: int = 0
        if check_invariants is None:
            check_invariants = os.environ.get("REPRO_CHECK_INVARIANTS", "") not in (
                "",
                "0",
            )
        self.invariants: "InvariantChecker | None" = None
        if check_invariants:
            from .invariants import InvariantChecker

            self.invariants = InvariantChecker(self)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time_s: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time_s``."""
        if time_s < self.now:
            raise SimulationError(
                f"cannot schedule event in the past ({time_s} < now={self.now})"
            )
        self._seq += 1
        event = Event(time_s, self._seq, fn, args, self)
        heapq.heappush(self._heap, (time_s, self._seq, fn, args, event))
        return event

    def schedule(self, delay_s: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay_s`` seconds from now."""
        if delay_s < 0:
            raise SimulationError(f"negative delay {delay_s}")
        return self.schedule_at(self.now + delay_s, fn, *args)

    def schedule_fast_at(self, time_s: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule a fire-and-forget ``fn(*args)`` at absolute ``time_s``.

        No :class:`Event` is allocated, so the callback cannot be
        cancelled.  Use for the per-packet deliveries that dominate the
        heap; use :meth:`schedule_at` for anything a caller may cancel.
        """
        if time_s < self.now:
            raise SimulationError(
                f"cannot schedule event in the past ({time_s} < now={self.now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time_s, self._seq, fn, args, None))

    def schedule_fast(self, delay_s: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule a fire-and-forget ``fn(*args)`` after ``delay_s``."""
        if delay_s < 0:
            raise SimulationError(f"negative delay {delay_s}")
        self.schedule_fast_at(self.now + delay_s, fn, *args)

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; compacts when >50% is dead."""
        self._cancelled += 1
        heap = self._heap
        if len(heap) >= _COMPACT_MIN_HEAP and self._cancelled * 2 > len(heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events from the heap and re-heapify.

        In place: ``step``/``run`` hold a local reference to the heap
        list, so rebinding ``self._heap`` here would strand them on a
        stale copy when an event handler cancels timers mid-run.
        """
        self._heap[:] = [
            entry
            for entry in self._heap
            if entry[_EVENT] is None or not entry[_EVENT].cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event. Returns False when the queue is empty."""
        heap = self._heap
        inv = self.invariants
        while heap:
            entry = heapq.heappop(heap)
            event = entry[_EVENT]
            if event is not None:
                if event.cancelled:
                    if self._cancelled > 0:
                        self._cancelled -= 1
                    continue
                # Detach so a late cancel() cannot corrupt live accounting.
                event.sim = None
            self.now = entry[_TIME]
            entry[_FN](*entry[_ARGS])
            self.events_fired += 1
            if inv is not None:
                inv.after_event(self.now)
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run events until the queue drains or ``until`` is reached.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so post-run measurements see a
        consistent end time.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        inv = self.invariants
        try:
            heap = self._heap
            while heap:
                entry = heap[0]
                event = entry[_EVENT]
                if event is not None and event.cancelled:
                    heapq.heappop(heap)
                    if self._cancelled > 0:
                        self._cancelled -= 1
                    continue
                if until is not None and entry[_TIME] > until:
                    break
                heapq.heappop(heap)
                if event is not None:
                    event.sim = None
                self.now = entry[_TIME]
                entry[_FN](*entry[_ARGS])
                self.events_fired += 1
                if inv is not None:
                    inv.after_event(self.now)
            if until is not None and until > self.now:
                self.now = until
            if inv is not None:
                inv.final_check()
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of queued live (non-cancelled) events — O(1).

        Maintained as ``heap length - cancelled count``; the exhaustive
        scan this used to perform survives as a debug assertion when
        invariant checking is attached.
        """
        live = len(self._heap) - self._cancelled
        if self.invariants is not None:
            assert live == self._pending_scan(), (
                f"live-event counter drifted: counted {live}, "
                f"scan found {self._pending_scan()}"
            )
        return live

    def _pending_scan(self) -> int:
        """O(n) reference count of live events (debug/verification only)."""
        return sum(
            1
            for entry in self._heap
            if entry[_EVENT] is None or not entry[_EVENT].cancelled
        )

    def heap_size(self) -> int:
        """Raw heap length including cancelled entries — for tests/debugging."""
        return len(self._heap)
