"""Discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Everything in
the simulated network (links, senders, application agents) schedules
callbacks on a shared :class:`Simulator` instance.  Simulated time is a
float number of seconds.

The engine is deliberately minimal and allocation-light: a congestion
control experiment pushes millions of events through it, so events are
small ``__slots__`` objects and the hot path avoids any indirection beyond
one heap push/pop per event.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` so callers can cancel
    pending timers.  Cancellation is lazy: the event stays in the heap but
    is skipped when popped.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {self.fn.__qualname__} ({state})>"


class Simulator:
    """The simulation clock and event queue.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (1.5, ['hello'])
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past ({time} < now={self.now})"
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event. Returns False when the queue is empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.fn(*event.args)
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run events until the queue drains or ``until`` is reached.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so post-run measurements see a
        consistent end time.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        try:
            heap = self._heap
            while heap:
                event = heap[0]
                if event.cancelled:
                    heapq.heappop(heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(heap)
                self.now = event.time
                event.fn(*event.args)
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events — for tests/debugging."""
        return sum(1 for event in self._heap if not event.cancelled)
