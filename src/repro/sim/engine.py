"""Discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Everything in
the simulated network (links, senders, application agents) schedules
callbacks on a shared :class:`Simulator` instance.  Simulated time is a
float number of seconds.

The engine is deliberately minimal and allocation-light: a congestion
control experiment pushes millions of events through it, so events are
small ``__slots__`` objects and the hot path avoids any indirection beyond
one heap push/pop per event.

Cancellation is lazy (the event stays in the heap until popped), but the
simulator compacts the heap whenever cancelled events outnumber live ones,
so long-running workloads that arm-and-cancel timers at a high rate (RTO
timers, pacing ticks) do not leak memory.

Optional runtime invariant checking (``check_invariants=True``, or the
``REPRO_CHECK_INVARIANTS=1`` environment variable) attaches a
:class:`repro.sim.invariants.InvariantChecker` that audits clock
monotonicity, per-link packet conservation, queue non-negativity, and RTT
sample bounds as the simulation runs.
"""

from __future__ import annotations

import heapq
import os
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .invariants import InvariantChecker

_COMPACT_MIN_HEAP = 64
"""Heap size below which compaction is not worth the heapify cost."""


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` so callers can cancel
    pending timers.  Cancellation is lazy: the event stays in the heap but
    is skipped when popped; the owning simulator counts cancellations and
    compacts the heap when they dominate it.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if not self.cancelled:
            self.cancelled = True
            if self.sim is not None:
                self.sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        if self.time < other.time:
            return True
        if other.time < self.time:
            return False
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {self.fn.__qualname__} ({state})>"


class Simulator:
    """The simulation clock and event queue.

    Args:
        check_invariants: Attach a runtime
            :class:`~repro.sim.invariants.InvariantChecker`.  ``None``
            (the default) consults the ``REPRO_CHECK_INVARIANTS``
            environment variable so whole test suites can opt in without
            threading a flag through every harness entry point.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (1.5, ['hello'])
    """

    def __init__(self, check_invariants: bool | None = None) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._running = False
        self._cancelled = 0
        if check_invariants is None:
            check_invariants = os.environ.get("REPRO_CHECK_INVARIANTS", "") not in (
                "",
                "0",
            )
        self.invariants: "InvariantChecker | None" = None
        if check_invariants:
            from .invariants import InvariantChecker

            self.invariants = InvariantChecker(self)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time_s: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time_s``."""
        if time_s < self.now:
            raise SimulationError(
                f"cannot schedule event in the past ({time_s} < now={self.now})"
            )
        self._seq += 1
        event = Event(time_s, self._seq, fn, args, self)
        heapq.heappush(self._heap, event)
        return event

    def schedule(self, delay_s: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay_s`` seconds from now."""
        if delay_s < 0:
            raise SimulationError(f"negative delay {delay_s}")
        return self.schedule_at(self.now + delay_s, fn, *args)

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; compacts when >50% is dead."""
        self._cancelled += 1
        heap = self._heap
        if len(heap) >= _COMPACT_MIN_HEAP and self._cancelled * 2 > len(heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events from the heap and re-heapify.

        In place: ``step``/``run`` hold a local reference to the heap
        list, so rebinding ``self._heap`` here would strand them on a
        stale copy when an event handler cancels timers mid-run.
        """
        self._heap[:] = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event. Returns False when the queue is empty."""
        heap = self._heap
        inv = self.invariants
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                if self._cancelled > 0:
                    self._cancelled -= 1
                continue
            self.now = event.time
            event.fn(*event.args)
            if inv is not None:
                inv.after_event(self.now)
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run events until the queue drains or ``until`` is reached.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so post-run measurements see a
        consistent end time.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        inv = self.invariants
        try:
            heap = self._heap
            while heap:
                event = heap[0]
                if event.cancelled:
                    heapq.heappop(heap)
                    if self._cancelled > 0:
                        self._cancelled -= 1
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(heap)
                self.now = event.time
                event.fn(*event.args)
                if inv is not None:
                    inv.after_event(self.now)
            if until is not None and until > self.now:
                self.now = until
            if inv is not None:
                inv.final_check()
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of queued live (non-cancelled) events — for tests/debugging."""
        return sum(1 for event in self._heap if not event.cancelled)

    def heap_size(self) -> int:
        """Raw heap length including cancelled entries — for tests/debugging."""
        return len(self._heap)
