"""Discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Everything in
the simulated network (links, senders, application agents) schedules
callbacks on a shared :class:`Simulator` instance.  Simulated time is a
float number of seconds.

The engine is deliberately minimal and allocation-light: a congestion
control experiment pushes millions of events through it, so the heap holds
plain ``(time, seq, fn, args, event)`` tuples and the hot path avoids any
indirection beyond one heap push/pop per event.  Two scheduling paths share
that heap:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return an
  :class:`Event` handle so callers can cancel pending timers (RTO timers,
  pacing ticks);
* :meth:`Simulator.schedule_fast` / :meth:`Simulator.schedule_fast_at`
  skip the ``Event`` allocation entirely for fire-and-forget callbacks.
  Per-packet deliveries dominate the heap in a congestion-control run and
  are never cancelled, so the fast path removes one object allocation and
  one attribute-loaded comparison per packet.

``seq`` is unique per simulator, so tuple comparison never reaches the
callback and no ``__lt__`` dispatch happens during sifting.

Cancellation is lazy (the entry stays in the heap until popped), but the
simulator compacts the heap whenever cancelled events outnumber live ones,
so long-running workloads that arm-and-cancel timers at a high rate do not
leak memory.  Live-event accounting is O(1): ``pending()`` is maintained
as ``heap length - cancelled count`` on every push/pop/cancel/compact, and
the old O(n) scan survives only as a debug assertion under invariant
checking.

Optional runtime invariant checking (``check_invariants=True``, or the
``REPRO_CHECK_INVARIANTS=1`` environment variable) attaches a
:class:`repro.sim.invariants.InvariantChecker` that audits clock
monotonicity, per-link packet conservation, queue non-negativity, and RTT
sample bounds as the simulation runs.

:meth:`Simulator.run` also accepts **watchdog budgets**: ``max_events``
caps how many events a single ``run()`` call may fire (default from the
``REPRO_MAX_EVENTS`` environment variable) and ``max_wall_s`` caps its
host wall-clock time.  Exceeding either raises a catchable
:class:`SimBudgetExceeded` instead of spinning forever on e.g. a
zero-dt self-rescheduling bug — the supervision layer
(:mod:`repro.harness.supervise`) maps that exception to a structured
``timed-out`` trial outcome.
"""

from __future__ import annotations

import heapq
import os
import time
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .invariants import InvariantChecker

_COMPACT_MIN_HEAP = 64
"""Heap size below which compaction is not worth the heapify cost."""

_BATCH_MAX_EVENTS = 1024
"""Cap on events drained per same-timestamp batch.

Bounds how long the batched dispatcher can spin at one timestamp before
control returns to the outer loop, so the invariant checker's stall
tripwire and the budgeted loop's watchdogs still observe a zero-dt
self-rescheduling livelock instead of being starved by an endless batch.
"""


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class SimBudgetExceeded(SimulationError):
    """A :meth:`Simulator.run` call exceeded its event or wall-clock budget.

    Carries enough context for a supervisor to build an attributable
    trial record.  The exception crosses process boundaries intact
    (custom ``__reduce__``), so a pool worker that trips its watchdog
    surfaces as a structured ``timed-out`` outcome in the parent.
    """

    def __init__(
        self,
        message: str,
        events_fired: int = 0,
        max_events: "int | None" = None,
        wall_s: "float | None" = None,
        max_wall_s: "float | None" = None,
    ) -> None:
        super().__init__(message)
        self.events_fired = events_fired
        self.max_events = max_events
        self.wall_s = wall_s
        self.max_wall_s = max_wall_s

    def __reduce__(self):
        return (
            type(self),
            (
                self.args[0],
                self.events_fired,
                self.max_events,
                self.wall_s,
                self.max_wall_s,
            ),
        )


def env_max_events() -> "int | None":
    """Event budget from ``REPRO_MAX_EVENTS`` (empty/``0`` = unlimited).

    Parsed on every :meth:`Simulator.run` call — one environment read per
    run is noise next to the run itself, and it keeps tests free of
    cache-reset hooks.
    """
    raw = os.environ.get("REPRO_MAX_EVENTS", "").strip()
    if not raw or raw == "0":
        return None
    try:
        budget = int(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_MAX_EVENTS must be an integer, got {raw!r}") from exc
    if budget < 1:
        raise ValueError(f"REPRO_MAX_EVENTS must be >= 1 or 0 (unlimited), got {budget}")
    return budget


class Event:
    """A cancellable scheduled callback.

    Events are returned by :meth:`Simulator.schedule` so callers can cancel
    pending timers.  Cancellation is lazy: the heap entry stays queued but
    is skipped when popped; the owning simulator counts cancellations and
    compacts the heap when they dominate it.  Once the event has fired (or
    been dropped by compaction) cancelling is a harmless no-op.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if not self.cancelled:
            self.cancelled = True
            if self.sim is not None:
                self.sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {self.fn.__qualname__} ({state})>"


# Heap entry layout: (time, seq, fn, args, event-or-None).  ``event`` is
# None for the fast path; entries never compare past ``seq``.
_TIME = 0
_FN = 2
_ARGS = 3
_EVENT = 4


class Simulator:
    """The simulation clock and event queue.

    Args:
        check_invariants: Attach a runtime
            :class:`~repro.sim.invariants.InvariantChecker`.  ``None``
            (the default) consults the ``REPRO_CHECK_INVARIANTS``
            environment variable so whole test suites can opt in without
            threading a flag through every harness entry point.
        tracer: Optional :class:`repro.obs.Tracer` that links and senders
            consult (``sim.tracer``) to emit trace events.  ``None`` (the
            default) keeps every emission site on its single-branch
            no-op path; the event loop itself never touches the tracer,
            so the unbudgeted hot loop is byte-for-byte unchanged.
        fidelity: Execution-fidelity mode — a
            :class:`repro.sim.fidelity.Fidelity`, a mode name, or
            ``None`` to consult ``REPRO_FIDELITY`` (default ``exact``).
            The engine itself only stores the resolved mode; links and
            senders consult ``sim.fidelity`` to decide whether the
            hybrid fast-forward paths are allowed to engage.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (1.5, ['hello'])
    """

    def __init__(
        self,
        check_invariants: bool | None = None,
        *,
        tracer: "Any | None" = None,
        fidelity: "Any | None" = None,
    ) -> None:
        from .fidelity import resolve_fidelity

        self.now: float = 0.0
        self.tracer = tracer
        self.fidelity = resolve_fidelity(fidelity)
        self._heap: list[tuple] = []
        self._seq: int = 0
        self._running = False
        self._cancelled = 0
        self.events_fired: int = 0
        # Events whose effects were applied analytically (fast-forward)
        # without a heap dispatch.  ``events_fired + events_virtual`` is
        # the packet-exact-equivalent event count of a hybrid run.
        self.events_virtual: int = 0
        if check_invariants is None:
            check_invariants = os.environ.get("REPRO_CHECK_INVARIANTS", "") not in (
                "",
                "0",
            )
        self.invariants: "InvariantChecker | None" = None
        if check_invariants:
            from .invariants import InvariantChecker

            self.invariants = InvariantChecker(self)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time_s: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time_s``."""
        if time_s < self.now:
            raise SimulationError(
                f"cannot schedule event in the past ({time_s} < now={self.now})"
            )
        self._seq += 1
        event = Event(time_s, self._seq, fn, args, self)
        heapq.heappush(self._heap, (time_s, self._seq, fn, args, event))
        return event

    def schedule(self, delay_s: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay_s`` seconds from now.

        Inlined rather than delegating to :meth:`schedule_at`: a
        non-negative delay cannot land in the past, and relative
        scheduling is hot enough (pacing ticks, RTO arms) that the extra
        call and redundant past-check showed up in the engine
        microbenchmark.
        """
        if delay_s < 0:
            raise SimulationError(f"negative delay {delay_s}")
        time_s = self.now + delay_s
        self._seq += 1
        event = Event(time_s, self._seq, fn, args, self)
        heapq.heappush(self._heap, (time_s, self._seq, fn, args, event))
        return event

    def schedule_fast_at(self, time_s: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule a fire-and-forget ``fn(*args)`` at absolute ``time_s``.

        No :class:`Event` is allocated, so the callback cannot be
        cancelled.  Use for the per-packet deliveries that dominate the
        heap; use :meth:`schedule_at` for anything a caller may cancel.

        A ``time_s`` in the past is clamped to ``now`` (with a
        ``sim.schedule.past`` trace event): analytic fast-forward can
        compute delivery times a float-rounding hair behind the clock,
        and the batched dispatcher assumes no entry ever lands behind
        the batch it is draining.
        """
        if time_s < self.now:
            tracer = self.tracer
            if tracer is not None:
                tracer.emit(
                    "sim.schedule.past",
                    self.now,
                    scheduled_s=time_s,
                    lag_s=self.now - time_s,
                )
            time_s = self.now
        self._seq += 1
        heapq.heappush(self._heap, (time_s, self._seq, fn, args, None))

    def schedule_fast(self, delay_s: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule a fire-and-forget ``fn(*args)`` after ``delay_s``.

        Inlined for the same reason as :meth:`schedule`: per-packet
        deliveries pay this call on every packet, and a non-negative
        delay can never need the past-clamp in :meth:`schedule_fast_at`.
        """
        if delay_s < 0:
            raise SimulationError(f"negative delay {delay_s}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay_s, self._seq, fn, args, None))

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; compacts when >50% is dead."""
        self._cancelled += 1
        heap = self._heap
        if len(heap) >= _COMPACT_MIN_HEAP and self._cancelled * 2 > len(heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events from the heap and re-heapify.

        In place: ``step``/``run`` hold a local reference to the heap
        list, so rebinding ``self._heap`` here would strand them on a
        stale copy when an event handler cancels timers mid-run.
        """
        self._heap[:] = [
            entry
            for entry in self._heap
            if entry[_EVENT] is None or not entry[_EVENT].cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event. Returns False when the queue is empty."""
        heap = self._heap
        inv = self.invariants
        while heap:
            entry = heapq.heappop(heap)
            event = entry[_EVENT]
            if event is not None:
                if event.cancelled:
                    if self._cancelled > 0:
                        self._cancelled -= 1
                    continue
                # Detach so a late cancel() cannot corrupt live accounting.
                event.sim = None
            self.now = entry[_TIME]
            entry[_FN](*entry[_ARGS])
            self.events_fired += 1
            if inv is not None:
                inv.after_event(self.now)
            return True
        return False

    def run(
        self,
        until: float | None = None,
        *,
        max_events: int | None = None,
        max_wall_s: float | None = None,
    ) -> None:
        """Run events until the queue drains or ``until`` is reached.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so post-run measurements see a
        consistent end time.

        ``max_events`` (default: the ``REPRO_MAX_EVENTS`` environment
        variable; ``None``/``0`` = unlimited) caps how many events this
        single ``run()`` call may fire, and ``max_wall_s`` caps its host
        wall-clock time (checked every 1024 events).  Exceeding either
        budget raises :class:`SimBudgetExceeded`; the simulation state
        stays consistent, but with ``until`` the clock is *not*
        fast-forwarded and no final invariant sweep runs.  The budgets
        are watchdogs against livelock (e.g. a protocol bug that
        reschedules itself at zero dt forever), not part of any
        scenario's semantics, so they never enter cache keys.
        """
        if max_events is None:
            max_events = env_max_events()
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        inv = self.invariants
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "sim.run.begin",
                self.now,
                until_s=until,
                max_events=max_events,
                max_wall_s=max_wall_s,
            )
        try:
            if max_events is None and max_wall_s is None:
                self._run_unbudgeted(until, inv)
            else:
                self._run_budgeted(until, inv, max_events, max_wall_s)
            if until is not None and until > self.now:
                self.now = until
            if inv is not None:
                inv.final_check()
            if tracer is not None:
                tracer.emit("sim.run.end", self.now, events_fired=self.events_fired)
        finally:
            self._running = False

    def _run_unbudgeted(self, until: float | None, inv: "InvariantChecker | None") -> None:
        """The hot loop: no watchdog compares when no budget is armed.

        Dispatch is batched by timestamp: the first pop opens a batch,
        then every entry sharing its time is drained in a tight inner
        loop with one clock write, one ``events_fired`` flush, and one
        invariant hook for the whole batch.  Entries are popped before
        the ``until`` test (cheaper than peek-then-pop); the rare
        overshooting entry is pushed back.
        """
        heap = self._heap
        pop = heapq.heappop
        until_t = float("inf") if until is None else until
        cap = _BATCH_MAX_EVENTS
        if inv is not None and inv.max_stall_events is not None:
            # Let the stall tripwire see the clock at least once per
            # threshold's worth of same-time events.
            cap = min(cap, inv.max_stall_events)
        fired = 0
        try:
            while heap:
                # One tuple unpack instead of four subscripts per event.
                now, _, fn, args, event = entry = pop(heap)
                if event is not None and event.cancelled:
                    if self._cancelled > 0:
                        self._cancelled -= 1
                    continue
                if now > until_t:
                    heapq.heappush(heap, entry)
                    break
                if event is not None:
                    # Detach so a late cancel() cannot corrupt accounting.
                    event.sim = None
                self.now = now
                batch_start = fired
                fn(*args)
                fired += 1
                # Exact equality is the point: only events sharing this
                # timestamp belong to the batch.
                while heap and heap[0][_TIME] == now and fired - batch_start < cap:  # repro: noqa[no-float-eq]
                    _, _, fn, args, event = pop(heap)
                    if event is not None:
                        if event.cancelled:
                            if self._cancelled > 0:
                                self._cancelled -= 1
                            continue
                        event.sim = None
                    fn(*args)
                    fired += 1
                if inv is not None:
                    inv.after_event(now, fired - batch_start)
        finally:
            # One flush per run, not one attribute store per event; every
            # external reader observes the counter only after run()/step()
            # returns or an exception has propagated through here.
            self.events_fired += fired

    def _run_budgeted(
        self,
        until: float | None,
        inv: "InvariantChecker | None",
        max_events: int | None,
        max_wall_s: float | None,
    ) -> None:
        """As :meth:`_run_unbudgeted` plus event/wall budget checks.

        A separate loop so the unbudgeted path pays zero extra compares
        per event (the engine microbenchmark gates that).
        """
        heap = self._heap
        pop = heapq.heappop
        batch_cap = _BATCH_MAX_EVENTS
        if inv is not None and inv.max_stall_events is not None:
            batch_cap = min(batch_cap, inv.max_stall_events)
        fired = 0
        deadline = None
        next_wall_check = 1024
        if max_wall_s is not None:
            # Watchdog only: the simulated world never sees this value.
            deadline = time.perf_counter() + max_wall_s  # repro: noqa[no-wallclock]
        while heap:
            entry = heap[0]
            event = entry[_EVENT]
            if event is not None and event.cancelled:
                pop(heap)
                if self._cancelled > 0:
                    self._cancelled -= 1
                continue
            if until is not None and entry[_TIME] > until:
                break
            if max_events is not None and fired >= max_events:
                if self.tracer is not None:
                    self.tracer.emit(
                        "sim.budget.exceeded",
                        self.now,
                        budget="events",
                        events_fired=fired,
                        max_events=max_events,
                    )
                raise SimBudgetExceeded(
                    f"event budget exhausted: {fired} events fired in one "
                    f"run() call with max_events={max_events} "
                    f"(sim time {self.now:.6f}s, {len(heap)} entries queued)",
                    events_fired=fired,
                    max_events=max_events,
                    max_wall_s=max_wall_s,
                )
            pop(heap)
            if event is not None:
                event.sim = None
            now = entry[_TIME]
            self.now = now
            batch = 0
            try:
                entry[_FN](*entry[_ARGS])
                batch = 1
                # Same-timestamp batch, additionally bounded by the event
                # budget so exhaustion is raised at exactly ``max_events``.
                # Exact-timestamp batch membership, same as the
                # unbudgeted loop.
                while heap and heap[0][_TIME] == now and batch < batch_cap:  # repro: noqa[no-float-eq]
                    if max_events is not None and fired + batch >= max_events:
                        break
                    entry = pop(heap)
                    event = entry[_EVENT]
                    if event is not None:
                        if event.cancelled:
                            if self._cancelled > 0:
                                self._cancelled -= 1
                            continue
                        event.sim = None
                    entry[_FN](*entry[_ARGS])
                    batch += 1
            finally:
                self.events_fired += batch
                fired += batch
            if inv is not None:
                inv.after_event(now, batch)
            if deadline is not None and fired >= next_wall_check:
                next_wall_check = fired + 1024
                wall_now = time.perf_counter()  # repro: noqa[no-wallclock]
                if wall_now > deadline:
                    assert max_wall_s is not None
                    if self.tracer is not None:
                        self.tracer.emit(
                            "sim.budget.exceeded",
                            self.now,
                            budget="wall",
                            events_fired=fired,
                            max_wall_s=max_wall_s,
                        )
                    raise SimBudgetExceeded(
                        f"wall-clock budget exhausted: {max_wall_s:g}s of host "
                        f"time in one run() call after {fired} events "
                        f"(sim time {self.now:.6f}s)",
                        events_fired=fired,
                        max_events=max_events,
                        wall_s=wall_now - (deadline - max_wall_s),
                        max_wall_s=max_wall_s,
                    )

    def pending(self) -> int:
        """Number of queued live (non-cancelled) events — O(1).

        Maintained as ``heap length - cancelled count``; the exhaustive
        scan this used to perform survives as a debug assertion when
        invariant checking is attached.
        """
        live = len(self._heap) - self._cancelled
        if self.invariants is not None:
            assert live == self._pending_scan(), (
                f"live-event counter drifted: counted {live}, "
                f"scan found {self._pending_scan()}"
            )
        return live

    def _pending_scan(self) -> int:
        """O(n) reference count of live events (debug/verification only)."""
        return sum(
            1
            for entry in self._heap
            if entry[_EVENT] is None or not entry[_EVENT].cancelled
        )

    def heap_size(self) -> int:
        """Raw heap length including cancelled entries — for tests/debugging."""
        return len(self._heap)
