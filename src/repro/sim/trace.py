"""Per-flow measurement collection.

A :class:`FlowStats` instance is attached to every flow and records ACK
arrivals (with RTT samples), deliveries, and losses.  All of the paper's
transport-level metrics — throughput over a window, Jain-index inputs,
95th-percentile RTT, inflation ratio — are derived from this record by
:mod:`repro.analysis`.
"""

from __future__ import annotations

import bisect
from array import array


class FlowStats:
    """Measurement record for one flow.

    RTT samples are stored as parallel time/value series kept in arrival
    order (simulated time is monotone), so windowed queries are two
    bisects plus a slice.  The series are ``array('d')`` / ``array('q')``
    rather than lists: a long run records millions of samples, and packed
    arrays cut per-sample memory ~4x (8 bytes vs a pointer plus a boxed
    float) while keeping append and bisect behaviour identical.
    """

    def __init__(self, flow_id: int = 0):
        self.flow_id = flow_id
        self.start_time: float = 0.0
        self.end_time: float | None = None
        # ACK-side record (sender's view).
        self.ack_times: array = array("d")
        self.acked_bytes: array = array("q")
        self.rtts: array = array("d")
        self.total_acked_bytes: int = 0
        # Receiver-side record.
        self.delivered_bytes: int = 0
        self.first_delivery: float | None = None
        self.last_delivery: float | None = None
        # Loss record.
        self.loss_times: array = array("d")
        self.packets_sent: int = 0

    # ------------------------------------------------------------------
    # Recording (called by flow machinery)
    # ------------------------------------------------------------------
    def record_send(self) -> None:
        self.packets_sent += 1

    def record_ack(self, now: float, nbytes: int, rtt_s: float) -> None:
        self.ack_times.append(now)
        self.acked_bytes.append(nbytes)
        self.rtts.append(rtt_s)
        self.total_acked_bytes += nbytes

    def record_delivery(self, now: float, nbytes: int) -> None:
        self.delivered_bytes += nbytes
        if self.first_delivery is None:
            self.first_delivery = now
        self.last_delivery = now

    def record_loss(self, now: float) -> None:
        self.loss_times.append(now)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def throughput_bps(self, t0: float, t1: float) -> float:
        """Mean ACKed goodput over the window ``[t0, t1]`` in bits/s."""
        if t1 <= t0:
            raise ValueError("empty measurement window")
        lo = bisect.bisect_left(self.ack_times, t0)
        hi = bisect.bisect_right(self.ack_times, t1)
        total = sum(self.acked_bytes[lo:hi])
        return total * 8.0 / (t1 - t0)

    def rtt_samples(self, t0: float = 0.0, t1: float = float("inf")) -> list[float]:
        """RTT samples whose ACKs arrived within ``[t0, t1]``."""
        lo = bisect.bisect_left(self.ack_times, t0)
        hi = bisect.bisect_right(self.ack_times, t1)
        return list(self.rtts[lo:hi])

    def rtt_percentile(
        self, percentile: float, t0: float = 0.0, t1: float = float("inf")
    ) -> float:
        """Percentile of RTT samples in a window (linear interpolation)."""
        samples = sorted(self.rtt_samples(t0, t1))
        if not samples:
            raise ValueError("no RTT samples in window")
        if not 0 <= percentile <= 100:
            raise ValueError("percentile must be in [0, 100]")
        rank = percentile / 100.0 * (len(samples) - 1)
        lo = min(len(samples) - 1, int(rank))
        frac = rank - lo
        if frac <= 0.0 or lo + 1 >= len(samples):
            return samples[lo]
        return samples[lo] + frac * (samples[lo + 1] - samples[lo])

    def min_rtt(self) -> float:
        if not self.rtts:
            raise ValueError("no RTT samples")
        return min(self.rtts)

    def loss_count(self, t0: float = 0.0, t1: float = float("inf")) -> int:
        lo = bisect.bisect_left(self.loss_times, t0)
        hi = bisect.bisect_right(self.loss_times, t1)
        return hi - lo

    def throughput_series(
        self, bin_s: float, t0: float, t1: float
    ) -> list[tuple[float, float]]:
        """(bin_center_time, Mbps) series of ACKed throughput."""
        if bin_s <= 0:
            raise ValueError("bin_s must be positive")
        series: list[tuple[float, float]] = []
        t = t0
        while t < t1:
            end = min(t + bin_s, t1)
            lo = bisect.bisect_left(self.ack_times, t)
            # Half-open bins [t, end) so boundary ACKs are counted once;
            # the final bin includes its right edge.
            if end >= t1:
                hi = bisect.bisect_right(self.ack_times, end)
            else:
                hi = bisect.bisect_left(self.ack_times, end)
            total = sum(self.acked_bytes[lo:hi])
            series.append((0.5 * (t + end), total * 8.0 / (end - t) / 1e6))
            t = end
        return series
