"""Active queue management disciplines and the event-based link.

The paper's scavenger story implicitly assumes tail-drop FIFO
bottlenecks (as its Emulab setup uses).  AQM changes the picture:
CoDel/RED keep standing queues short, which starves LEDBAT's
delay-target signal and changes what any delay-based scavenger can
observe.  This module provides:

* :class:`TailDropDiscipline`, :class:`HeadDropDiscipline`,
  :class:`RandomDropDiscipline`, :class:`REDDiscipline`,
  :class:`CoDelDiscipline` — pluggable queue disciplines (the head/random
  variants evict an already-queued packet and accept the arrival, the
  classic LinkQueue drop-policy family);
* :class:`DynamicLink` — an event-based (per-packet queued) link that
  supports a queue discipline *and* a time-varying service rate
  (``rate_fn``), standing in for cellular/LTE-like channels the paper's
  §7.2 discussion defers to future work.

Drop accounting: arrivals refused at a full buffer count as
``stats.tail_drops``; drops *decided by the discipline* (CoDel dequeue
drops, head/random evictions) count as ``stats.aqm_drops``.  Both are
part of invariant packet conservation.

``DynamicLink`` trades speed for generality; the analytic
:class:`~repro.sim.link.Link` remains the default for FIFO bottlenecks.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Protocol

from .engine import Simulator
from .link import LinkStats, Receiver
from .noise import NoiseModel
from .packet import Packet
from ..core.rng import Rng


class QueueDiscipline(Protocol):
    """Decides drops at enqueue and dequeue time.

    Two further hooks are *optional* (looked up with ``getattr`` by
    :class:`DynamicLink`):

    * ``on_idle(now)`` — called when the queue drains completely, so
      time-averaged state (RED's EWMA) can account for idle periods;
    * ``evict_on_full(lo, n, rng) -> int | None`` — called after
      ``on_enqueue`` voted to drop at a full buffer.  Return the index
      (``lo <= i < n``) of a *queued* packet to evict instead, accepting
      the arrival (head-drop / random-drop semantics), or ``None`` to
      drop the arrival as usual.  ``lo`` excludes the packet currently
      in service.
    """

    def on_enqueue(self, packet: Packet, queue_bytes: float, now: float,
                   rng: Rng) -> bool:
        """Return True to DROP the arriving packet."""
        ...

    def on_dequeue(self, packet: Packet, sojourn_s: float, now: float,
                   rng: Rng) -> bool:
        """Return True to DROP the departing packet (CoDel-style)."""
        ...


class TailDropDiscipline:
    """Plain FIFO tail drop at a byte limit."""

    def __init__(self, buffer_bytes: float):
        if buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")
        self.buffer_bytes = buffer_bytes

    def on_enqueue(self, packet, queue_bytes, now, rng) -> bool:
        return queue_bytes + packet.size_bytes > self.buffer_bytes

    def on_dequeue(self, packet, sojourn_s, now, rng) -> bool:
        return False


class HeadDropDiscipline(TailDropDiscipline):
    """Drop-from-front at a byte limit.

    On overflow the *oldest* queued packet is evicted and the arrival is
    accepted — the loss signal reaches the sender a full queueing delay
    sooner than tail drop, which matters for delay-based scavengers
    watching a standing queue.
    """

    def evict_on_full(self, lo: int, n: int, rng: Rng) -> int | None:
        return lo if n > lo else None


class RandomDropDiscipline(TailDropDiscipline):
    """Drop-a-random-victim at a byte limit.

    On overflow a uniformly random queued packet is evicted and the
    arrival is accepted, spreading congestion losses across flows in
    proportion to their queue occupancy.
    """

    def evict_on_full(self, lo: int, n: int, rng: Rng) -> int | None:
        return rng.randrange(lo, n) if n > lo else None


class REDDiscipline:
    """Random Early Detection (Floyd & Jacobson 1993), byte mode.

    Drops probabilistically between ``min_th`` and ``max_th`` of EWMA
    queue size, always above ``max_th``; hard cap at ``buffer_bytes``.

    While the queue sits idle no enqueues happen, so the EWMA would
    otherwise freeze at its last (possibly large) value and over-drop the
    first packets after the idle period.  Per the paper's idle-time
    correction, the average is aged at the next enqueue as if ``m`` small
    packets had arrived at an empty queue during the idle gap:
    ``avg <- avg * (1 - weight) ** m`` with
    ``m = idle_s / idle_packet_s``.  ``idle_packet_s`` is the "typical
    transmission time" the correction is denominated in.
    """

    def __init__(
        self,
        buffer_bytes: float,
        min_th_bytes: float | None = None,
        max_th_bytes: float | None = None,
        max_p: float = 0.1,
        weight: float = 0.002,
        idle_packet_s: float = 0.001,
    ):
        if buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")
        self.buffer_bytes = buffer_bytes
        self.min_th = min_th_bytes if min_th_bytes is not None else buffer_bytes / 4
        self.max_th = max_th_bytes if max_th_bytes is not None else buffer_bytes / 2
        if not 0 < self.min_th < self.max_th <= buffer_bytes:
            raise ValueError("need 0 < min_th < max_th <= buffer")
        if not 0 < max_p <= 1:
            raise ValueError("max_p must be in (0, 1]")
        if idle_packet_s <= 0:
            raise ValueError("idle_packet_s must be positive")
        self.max_p = max_p
        self.weight = weight
        self.idle_packet_s = idle_packet_s
        self.avg_bytes = 0.0
        self._idle_since: float | None = None

    def on_idle(self, now: float) -> None:
        """Queue drained: remember when the idle period began."""
        self._idle_since = now

    def on_enqueue(self, packet, queue_bytes, now, rng) -> bool:
        if self._idle_since is not None:
            idle_s = now - self._idle_since
            self._idle_since = None
            if idle_s > 0.0:
                m = idle_s / self.idle_packet_s
                self.avg_bytes *= (1.0 - self.weight) ** m
        self.avg_bytes = (1 - self.weight) * self.avg_bytes + self.weight * queue_bytes
        if queue_bytes + packet.size_bytes > self.buffer_bytes:
            return True
        if self.avg_bytes < self.min_th:
            return False
        if self.avg_bytes >= self.max_th:
            return True
        fraction = (self.avg_bytes - self.min_th) / (self.max_th - self.min_th)
        return rng.random() < self.max_p * fraction

    def on_dequeue(self, packet, sojourn_s, now, rng) -> bool:
        return False


class CoDelDiscipline:
    """CoDel (Nichols & Jacobson 2012), simplified.

    Sojourn time above ``target`` persisting for ``interval`` starts
    dropping at dequeue; drop spacing shrinks with the square root of the
    drop count, per the reference pseudocode.  On entering the dropping
    state the previous drop count is resumed (minus the two-drop
    hysteresis credit) only when the state was left within the last
    ``interval`` — a fresh congestion episode restarts from a count of
    one, so drop spacing does not stay tight across long quiet gaps.
    """

    def __init__(
        self,
        buffer_bytes: float,
        target_s: float = 0.005,
        interval_s: float = 0.100,
    ):
        if buffer_bytes <= 0 or target_s <= 0 or interval_s <= 0:
            raise ValueError("invalid CoDel parameters")
        self.buffer_bytes = buffer_bytes
        self.target_s = target_s
        self.interval_s = interval_s
        self._first_above_time: float | None = None
        self._dropping = False
        self._drop_next = 0.0
        self._count = 0

    def on_enqueue(self, packet, queue_bytes, now, rng) -> bool:
        return queue_bytes + packet.size_bytes > self.buffer_bytes

    def on_dequeue(self, packet, sojourn_s, now, rng) -> bool:
        if sojourn_s < self.target_s:
            self._first_above_time = None
            self._dropping = False
            return False
        if self._first_above_time is None:
            self._first_above_time = now + self.interval_s
            return False
        if self._dropping:
            if now >= self._drop_next:
                self._count += 1
                self._drop_next = now + self.interval_s / (self._count ** 0.5)
                return True
            return False
        if now < self._first_above_time:
            return False
        # Enter the dropping state, dropping this packet.  ``_drop_next``
        # still holds the schedule of the previous episode: re-entry
        # within one interval of it resumes that episode's drop count
        # (less the hysteresis credit of 2); otherwise start afresh.
        self._dropping = True
        if self._count > 2 and now - self._drop_next < self.interval_s:
            self._count -= 2
        else:
            self._count = 1
        self._drop_next = now + self.interval_s / (self._count ** 0.5)
        return True


RateFunction = Callable[[float], float]
"""Maps simulated time to the link's service rate in bits/s."""


class DynamicLink:
    """Event-based link: explicit queue, AQM hooks, time-varying rate.

    Args:
        sim: The simulator.
        rate_bps: Constant bits/s, or a callable ``rate_fn(now) -> bps``
            sampled at each packet's service start (Mahimahi-style
            channel variation at per-packet granularity).
        delay_s: Propagation delay.
        discipline: Queue discipline (defaults to 256 KB tail drop).
        loss_rate / noise / rng: As for :class:`~repro.sim.link.Link`.
    """

    # Event-based queue state cannot be advanced analytically: flows
    # whose path crosses a DynamicLink must stay packet-exact even in
    # hybrid fidelity (see repro.sim.fidelity.activate_fastforward).
    can_fastforward = False

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float | RateFunction,
        delay_s: float,
        discipline: QueueDiscipline | None = None,
        loss_rate: float = 0.0,
        noise: NoiseModel | None = None,
        rng: Rng | None = None,
        name: str = "dynamic-link",
    ):
        if delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        if callable(rate_bps):
            self._rate_fn: RateFunction = rate_bps
        else:
            if rate_bps <= 0:
                raise ValueError("rate_bps must be positive")
            self._rate_fn = lambda _t, _r=rate_bps: _r
        self.delay_s = delay_s
        self.discipline = discipline if discipline is not None else TailDropDiscipline(256e3)
        self.loss_rate = loss_rate
        self.noise = noise
        self.rng = rng if rng is not None else Rng(0)
        self.name = name
        # Source node in a topology graph ("" for standalone links);
        # carried on every ``link.*`` trace event as the hop tag.
        self.node = ""
        self.stats = LinkStats()
        self._queue: deque[tuple[Packet, Receiver, float]] = deque()
        self._queue_bytes = 0.0
        self._serving = False
        self._last_delivery = 0.0
        if sim.invariants is not None:
            sim.invariants.register_link(self)

    # ------------------------------------------------------------------
    def backlog_bytes(self) -> float:
        return self._queue_bytes

    def queued_packets(self) -> int:
        """Packets waiting in (or being served from) the explicit queue."""
        return len(self._queue)

    def current_rate_bps(self) -> float:
        return max(1.0, self._rate_fn(self.sim.now))

    # ------------------------------------------------------------------
    # Mid-run dynamics (driven by repro.sim.dynamics.TimelineDriver)
    # ------------------------------------------------------------------
    def set_bandwidth_bps(self, bandwidth_bps: float) -> None:
        """Pin the service rate to a new constant from now on.

        The packet currently in service (if any) keeps its already
        scheduled finish time — it is past the serializer — and every
        later packet is served at the new rate.  Replaces any
        caller-supplied ``rate_fn``.
        """
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        self._rate_fn = lambda _t, _r=bandwidth_bps: _r
        self.stats.rate_changes += 1

    def set_delay_s(self, delay_s: float) -> None:
        """Change the propagation delay for packets dequeued from now on."""
        if delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        self.delay_s = delay_s

    def send(self, packet: Packet, dst: Receiver) -> bool:
        now = self.sim.now
        tracer = self.sim.tracer
        self.stats.offered += 1
        while self.discipline.on_enqueue(packet, self._queue_bytes, now, self.rng):
            # Disciplines with an eviction policy (head/random drop) make
            # room by sacrificing a queued packet; anything else is a
            # plain tail drop of the arrival.
            if not self._evict_one(now, tracer):
                self.stats.tail_drops += 1
                if tracer is not None:
                    tracer.emit(
                        "link.drop",
                        now,
                        flow=packet.flow_id,
                        link=self.name,
                        node=self.node,
                        reason="tail",
                        seq=packet.seq,
                        backlog_bytes=self._queue_bytes,
                    )
                return False
        if self._queue_bytes + packet.size_bytes > self.stats.max_backlog_bytes:
            self.stats.max_backlog_bytes = self._queue_bytes + packet.size_bytes
        self._queue.append((packet, dst, now))
        self._queue_bytes += packet.size_bytes
        if tracer is not None:
            tracer.emit(
                "link.enqueue",
                now,
                flow=packet.flow_id,
                link=self.name,
                node=self.node,
                seq=packet.seq,
                size_bytes=packet.size_bytes,
                backlog_bytes=self._queue_bytes,
            )
        if not self._serving:
            self._serve_next()
        return True

    def _evict_one(self, now: float, tracer) -> bool:
        """Evict one queued packet chosen by the discipline; True on success.

        The packet at index 0 is in transmission while ``_serving`` and
        cannot be recalled, so victims start behind it.
        """
        evict = getattr(self.discipline, "evict_on_full", None)
        if evict is None:
            return False
        lo = 1 if self._serving else 0
        if len(self._queue) <= lo:
            return False
        index = evict(lo, len(self._queue), self.rng)
        if index is None:
            return False
        victim, _dst, _enq = self._queue[index]
        del self._queue[index]
        self._queue_bytes -= victim.size_bytes
        self.stats.aqm_drops += 1
        if tracer is not None:
            tracer.emit(
                "link.drop",
                now,
                flow=victim.flow_id,
                link=self.name,
                node=self.node,
                reason="aqm",
                seq=victim.seq,
            )
        return True

    def _serve_next(self) -> None:
        if not self._queue:
            self._serving = False
            # Let time-averaged disciplines (RED) see the idle period.
            on_idle = getattr(self.discipline, "on_idle", None)
            if on_idle is not None:
                on_idle(self.sim.now)
            return
        self._serving = True
        packet, _dst, _enq = self._queue[0]
        service_time = packet.size_bytes * 8.0 / self.current_rate_bps()
        self.sim.schedule(service_time, self._finish_service)

    def _finish_service(self) -> None:
        packet, dst, enqueued_at = self._queue.popleft()
        self._queue_bytes -= packet.size_bytes
        now = self.sim.now
        tracer = self.sim.tracer
        sojourn = now - enqueued_at
        dropped = self.discipline.on_dequeue(packet, sojourn, now, self.rng)
        if dropped:
            # A discipline decision, not a buffer overflow: accounted
            # separately so AQM activity is visible in summaries.
            self.stats.aqm_drops += 1
            if tracer is not None:
                tracer.emit(
                    "link.drop",
                    now,
                    flow=packet.flow_id,
                    link=self.name,
                    node=self.node,
                    reason="aqm",
                    seq=packet.seq,
                )
        elif self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.stats.random_losses += 1
            if tracer is not None:
                tracer.emit(
                    "link.drop",
                    now,
                    flow=packet.flow_id,
                    link=self.name,
                    node=self.node,
                    reason="wire",
                    seq=packet.seq,
                )
        else:
            deliver_at = now + self.delay_s
            if self.noise is not None:
                deliver_at += self.noise.sample(now, self.rng)
                if deliver_at <= self._last_delivery:
                    deliver_at = self._last_delivery + 1e-9
            self._last_delivery = deliver_at
            self.stats.delivered += 1
            if tracer is not None:
                tracer.emit(
                    "link.dequeue",
                    now,
                    flow=packet.flow_id,
                    link=self.name,
                    node=self.node,
                    seq=packet.seq,
                    depart_s=now,
                    deliver_at_s=deliver_at,
                )
            self.sim.schedule_at(deliver_at, dst.receive, packet)
        self._serve_next()


def step_rate(levels: list[tuple[float, float]]) -> RateFunction:
    """Piecewise-constant rate function from (start_time, bps) steps."""
    if not levels:
        raise ValueError("need at least one level")
    times = [t for t, _ in levels]
    if times != sorted(times):
        raise ValueError("levels must be time-ordered")

    def rate_fn(now: float) -> float:
        current = levels[0][1]
        for start, bps in levels:
            if now >= start:
                current = bps
            else:
                break
        return current

    return rate_fn


def cellular_rate(
    mean_bps: float,
    period_s: float = 2.0,
    depth: float = 0.6,
    seed: int = 0,
) -> RateFunction:
    """LTE-ish rate variation: random walk over ``period_s`` epochs.

    The rate at each epoch is drawn uniformly from
    ``[mean * (1 - depth), mean * (1 + depth)]`` — a coarse stand-in for
    cellular scheduling dynamics (§7.2 defers real LTE modelling to
    future work).
    """
    if mean_bps <= 0 or not 0 <= depth < 1 or period_s <= 0:
        raise ValueError("invalid cellular rate parameters")
    cache: dict[int, float] = {}

    def rate_fn(now: float) -> float:
        epoch = int(now / period_s)
        if epoch not in cache:
            epoch_rng = Rng(f"cellular:{seed}:{epoch}")
            cache[epoch] = mean_bps * (1.0 + depth * (2.0 * epoch_rng.random() - 1.0))
        return cache[epoch]

    return rate_fn
