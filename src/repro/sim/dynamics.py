"""Time-varying link dynamics: scripted mid-run events on live links.

The paper's evaluation leans on network *change* — flows crossing the
Proteus-H rate threshold as bandwidth shifts, wireless paths whose
capacity and delay flap, scavengers that must yield the moment a primary
arrives (§6).  A static link cannot express any of that.  This module is
the runtime half of the dynamics subsystem:

* :class:`LinkEvent` — one primitive, timestamped mutation of a named
  link (bandwidth, delay, outage up/down, loss-rate or loss-model
  change).  Declarative timelines (flaps, bandwidth-trace playback)
  live in :mod:`repro.harness.scenarios` and *resolve* to a sorted list
  of these primitives.
* :class:`TimelineDriver` — schedules every primitive on the simulator
  and applies it to the live link mid-run, keeping an ``applied`` log
  for telemetry (surfaced through reports and the result cache).
* :class:`GilbertElliott` — the classic two-state burst-loss channel:
  correlated loss runs rather than i.i.d. coin flips, which is exactly
  the impairment the noise-tolerance machinery must survive.

Everything here is deterministic given the simulation seed: event times
come from the timeline spec, and the Gilbert-Elliott draws come from the
link's injected :class:`~repro.core.rng.Rng`, so a burst-loss pattern is
reproducible seed-for-seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from .engine import SimulationError, Simulator
from ..core.rng import Rng

EVENT_KINDS = ("bandwidth", "delay", "down", "up", "loss", "gilbert")
"""Primitive event kinds understood by :class:`TimelineDriver`.

``bandwidth``  value = (bits_per_second,)
``delay``      value = (delay_seconds,)
``down``/``up`` value = () — outage window edges
``loss``       value = (loss_rate,) — clears any stateful loss model
``gilbert``    value = (p_enter_bad, p_exit_bad, loss_good, loss_bad)
"""


@dataclass(frozen=True)
class LinkEvent:
    """One primitive, timestamped mutation of a named link.

    ``value`` holds the kind-specific parameters as a flat float tuple so
    events serialize exactly (``float.hex`` round-trip) for the result
    cache and the telemetry log.
    """

    time_s: float
    link: str
    kind: str
    value: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("event time_s must be non-negative")
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        if self.kind == "bandwidth":
            return f"bandwidth -> {self.value[0] / 1e6:g} Mbps"
        if self.kind == "delay":
            return f"delay -> {self.value[0] * 1e3:g} ms"
        if self.kind == "down":
            return "outage begins"
        if self.kind == "up":
            return "outage ends"
        if self.kind == "loss":
            return f"loss rate -> {self.value[0]:g}"
        p_enter, p_exit, loss_good, loss_bad = self.value
        return (
            f"gilbert-elliott loss on (enter={p_enter:g}, exit={p_exit:g}, "
            f"good={loss_good:g}, bad={loss_bad:g})"
        )


class GilbertElliott:
    """Two-state (good/bad) burst-loss channel model.

    The chain moves per packet: from good to bad with probability
    ``p_enter_bad``, back with ``p_exit_bad``; each state has its own
    per-packet loss probability.  The stationary loss rate is
    ``(p_enter * loss_bad + p_exit * loss_good) / (p_enter + p_exit)``
    and the mean loss-burst length in the bad state is ``1 / p_exit``
    packets — the correlated, bursty impairment that i.i.d. ``loss_rate``
    cannot express.
    """

    __slots__ = ("p_enter_bad", "p_exit_bad", "loss_good", "loss_bad", "bad", "bad_entries")

    def __init__(
        self,
        p_enter_bad: float,
        p_exit_bad: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ):
        for label, p in (
            ("p_enter_bad", p_enter_bad),
            ("p_exit_bad", p_exit_bad),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{label} must be a probability in [0, 1]")
        if p_exit_bad <= 0.0:
            raise ValueError("p_exit_bad must be positive (the bad state must be escapable)")
        self.p_enter_bad = p_enter_bad
        self.p_exit_bad = p_exit_bad
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False
        self.bad_entries = 0  # telemetry: number of bad-state bursts entered

    def is_lost(self, rng: Rng) -> bool:
        """Advance the chain one packet and decide this packet's fate."""
        if self.bad:
            if rng.random() < self.p_exit_bad:
                self.bad = False
        elif rng.random() < self.p_enter_bad:
            self.bad = True
            self.bad_entries += 1
        p_loss = self.loss_bad if self.bad else self.loss_good
        if p_loss <= 0.0:
            return False
        if p_loss >= 1.0:
            return True
        return rng.random() < p_loss

    def stationary_loss_rate(self) -> float:
        """Long-run expected per-packet loss probability."""
        denom = self.p_enter_bad + self.p_exit_bad
        if denom <= 0.0:
            return self.loss_good
        bad_fraction = self.p_enter_bad / denom
        return bad_fraction * self.loss_bad + (1.0 - bad_fraction) * self.loss_good


class DynamicsError(SimulationError):
    """Raised for invalid timeline wiring (unknown link, bad event)."""


class TimelineDriver:
    """Applies a resolved event list to live links as the clock reaches it.

    Args:
        sim: The simulator the links belong to.
        links: Name -> link mapping; every event's ``link`` must resolve
            here (a dumbbell registers ``bottleneck`` and ``reverse``).
        events: Primitive :class:`LinkEvent` list (any order; scheduled
            by ``time_s``, ties broken by list position).

    The ``applied`` log records events in firing order — the per-link
    event telemetry that reports and the result cache surface.
    """

    def __init__(
        self,
        sim: Simulator,
        links: Mapping[str, Any],
        events: Sequence[LinkEvent],
    ):
        self.sim = sim
        self.links = dict(links)
        self.applied: list[LinkEvent] = []
        self._outages_open: dict[str, int] = {}
        # Per-link queue of pending event times, in firing order (the
        # heap fires ties in scheduling order, and a stable sort on
        # time_s preserves list order within a tie).  The head of each
        # queue is the link's fast-forward barrier: hybrid fidelity must
        # not analytically advance a packet past the next mutation.
        self._pending_times: dict[str, list[float]] = {}
        for event in events:
            link = self.links.get(event.link)
            if link is None:
                raise DynamicsError(
                    f"timeline event targets unknown link {event.link!r}; "
                    f"known links: {sorted(self.links)}"
                )
            self._validate(event, link)
            self._pending_times.setdefault(event.link, []).append(event.time_s)
            sim.schedule_fast_at(event.time_s, self._apply, event)
        for name, times in self._pending_times.items():
            times.sort()
            self.links[name].ff_barrier_s = times[0]

    @staticmethod
    def _validate(event: LinkEvent, link: Any) -> None:
        needed = {
            "bandwidth": ("set_bandwidth_bps", 1),
            "delay": ("set_delay_s", 1),
            "down": ("set_down", 0),
            "up": ("set_down", 0),
            "loss": ("send", 1),  # plain attribute write, any link works
            "gilbert": ("send", 4),
        }
        method, arity = needed[event.kind]
        if not hasattr(link, method):
            raise DynamicsError(
                f"link {event.link!r} does not support {event.kind!r} events"
            )
        if len(event.value) != arity:
            raise DynamicsError(
                f"{event.kind!r} event expects {arity} value(s), "
                f"got {len(event.value)}"
            )

    def _apply(self, event: LinkEvent) -> None:
        link = self.links[event.link]
        if event.kind == "bandwidth":
            link.set_bandwidth_bps(event.value[0])
        elif event.kind == "delay":
            link.set_delay_s(event.value[0])
        elif event.kind == "down":
            link.set_down(True)
        elif event.kind == "up":
            link.set_down(False)
        elif event.kind == "loss":
            # A plain-rate event clears any stateful model so the two
            # loss mechanisms never run at once.
            link.loss_model = None
            link.loss_rate = event.value[0]
        else:  # "gilbert" — __post_init__ rejects anything else
            link.loss_model = GilbertElliott(*event.value)
        self.applied.append(event)
        # Advance the link's fast-forward barrier to the next pending
        # mutation (or clear it once the timeline for this link drains).
        times = self._pending_times.get(event.link)
        if times:
            times.pop(0)
            link.ff_barrier_s = times[0] if times else float("inf")


@dataclass
class DynamicsLog:
    """Carrier for applied-event telemetry on a finished run.

    Kept as a tiny dataclass (rather than a bare list) so cached results
    can rebuild the exact same structure the live driver produced.
    """

    events: list[LinkEvent] = field(default_factory=list)

    def for_link(self, name: str) -> list[LinkEvent]:
        return [event for event in self.events if event.link == name]
