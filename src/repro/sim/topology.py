"""Topology builders.

All of the paper's transport experiments run over a single bottleneck, so
the workhorse here is :class:`Dumbbell`: a shared forward bottleneck link
plus an uncongested reverse path for ACKs.  Flow-specific extra
propagation delay supports heterogeneous-RTT setups.
"""

from __future__ import annotations

from .engine import Simulator
from .flow import Flow, Path
from .link import Link
from .noise import NoiseModel
from ..core.rng import Rng, spawn


def mbps(value: float) -> float:
    """Convert megabits/s to bits/s."""
    return value * 1e6


class Dumbbell:
    """Single shared bottleneck with per-flow access/return links.

    Args:
        sim: Simulator instance.
        bandwidth_bps: Bottleneck rate.
        rtt_s: Base round-trip propagation time; split evenly between the
            forward bottleneck and the reverse path.
        buffer_bytes: Bottleneck tail-drop buffer.
        loss_rate: Random loss probability on the bottleneck.
        noise: Optional forward-direction latency noise.
        reverse_noise: Optional ACK-direction latency noise (WiFi uplink
            experiments apply noise both ways).
        rng: Seeded RNG; children are spawned for each stochastic element.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        rtt_s: float,
        buffer_bytes: float,
        loss_rate: float = 0.0,
        noise: NoiseModel | None = None,
        reverse_noise: NoiseModel | None = None,
        rng: Rng | None = None,
        bottleneck=None,
    ):
        self.sim = sim
        self.rng = rng if rng is not None else Rng(0)
        self.bandwidth_bps = bandwidth_bps
        self.rtt_s = rtt_s
        if bottleneck is not None:
            # Caller-supplied forward bottleneck (e.g. a DynamicLink with
            # an AQM discipline or time-varying rate).
            self.bottleneck = bottleneck
        else:
            self.bottleneck = Link(
                sim,
                bandwidth_bps=bandwidth_bps,
                delay_s=rtt_s / 2.0,
                buffer_bytes=buffer_bytes,
                loss_rate=loss_rate,
                noise=noise,
                rng=spawn(self.rng, "bottleneck"),
                name="bottleneck",
            )
        # The reverse path is fast and deep enough never to be the
        # constraint: ACK traffic is ~3% of data traffic by bytes.
        self.reverse = Link(
            sim,
            bandwidth_bps=bandwidth_bps * 40.0,
            delay_s=rtt_s / 2.0,
            buffer_bytes=float("inf"),
            noise=reverse_noise,
            rng=spawn(self.rng, "reverse"),
            name="reverse",
        )
        self._flow_count = 0

    def bdp_bytes(self) -> float:
        """Bandwidth-delay product of the bottleneck in bytes."""
        return self.bandwidth_bps * self.rtt_s / 8.0

    def add_flow(
        self,
        sender,
        flow_id: int | None = None,
        size_bytes: int | None = None,
        start_time: float = 0.0,
        extra_delay_s: float = 0.0,
        chunked: bool = False,
        on_complete=None,
        on_delivery=None,
    ) -> Flow:
        """Attach a sender to the shared bottleneck and return its Flow."""
        self._flow_count += 1
        if flow_id is None:
            flow_id = self._flow_count
        forward_links = [self.bottleneck]
        reverse_links = [self.reverse]
        if extra_delay_s > 0.0:
            access = Link(
                self.sim,
                bandwidth_bps=self.bandwidth_bps * 40.0,
                delay_s=extra_delay_s / 2.0,
                name=f"access-{flow_id}",
            )
            back = Link(
                self.sim,
                bandwidth_bps=self.bandwidth_bps * 40.0,
                delay_s=extra_delay_s / 2.0,
                name=f"back-{flow_id}",
            )
            forward_links = [access, self.bottleneck]
            reverse_links = [self.reverse, back]
        return Flow(
            self.sim,
            sender,
            Path(forward_links),
            Path(reverse_links),
            flow_id=flow_id,
            size_bytes=size_bytes,
            start_time=start_time,
            chunked=chunked,
            on_complete=on_complete,
            on_delivery=on_delivery,
        )
