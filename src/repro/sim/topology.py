"""Topology graphs and builders.

The paper's transport experiments all run over a single bottleneck, and
until PR 8 so did this repo: :class:`Dumbbell` wrapped one shared
:class:`~repro.sim.link.Link`.  The general model here is
:class:`Topology` — a directed graph of named nodes connected by links
(analytic :class:`~repro.sim.link.Link` or event-based
:class:`~repro.sim.aqm.DynamicLink` with a per-hop queue discipline)
with static shortest-hop routing — on which a flow's
:class:`~repro.sim.flow.Path` may traverse several potentially-congested
hops.

Presets:

* :class:`Dumbbell` — the classic single shared bottleneck plus an
  uncongested reverse path, re-expressed on the graph model and
  byte-identical to the pre-graph implementation;
* :class:`ParkingLot` — N bottlenecks in series with cross-traffic
  joining at each hop, the canonical multi-bottleneck fairness topology;
* :class:`MultiDumbbell` — several access bottlenecks feeding one shared
  core link, the substrate for many-short-flows-vs-scavenger scale
  scenarios.

Routing is deterministic: breadth-first shortest hop count with ties
broken by link insertion order, overridable per (src, dst) pair with
:meth:`Topology.set_route`.  Every link is tagged with its source node
(``link.node``), which all ``link.*`` trace events carry as the hop tag.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .aqm import DynamicLink, QueueDiscipline
from .engine import Simulator
from .flow import Flow, Path
from .link import Link
from .noise import NoiseModel
from ..core.rng import Rng, spawn


def mbps(value: float) -> float:
    """Convert megabits/s to bits/s."""
    return value * 1e6


class TopologyError(ValueError):
    """Malformed topology: unknown nodes, duplicate links, or no route."""


class Topology:
    """Directed graph of nodes and links with static routing.

    Args:
        sim: Simulator instance.
        rng: Seeded RNG; a child is spawned per link (labelled with the
            link name) for loss/noise draws unless the link brings its
            own.

    Nodes are created implicitly by :meth:`add_link` /
    :meth:`attach_link`; both directions of a bidirectional hop are
    separate links.  ``links`` maps link name to link in insertion order
    (the canonical iteration order for metrics and conservation sweeps)
    and plugs directly into
    :class:`~repro.sim.dynamics.TimelineDriver`.
    """

    def __init__(self, sim: Simulator, rng: Rng | None = None):
        self.sim = sim
        self.rng = rng if rng is not None else Rng(0)
        self.nodes: list[str] = []
        self.links: dict[str, object] = {}
        self._adj: dict[str, list[tuple[str, object]]] = {}
        self._route_overrides: dict[tuple[str, str], list] = {}
        self._path_cache: dict[tuple[str, str], Path] = {}
        self._flow_count = 0
        # The link scenario samplers/summaries should watch by default;
        # presets point it at their primary bottleneck.
        self.monitor: object | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> str:
        """Register ``name`` (idempotent) and return it."""
        if name not in self._adj:
            self._adj[name] = []
            self.nodes.append(name)
        return name

    def attach_link(self, src: str, dst: str, link) -> object:
        """Register an externally built link as the edge ``src -> dst``."""
        if link.name in self.links:
            raise TopologyError(f"duplicate link name {link.name!r}")
        self.add_node(src)
        self.add_node(dst)
        self.links[link.name] = link
        self._adj[src].append((dst, link))
        link.node = src
        self._path_cache.clear()
        if self.monitor is None:
            self.monitor = link
        return link

    def add_link(
        self,
        src: str,
        dst: str,
        *,
        bandwidth_bps: float,
        delay_s: float,
        buffer_bytes: float = float("inf"),
        discipline: QueueDiscipline | None = None,
        loss_rate: float = 0.0,
        noise: NoiseModel | None = None,
        rng: Rng | None = None,
        name: str | None = None,
    ) -> object:
        """Create and attach the edge ``src -> dst``.

        A ``discipline`` makes the hop an event-based
        :class:`~repro.sim.aqm.DynamicLink` (per-packet queue, AQM);
        otherwise it is the analytic tail-drop
        :class:`~repro.sim.link.Link`.
        """
        if name is None:
            name = f"{src}->{dst}"
        if rng is None:
            rng = spawn(self.rng, name)
        if discipline is not None:
            link = DynamicLink(
                self.sim,
                rate_bps=bandwidth_bps,
                delay_s=delay_s,
                discipline=discipline,
                loss_rate=loss_rate,
                noise=noise,
                rng=rng,
                name=name,
            )
        else:
            link = Link(
                self.sim,
                bandwidth_bps=bandwidth_bps,
                delay_s=delay_s,
                buffer_bytes=buffer_bytes,
                loss_rate=loss_rate,
                noise=noise,
                rng=rng,
                name=name,
            )
        return self.attach_link(src, dst, link)

    def set_route(self, src: str, dst: str, via: Sequence[str]) -> None:
        """Pin the ``src -> dst`` route to the node sequence ``via``.

        ``via`` must start at ``src``, end at ``dst``, and every
        consecutive pair must be joined by a link (first-inserted link
        wins between parallel edges).
        """
        hops = list(via)
        if len(hops) < 2 or hops[0] != src or hops[-1] != dst:
            raise TopologyError(
                f"route for {src!r}->{dst!r} must run from {src!r} to {dst!r}"
            )
        links = [self._edge(a, b) for a, b in zip(hops, hops[1:])]
        self._route_overrides[(src, dst)] = links
        self._path_cache.pop((src, dst), None)

    def _edge(self, src: str, dst: str):
        for neighbor, link in self._adj.get(src, ()):
            if neighbor == dst:
                return link
        raise TopologyError(f"no link {src!r} -> {dst!r}")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route_links(self, src: str, dst: str) -> list:
        """The link sequence from ``src`` to ``dst`` (override or BFS)."""
        if src not in self._adj or dst not in self._adj:
            missing = src if src not in self._adj else dst
            raise TopologyError(f"unknown node {missing!r}")
        if src == dst:
            raise TopologyError(f"route endpoints coincide: {src!r}")
        override = self._route_overrides.get((src, dst))
        if override is not None:
            return list(override)
        # Breadth-first shortest hop count.  Frontier and adjacency are
        # insertion-ordered lists, so the predecessor tree — and with it
        # the chosen route — is deterministic.
        prev: dict[str, tuple[str, object] | None] = {src: None}
        frontier = [src]
        while frontier and dst not in prev:
            nxt: list[str] = []
            for node in frontier:
                for neighbor, link in self._adj[node]:
                    if neighbor not in prev:
                        prev[neighbor] = (node, link)
                        nxt.append(neighbor)
            frontier = nxt
        if dst not in prev:
            raise TopologyError(f"no route from {src!r} to {dst!r}")
        links: list = []
        node = dst
        while node != src:
            parent, link = prev[node]  # type: ignore[misc]
            links.append(link)
            node = parent
        links.reverse()
        return links

    def path(self, src: str, dst: str) -> Path:
        """Routed :class:`~repro.sim.flow.Path` from ``src`` to ``dst``."""
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is None:
            cached = Path(self.route_links(src, dst))
            self._path_cache[key] = cached
        return cached

    def default_endpoints(self, index: int) -> tuple[str, str]:
        """Endpoints for the ``index``-th flow when none are given.

        The generic graph uses first-added -> last-added node; presets
        override (e.g. :class:`MultiDumbbell` round-robins sources).
        """
        if len(self.nodes) < 2:
            raise TopologyError("topology has no flow endpoints yet")
        return self.nodes[0], self.nodes[-1]

    # ------------------------------------------------------------------
    # Flows
    # ------------------------------------------------------------------
    def add_flow(
        self,
        sender,
        src: str | None = None,
        dst: str | None = None,
        flow_id: int | None = None,
        size_bytes: int | None = None,
        start_time: float = 0.0,
        chunked: bool = False,
        on_complete=None,
        on_delivery=None,
    ) -> Flow:
        """Attach a sender between ``src`` and ``dst`` and return its Flow.

        The reverse (ACK) path is routed independently from ``dst`` back
        to ``src``.  Omitted endpoints fall back to
        :meth:`default_endpoints` for this flow's index.
        """
        index = self._flow_count
        self._flow_count += 1
        if flow_id is None:
            flow_id = self._flow_count
        if src is None or dst is None:
            default_src, default_dst = self.default_endpoints(index)
            src = src if src is not None else default_src
            dst = dst if dst is not None else default_dst
        return Flow(
            self.sim,
            sender,
            self.path(src, dst),
            self.path(dst, src),
            flow_id=flow_id,
            size_bytes=size_bytes,
            start_time=start_time,
            chunked=chunked,
            on_complete=on_complete,
            on_delivery=on_delivery,
        )

    # ------------------------------------------------------------------
    # Auditing
    # ------------------------------------------------------------------
    def iter_links(self):
        """Links in insertion order (deterministic metrics/report order)."""
        return self.links.values()

    def assert_conservation(self) -> None:
        """Raise if any hop leaks packets (offered != accounted-for)."""
        for link in self.links.values():
            stats = link.stats
            accounted = (
                stats.delivered
                + stats.tail_drops
                + getattr(stats, "aqm_drops", 0)
                + stats.random_losses
                + getattr(stats, "outage_drops", 0)
                + link.queued_packets()
            )
            if stats.offered != accounted:
                raise TopologyError(
                    f"packet conservation violated on hop {link.name!r} "
                    f"(node {link.node!r}): offered={stats.offered} "
                    f"!= accounted={accounted}"
                )


class Dumbbell(Topology):
    """Single shared bottleneck with per-flow access/return links.

    Args:
        sim: Simulator instance.
        bandwidth_bps: Bottleneck rate.
        rtt_s: Base round-trip propagation time; split evenly between the
            forward bottleneck and the reverse path.
        buffer_bytes: Bottleneck tail-drop buffer.
        loss_rate: Random loss probability on the bottleneck.
        noise: Optional forward-direction latency noise.
        reverse_noise: Optional ACK-direction latency noise (WiFi uplink
            experiments apply noise both ways).
        rng: Seeded RNG; children are spawned for each stochastic element.
        bottleneck: Caller-supplied forward bottleneck (e.g. a
            DynamicLink with an AQM discipline or time-varying rate).
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        rtt_s: float,
        buffer_bytes: float,
        loss_rate: float = 0.0,
        noise: NoiseModel | None = None,
        reverse_noise: NoiseModel | None = None,
        rng: Rng | None = None,
        bottleneck=None,
    ):
        super().__init__(sim, rng=rng)
        self.bandwidth_bps = bandwidth_bps
        self.rtt_s = rtt_s
        if bottleneck is not None:
            self.bottleneck = self.attach_link("src", "dst", bottleneck)
        else:
            self.bottleneck = self.add_link(
                "src",
                "dst",
                bandwidth_bps=bandwidth_bps,
                delay_s=rtt_s / 2.0,
                buffer_bytes=buffer_bytes,
                loss_rate=loss_rate,
                noise=noise,
                rng=spawn(self.rng, "bottleneck"),
                name="bottleneck",
            )
        # The reverse path is fast and deep enough never to be the
        # constraint: ACK traffic is ~3% of data traffic by bytes.
        self.reverse = self.add_link(
            "dst",
            "src",
            bandwidth_bps=bandwidth_bps * 40.0,
            delay_s=rtt_s / 2.0,
            noise=reverse_noise,
            rng=spawn(self.rng, "reverse"),
            name="reverse",
        )
        self.monitor = self.bottleneck

    def bdp_bytes(self) -> float:
        """Bandwidth-delay product of the bottleneck in bytes."""
        return self.bandwidth_bps * self.rtt_s / 8.0

    def default_endpoints(self, index: int) -> tuple[str, str]:
        return "src", "dst"

    def add_flow(  # type: ignore[override]
        self,
        sender,
        flow_id: int | None = None,
        size_bytes: int | None = None,
        start_time: float = 0.0,
        extra_delay_s: float = 0.0,
        chunked: bool = False,
        on_complete=None,
        on_delivery=None,
        src: str | None = None,
        dst: str | None = None,
    ) -> Flow:
        """Attach a sender to the shared bottleneck and return its Flow."""
        if src not in (None, "src") or dst not in (None, "dst"):
            raise TopologyError(
                f"Dumbbell flows run src -> dst; got {src!r} -> {dst!r}"
            )
        self._flow_count += 1
        if flow_id is None:
            flow_id = self._flow_count
        forward_links = [self.bottleneck]
        reverse_links = [self.reverse]
        if extra_delay_s > 0.0:
            # Per-flow private access/return stubs: kept off the shared
            # graph (no cross traffic can route over them) exactly as
            # the pre-graph Dumbbell built them.
            access = Link(
                self.sim,
                bandwidth_bps=self.bandwidth_bps * 40.0,
                delay_s=extra_delay_s / 2.0,
                name=f"access-{flow_id}",
            )
            back = Link(
                self.sim,
                bandwidth_bps=self.bandwidth_bps * 40.0,
                delay_s=extra_delay_s / 2.0,
                name=f"back-{flow_id}",
            )
            forward_links = [access, self.bottleneck]
            reverse_links = [self.reverse, back]
        return Flow(
            self.sim,
            sender,
            Path(forward_links),
            Path(reverse_links),
            flow_id=flow_id,
            size_bytes=size_bytes,
            start_time=start_time,
            chunked=chunked,
            on_complete=on_complete,
            on_delivery=on_delivery,
        )


DisciplineFactory = Callable[[int], "QueueDiscipline | None"]
"""Maps a hop index to that hop's queue discipline (``None`` = analytic
tail-drop FIFO)."""


class ParkingLot(Topology):
    """``n_hops`` bottlenecks in series, cross traffic joining per hop.

    Nodes ``n0 .. n{n_hops}``; forward hop ``i`` is the link
    ``n{i} -> n{i+1}`` (name ``hop{i}``), every one a potential
    bottleneck at ``bandwidth_bps``.  The reverse direction is provisioned
    at 40x so ACKs never queue.  Long flows run ``n0 -> n{n_hops}``
    across every hop; cross flows join at a single hop via
    :meth:`add_cross_flow`.  Propagation delay is split so a long flow's
    base RTT equals ``rtt_s``; a hop-``i`` cross flow sees
    ``rtt_s / n_hops``.

    Args:
        discipline_factory: Optional per-hop AQM — called with the hop
            index, returning a discipline (making that hop an
            event-based :class:`~repro.sim.aqm.DynamicLink`) or ``None``
            for the analytic FIFO.
    """

    def __init__(
        self,
        sim: Simulator,
        n_hops: int,
        bandwidth_bps: float,
        rtt_s: float,
        buffer_bytes: float,
        loss_rate: float = 0.0,
        noise: NoiseModel | None = None,
        rng: Rng | None = None,
        discipline_factory: DisciplineFactory | None = None,
    ):
        if n_hops < 1:
            raise TopologyError("n_hops must be >= 1")
        super().__init__(sim, rng=rng)
        self.n_hops = n_hops
        self.bandwidth_bps = bandwidth_bps
        self.rtt_s = rtt_s
        hop_delay_s = rtt_s / (2.0 * n_hops)
        for i in range(n_hops):
            self.add_link(
                f"n{i}",
                f"n{i + 1}",
                bandwidth_bps=bandwidth_bps,
                delay_s=hop_delay_s,
                buffer_bytes=buffer_bytes,
                discipline=(
                    discipline_factory(i) if discipline_factory is not None else None
                ),
                loss_rate=loss_rate,
                # Forward latency noise models the last-mile hop.
                noise=noise if i == n_hops - 1 else None,
                name=f"hop{i}",
            )
        for i in range(n_hops, 0, -1):
            self.add_link(
                f"n{i}",
                f"n{i - 1}",
                bandwidth_bps=bandwidth_bps * 40.0,
                delay_s=hop_delay_s,
                name=f"rev{i - 1}",
            )
        self.src = "n0"
        self.dst = f"n{n_hops}"
        self.monitor = self.links["hop0"]

    def bdp_bytes(self) -> float:
        """Bandwidth-delay product of one hop over the full-path RTT."""
        return self.bandwidth_bps * self.rtt_s / 8.0

    def default_endpoints(self, index: int) -> tuple[str, str]:
        return self.src, self.dst

    def add_cross_flow(self, sender, hop: int, **kwargs) -> Flow:
        """A single-hop flow entering at ``n{hop}``, leaving at ``n{hop+1}``."""
        if not 0 <= hop < self.n_hops:
            raise TopologyError(f"hop must be in [0, {self.n_hops})")
        return self.add_flow(sender, f"n{hop}", f"n{hop + 1}", **kwargs)


class MultiDumbbell(Topology):
    """``n_groups`` access bottlenecks feeding one shared core link.

    Nodes ``s0 .. s{n_groups-1} -> core -> sink``: flow group ``i``
    enters at ``s{i}`` over its private access bottleneck
    (``bandwidth_bps``) and everything shares the core
    (``core_bandwidth_bps``), so every flow crosses two potentially
    congested hops.  Reverse links are provisioned at 40x.  Flows added
    without explicit endpoints round-robin over the groups by flow
    index — the substrate for "many short primaries vs. a few
    scavengers over a shared core" scale scenarios.
    """

    def __init__(
        self,
        sim: Simulator,
        n_groups: int,
        bandwidth_bps: float,
        core_bandwidth_bps: float,
        rtt_s: float,
        buffer_bytes: float,
        core_buffer_bytes: float | None = None,
        loss_rate: float = 0.0,
        noise: NoiseModel | None = None,
        rng: Rng | None = None,
        core_discipline: QueueDiscipline | None = None,
    ):
        if n_groups < 1:
            raise TopologyError("n_groups must be >= 1")
        super().__init__(sim, rng=rng)
        self.n_groups = n_groups
        self.bandwidth_bps = bandwidth_bps
        self.core_bandwidth_bps = core_bandwidth_bps
        self.rtt_s = rtt_s
        if core_buffer_bytes is None:
            core_buffer_bytes = buffer_bytes
        quarter_s = rtt_s / 4.0
        for i in range(n_groups):
            self.add_link(
                f"s{i}",
                "core",
                bandwidth_bps=bandwidth_bps,
                delay_s=quarter_s,
                buffer_bytes=buffer_bytes,
                loss_rate=loss_rate,
                name=f"access{i}",
            )
        self.core = self.add_link(
            "core",
            "sink",
            bandwidth_bps=core_bandwidth_bps,
            delay_s=quarter_s,
            buffer_bytes=core_buffer_bytes,
            discipline=core_discipline,
            noise=noise,
            name="core",
        )
        self.add_link(
            "sink",
            "core",
            bandwidth_bps=core_bandwidth_bps * 40.0,
            delay_s=quarter_s,
            name="core-rev",
        )
        for i in range(n_groups):
            self.add_link(
                "core",
                f"s{i}",
                bandwidth_bps=bandwidth_bps * 40.0,
                delay_s=quarter_s,
                name=f"access{i}-rev",
            )
        self.monitor = self.core

    def bdp_bytes(self) -> float:
        """Bandwidth-delay product of the core link in bytes."""
        return self.core_bandwidth_bps * self.rtt_s / 8.0

    def default_endpoints(self, index: int) -> tuple[str, str]:
        return f"s{index % self.n_groups}", "sink"
