"""A unidirectional link with a tail-drop FIFO buffer.

The queue is modelled analytically rather than with explicit per-packet
queue events: a link keeps the time at which its transmitter frees up
(``_busy_until``); the backlog in bytes at any instant is
``(busy_until - now) * bandwidth / 8``.  This is exact for a
work-conserving FIFO serializer and halves the event count, which matters
for pure-Python packet-level simulation.

Random (non-congestion) loss and latency noise are applied after the
queue, matching loss on the wire/wireless channel.  FIFO delivery order is
enforced even under noise, so a delay spike compresses the packets behind
it into a burst (the ACK-compression effect discussed in §5 of the paper).

Links support **mid-run dynamics** (see :mod:`repro.sim.dynamics`): the
bandwidth, propagation delay, loss model, and up/down state can all change
while a simulation runs.  A bandwidth change remaps the analytic backlog —
the residual bits keep their byte count and drain at the new rate — and a
delay change only affects packets enqueued afterwards.  The FIFO guard
covers both cases, so deliveries already in flight are never reordered.
"""

from __future__ import annotations

from typing import Protocol

from .engine import Simulator
from .noise import NoiseModel
from .packet import Packet
from ..core.rng import Rng


class Receiver(Protocol):
    """Anything that can accept delivered packets."""

    def receive(self, packet: Packet) -> None: ...


class LossModel(Protocol):
    """Stateful per-packet wire-loss decision (see ``GilbertElliott``)."""

    def is_lost(self, rng: Rng) -> bool: ...


class LinkStats:
    """Counters exposed by every link for assertions and reports."""

    __slots__ = (
        "offered",
        "delivered",
        "tail_drops",
        "aqm_drops",
        "random_losses",
        "outage_drops",
        "rate_changes",
        "max_backlog_bytes",
    )

    def __init__(self) -> None:
        self.offered = 0
        self.delivered = 0
        self.tail_drops = 0
        # Drops decided by a queue discipline (CoDel dequeue drops,
        # head/random-drop evictions) — distinct from buffer-overflow
        # tail drops so AQM behaviour is visible in summaries.
        self.aqm_drops = 0
        self.random_losses = 0
        self.outage_drops = 0
        self.rate_changes = 0
        self.max_backlog_bytes = 0.0


class Link:
    """Unidirectional bandwidth/delay/buffer pipe.

    Args:
        sim: The owning simulator.
        bandwidth_bps: Serialization rate in bits per second.
        delay_s: One-way propagation delay in seconds.
        buffer_bytes: Tail-drop queue capacity in bytes. ``float('inf')``
            gives an unbounded queue.
        loss_rate: Probability of random (non-congestion) loss per packet.
        noise: Optional latency-noise model (see :mod:`repro.sim.noise`).
        loss_model: Optional stateful loss model (e.g. Gilbert-Elliott
            burst loss, see :mod:`repro.sim.dynamics`); when set it
            replaces the Bernoulli ``loss_rate`` draw.
        rng: RNG used for loss and noise draws.
    """

    # The analytic link supports the hybrid-fidelity collapsed-send path
    # (``send_ff``/``peek_round_trip_ff``); event-based links do not.
    can_fastforward = True

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        delay_s: float,
        buffer_bytes: float = float("inf"),
        loss_rate: float = 0.0,
        noise: NoiseModel | None = None,
        loss_model: LossModel | None = None,
        rng: Rng | None = None,
        name: str = "link",
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        # Smallest propagation delay this link ever had: the RTT-floor
        # invariant must use it, because samples taken before a mid-run
        # delay increase legitimately sit below the *current* delay.
        self.min_delay_s = delay_s
        self.buffer_bytes = buffer_bytes
        self.loss_rate = loss_rate
        self.noise = noise
        self.loss_model = loss_model
        self.rng = rng if rng is not None else Rng(0)
        self.name = name
        # Source node in a topology graph ("" for standalone links);
        # carried on every ``link.*`` trace event as the hop tag.
        self.node = ""
        self.stats = LinkStats()
        self._busy_until = 0.0
        self._last_delivery = 0.0
        self._down = False
        # Hybrid-fidelity fast-forward state (see repro.sim.fidelity).
        # ``ff_barrier_s`` is the next time at which this link's behaviour
        # changes (timeline event); analytic sends whose virtual window
        # would cross it fall back to packet-exact delivery.  Maintained
        # by the TimelineDriver; ``inf`` on static links.
        self.ff_barrier_s = float("inf")
        if sim.invariants is not None:
            sim.invariants.register_link(self)

    # ------------------------------------------------------------------
    def backlog_bytes(self) -> float:
        """Bytes currently queued or in transmission."""
        return max(0.0, self._busy_until - self.sim.now) * self.bandwidth_bps / 8.0

    def queueing_delay(self) -> float:
        """Waiting time a packet enqueued right now would experience."""
        return max(0.0, self._busy_until - self.sim.now)

    def queued_packets(self) -> int:
        """Packets held in an explicit queue (none: the queue is analytic)."""
        return 0

    def is_down(self) -> bool:
        """True while an outage window is active (all sends are dropped)."""
        return self._down

    # ------------------------------------------------------------------
    # Mid-run dynamics (driven by repro.sim.dynamics.TimelineDriver)
    # ------------------------------------------------------------------
    def set_bandwidth_bps(self, bandwidth_bps: float) -> None:
        """Change the serialization rate mid-run.

        The analytic queue assumes a constant rate, so the residual
        backlog must be remapped: the bits not yet serialized keep their
        count and drain at the new rate, i.e. ``busy_until`` becomes
        ``now + residual_bits / new_rate``.  Byte occupancy is invariant
        under the remap, so the buffer bound still holds.  Deliveries
        already scheduled keep their times; the FIFO guard in
        :meth:`send` prevents later packets from overtaking them when
        the rate increases.
        """
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        now = self.sim.now
        residual_bits = max(0.0, self._busy_until - now) * self.bandwidth_bps
        self.bandwidth_bps = bandwidth_bps
        self._busy_until = now + residual_bits / bandwidth_bps
        self.stats.rate_changes += 1

    def set_delay_s(self, delay_s: float) -> None:
        """Change the propagation delay for packets enqueued from now on."""
        if delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        self.delay_s = delay_s
        if delay_s < self.min_delay_s:
            self.min_delay_s = delay_s

    def set_down(self, down: bool) -> None:
        """Begin (True) or end (False) an outage window.

        While down, every offered packet is dropped (``outage_drops``).
        Packets accepted before the outage are already past the
        serializer in the analytic model and still arrive.
        """
        self._down = bool(down)

    # ------------------------------------------------------------------
    def send(self, packet: Packet, dst: Receiver) -> bool:
        """Enqueue ``packet`` for delivery to ``dst``.

        Returns True if the packet was accepted (it may still be randomly
        lost on the wire) and False on a tail drop or outage drop.
        """
        now = self.sim.now
        tracer = self.sim.tracer
        self.stats.offered += 1
        if self._down:
            self.stats.outage_drops += 1
            if tracer is not None:
                tracer.emit(
                    "link.drop",
                    now,
                    flow=packet.flow_id,
                    link=self.name,
                    node=self.node,
                    reason="outage",
                    seq=packet.seq,
                )
            return False
        backlog = max(0.0, self._busy_until - now) * self.bandwidth_bps / 8.0
        # Epsilon absorbs float error in the analytic backlog computation.
        if backlog + packet.size_bytes > self.buffer_bytes + 1e-6:
            self.stats.tail_drops += 1
            if tracer is not None:
                tracer.emit(
                    "link.drop",
                    now,
                    flow=packet.flow_id,
                    link=self.name,
                    node=self.node,
                    reason="tail",
                    seq=packet.seq,
                    backlog_bytes=backlog,
                )
            return False
        # Peak occupancy includes the packet just accepted.
        if backlog + packet.size_bytes > self.stats.max_backlog_bytes:
            self.stats.max_backlog_bytes = backlog + packet.size_bytes

        start = self._busy_until if self._busy_until > now else now
        self._busy_until = start + packet.size_bytes * 8.0 / self.bandwidth_bps
        if tracer is not None:
            tracer.emit(
                "link.enqueue",
                now,
                flow=packet.flow_id,
                link=self.name,
                node=self.node,
                seq=packet.seq,
                size_bytes=packet.size_bytes,
                backlog_bytes=backlog + packet.size_bytes,
            )

        if self.loss_model is not None:
            # The packet still consumed transmitter time, but never arrives.
            if self.loss_model.is_lost(self.rng):
                self.stats.random_losses += 1
                if tracer is not None:
                    tracer.emit(
                        "link.drop",
                        now,
                        flow=packet.flow_id,
                        link=self.name,
                    node=self.node,
                        reason="wire",
                        seq=packet.seq,
                    )
                return True
        elif self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.stats.random_losses += 1
            if tracer is not None:
                tracer.emit(
                    "link.drop",
                    now,
                    flow=packet.flow_id,
                    link=self.name,
                    node=self.node,
                    reason="wire",
                    seq=packet.seq,
                )
            return True

        deliver_at = self._busy_until + self.delay_s
        if self.noise is not None:
            deliver_at += self.noise.sample(now, self.rng)
        # FIFO even under noise and mid-run rate/delay changes: never
        # deliver before an earlier packet.
        if deliver_at <= self._last_delivery:
            deliver_at = self._last_delivery + 1e-9
        self._last_delivery = deliver_at
        self.stats.delivered += 1
        if tracer is not None:
            tracer.emit(
                "link.dequeue",
                now,
                flow=packet.flow_id,
                link=self.name,
                node=self.node,
                seq=packet.seq,
                depart_s=self._busy_until,
                deliver_at_s=deliver_at,
            )
        # Deliveries are fire-and-forget and dominate the heap; the fast
        # path skips the cancellable-Event allocation entirely.
        self.sim.schedule_fast_at(deliver_at, dst.receive, packet)
        return True

    def send_ff(self, packet: Packet, at_s: float) -> "float | None":
        """Analytic send at virtual time ``at_s``: no delivery event.

        The hybrid-fidelity collapse path (see :mod:`repro.sim.fidelity`)
        runs the receiver's bookkeeping inline instead of scheduling a
        delivery, so it needs the delivery timestamp as a value.  This is
        :meth:`send` with the clock read replaced by ``at_s`` and the
        final ``schedule_fast_at`` dropped — every counter, queue update,
        RNG draw, and trace emission is the same computation in the same
        order.  Returns the delivery time, or ``None`` when the packet
        never arrives (outage, tail drop, or wire loss).

        Callers are responsible for fast-forward eligibility: ``at_s``
        at or after this link's ``ff_barrier_s`` is a contract violation
        (the link's parameters may change at the barrier).
        """
        tracer = self.sim.tracer
        if (
            tracer is None
            and self.loss_model is None
            and self.noise is None
            and self.loss_rate == 0.0  # repro: noqa[no-float-eq] — gate, not math
            and not self._down
        ):
            # Healthy static link, nobody watching: the arithmetic-only
            # spine of the general path below (same results, no draws to
            # keep in step because there are none).
            stats = self.stats
            stats.offered += 1
            bw = self.bandwidth_bps
            busy = self._busy_until
            size = packet.size_bytes
            occupancy = (
                (busy - at_s) * bw / 8.0 if busy > at_s else 0.0
            ) + size
            if occupancy > self.buffer_bytes + 1e-6:
                stats.tail_drops += 1
                return None
            if occupancy > stats.max_backlog_bytes:
                stats.max_backlog_bytes = occupancy
            start = busy if busy > at_s else at_s
            self._busy_until = busy = start + size * 8.0 / bw
            deliver_at = busy + self.delay_s
            if deliver_at <= self._last_delivery:
                deliver_at = self._last_delivery + 1e-9
            self._last_delivery = deliver_at
            stats.delivered += 1
            return deliver_at
        now = at_s
        self.stats.offered += 1
        if self._down:
            self.stats.outage_drops += 1
            if tracer is not None:
                tracer.emit(
                    "link.drop",
                    now,
                    flow=packet.flow_id,
                    link=self.name,
                    node=self.node,
                    reason="outage",
                    seq=packet.seq,
                )
            return None
        backlog = max(0.0, self._busy_until - now) * self.bandwidth_bps / 8.0
        if backlog + packet.size_bytes > self.buffer_bytes + 1e-6:
            self.stats.tail_drops += 1
            if tracer is not None:
                tracer.emit(
                    "link.drop",
                    now,
                    flow=packet.flow_id,
                    link=self.name,
                    node=self.node,
                    reason="tail",
                    seq=packet.seq,
                    backlog_bytes=backlog,
                )
            return None
        if backlog + packet.size_bytes > self.stats.max_backlog_bytes:
            self.stats.max_backlog_bytes = backlog + packet.size_bytes

        start = self._busy_until if self._busy_until > now else now
        self._busy_until = start + packet.size_bytes * 8.0 / self.bandwidth_bps
        if tracer is not None:
            tracer.emit(
                "link.enqueue",
                now,
                flow=packet.flow_id,
                link=self.name,
                node=self.node,
                seq=packet.seq,
                size_bytes=packet.size_bytes,
                backlog_bytes=backlog + packet.size_bytes,
            )

        if self.loss_model is not None:
            if self.loss_model.is_lost(self.rng):
                self.stats.random_losses += 1
                if tracer is not None:
                    tracer.emit(
                        "link.drop",
                        now,
                        flow=packet.flow_id,
                        link=self.name,
                    node=self.node,
                        reason="wire",
                        seq=packet.seq,
                    )
                return None
        elif self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.stats.random_losses += 1
            if tracer is not None:
                tracer.emit(
                    "link.drop",
                    now,
                    flow=packet.flow_id,
                    link=self.name,
                    node=self.node,
                    reason="wire",
                    seq=packet.seq,
                )
            return None

        deliver_at = self._busy_until + self.delay_s
        if self.noise is not None:
            deliver_at += self.noise.sample(now, self.rng)
        if deliver_at <= self._last_delivery:
            deliver_at = self._last_delivery + 1e-9
        self._last_delivery = deliver_at
        self.stats.delivered += 1
        if tracer is not None:
            tracer.emit(
                "link.dequeue",
                now,
                flow=packet.flow_id,
                link=self.name,
                node=self.node,
                seq=packet.seq,
                depart_s=self._busy_until,
                deliver_at_s=deliver_at,
            )
        return deliver_at

    def peek_round_trip_ff(
        self, size_bytes: int, at_s: float, reverse: "Link", ack_bytes: int
    ) -> float:
        """Upper bound on the ACK arrival of a packet sent at ``at_s``.

        A dry run of the noise-free :meth:`send_ff` chain through this
        link and ``reverse`` — no state is mutated.  The collapse path
        compares this against the links' fast-forward barriers before
        committing to an analytic send.
        """
        start = self._busy_until if self._busy_until > at_s else at_s
        deliver = start + size_bytes * 8.0 / self.bandwidth_bps + self.delay_s
        if deliver <= self._last_delivery:
            deliver = self._last_delivery + 1e-9
        start = reverse._busy_until if reverse._busy_until > deliver else deliver
        ack_at = start + ack_bytes * 8.0 / reverse.bandwidth_bps + reverse.delay_s
        if ack_at <= reverse._last_delivery:
            ack_at = reverse._last_delivery + 1e-9
        return ack_at
