"""A unidirectional link with a tail-drop FIFO buffer.

The queue is modelled analytically rather than with explicit per-packet
queue events: a link keeps the time at which its transmitter frees up
(``_busy_until``); the backlog in bytes at any instant is
``(busy_until - now) * bandwidth / 8``.  This is exact for a
work-conserving FIFO serializer and halves the event count, which matters
for pure-Python packet-level simulation.

Random (non-congestion) loss and latency noise are applied after the
queue, matching loss on the wire/wireless channel.  FIFO delivery order is
enforced even under noise, so a delay spike compresses the packets behind
it into a burst (the ACK-compression effect discussed in §5 of the paper).
"""

from __future__ import annotations

from typing import Protocol

from .engine import Simulator
from .noise import NoiseModel
from .packet import Packet
from .rng import Rng


class Receiver(Protocol):
    """Anything that can accept delivered packets."""

    def receive(self, packet: Packet) -> None: ...


class LinkStats:
    """Counters exposed by every link for assertions and reports."""

    __slots__ = (
        "offered",
        "delivered",
        "tail_drops",
        "random_losses",
        "max_backlog_bytes",
    )

    def __init__(self) -> None:
        self.offered = 0
        self.delivered = 0
        self.tail_drops = 0
        self.random_losses = 0
        self.max_backlog_bytes = 0.0


class Link:
    """Unidirectional bandwidth/delay/buffer pipe.

    Args:
        sim: The owning simulator.
        bandwidth_bps: Serialization rate in bits per second.
        delay_s: One-way propagation delay in seconds.
        buffer_bytes: Tail-drop queue capacity in bytes. ``float('inf')``
            gives an unbounded queue.
        loss_rate: Probability of random (non-congestion) loss per packet.
        noise: Optional latency-noise model (see :mod:`repro.sim.noise`).
        rng: RNG used for loss and noise draws.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        delay_s: float,
        buffer_bytes: float = float("inf"),
        loss_rate: float = 0.0,
        noise: NoiseModel | None = None,
        rng: Rng | None = None,
        name: str = "link",
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.buffer_bytes = buffer_bytes
        self.loss_rate = loss_rate
        self.noise = noise
        self.rng = rng if rng is not None else Rng(0)
        self.name = name
        self.stats = LinkStats()
        self._busy_until = 0.0
        self._last_delivery = 0.0
        if sim.invariants is not None:
            sim.invariants.register_link(self)

    # ------------------------------------------------------------------
    def backlog_bytes(self) -> float:
        """Bytes currently queued or in transmission."""
        return max(0.0, self._busy_until - self.sim.now) * self.bandwidth_bps / 8.0

    def queueing_delay(self) -> float:
        """Waiting time a packet enqueued right now would experience."""
        return max(0.0, self._busy_until - self.sim.now)

    def queued_packets(self) -> int:
        """Packets held in an explicit queue (none: the queue is analytic)."""
        return 0

    def send(self, packet: Packet, dst: Receiver) -> bool:
        """Enqueue ``packet`` for delivery to ``dst``.

        Returns True if the packet was accepted (it may still be randomly
        lost on the wire) and False on a tail drop.
        """
        now = self.sim.now
        self.stats.offered += 1
        backlog = max(0.0, self._busy_until - now) * self.bandwidth_bps / 8.0
        # Epsilon absorbs float error in the analytic backlog computation.
        if backlog + packet.size_bytes > self.buffer_bytes + 1e-6:
            self.stats.tail_drops += 1
            return False
        if backlog > self.stats.max_backlog_bytes:
            self.stats.max_backlog_bytes = backlog

        start = self._busy_until if self._busy_until > now else now
        self._busy_until = start + packet.size_bytes * 8.0 / self.bandwidth_bps

        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            # The packet still consumed transmitter time, but never arrives.
            self.stats.random_losses += 1
            return True

        deliver_at = self._busy_until + self.delay_s
        if self.noise is not None:
            deliver_at += self.noise.sample(now, self.rng)
            # FIFO even under noise: never deliver before an earlier packet.
            if deliver_at <= self._last_delivery:
                deliver_at = self._last_delivery + 1e-9
        self._last_delivery = deliver_at
        self.stats.delivered += 1
        # Deliveries are fire-and-forget and dominate the heap; the fast
        # path skips the cancellable-Event allocation entirely.
        self.sim.schedule_fast_at(deliver_at, dst.receive, packet)
        return True
