"""Runtime invariant checking for the simulator.

The paper's noise-tolerance claims (§5, Figs 9-10) rest on separating
*injected* jitter from *accidental* nondeterminism or accounting bugs in
the simulator itself.  This module audits structural invariants while a
simulation runs, so a broken link or a clock regression fails loudly in
the test suite instead of silently skewing a benchmark:

* **packet conservation** — for every link, packets offered equal packets
  delivered + tail-dropped + AQM-dropped + randomly lost + still queued;
* **non-negative queues** — link backlogs never go negative;
* **monotonic clock** — simulated time never moves backwards across
  event dispatches;
* **bounded RTT samples** — every RTT sample is finite, at least the
  path's propagation delay, and no larger than the flow's lifetime.

Attach a checker with ``Simulator(check_invariants=True)`` or by setting
``REPRO_CHECK_INVARIANTS=1`` in the environment (the tier-1 test suite
does the latter in ``tests/conftest.py``).  Links and flows register
themselves automatically when their simulator carries a checker.

The per-event cost is one float compare; the full sweep over links and
flows runs every ``sweep_interval`` events and once more when
:meth:`Simulator.run` returns.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from .engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Simulator
    from .flow import Flow

_QUEUE_EPSILON_BYTES = 1e-6
_RTT_EPSILON_S = 1e-9


class InvariantError(SimulationError):
    """A structural invariant of the simulation was violated."""


class InvariantChecker:
    """Audits conservation, queue, clock, and RTT invariants during a run.

    Args:
        sim: The simulator being audited.
        sweep_every_events: Events between full link/flow sweeps.  The
            monotonic-clock check runs on every event regardless.
        max_stall_events: Optional livelock tripwire — raise when this
            many *consecutive* events fire without the simulated clock
            advancing (the signature of a zero-dt self-rescheduling
            bug).  ``None`` (default) disables the check; legitimate
            bursts of same-timestamp events (simultaneous arrivals) stay
            well under any sensible threshold.  This complements the
            engine-level ``max_events`` watchdog: the invariant names
            the *cause* (a stalled clock) where the budget only bounds
            the damage.
    """

    def __init__(
        self,
        sim: "Simulator",
        sweep_every_events: int = 256,
        max_stall_events: int | None = None,
    ):
        if sweep_every_events < 1:
            raise ValueError("sweep_every_events must be positive")
        if max_stall_events is not None and max_stall_events < 1:
            raise ValueError("max_stall_events must be positive")
        self.sim = sim
        self.sweep_every_events = sweep_every_events
        self.max_stall_events = max_stall_events
        self._stall_events = 0
        self._links: list = []
        self._flows: list["Flow"] = []
        self._rtt_checked: dict[int, int] = {}  # id(flow) -> samples audited
        self._last_now = 0.0
        self._events_since_sweep = 0
        self.sweeps = 0  # total full sweeps (for tests)

    # ------------------------------------------------------------------
    # Registration (called from Link / DynamicLink / Flow constructors)
    # ------------------------------------------------------------------
    def register_link(self, link) -> None:
        """Track a link-like object (needs ``stats``, ``backlog_bytes()``,
        ``queued_packets()``)."""
        self._links.append(link)

    def register_flow(self, flow: "Flow") -> None:
        """Track a flow's RTT samples."""
        self._flows.append(flow)
        self._rtt_checked[id(flow)] = 0

    # ------------------------------------------------------------------
    # Hooks (called from the engine)
    # ------------------------------------------------------------------
    def after_event(self, now: float, events: int = 1) -> None:
        """Per-dispatch hook: clock monotonicity + periodic sweeps.

        ``events`` is how many events the engine fired at this timestamp
        (the batched dispatcher drains same-time entries in one pass and
        calls this hook once per batch).  Counting the whole batch keeps
        ``sweep_every_events`` and ``max_stall_events`` denominated in
        events, not dispatch passes, so thresholds mean the same thing
        in both dispatch modes.
        """
        if now < self._last_now:
            raise InvariantError(
                f"simulated clock moved backwards: {self._last_now} -> {now}"
            )
        if self.max_stall_events is not None:
            if now > self._last_now:
                # The batch's first event advanced the clock; the rest of
                # the batch shares its timestamp, exactly as the
                # per-event counter would have scored it.
                self._stall_events = events - 1
            else:
                self._stall_events += events
                if self._stall_events >= self.max_stall_events:
                    raise InvariantError(
                        f"simulated clock stalled: {self._stall_events} "
                        f"consecutive events at t={now} (zero-dt "
                        "self-rescheduling livelock?)"
                    )
        self._last_now = now
        self._events_since_sweep += events
        if self._events_since_sweep >= self.sweep_every_events:
            self.check_now()

    def final_check(self) -> None:
        """End-of-run hook: one last full sweep."""
        self.check_now()

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def check_now(self) -> None:
        """Run every invariant immediately (also usable from tests)."""
        self._events_since_sweep = 0
        self.sweeps += 1
        for link in self._links:
            self._check_link(link)
        for flow in self._flows:
            self._check_flow_rtts(flow)

    def _check_link(self, link) -> None:
        stats = link.stats
        queued = link.queued_packets()
        # DynamicLink predates outage support; plain Links count packets
        # offered during a down window separately from tail drops.
        outage_drops = getattr(stats, "outage_drops", 0)
        # Stub links in tests may carry a bare stats object without the
        # AQM counter; real LinkStats always has it.
        aqm_drops = getattr(stats, "aqm_drops", 0)
        accounted = (
            stats.delivered
            + stats.tail_drops
            + aqm_drops
            + stats.random_losses
            + outage_drops
            + queued
        )
        if stats.offered != accounted:
            raise InvariantError(
                f"packet conservation violated on {link.name!r}: "
                f"offered={stats.offered} but delivered={stats.delivered} "
                f"+ tail_drops={stats.tail_drops} "
                f"+ aqm_drops={aqm_drops} "
                f"+ random_losses={stats.random_losses} "
                f"+ outage_drops={outage_drops} + queued={queued} "
                f"= {accounted}"
            )
        backlog = link.backlog_bytes()
        if backlog < -_QUEUE_EPSILON_BYTES or not math.isfinite(backlog):
            raise InvariantError(
                f"negative or non-finite backlog on {link.name!r}: {backlog}"
            )

    def _check_flow_rtts(self, flow: "Flow") -> None:
        rtts = flow.stats.rtts
        start = self._rtt_checked[id(flow)]
        if start >= len(rtts):
            return
        # Against the *minimum* propagation delay the path ever had: after
        # a mid-run delay increase, samples taken earlier legitimately sit
        # below the current base RTT.  (Stub flows in tests may only
        # implement base_rtt.)
        min_base_rtt = getattr(flow, "min_base_rtt", flow.base_rtt)
        floor_s = min_base_rtt() - _RTT_EPSILON_S
        ceiling_s = self.sim.now - flow.start_time + _RTT_EPSILON_S
        for i in range(start, len(rtts)):
            rtt = rtts[i]
            if not math.isfinite(rtt) or rtt < floor_s or rtt > ceiling_s:
                raise InvariantError(
                    f"RTT sample {rtt} of flow {flow.flow_id} outside "
                    f"[{floor_s}, {ceiling_s}] (sample #{i})"
                )
        self._rtt_checked[id(flow)] = len(rtts)
