"""Tracepoints and trace sinks (the ``repro.obs`` tracing half).

The simulator and every sender can narrate what they are doing —
per-packet link events, monitor-interval lifecycles with their utility
components, rate-control decisions with reasons, RTT-filter verdicts —
as a stream of typed **trace events**.  The design constraint is the
same as the engine's: the disabled path must cost nothing measurable.
Every emission site in hot code is guarded by a single
``if tracer is not None`` attribute check (enforced end-to-end by the
``repro bench`` events/sec gate), and no tracer object exists unless
one was installed.

Determinism: events carry *simulated* time only and are emitted in
event-execution order, which is a pure function of the run's seed.  The
JSONL encoding is canonical (sorted keys, fixed separators, Python's
shortest-repr floats), so the byte stream — and therefore
:func:`trace_digest` — is identical across hosts and across
``REPRO_JOBS`` settings (each run traces inside its own process).

Sinks:

* :class:`CollectingTracer` — in-memory list of :class:`TraceEvent`.
* :class:`JsonlTraceSink` — streams canonical JSONL to a file.
* :class:`RingBufferTracer` — keeps only the last *N* events; the
  supervision layer (:mod:`repro.harness.supervise`) attaches its
  snapshot to failed/timed-out :class:`~repro.harness.supervise.TrialOutcome`
  records ("what happened right before the crash").
* :class:`TeeTracer` — fan-out to several sinks.

A process-global tracer can be installed with :func:`install_tracer` /
:func:`tracing`; ``run_flows`` and friends pick it up when no explicit
``tracer=`` argument is given.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Any, Iterable, Iterator, Protocol, runtime_checkable


@runtime_checkable
class Tracer(Protocol):
    """Anything that can swallow trace events.

    ``emit`` takes the event kind, the *simulated* timestamp, the
    optional flow/link attribution, and free-form payload fields.  The
    signature is flat (no event object) so hot emission sites allocate
    nothing beyond the kwargs dict.
    """

    def emit(
        self,
        kind: str,
        time_s: float,
        *,
        flow: int | None = None,
        link: str | None = None,
        **fields: Any,
    ) -> None: ...


class TraceEvent:
    """One trace event: what happened, when, and to whom."""

    __slots__ = ("kind", "time_s", "flow", "link", "fields")

    def __init__(
        self,
        kind: str,
        time_s: float,
        flow: int | None = None,
        link: str | None = None,
        fields: dict[str, Any] | None = None,
    ) -> None:
        self.kind = kind
        self.time_s = time_s
        self.flow = flow
        self.link = link
        self.fields = fields if fields is not None else {}

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-safe form (``t``/``kind`` first, payload merged)."""
        record: dict[str, Any] = {"t": self.time_s, "kind": self.kind}
        if self.flow is not None:
            record["flow"] = self.flow
        if self.link is not None:
            record["link"] = self.link
        record.update(self.fields)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        who = f" flow={self.flow}" if self.flow is not None else ""
        who += f" link={self.link}" if self.link is not None else ""
        return f"<TraceEvent t={self.time_s:.6f} {self.kind}{who}>"


def event_to_json(record: dict[str, Any]) -> str:
    """Canonical single-line JSON encoding of one event dict.

    Sorted keys and fixed separators: the byte stream depends only on
    the event contents, never on insertion order or platform.
    """
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def events_to_jsonl(events: Iterable[TraceEvent | dict]) -> str:
    """Events as canonical JSONL text (one event per line)."""
    lines = []
    for event in events:
        record = event.to_dict() if isinstance(event, TraceEvent) else event
        lines.append(event_to_json(record))
    return "\n".join(lines) + ("\n" if lines else "")


def trace_digest(events: Iterable[TraceEvent | dict]) -> str:
    """sha256 over the canonical JSONL encoding of ``events``."""
    return hashlib.sha256(events_to_jsonl(events).encode()).hexdigest()


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a JSONL trace file back into event dicts."""
    records = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# Filtering (shared by ``repro trace`` record and replay paths)
# ----------------------------------------------------------------------
def kind_matches(kind: str, pattern: str) -> bool:
    """True when ``pattern`` names ``kind`` or one of its namespaces.

    ``"link"`` matches ``link.enqueue``/``link.drop``/...;
    ``"link.drop"`` matches only itself.
    """
    return kind == pattern or kind.startswith(pattern + ".")


def filter_events(
    events: Iterable[dict],
    *,
    flows: Iterable[int] | None = None,
    links: Iterable[str] | None = None,
    kinds: Iterable[str] | None = None,
) -> list[dict]:
    """Event dicts matching every given filter (None = no constraint)."""
    flow_set = None if flows is None else set(flows)
    link_set = None if links is None else set(links)
    kind_list = None if kinds is None else list(kinds)
    kept = []
    for event in events:
        if flow_set is not None and event.get("flow") not in flow_set:
            continue
        if link_set is not None and event.get("link") not in link_set:
            continue
        if kind_list is not None and not any(
            kind_matches(event.get("kind", ""), pattern) for pattern in kind_list
        ):
            continue
        kept.append(event)
    return kept


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class CollectingTracer:
    """Keeps every event in memory (tests, ``repro trace``)."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(
        self,
        kind: str,
        time_s: float,
        *,
        flow: int | None = None,
        link: str | None = None,
        **fields: Any,
    ) -> None:
        self.events.append(TraceEvent(kind, time_s, flow, link, fields))

    def __len__(self) -> int:
        return len(self.events)

    def to_dicts(self) -> list[dict]:
        return [event.to_dict() for event in self.events]

    def to_jsonl(self) -> str:
        return events_to_jsonl(self.events)

    def digest(self) -> str:
        return trace_digest(self.events)


class RingBufferTracer:
    """Keeps only the last ``capacity`` events — flight recorder mode.

    Cheap enough to leave armed around a whole supervised trial: the
    deque discards old events in O(1), and :meth:`snapshot` renders the
    surviving tail as JSON-safe dicts for a
    :class:`~repro.harness.supervise.TrialOutcome` failure record.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.dropped = 0
        self._events: deque[TraceEvent] = deque(maxlen=capacity)

    def emit(
        self,
        kind: str,
        time_s: float,
        *,
        flow: int | None = None,
        link: str | None = None,
        **fields: Any,
    ) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(kind, time_s, flow, link, fields))

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def snapshot(self) -> list[dict]:
        """The retained tail as event dicts, oldest first."""
        return [event.to_dict() for event in self._events]


class JsonlTraceSink:
    """Streams events to ``path`` as canonical JSONL.

    Usable as a context manager; :attr:`count` tracks emitted events.
    The running :attr:`digest` matches :func:`trace_digest` over the
    same events, so producers and replayers can compare byte-identity
    without re-reading the file.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] | None = self.path.open("w")
        self._hasher = hashlib.sha256()
        self.count = 0

    def emit(
        self,
        kind: str,
        time_s: float,
        *,
        flow: int | None = None,
        link: str | None = None,
        **fields: Any,
    ) -> None:
        if self._handle is None:
            raise ValueError("trace sink is closed")
        record: dict[str, Any] = {"t": time_s, "kind": kind}
        if flow is not None:
            record["flow"] = flow
        if link is not None:
            record["link"] = link
        record.update(fields)
        line = event_to_json(record) + "\n"
        self._handle.write(line)
        self._hasher.update(line.encode())
        self.count += 1

    def digest(self) -> str:
        return self._hasher.hexdigest()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class TeeTracer:
    """Fans every event out to several tracers."""

    def __init__(self, *tracers: Tracer) -> None:
        self.tracers = tracers

    def emit(
        self,
        kind: str,
        time_s: float,
        *,
        flow: int | None = None,
        link: str | None = None,
        **fields: Any,
    ) -> None:
        for tracer in self.tracers:
            tracer.emit(kind, time_s, flow=flow, link=link, **fields)


# ----------------------------------------------------------------------
# Process-global tracer (picked up by run_* when no tracer= is passed)
# ----------------------------------------------------------------------
_ACTIVE_TRACER: Tracer | None = None


def active_tracer() -> Tracer | None:
    """The process-global tracer, or None (the zero-overhead default)."""
    return _ACTIVE_TRACER


def install_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` globally; returns the previous one."""
    global _ACTIVE_TRACER
    previous = _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer
    return previous


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Scoped :func:`install_tracer` (restores the previous tracer)."""
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)
