"""Metrics registry (the ``repro.obs`` metrics half).

Counters, gauges, and histograms with per-flow / per-link labels, plus
periodic samplers driven by *simulated* time (never wall clock — the
no-wallclock lint rule applies here too).  Snapshots export to canonical
dicts that flow into result-cache payloads unchanged, so a warm cache
hit returns byte-identical metrics to the live run that produced it.

Instruments are keyed by name plus a sorted label string, e.g.
``link.tail_drops{link=bottleneck}`` or
``flow.throughput_mbps{flow=1,protocol=proteus-s}``, so snapshots are
deterministic regardless of creation order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Simulator


def _series_key(name: str, labels: dict[str, Any]) -> str:
    """Canonical ``name{k=v,...}`` identity for one labelled series."""
    if not labels:
        return name
    body = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{body}}}"


class Counter:
    """Monotonically increasing count (drops, ACKs, decisions, ...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """Last-observed value (queue depth, current rate, utilization)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Distribution summary: count/sum/min/max plus optional buckets.

    ``bounds`` are inclusive upper bucket edges; an implicit +inf bucket
    catches the remainder.  Bucket counts are cumulative-free (each
    observation lands in exactly one bucket) to keep snapshots small.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        labels: dict[str, Any],
        bounds: Iterable[float] | None = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds: tuple[float, ...] = tuple(sorted(bounds)) if bounds else ()
        self.bucket_counts = [0] * (len(self.bounds) + 1) if self.bounds else []
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self.bounds:
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    break
            else:
                self.bucket_counts[-1] += 1

    def mean(self) -> float | None:
        return self.sum / self.count if self.count else None


class MetricsRegistry:
    """Factory and container for labelled instruments.

    ``counter``/``gauge``/``histogram`` get-or-create, so call sites
    never need to pre-register; re-requesting the same name+labels
    returns the same instrument.  :meth:`snapshot` renders everything
    as a canonical nested dict keyed by the series strings, sorted, so
    two registries fed identical observations snapshot identically.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = _series_key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(name, labels)
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _series_key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(name, labels)
        return inst

    def histogram(
        self, name: str, *, bounds: Iterable[float] | None = None, **labels: Any
    ) -> Histogram:
        key = _series_key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(name, labels, bounds)
        return inst

    def snapshot(self) -> dict[str, Any]:
        """Canonical ``{"counters": ..., "gauges": ..., "histograms": ...}``.

        Pure builtins (str/int/float/list/dict), sorted by series key:
        safe to JSON-encode, hash, and store in cache payloads.
        """
        counters = {key: self._counters[key].value for key in sorted(self._counters)}
        gauges = {key: self._gauges[key].value for key in sorted(self._gauges)}
        histograms = {}
        for key in sorted(self._histograms):
            hist = self._histograms[key]
            entry: dict[str, Any] = {
                "count": hist.count,
                "sum": hist.sum,
                "min": hist.min,
                "max": hist.max,
            }
            if hist.bounds:
                entry["bounds"] = list(hist.bounds)
                entry["buckets"] = list(hist.bucket_counts)
            histograms[key] = entry
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


def empty_snapshot() -> dict[str, Any]:
    """The canonical shape of :meth:`MetricsRegistry.snapshot`, empty."""
    return {"counters": {}, "gauges": {}, "histograms": {}}


class PeriodicSampler:
    """Calls ``fn(now_s)`` every ``period_s`` of *simulated* time.

    Self-rescheduling; starts with the first sample at
    ``sim.now + period_s`` and stops when :meth:`cancel` is called or
    the simulation ends (pending events past ``until`` never fire).
    Typical use: sampling queue backlog or current rate into gauges or
    a histogram at a fixed cadence.
    """

    def __init__(self, sim: "Simulator", period_s: float, fn: Callable[[float], None]) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.sim = sim
        self.period_s = period_s
        self.fn = fn
        self._cancelled = False
        sim.schedule_fast(period_s, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fn(self.sim.now)
        self.sim.schedule_fast(self.period_s, self._fire)

    def cancel(self) -> None:
        self._cancelled = True
