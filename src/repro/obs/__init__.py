"""repro.obs — zero-overhead-when-disabled observability.

Two halves:

* :mod:`repro.obs.trace` — the :class:`Tracer` protocol, trace events,
  sinks (collecting / JSONL / ring-buffer / tee), canonical JSONL
  encoding with stable digests, and event filtering.
* :mod:`repro.obs.metrics` — labelled counters/gauges/histograms in a
  :class:`MetricsRegistry`, plus :class:`PeriodicSampler` driven by
  simulated time.

The default state is *off*: no tracer installed, no registry created,
and every instrumented call site pays exactly one ``is not None``
branch (the ``repro bench`` gate enforces that this stays in the
noise).  See ``docs/OBSERVABILITY.md`` for the tracepoint catalogue.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PeriodicSampler,
    empty_snapshot,
)
from .trace import (
    CollectingTracer,
    JsonlTraceSink,
    RingBufferTracer,
    TeeTracer,
    TraceEvent,
    Tracer,
    active_tracer,
    event_to_json,
    events_to_jsonl,
    filter_events,
    install_tracer,
    kind_matches,
    read_jsonl,
    trace_digest,
    tracing,
)

__all__ = [
    "Tracer",
    "TraceEvent",
    "CollectingTracer",
    "JsonlTraceSink",
    "RingBufferTracer",
    "TeeTracer",
    "active_tracer",
    "install_tracer",
    "tracing",
    "event_to_json",
    "events_to_jsonl",
    "trace_digest",
    "read_jsonl",
    "filter_events",
    "kind_matches",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PeriodicSampler",
    "empty_snapshot",
]
