"""Determinism/race detection over the worker-dispatch call graph.

The harness fans trials out to worker *processes* (``pmap``,
``supervised_map``, ``run_trials*``), and the repo's headline guarantee
is that ``REPRO_JOBS=1`` and ``REPRO_JOBS=4`` produce byte-identical
digests.  Three static properties protect that guarantee:

1. **No module-level mutable state written in worker-reachable code.**
   A global counter or cache written inside a worker diverges between
   the serial and parallel paths (each process mutates its own copy) and
   between runs (scheduling order); results must flow through return
   values.  Check id: ``worker-global-write``.
2. **No unseeded randomness reachable from a worker root.**  The
   ``no-bare-random`` lint rule bans the import per-file; this pass
   closes the loophole of a worker calling *through* helper modules into
   ``random.*`` / ``numpy.random.*``.  Check id:
   ``worker-unseeded-random``.
3. **No unordered-set iteration feeding canonical outputs.**  Set
   iteration order depends on hash seeding; iterating a set while
   building anything digest-shaped (worker-reachable code, or functions
   whose name/module says digest/canonical/cache-key) must go through
   ``sorted()``.  Check id: ``unordered-iteration``.

Roots are found statically: the first argument of every
``pmap(fn, ...)`` / ``supervised_map(fn, ...)`` / ``run_trials*(fn,
...)`` call site that resolves to a known function.  The call graph is
then walked with a deliberately *over-approximate* resolver (attribute
calls resolve to every known function of that terminal name) — for a
determinism gate, a rare false positive beats a silent miss, and the
baseline file absorbs justified exceptions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint.base import Violation
from .base import Analyzer, register_analyzer
from .loader import FunctionInfo, ModuleInfo, Project

DISPATCH_CALLS = frozenset(
    {"pmap", "supervised_map", "run_trials", "run_trials_multi", "run_trials_supervised"}
)

_MUTATING_METHODS = frozenset(
    {
        "append", "add", "update", "extend", "insert", "setdefault",
        "pop", "popitem", "clear", "remove", "discard", "appendleft",
    }
)

_SENSITIVE_NAME_PARTS = ("digest", "canonical", "cache_key", "payload_key", "schedule")


def _terminal(node: ast.AST) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register_analyzer
class RaceDetector(Analyzer):
    id = "races"
    description = (
        "walk the call graph from pmap/supervised_map/run_trials* roots; "
        "flag worker-reachable global writes, unseeded randomness and "
        "unordered set iteration near digests/cache keys"
    )
    check_ids = (
        "worker-global-write",
        "worker-unseeded-random",
        "unordered-iteration",
    )

    def analyze(self, project: Project) -> Iterator[Violation]:
        reachable = self._worker_reachable(project)
        seen: set[tuple[str, int, str]] = set()
        for info in project.functions.values():
            in_worker = info.qname in reachable
            sensitive = self._is_sensitive(info)
            if not in_worker and not sensitive:
                continue
            for finding in self._check_function(project, info, in_worker):
                key = (finding.path, finding.line, finding.rule_id)
                if key not in seen:
                    seen.add(key)
                    yield finding

    # ------------------------------------------------------------------
    # Call-graph construction
    # ------------------------------------------------------------------
    def _worker_reachable(self, project: Project) -> set[str]:
        roots: list[FunctionInfo] = []
        for module in project.modules.values():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                if _terminal(node.func) not in DISPATCH_CALLS:
                    continue
                target = self._resolve_targets(project, module, node.args[0], cls=None)
                roots.extend(target)
        reachable: set[str] = set()
        frontier = list(roots)
        while frontier:
            info = frontier.pop()
            if info.qname in reachable:
                continue
            reachable.add(info.qname)
            for callee in self._callees(project, info):
                if callee.qname not in reachable:
                    frontier.append(callee)
        return reachable

    def _callees(self, project: Project, info: FunctionInfo) -> list[FunctionInfo]:
        callees: list[FunctionInfo] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                callees.extend(
                    self._resolve_targets(project, info.module, node.func, info.cls)
                )
        return callees

    def _resolve_targets(
        self, project: Project, module: ModuleInfo, func: ast.AST, cls
    ) -> list[FunctionInfo]:
        """Resolve a callable expression to candidate functions.

        Precise where possible (imports, same module, ``self.method``),
        over-approximate for attribute calls on unknown receivers: any
        project function with the same terminal name is a candidate.
        """
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id in ("self", "cls") and cls is not None:
                method = cls.methods.get(func.attr)
                if method is not None:
                    return [method]
        resolved = project.resolve_callable(module, func)
        if isinstance(resolved, FunctionInfo):
            return [resolved]
        if resolved is not None:  # a class: constructor + __init__ chain
            init = resolved.methods.get("__init__")
            return [init] if init is not None else []
        terminal = _terminal(func)
        if terminal is None:
            return []
        if isinstance(func, ast.Name):
            # An unresolved bare name is a builtin or a local; never a
            # project function (those resolve via the symbol table).
            return []
        return project.by_terminal.get(terminal, [])

    # ------------------------------------------------------------------
    # Per-function checks
    # ------------------------------------------------------------------
    @staticmethod
    def _is_sensitive(info: FunctionInfo) -> bool:
        haystacks = (info.name, info.module.name)
        return any(part in h for part in _SENSITIVE_NAME_PARTS for h in haystacks)

    def _check_function(
        self, project: Project, info: FunctionInfo, in_worker: bool
    ) -> Iterator[Violation]:
        module = info.module
        local_names = _local_assignments(info.node)
        global_decls: set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                global_decls.update(node.names)

        for node in ast.walk(info.node):
            if in_worker:
                yield from self._check_global_write(
                    module, info, node, local_names, global_decls
                )
                yield from self._check_unseeded_random(module, info, node)
            yield from self._check_unordered_iteration(module, info, node, local_names)

    def _check_global_write(
        self,
        module: ModuleInfo,
        info: FunctionInfo,
        node: ast.AST,
        local_names: set[str],
        global_decls: set[str],
    ) -> Iterator[Violation]:
        def is_module_global(name_node: ast.AST) -> str | None:
            if not isinstance(name_node, ast.Name):
                return None
            name = name_node.id
            if name in global_decls:
                return name
            if name in local_names or name not in module.global_names:
                return None
            return name

        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in global_decls:
                    yield self.finding(
                        module,
                        node,
                        "worker-global-write",
                        f"'{info.qname}' writes module global '{target.id}' and "
                        "is reachable from a worker dispatch; results must flow "
                        "through return values",
                    )
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    owner = is_module_global(target.value)
                    if owner is not None:
                        yield self.finding(
                            module,
                            node,
                            "worker-global-write",
                            f"'{info.qname}' mutates module-level '{owner}' and "
                            "is reachable from a worker dispatch; per-process "
                            "state diverges between serial and parallel runs",
                        )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
            ):
                owner = is_module_global(func.value)
                if owner is not None:
                    yield self.finding(
                        module,
                        node,
                        "worker-global-write",
                        f"'{info.qname}' calls '{owner}.{func.attr}()' on a "
                        "module-level object and is reachable from a worker "
                        "dispatch; per-process state diverges",
                    )

    def _check_unseeded_random(
        self, module: ModuleInfo, info: FunctionInfo, node: ast.AST
    ) -> Iterator[Violation]:
        if not isinstance(node, ast.Call):
            return
        dotted = _dotted(node.func)
        if dotted is None:
            return
        absolute = (
            module.imports.get(dotted.partition(".")[0], dotted.partition(".")[0])
            + (("." + dotted.partition(".")[2]) if "." in dotted else "")
        )
        for pattern in ("random.", "numpy.random.", "np.random."):
            root = pattern.rstrip(".")
            if absolute == root or absolute.startswith(pattern):
                if absolute.split(".")[-1] == "Random":
                    return  # explicit instance; seeding is the caller's job
                yield self.finding(
                    module,
                    node,
                    "worker-unseeded-random",
                    f"'{info.qname}' draws from unseeded '{dotted}' and is "
                    "reachable from a worker dispatch or the engine; thread a "
                    "seeded repro Rng through instead",
                )
                return

    def _check_unordered_iteration(
        self,
        module: ModuleInfo,
        info: FunctionInfo,
        node: ast.AST,
        local_names: set[str],
    ) -> Iterator[Violation]:
        iter_expr: ast.expr | None = None
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iter_expr = node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iter_expr = node.generators[0].iter
        if iter_expr is None:
            return
        if not self._is_set_expr(iter_expr, info.node):
            return
        yield self.finding(
            module,
            iter_expr,
            "unordered-iteration",
            f"'{info.qname}' iterates a set in digest/cache-key/worker "
            "context; wrap the iterable in sorted() to pin the order",
        )

    @staticmethod
    def _is_set_expr(expr: ast.expr, scope: ast.AST) -> bool:
        """Is ``expr`` statically set-typed (and not wrapped in sorted())?"""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            name = _terminal(expr.func)
            if name in ("set", "frozenset"):
                return True
            # set arithmetic helpers keep set-ness
            if name in ("union", "intersection", "difference", "symmetric_difference"):
                return RaceDetector._is_set_expr(expr.func.value, scope) if isinstance(
                    expr.func, ast.Attribute
                ) else False
            return False
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            return RaceDetector._is_set_expr(expr.left, scope) or RaceDetector._is_set_expr(
                expr.right, scope
            )
        if isinstance(expr, ast.Name):
            # A local consistently assigned from set expressions.
            assigned_sets = 0
            assigned_other = 0
            for node in ast.walk(scope):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and target.id == expr.id:
                            if RaceDetector._is_set_expr(node.value, scope):
                                assigned_sets += 1
                            else:
                                assigned_other += 1
                elif isinstance(node, ast.AnnAssign):
                    if (
                        isinstance(node.target, ast.Name)
                        and node.target.id == expr.id
                        and node.value is not None
                    ):
                        if RaceDetector._is_set_expr(node.value, scope):
                            assigned_sets += 1
                        else:
                            assigned_other += 1
            return assigned_sets > 0 and assigned_other == 0
        return False


def _bound_names(target: ast.AST) -> Iterator[str]:
    """Names a target *binds*.  ``x[k] = v`` and ``x.f = v`` bind nothing —
    they mutate ``x``, which must stay attributable to the module scope."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for el in target.elts:
            yield from _bound_names(el)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


def _local_assignments(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally (params, assignments, for targets, withitems)."""
    names: set[str] = set()
    args = fn.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        names.add(arg.arg)
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                names.update(_bound_names(target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names.update(_bound_names(node.target))
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            names.update(_bound_names(node.optional_vars))
        elif isinstance(node, ast.comprehension):
            names.update(_bound_names(node.target))
    return names
