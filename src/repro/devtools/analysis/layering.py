"""Import-layering enforcement over a declared layer DAG.

Generalizes PR 5's one-off "no deep harness imports in examples" lint
rule into an explicit architecture: every package is assigned a layer,
and module-scope imports may only point sideways or *down* the stack.

The declared DAG (low → high)::

    core → sim → protocols/apps → analysis → obs → harness → adversary
    → cli/devtools

* ``core`` is pure control-law math (utility, thresholds, filters, the
  seeded Rng) — it imports nothing above it;
* ``sim`` is the event loop and network model, built on ``core``;
* ``protocols``/``apps`` assemble senders and workloads from both;
* ``analysis`` post-processes results;
* ``obs`` (tracing/metrics) sits *below* ``harness``: the harness
  composes tracers and metric registries into runs, while the sim layer
  reaches observability only through duck-typed ``tracer``/``metrics``
  objects, never an import;
* ``harness`` orchestrates experiments;
* ``adversary`` (scenario search) composes harness runs into search
  campaigns — it sits above the harness but below the CLI;
* ``cli`` and ``devtools`` see everything.

Only module-scope imports count.  Imports inside function bodies are
deliberate lazy escapes (the CLI loading the bench suite on demand) and
are exempt.  ``if TYPE_CHECKING:`` imports count for layer *direction*
(typing-only coupling is still coupling) but not for *cycles* — they
are invisible at runtime, and guarding a within-layer cycle behind
TYPE_CHECKING is exactly how the sim untangles flow/link/engine.

Check ids: ``layer-violation`` (an upward import), ``import-cycle``
(module-level import cycles, reported once per cycle).
"""

from __future__ import annotations

from typing import Iterator

from ..lint.base import Violation
from .base import Analyzer, register_analyzer
from .loader import ModuleInfo, Project

#: package (second component of the dotted module name) -> layer name
PACKAGE_LAYERS: dict[str, str] = {
    "core": "core",
    "sim": "sim",
    "protocols": "protocols",
    "apps": "protocols",
    "analysis": "analysis",
    "obs": "obs",
    "harness": "harness",
    "adversary": "adversary",
    "cli": "cli",
    "__main__": "cli",
    "devtools": "cli",
}

#: layer name -> height in the DAG (imports may only point to <= height)
LAYER_ORDER: dict[str, int] = {
    "core": 0,
    "sim": 1,
    "protocols": 2,
    "analysis": 3,
    "obs": 4,
    "harness": 5,
    "adversary": 6,
    "cli": 7,
}


def layer_of(module_name: str, root: str) -> str | None:
    """Layer of ``module_name`` under root package ``root`` (None = exempt).

    The root package's own ``__init__`` is exempt: it is the public
    facade and re-exports from every layer (lazily).
    """
    if module_name == root or not module_name.startswith(root + "."):
        return None
    head = module_name[len(root) + 1 :].split(".", 1)[0]
    return PACKAGE_LAYERS.get(head, "cli")


@register_analyzer
class LayeringEnforcer(Analyzer):
    id = "layering"
    description = (
        "enforce the core->sim->protocols/apps->analysis->obs->harness->"
        "adversary->cli layer DAG on module-scope imports; detect import "
        "cycles"
    )
    check_ids = ("layer-violation", "import-cycle")

    def analyze(self, project: Project) -> Iterator[Violation]:
        roots = self._root_packages(project)
        # Runtime-only edges feed cycle detection; layer direction is
        # checked on every edge (typing-only coupling still counts).
        edges: dict[str, set[str]] = {name: set() for name in project.modules}
        for module in project.modules.values():
            root = self._root_of(module.name, roots)
            if root is None:
                continue
            source_layer = layer_of(module.name, root)
            for target, stmt in sorted(module.module_imports.items()):
                if not (target == root or target.startswith(root + ".")):
                    continue  # external dependency: out of scope
                if target != module.name and target not in module.typing_only:
                    for resolved in self._edge_targets(project, module, target):
                        edges[module.name].add(resolved)
                if source_layer is None:
                    continue
                target_layer = layer_of(target, root)
                if target_layer is None:
                    continue
                if LAYER_ORDER[target_layer] > LAYER_ORDER[source_layer]:
                    yield self.finding(
                        module,
                        stmt,
                        "layer-violation",
                        f"'{module.name}' (layer {source_layer}) imports "
                        f"'{target}' (layer {target_layer}); imports must "
                        "point down the core->sim->protocols->analysis->obs->"
                        "harness->adversary->cli stack, or move to a function "
                        "body if the dependency is a deliberate lazy escape",
                    )
        yield from self._cycles(project, edges)

    @staticmethod
    def _edge_targets(
        project: Project, module: ModuleInfo, target: str
    ) -> list[str]:
        """Graph nodes an import of ``target`` really points at.

        ``from . import engine`` records the *package* as the import
        base; the real dependency is each bound name that is itself a
        loaded module (``repro.sim.engine``), so resolve those too —
        otherwise a package ``__init__`` importing its own submodules
        reads as a self-edge.
        """
        resolved = [target] if target in project.modules else []
        for alias_target in module.imports.values():
            if (
                alias_target != module.name
                and alias_target.rpartition(".")[0] == target
                and alias_target in project.modules
            ):
                resolved.append(alias_target)
        return resolved

    # ------------------------------------------------------------------
    @staticmethod
    def _root_packages(project: Project) -> set[str]:
        return {name.split(".", 1)[0] for name in project.modules if "." in name}

    @staticmethod
    def _root_of(module_name: str, roots: set[str]) -> str | None:
        head = module_name.split(".", 1)[0]
        return head if head in roots else None

    def _cycles(
        self, project: Project, edges: dict[str, set[str]]
    ) -> Iterator[Violation]:
        """Tarjan SCCs over the module import graph; each SCC>1 is a cycle."""
        index_counter = [0]
        stack: list[str] = []
        on_stack: set[str] = set()
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        sccs: list[list[str]] = []

        def strongconnect(node: str) -> None:
            # Iterative Tarjan: recursion depth equals import-chain depth,
            # which real trees can exceed.
            work = [(node, iter(sorted(edges.get(node, ()))))]
            index[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, it = work[-1]
                advanced = False
                for successor in it:
                    if successor not in index:
                        index[successor] = lowlink[successor] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append((successor, iter(sorted(edges.get(successor, ())))))
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlink[current] = min(lowlink[current], index[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])
                if lowlink[current] == index[current]:
                    scc = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == current:
                            break
                    sccs.append(scc)

        for name in sorted(edges):
            if name not in index:
                strongconnect(name)

        for scc in sccs:
            is_cycle = len(scc) > 1 or (
                len(scc) == 1 and scc[0] in edges.get(scc[0], ())
            )
            if not is_cycle:
                continue
            members = sorted(scc)
            module = project.modules[members[0]]
            yield self.finding(
                module,
                module.tree,
                "import-cycle",
                "module-level import cycle: " + " -> ".join(members + [members[0]]),
            )
