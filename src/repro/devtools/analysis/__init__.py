"""Whole-program static analysis behind ``repro check``.

Where ``repro lint`` judges one file at a time, the analyzers here share
a single parsed :class:`~repro.devtools.analysis.loader.Project` and
reason across module boundaries:

* ``units`` — dataflow over the ``_s/_ms/_bps/_bytes/_pkts`` suffix
  convention, including cross-module call sites;
* ``races`` — determinism hazards in code reachable from the
  ``pmap``/``run_trials*`` worker dispatch;
* ``tracepoints`` — the ``tracer.emit`` event/field schema and its docs;
* ``layering`` — the core→sim→protocols→analysis→obs→harness→cli
  import DAG and cycle detection.

Importing this package registers all analyzers in
:data:`~repro.devtools.analysis.base.ANALYZERS`.
"""

from __future__ import annotations

from . import layering, races, tracepoints, units  # noqa - analyzer registration
from .base import ANALYZERS, Analyzer, Baseline, BaselineEntry
from .loader import Project
from .runner import (
    CheckReport,
    describe_checks,
    format_report_github,
    format_report_json,
    format_report_text,
    run_check,
    select_analyzers,
    write_trace_schema,
)

__all__ = [
    "ANALYZERS",
    "Analyzer",
    "Baseline",
    "BaselineEntry",
    "CheckReport",
    "Project",
    "describe_checks",
    "format_report_github",
    "format_report_json",
    "format_report_text",
    "run_check",
    "select_analyzers",
    "write_trace_schema",
]
