"""Orchestration for ``repro check``: load once, run analyzers, report.

The pipeline per run:

1. :class:`~repro.devtools.analysis.loader.Project` parses every file
   once (analyzers share the tree and symbol tables);
2. each selected analyzer contributes findings (syntax errors surface as
   ``syntax-error`` findings rather than crashing the run);
3. findings on lines carrying ``# repro: noqa[check-id]`` — or in files
   carrying ``# repro: noqa-file[check-id]`` — are dropped, reusing the
   lint engine's suppression machinery;
4. the committed baseline splits the rest into *kept* (fail the gate)
   and *baselined* (justified exceptions); stale baseline entries also
   fail, so the exception list can only shrink honestly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..lint.base import Violation
from ..lint.engine import SYNTAX_ERROR_RULE
from .base import ANALYZERS, Analyzer, Baseline, BaselineEntry
from .loader import Project
from .tracepoints import build_schema, render_schema_md


@dataclass
class CheckReport:
    """Everything one ``repro check`` run decided."""

    findings: list[Violation] = field(default_factory=list)  # fail the gate
    baselined: list[Violation] = field(default_factory=list)
    stale_entries: list[BaselineEntry] = field(default_factory=list)
    suppressed: int = 0  # dropped by noqa / noqa-file
    files: int = 0
    checks: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.stale_entries


def select_analyzers(checks: Sequence[str] | None) -> list[Analyzer]:
    """Analyzers for ``--check`` ids (None = all); unknown ids raise."""
    if checks is None:
        return ANALYZERS.all()
    unknown = [check for check in checks if check not in ANALYZERS.analyzers]
    if unknown:
        known = ", ".join(sorted(ANALYZERS.analyzers))
        raise ValueError(f"unknown check(s) {', '.join(unknown)}; known: {known}")
    return ANALYZERS.select(checks)


def run_check(
    paths: Iterable[str | Path],
    *,
    checks: Sequence[str] | None = None,
    baseline: Baseline | None = None,
    docs_dir: str | Path | None = None,
    project: Project | None = None,
) -> CheckReport:
    """Run the whole-program analyzers over ``paths``.

    ``docs_dir`` enables the tracepoint documentation checks
    (OBSERVABILITY.md coverage, TRACE_SCHEMA.md staleness).  A
    pre-loaded ``project`` can be passed to share the parse with
    schema generation.
    """
    if project is None:
        project = Project.load(paths)
    if docs_dir is not None:
        project.docs_dir = Path(docs_dir)
    analyzers = select_analyzers(checks)

    findings: list[Violation] = [
        Violation(
            path=str(err_path),
            line=exc.lineno or 1,
            col=exc.offset or 1,
            rule_id=SYNTAX_ERROR_RULE,
            message=f"cannot parse: {exc.msg}",
        )
        for err_path, exc in project.syntax_errors
    ]
    for analyzer in analyzers:
        findings.extend(analyzer.analyze(project))
    findings.sort()

    by_path = {str(module.path): module for module in project.modules.values()}
    visible: list[Violation] = []
    suppressed = 0
    for finding in findings:
        module = by_path.get(finding.path)
        if module is not None and module.ctx.is_suppressed(
            finding.line, finding.rule_id
        ):
            suppressed += 1
        else:
            visible.append(finding)

    if baseline is not None:
        kept, baselined, stale = baseline.apply(visible)
    else:
        kept, baselined, stale = visible, [], []
    return CheckReport(
        findings=kept,
        baselined=baselined,
        stale_entries=stale,
        suppressed=suppressed,
        files=len(project.modules) + len(project.syntax_errors),
        checks=[analyzer.id for analyzer in analyzers],
    )


def write_trace_schema(
    paths: Iterable[str | Path],
    docs_dir: str | Path,
    *,
    project: Project | None = None,
) -> Path:
    """Regenerate ``docs/TRACE_SCHEMA.md`` from the code; returns the path."""
    if project is None:
        project = Project.load(paths)
    schema_path = Path(docs_dir) / "TRACE_SCHEMA.md"
    schema_path.write_text(render_schema_md(build_schema(project)))
    return schema_path


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def describe_checks() -> str:
    """One line per check id, grouped by analyzer (``--list-checks``)."""
    lines = []
    for analyzer in ANALYZERS.all():
        lines.append(f"{analyzer.id}: {analyzer.description}")
        for check_id in analyzer.check_ids:
            lines.append(f"  {check_id}")
    return "\n".join(lines)


def format_report_text(report: CheckReport) -> str:
    lines = [finding.render() for finding in report.findings]
    for entry in report.stale_entries:
        lines.append(
            f"stale baseline entry: rule={entry.rule} path={entry.path}"
            + (f" match={entry.match!r}" if entry.match else "")
            + " matched no finding; remove it"
        )
    noun = "finding" if len(report.findings) == 1 else "findings"
    baselined = f"{len(report.baselined)} baselined, " if report.baselined else ""
    lines.append(
        f"{len(report.findings)} {noun} "
        f"({baselined}{report.suppressed} suppressed, {report.files} files, "
        f"checks: {', '.join(report.checks)})"
    )
    return "\n".join(lines)


def format_report_json(report: CheckReport) -> str:
    def encode(violation: Violation) -> dict:
        return {
            "path": violation.path,
            "line": violation.line,
            "col": violation.col,
            "rule": violation.rule_id,
            "message": violation.message,
        }

    return json.dumps(
        {
            "ok": report.ok,
            "findings": [encode(v) for v in report.findings],
            "baselined": [encode(v) for v in report.baselined],
            "stale_baseline_entries": [e.to_dict() for e in report.stale_entries],
            "suppressed": report.suppressed,
            "files": report.files,
            "checks": report.checks,
        },
        indent=2,
    )


def format_report_github(report: CheckReport) -> str:
    """GitHub Actions workflow-command annotations, one per finding."""

    def escape(text: str) -> str:
        return (
            text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
        )

    lines = [
        f"::error file={v.path},line={v.line},col={v.col},"
        f"title={v.rule_id}::{escape(v.message)}"
        for v in report.findings
    ]
    for entry in report.stale_entries:
        lines.append(
            f"::error title=stale-baseline::baseline entry rule={entry.rule} "
            f"path={entry.path} matched no finding; remove it"
        )
    return "\n".join(lines)
