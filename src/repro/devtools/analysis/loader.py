"""Project loader: one parse of the whole tree, shared by every analyzer.

``repro check`` is *whole-program*: the unit-dataflow pass follows a
call from ``harness/runner.py`` into a ``sim/link.py`` signature, the
race pass walks a call graph that crosses module boundaries, and the
layering pass needs every import edge at once.  So unlike the per-file
lint engine, the analyzers here share a single :class:`Project` — every
``.py`` file parsed once, plus a symbol table of modules, top-level
functions, classes (with dataclass fields), and resolved import
aliases.

Module names are derived structurally: walk up from each file while an
``__init__.py`` is present, so ``src/repro/sim/link.py`` loads as
``repro.sim.link`` and a test fixture tree ``fixtures/x/repro/sim/a.py``
loads as ``repro.sim.a`` — analyzers never special-case where a tree
happens to sit on disk.

Suppression reuses the lint engine's :class:`~repro.devtools.lint.base.
LintContext` (``# repro: noqa[check-id]`` and
``# repro: noqa-file[check-id]`` work identically for lint rules and
check analyzers).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ..lint.base import LintContext
from ..lint.engine import iter_python_files


@dataclass
class ModuleInfo:
    """One parsed source file plus its per-module symbol tables."""

    name: str  # dotted module name, e.g. "repro.sim.link"
    path: Path
    source: str
    tree: ast.Module
    ctx: LintContext
    # local alias -> absolute dotted target, e.g. {"Rng": "repro.core.rng.Rng"}
    imports: dict[str, str] = field(default_factory=dict)
    # names assigned at module scope (race analysis: the mutable-global set)
    global_names: set[str] = field(default_factory=set)
    # absolute dotted modules imported at module scope (layering edges),
    # mapped to the first import node for finding locations
    module_imports: dict[str, ast.stmt] = field(default_factory=dict)
    # subset of module_imports only ever imported under `if TYPE_CHECKING:`
    # (coupling, but invisible at runtime — exempt from cycle detection)
    typing_only: set[str] = field(default_factory=set)

    @property
    def is_package(self) -> bool:
        return self.path.name == "__init__.py"

    @property
    def package(self) -> str:
        """The package relative imports resolve against.

        A package's ``__init__.py`` is its own package (``from . import
        x`` in ``repro/apps/__init__.py`` means ``repro.apps.x``).
        """
        if self.is_package:
            return self.name
        return self.name.rpartition(".")[0]


@dataclass
class FunctionInfo:
    """A function or method, addressable by qualified name."""

    qname: str  # "repro.sim.link.Link.send"
    module: ModuleInfo
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: "ClassInfo | None" = None

    @property
    def name(self) -> str:
        return self.node.name

    def positional_params(self) -> list[str]:
        """Names fillable by position (``self``/``cls`` dropped for methods)."""
        args = self.node.args
        names = [a.arg for a in (*args.posonlyargs, *args.args)]
        if self.cls is not None and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names

    def all_param_names(self) -> list[str]:
        args = self.node.args
        return self.positional_params() + [a.arg for a in args.kwonlyargs]


@dataclass
class ClassInfo:
    """A class: methods, and (for dataclasses) the field-as-init-API view."""

    qname: str
    module: ModuleInfo
    node: ast.ClassDef
    is_dataclass: bool
    fields: list[str] = field(default_factory=list)  # annotated dataclass fields
    methods: dict[str, FunctionInfo] = field(default_factory=dict)

    def init_params(self) -> list[str]:
        """The constructor's positional parameter names."""
        init = self.methods.get("__init__")
        if init is not None:
            return init.positional_params()
        if self.is_dataclass:
            return list(self.fields)
        return []


def _is_dataclass_def(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", None)
        if name == "dataclass":
            return True
    return False


def module_name_for(path: Path) -> str:
    """Dotted module name from package structure (``__init__.py`` walk)."""
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


class Project:
    """Every module of the analyzed tree, parsed once, plus symbol tables."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.by_terminal: dict[str, list[FunctionInfo]] = {}
        self.syntax_errors: list[tuple[Path, SyntaxError]] = []

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, paths: Iterable[str | Path]) -> "Project":
        project = cls()
        for path in iter_python_files(paths):
            project.add_file(path)
        return project

    def add_file(self, path: Path) -> None:
        source = Path(path).read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            self.syntax_errors.append((Path(path), exc))
            return
        name = module_name_for(Path(path))
        if name in self.modules:
            # Two files mapping to one module name (e.g. twin fixture
            # trees): disambiguate so neither shadows the other.
            base, counter = name, 2
            while name in self.modules:
                name = f"{base}#{counter}"
                counter += 1
        module = ModuleInfo(
            name=name,
            path=Path(path),
            source=source,
            tree=tree,
            ctx=LintContext(Path(path), source, tree),
        )
        self.modules[name] = module
        self._index_module(module)

    # ------------------------------------------------------------------
    def _index_module(self, module: ModuleInfo) -> None:
        for stmt in module.tree.body:
            self._index_stmt(module, stmt, top_level=True)

    def _index_stmt(
        self,
        module: ModuleInfo,
        stmt: ast.stmt,
        top_level: bool,
        typing_only: bool = False,
    ) -> None:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            self._index_import(module, stmt, typing_only)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and top_level:
            self._add_function(module, stmt, cls=None)
        elif isinstance(stmt, ast.ClassDef) and top_level:
            self._add_class(module, stmt)
        elif top_level and isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            for target in _assign_targets(stmt):
                module.global_names.add(target)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # Imports under `if TYPE_CHECKING:` / try-except fallbacks are
            # still module-scope edges; nested defs there are rare enough
            # to ignore.
            guarded = typing_only or _is_type_checking_test(stmt)
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._index_stmt(
                        module, child, top_level=False, typing_only=guarded
                    )

    def _index_import(
        self,
        module: ModuleInfo,
        stmt: ast.Import | ast.ImportFrom,
        typing_only: bool = False,
    ) -> None:
        def record(target: str) -> None:
            first_time = target not in module.module_imports
            module.module_imports.setdefault(target, stmt)
            if typing_only:
                if first_time:
                    module.typing_only.add(target)
            else:
                module.typing_only.discard(target)

        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                module.imports[local] = target
                record(alias.name)
        else:
            base = self._resolve_from_base(module, stmt)
            if base is None:
                return
            record(base)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.imports[local] = f"{base}.{alias.name}" if base else alias.name

    @staticmethod
    def _resolve_from_base(module: ModuleInfo, stmt: ast.ImportFrom) -> str | None:
        """Absolute dotted base of a ``from X import ...`` statement."""
        if stmt.level == 0:
            return stmt.module or None
        # Relative import: climb from the containing package.
        package_parts = module.package.split(".") if module.package else []
        climb = stmt.level - 1
        if climb > len(package_parts):
            return None
        base_parts = package_parts[: len(package_parts) - climb]
        if stmt.module:
            base_parts.append(stmt.module)
        return ".".join(base_parts) if base_parts else None

    def _add_function(
        self,
        module: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: ClassInfo | None,
    ) -> FunctionInfo:
        owner = cls.qname if cls is not None else module.name
        info = FunctionInfo(qname=f"{owner}.{node.name}", module=module, node=node, cls=cls)
        self.functions[info.qname] = info
        self.by_terminal.setdefault(node.name, []).append(info)
        return info

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        info = ClassInfo(
            qname=f"{module.name}.{node.name}",
            module=module,
            node=node,
            is_dataclass=_is_dataclass_def(node),
        )
        self.classes[info.qname] = info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = self._add_function(module, stmt, cls=info)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if info.is_dataclass and not stmt.target.id.startswith("_"):
                    info.fields.append(stmt.target.id)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def expand_alias(self, module: ModuleInfo, dotted: str) -> str:
        """Rewrite a local dotted path through the module's import aliases."""
        head, _, rest = dotted.partition(".")
        target = module.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def resolve_callable(
        self, module: ModuleInfo, func: ast.AST
    ) -> FunctionInfo | ClassInfo | None:
        """Best-effort resolution of a call's target.

        Handles direct names (same module or imported), dotted module
        attributes, and constructors.  ``self.method`` is resolved by the
        analyzers that track a class context; unresolvable calls return
        None (analyzers must stay silent rather than guess).
        """
        dotted = _dotted_name(func)
        if dotted is None:
            return None
        absolute = self.expand_alias(module, dotted)
        for candidate in (absolute, f"{module.name}.{dotted}"):
            if candidate in self.functions:
                return self.functions[candidate]
            if candidate in self.classes:
                return self.classes[candidate]
        return None


def _is_type_checking_test(stmt: ast.stmt) -> bool:
    test = getattr(stmt, "test", None)
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _dotted_name(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _assign_targets(stmt: ast.stmt) -> list[str]:
    names: list[str] = []
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    else:
        return names
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(el.id for el in target.elts if isinstance(el, ast.Name))
    return names
