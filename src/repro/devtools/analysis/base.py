"""Analyzer framework for ``repro check``: findings, registry, baseline.

Findings reuse the lint engine's :class:`~repro.devtools.lint.base.
Violation` shape (path/line/col/rule/message) so suppression, sorting and
text/JSON rendering are shared, and each analyzer declares the check ids
it can emit (``repro check --list-checks``).

The **baseline** is the incremental-adoption valve: a committed JSON
file of *justified* exceptions.  A finding is baselined when an entry's
``rule`` matches, its ``path`` suffix-matches the finding's path, and
its ``match`` string (if any) occurs in the message.  Baselined findings
don't fail the build; entries that match nothing are reported as stale
so the file can only shrink honestly.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from ..lint.base import Violation
from .loader import ModuleInfo, Project


class Analyzer:
    """Base class: one whole-program pass over a loaded :class:`Project`."""

    id: str = ""
    description: str = ""
    check_ids: tuple[str, ...] = ()

    def analyze(self, project: Project) -> Iterator[Violation]:
        raise NotImplementedError  # pragma: no cover - abstract

    @staticmethod
    def finding(
        module: ModuleInfo, node: ast.AST, check_id: str, message: str
    ) -> Violation:
        return Violation(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=check_id,
            message=message,
        )


class AnalyzerRegistry:
    def __init__(self) -> None:
        self.analyzers: dict[str, Analyzer] = {}

    def register(self, analyzer_cls: type[Analyzer]) -> type[Analyzer]:
        analyzer = analyzer_cls()
        if not analyzer.id:
            raise ValueError(f"analyzer {analyzer_cls.__name__} has no id")
        if analyzer.id in self.analyzers:
            raise ValueError(f"duplicate analyzer id {analyzer.id}")
        self.analyzers[analyzer.id] = analyzer
        return analyzer_cls

    def all(self) -> list[Analyzer]:
        return [self.analyzers[key] for key in sorted(self.analyzers)]

    def select(self, ids: Sequence[str] | None) -> list[Analyzer]:
        if ids is None:
            return self.all()
        return [self.analyzers[analyzer_id] for analyzer_id in ids]


ANALYZERS = AnalyzerRegistry()
register_analyzer = ANALYZERS.register


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BaselineEntry:
    """One justified exception: which findings it covers, and why."""

    rule: str
    path: str
    reason: str
    match: str = ""

    def covers(self, finding: Violation) -> bool:
        if finding.rule_id != self.rule:
            return False
        normalized = finding.path.replace("\\", "/")
        if not (normalized == self.path or normalized.endswith("/" + self.path)):
            return False
        return self.match in finding.message

    def to_dict(self) -> dict:
        record = {"rule": self.rule, "path": self.path, "reason": self.reason}
        if self.match:
            record["match"] = self.match
        return record


@dataclass
class Baseline:
    """The committed exception list plus bookkeeping from one filter run."""

    entries: list[BaselineEntry] = field(default_factory=list)
    path: Path | None = None

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        data = json.loads(path.read_text())
        entries = [
            BaselineEntry(
                rule=entry["rule"],
                path=entry["path"],
                reason=entry.get("reason", ""),
                match=entry.get("match", ""),
            )
            for entry in data.get("entries", [])
        ]
        return cls(entries=entries, path=path)

    def apply(
        self, findings: Sequence[Violation]
    ) -> tuple[list[Violation], list[Violation], list[BaselineEntry]]:
        """Split ``findings`` into (kept, baselined); also stale entries."""
        kept: list[Violation] = []
        baselined: list[Violation] = []
        used: set[BaselineEntry] = set()
        for finding in findings:
            entry = next((e for e in self.entries if e.covers(finding)), None)
            if entry is None:
                kept.append(finding)
            else:
                baselined.append(finding)
                used.add(entry)
        stale = [entry for entry in self.entries if entry not in used]
        return kept, baselined, stale

    def write(self, path: str | Path) -> None:
        payload = {
            "_comment": (
                "repro check baseline: justified exceptions only. Each entry "
                "suppresses findings of `rule` in files whose path ends with "
                "`path` and whose message contains `match`. Keep `reason` "
                "honest - stale entries fail the gate."
            ),
            "entries": [entry.to_dict() for entry in self.entries],
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")

    @classmethod
    def from_findings(cls, findings: Sequence[Violation]) -> "Baseline":
        """Seed a baseline covering ``findings`` (reasons left to edit)."""
        entries: list[BaselineEntry] = []
        seen: set[tuple[str, str]] = set()
        for finding in findings:
            key = (finding.rule_id, finding.path.replace("\\", "/"))
            if key in seen:
                continue
            seen.add(key)
            entries.append(
                BaselineEntry(
                    rule=finding.rule_id,
                    path=key[1],
                    reason="TODO: justify this exception",
                )
            )
        return cls(entries=entries)
