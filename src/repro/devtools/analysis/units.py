"""Unit dataflow analysis over the ``_s/_ms/_bps/_bytes`` convention.

The repo's defence against seconds-vs-milliseconds (and Mbps-vs-bps,
bytes-vs-bits) bugs is a naming convention: every quantity says its unit
in its suffix.  The ``unit-suffix`` lint rule enforces that the names
exist; this analyzer makes the names *mean something* by propagating
units through expressions and flagging places where two different units
meet.

Model: a unit is a **dimension vector** (time, data, packets — data
measured in bits) plus a **scale** relative to the canonical unit
(seconds / bits / packets).  ``_ms`` is time at 1e-3; ``_bytes`` is
data at 8; ``_mbps`` is data/time at 1e6.  Propagation rules:

* multiplying or dividing by a numeric *literal* keeps the dimension
  but forgets the scale — ``rtt_s * 1e3`` is still *time*, at an
  unknown scale, so assigning it to ``rtt_ms`` is fine while adding it
  to ``x_bytes`` is not.  Multiplying by an *unknown* expression (an
  unsuffixed name) yields unknown: the expression may well carry a unit
  the analyzer cannot see, so claiming a dimension would be unsound;
* multiplying/dividing two known units combines dimensions
  (``rate_bps * dur_s`` → data, ``size_bytes / rate_bps`` → time);
  packet counts act as dimensionless counts under × and ÷;
* addition, subtraction, comparison and assignment require units to
  agree: different dimensions always clash, equal dimensions clash when
  both scales are known and differ (``_ms`` vs ``_s``).

Call sites are checked across module boundaries: a keyword argument
whose name carries a suffix must receive a matching value, and
positional arguments are matched against the callee's parameter names
via the project symbol table (functions, methods, dataclass
constructors).

Check ids: ``unit-mismatch`` (arithmetic/comparison/assignment/return),
``unit-call-mismatch`` (call sites).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator

from ..lint.base import Violation
from .base import Analyzer, register_analyzer
from .loader import ClassInfo, FunctionInfo, ModuleInfo, Project

Dim = tuple[int, int, int]  # exponents of (time, data[bits], packets)

_TIME: Dim = (1, 0, 0)
_DATA: Dim = (0, 1, 0)
_PKTS: Dim = (0, 0, 1)
_RATE: Dim = (-1, 1, 0)
_FREQ: Dim = (-1, 0, 0)


@dataclass(frozen=True)
class Unit:
    dim: Dim
    scale: float | None  # relative to s / bits / pkts; None = unknown
    label: str  # for messages: "_ms", "_bytes", "derived"


SUFFIX_UNITS: dict[str, Unit] = {
    "s": Unit(_TIME, 1.0, "_s"),
    "ms": Unit(_TIME, 1e-3, "_ms"),
    "us": Unit(_TIME, 1e-6, "_us"),
    "ns": Unit(_TIME, 1e-9, "_ns"),
    "bps": Unit(_RATE, 1.0, "_bps"),
    "kbps": Unit(_RATE, 1e3, "_kbps"),
    "mbps": Unit(_RATE, 1e6, "_mbps"),
    "gbps": Unit(_RATE, 1e9, "_gbps"),
    "bytes": Unit(_DATA, 8.0, "_bytes"),
    "kb": Unit(_DATA, 8e3, "_kb"),
    "mb": Unit(_DATA, 8e6, "_mb"),
    "pkts": Unit(_PKTS, 1.0, "_pkts"),
    "hz": Unit(_FREQ, 1.0, "_hz"),
}

_SUFFIX_RE = re.compile(r"_(%s)$" % "|".join(SUFFIX_UNITS))

_DIM_NAMES = {
    _TIME: "time",
    _DATA: "data",
    _PKTS: "packets",
    _RATE: "rate",
    _FREQ: "frequency",
}


def unit_of_name(name: str) -> Unit | None:
    match = _SUFFIX_RE.search(name)
    if match is None:
        return None
    return SUFFIX_UNITS[match.group(1)]


def describe(unit: Unit) -> str:
    if unit.label != "derived":
        return unit.label
    return _DIM_NAMES.get(unit.dim, f"dim{unit.dim}")


def clash(a: Unit, b: Unit) -> str | None:
    """Why ``a`` and ``b`` cannot meet in +/-/compare, or None if they can."""
    if a.dim != b.dim:
        return (
            f"incompatible dimensions ({describe(a)} vs {describe(b)})"
        )
    if a.scale is not None and b.scale is not None and a.scale != b.scale:
        return f"same dimension, different units ({describe(a)} vs {describe(b)})"
    return None


def _drop_pkts(unit: Unit) -> tuple[Dim, bool]:
    """Packet counts act as plain counts under × and ÷."""
    t, d, p = unit.dim
    return (t, d, 0), p != 0


def _combine(a: Unit, b: Unit, sign: int) -> Unit | None:
    """Unit of ``a * b`` (sign=+1) or ``a / b`` (sign=-1)."""
    dim_a, a_had_pkts = _drop_pkts(a)
    dim_b, b_had_pkts = _drop_pkts(b)
    dim = tuple(x + sign * y for x, y in zip(dim_a, dim_b))
    if dim == (0, 0, 0):
        return None  # dimensionless result: no longer tracked
    if a.scale is None or b.scale is None or a_had_pkts or b_had_pkts:
        scale = None
    else:
        scale = a.scale * b.scale if sign > 0 else a.scale / b.scale
    return Unit(dim, scale, "derived")  # type: ignore[arg-type]


def _scaled_unknown(unit: Unit) -> Unit:
    """Unit after × or ÷ with a unitless value: dimension kept, scale lost."""
    return Unit(unit.dim, None, "derived")


def _is_numeric_literal(node: ast.AST) -> bool:
    """Literal numeric expression: provably unitless (``8.0``, ``-1e3``)."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(
            node.value, bool
        )
    if isinstance(node, ast.UnaryOp):
        return _is_numeric_literal(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_numeric_literal(node.left) and _is_numeric_literal(node.right)
    return False


_UNIFYING_CALLS = frozenset({"min", "max", "abs", "sum", "sorted", "round"})


class _FunctionChecker:
    """Infers units through one function (or module) body, in source order."""

    def __init__(self, analyzer: "UnitDataflow", project: Project, module: ModuleInfo,
                 cls: ClassInfo | None = None):
        self.analyzer = analyzer
        self.project = project
        self.module = module
        self.cls = cls
        self.env: dict[str, Unit] = {}
        self.findings: list[Violation] = []

    # ------------------------------------------------------------------
    def check_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            unit = unit_of_name(arg.arg)
            if unit is not None:
                self.env[arg.arg] = unit
        self.return_unit = unit_of_name(node.name)
        self.return_name = node.name
        for stmt in node.body:
            self._stmt(stmt)

    def check_module_body(self, tree: ast.Module) -> None:
        self.return_unit = None
        self.return_name = ""
        for stmt in tree.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self._stmt(stmt)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs get their own checker
        if isinstance(stmt, ast.Assign):
            unit = self.infer(stmt.value)
            for target in stmt.targets:
                self._bind(target, unit, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.infer(stmt.value), stmt)
        elif isinstance(stmt, ast.AugAssign):
            value_unit = self.infer(stmt.value)
            target_unit = self._target_unit(stmt.target)
            if (
                isinstance(stmt.op, (ast.Add, ast.Sub))
                and value_unit is not None
                and target_unit is not None
            ):
                why = clash(target_unit, value_unit)
                if why is not None:
                    self._flag(
                        stmt,
                        "unit-mismatch",
                        f"augmented assignment to {self._show(stmt.target)} "
                        f"mixes units: {why}",
                    )
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                unit = self.infer(stmt.value)
                if unit is not None and self.return_unit is not None:
                    why = clash(self.return_unit, unit)
                    if why is not None:
                        self._flag(
                            stmt,
                            "unit-mismatch",
                            f"'{self.return_name}()' declares "
                            f"{describe(self.return_unit)} by its name but "
                            f"returns a mismatched value: {why}",
                        )
        elif isinstance(stmt, ast.Expr):
            self.infer(stmt.value)
        else:
            # Compound statements: walk nested statements in order and
            # infer over the controlling expressions for their call/compare
            # checks.
            for expr in _control_exprs(stmt):
                self.infer(expr)
            for body in _nested_bodies(stmt):
                for inner in body:
                    self._stmt(inner)

    def _bind(self, target: ast.AST, unit: Unit | None, stmt: ast.stmt) -> None:
        declared = self._target_unit(target)
        if declared is not None and unit is not None:
            why = clash(declared, unit)
            if why is not None:
                self._flag(
                    stmt,
                    "unit-mismatch",
                    f"assignment to {self._show(target)} mixes units: {why}",
                )
        if isinstance(target, ast.Name):
            if declared is not None:
                self.env[target.id] = declared
            elif unit is not None:
                self.env[target.id] = unit
            else:
                self.env.pop(target.id, None)

    @staticmethod
    def _target_unit(target: ast.AST) -> Unit | None:
        if isinstance(target, ast.Name):
            return unit_of_name(target.id)
        if isinstance(target, ast.Attribute):
            return unit_of_name(target.attr)
        return None

    # ------------------------------------------------------------------
    # Expression inference (with checks as a side effect)
    # ------------------------------------------------------------------
    def infer(self, node: ast.AST) -> Unit | None:
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return unit_of_name(node.id)
        if isinstance(node, ast.Attribute):
            self.infer(node.value)
            return unit_of_name(node.attr)
        if isinstance(node, ast.Subscript):
            self.infer(node.slice)
            # Elements of `samples_s[...]` carry the collection's unit.
            return self.infer(node.value)
        if isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.Compare):
            self._check_compare(node)
            return None
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.IfExp):
            self.infer(node.test)
            left = self.infer(node.body)
            right = self.infer(node.orelse)
            if left is not None and right is not None and clash(left, right) is None:
                return left
            return None
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.infer(value)
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for el in node.elts:
                self.infer(el)
            return None
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self.infer(key)
            for value in node.values:
                self.infer(value)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self.infer(node.elt)
            return None
        if isinstance(node, ast.Starred):
            return self.infer(node.value)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.infer(value.value)
            return None
        return None

    def _infer_binop(self, node: ast.BinOp) -> Unit | None:
        left = self.infer(node.left)
        right = self.infer(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left is not None and right is not None:
                why = clash(left, right)
                if why is not None:
                    op = "+" if isinstance(node.op, ast.Add) else "-"
                    self._flag(
                        node,
                        "unit-mismatch",
                        f"'{self._show(node.left)} {op} {self._show(node.right)}' "
                        f"mixes units: {why}",
                    )
                    return None
                scale = left.scale if left.scale is not None else right.scale
                return Unit(left.dim, scale, left.label)
            return left if left is not None else right
        if isinstance(node.op, ast.Mult):
            if left is not None and right is not None:
                return _combine(left, right, +1)
            if left is not None and _is_numeric_literal(node.right):
                return _scaled_unknown(left)
            if right is not None and _is_numeric_literal(node.left):
                return _scaled_unknown(right)
            return None  # known x unknown expr: dimension unknowable
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if left is not None and right is not None:
                return _combine(left, right, -1)
            if left is not None and _is_numeric_literal(node.right):
                return _scaled_unknown(left)
            return None  # an unknown operand: dimension unknowable
        if isinstance(node.op, ast.Mod):
            return left
        return None

    def _check_compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        units = [self.infer(op) for op in operands]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)):
                continue
            left, right = units[i], units[i + 1]
            if left is None or right is None:
                continue
            why = clash(left, right)
            if why is not None:
                self._flag(
                    node,
                    "unit-mismatch",
                    f"comparison '{self._show(operands[i])}' vs "
                    f"'{self._show(operands[i + 1])}' mixes units: {why}",
                )

    # ------------------------------------------------------------------
    # Call sites
    # ------------------------------------------------------------------
    def _infer_call(self, node: ast.Call) -> Unit | None:
        arg_units = [self.infer(arg) for arg in node.args]
        kw_units = {
            kw.arg: self.infer(kw.value) for kw in node.keywords if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:
                self.infer(kw.value)

        func_name = _terminal(node.func)

        # Keyword arguments: the keyword's own suffix declares the unit.
        for kw in node.keywords:
            if kw.arg is None:
                continue
            declared = unit_of_name(kw.arg)
            value_unit = kw_units.get(kw.arg)
            if declared is None or value_unit is None:
                continue
            why = clash(declared, value_unit)
            if why is not None:
                shown = func_name or "call"
                self._flag(
                    kw.value,
                    "unit-call-mismatch",
                    f"keyword '{kw.arg}' of '{shown}()' receives a "
                    f"mismatched value ('{self._show(kw.value)}'): {why}",
                )

        # Positional arguments: resolve the callee's parameter names.
        params = self._callee_params(node)
        if params is not None:
            callee_label, names = params
            for index, (arg, unit) in enumerate(zip(node.args, arg_units)):
                if isinstance(arg, ast.Starred) or index >= len(names):
                    break
                declared = unit_of_name(names[index])
                if declared is None or unit is None:
                    continue
                why = clash(declared, unit)
                if why is not None:
                    self._flag(
                        arg,
                        "unit-call-mismatch",
                        f"argument {index + 1} of '{callee_label}()' fills "
                        f"parameter '{names[index]}' with a mismatched value "
                        f"('{self._show(arg)}'): {why}",
                    )

        # Return unit: unify-style builtins pass units through; otherwise
        # the callee's name suffix declares it.
        if func_name in _UNIFYING_CALLS:
            known = [u for u in arg_units if u is not None]
            if not known:
                return None
            mismatch = next(
                (clash(known[0], u) for u in known[1:] if clash(known[0], u)), None
            )
            if mismatch is not None:
                self._flag(
                    node,
                    "unit-mismatch",
                    f"'{func_name}()' arguments mix units: {mismatch}",
                )
                return None
            return known[0]
        if func_name is not None:
            return unit_of_name(func_name)
        return None

    def _callee_params(self, node: ast.Call) -> tuple[str, list[str]] | None:
        func = node.func
        # self.method / cls.method within a class body.
        if (
            self.cls is not None
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
        ):
            method = self.cls.methods.get(func.attr)
            if method is not None:
                return func.attr, method.positional_params()
            return None
        resolved = self.project.resolve_callable(self.module, func)
        if isinstance(resolved, FunctionInfo):
            return resolved.name, resolved.positional_params()
        if isinstance(resolved, ClassInfo):
            return resolved.node.name, resolved.init_params()
        return None

    # ------------------------------------------------------------------
    def _flag(self, node: ast.AST, check_id: str, message: str) -> None:
        self.findings.append(
            Analyzer.finding(self.module, node, check_id, message)
        )

    @staticmethod
    def _show(node: ast.AST) -> str:
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            return "<expr>"
        return text if len(text) <= 40 else text[:37] + "..."


def _control_exprs(stmt: ast.stmt) -> list[ast.expr]:
    exprs: list[ast.expr] = []
    if isinstance(stmt, (ast.If, ast.While)):
        exprs.append(stmt.test)
    elif isinstance(stmt, ast.For):
        exprs.append(stmt.iter)
    elif isinstance(stmt, ast.With):
        exprs.extend(item.context_expr for item in stmt.items)
    elif isinstance(stmt, ast.Assert):
        exprs.append(stmt.test)
    elif isinstance(stmt, ast.Raise) and stmt.exc is not None:
        exprs.append(stmt.exc)
    return exprs


def _nested_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies: list[list[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            bodies.append(block)
    for handler in getattr(stmt, "handlers", []):
        bodies.append(handler.body)
    return bodies


def _terminal(node: ast.AST) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@register_analyzer
class UnitDataflow(Analyzer):
    id = "units"
    description = (
        "propagate _s/_ms/_bps/_bytes suffix units through expressions and "
        "call sites; flag mixed-unit arithmetic, comparisons and arguments"
    )
    check_ids = ("unit-mismatch", "unit-call-mismatch")

    def analyze(self, project: Project) -> Iterator[Violation]:
        for module in project.modules.values():
            checker = _FunctionChecker(self, project, module)
            checker.check_module_body(module.tree)
            yield from checker.findings
        for info in project.functions.values():
            checker = _FunctionChecker(self, project, info.module, cls=info.cls)
            checker.check_function(info.node)
            yield from checker.findings
