"""Developer tooling for the reproduction.

``repro.devtools`` hosts tooling that keeps the simulator trustworthy
rather than code that runs inside simulations:

* :mod:`repro.devtools.lint` — an AST-based static analyzer with
  repo-specific determinism and unit-safety rules, exposed as the
  ``repro lint`` CLI subcommand;
* :mod:`repro.devtools.determinism` — trace fingerprinting used by the
  determinism regression gate in the test suite.

The runtime counterpart (invariant checking while a simulation runs)
lives in :mod:`repro.sim.invariants` so the simulator package stays
self-contained.
"""

from .determinism import stats_digest, trace_digest
from .lint import LintEngine, Violation, lint_paths

__all__ = [
    "LintEngine",
    "Violation",
    "lint_paths",
    "stats_digest",
    "trace_digest",
]
