"""Trace fingerprinting for the determinism regression gate.

Two runs of the simulator with the same seed must be *bit-identical*:
same ACK times, same RTT samples, same loss times, same delivered byte
counts.  These helpers reduce a run's :class:`~repro.sim.trace.FlowStats`
records to a digest so tests can assert trace-level equality without
storing full traces.

Float values are fed to the hash via ``float.hex()`` — exact
representation, no rounding — so the gate catches even one-ULP drift.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from ..sim.trace import FlowStats


def _feed_floats(hasher, values: Iterable[float]) -> None:
    for value in values:
        hasher.update(float(value).hex().encode())
        hasher.update(b";")


def trace_digest(stats: FlowStats) -> str:
    """Hex digest of one flow's full measurement record."""
    hasher = hashlib.sha256()
    hasher.update(f"flow:{stats.flow_id}".encode())
    hasher.update(
        f"|sent:{stats.packets_sent}|delivered:{stats.delivered_bytes}"
        f"|acked:{stats.total_acked_bytes}".encode()
    )
    for label, series in (
        ("ack_times", stats.ack_times),
        ("rtts", stats.rtts),
        ("loss_times", stats.loss_times),
    ):
        hasher.update(f"|{label}:".encode())
        _feed_floats(hasher, series)
    hasher.update(b"|acked_bytes:")
    for nbytes in stats.acked_bytes:
        hasher.update(f"{nbytes};".encode())
    return hasher.hexdigest()


def stats_digest(stats_list: Iterable[FlowStats]) -> str:
    """Hex digest of a whole run (order-sensitive across flows)."""
    hasher = hashlib.sha256()
    for stats in stats_list:
        hasher.update(trace_digest(stats).encode())
        hasher.update(b"\n")
    return hasher.hexdigest()
