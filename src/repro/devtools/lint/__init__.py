"""AST-based static analyzer with repo-specific determinism rules.

Run it as ``repro lint [paths...]`` (defaults to ``src``); it exits
non-zero when any violation is found.  Rules (see
``docs/DEVTOOLS.md``):

* ``no-bare-random`` — stochastic draws must come from an injected
  :class:`repro.sim.rng.Rng`;
* ``no-wallclock`` — no host-clock reads in ``sim/``, ``core/``,
  ``protocols/``;
* ``no-float-eq`` — no exact equality on simulated-time/rate floats;
* ``unit-suffix`` — public rate/time parameters in ``core/`` and
  ``sim/`` carry unit suffixes;
* ``mutable-default-arg`` — no mutable default argument values.

Suppress a single line with ``# repro: noqa[rule-id]``.
"""

from .base import REGISTRY, LintContext, Rule, RuleRegistry, Violation, register
from .engine import (
    LintEngine,
    describe_rules,
    format_json,
    format_text,
    iter_python_files,
    lint_paths,
)

# Importing the module registers the built-in rules with REGISTRY.
from . import rules as _rules  # noqa: F401

__all__ = [
    "LintContext",
    "LintEngine",
    "REGISTRY",
    "Rule",
    "RuleRegistry",
    "Violation",
    "describe_rules",
    "format_json",
    "format_text",
    "iter_python_files",
    "lint_paths",
    "register",
]
