"""Lint framework: violations, per-file context, rule base and registry.

Rules are small classes that inspect AST nodes.  The engine walks each
file's tree exactly once and dispatches every node to the rules
registered for that node's type, so adding a rule never adds a tree
traversal.  Suppression is line-scoped via ``# repro: noqa[rule-id]``
(or a blanket ``# repro: noqa``) on the flagged line, or file-scoped
via ``# repro: noqa-file[rule-id]`` anywhere in the file.  File-level
suppression always names explicit rule ids — there is deliberately no
blanket ``noqa-file``.  Both forms are shared by ``repro lint`` and the
``repro check`` analyzers.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

# The lookahead keeps a `noqa-file[...]` marker from doubling as a
# blanket line-level `noqa` on its own line.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?!-file)(?:\[([A-Za-z0-9_,\s\-]+)\])?")
_NOQA_FILE_RE = re.compile(r"#\s*repro:\s*noqa-file\[([A-Za-z0-9_,\s\-]+)\]")

ALL_RULES = "*"
"""Sentinel stored in a noqa map entry for a blanket suppression."""


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: where, which rule, and why."""

    path: str
    line: int  # 1-based
    col: int  # 1-based
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


class LintContext:
    """Per-file state handed to every rule."""

    def __init__(self, path: Path, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.parts = tuple(part for part in path.parts if part not in (".", ".."))
        self._noqa: dict[int, set[str]] | None = None
        self._noqa_file: set[str] | None = None

    def in_package(self, *names: str) -> bool:
        """True when the file lives under any of the named directories."""
        return any(name in self.parts[:-1] for name in names)

    def is_file(self, *tail: str) -> bool:
        """True when the file path ends with the given components."""
        return self.parts[-len(tail):] == tail

    # ------------------------------------------------------------------
    def noqa_map(self) -> dict[int, set[str]]:
        """Line number -> suppressed rule ids (or ``ALL_RULES``)."""
        if self._noqa is None:
            mapping: dict[int, set[str]] = {}
            for lineno, line in enumerate(self.source.splitlines(), start=1):
                match = _NOQA_RE.search(line)
                if match is None:
                    continue
                ids = match.group(1)
                if ids is None:
                    mapping[lineno] = {ALL_RULES}
                else:
                    mapping[lineno] = {
                        part.strip() for part in ids.split(",") if part.strip()
                    }
            self._noqa = mapping
        return self._noqa

    def file_suppressions(self) -> set[str]:
        """Rule ids suppressed file-wide via ``# repro: noqa-file[...]``."""
        if self._noqa_file is None:
            ids: set[str] = set()
            for line in self.source.splitlines():
                match = _NOQA_FILE_RE.search(line)
                if match is not None:
                    ids.update(
                        part.strip()
                        for part in match.group(1).split(",")
                        if part.strip()
                    )
            self._noqa_file = ids
        return self._noqa_file

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        if rule_id in self.file_suppressions():
            return True
        suppressed = self.noqa_map().get(line)
        if suppressed is None:
            return False
        return ALL_RULES in suppressed or rule_id in suppressed


class Rule:
    """Base class for lint rules.

    Subclasses set the metadata class attributes, declare the AST node
    types they want to see in ``node_types``, and implement
    :meth:`visit`, yielding ``(node, message)`` pairs for violations.
    ``applies_to`` scopes a rule to parts of the tree (e.g. only
    ``sim/`` and ``core/``).
    """

    id: str = ""
    name: str = ""
    description: str = ""
    node_types: tuple[type[ast.AST], ...] = ()

    def applies_to(self, ctx: LintContext) -> bool:
        return True

    def visit(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterator[tuple[ast.AST, str]]:
        raise NotImplementedError  # pragma: no cover - abstract

    def make_violation(self, ctx: LintContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            message=message,
        )


@dataclass
class RuleRegistry:
    """Keeps the rule set; rules self-register via :meth:`register`."""

    rules: dict[str, Rule] = field(default_factory=dict)

    def register(self, rule_cls: type[Rule]) -> type[Rule]:
        rule = rule_cls()
        if not rule.id:
            raise ValueError(f"rule {rule_cls.__name__} has no id")
        if rule.id in self.rules:
            raise ValueError(f"duplicate rule id {rule.id}")
        self.rules[rule.id] = rule
        return rule_cls

    def all(self) -> list[Rule]:
        return [self.rules[key] for key in sorted(self.rules)]

    def get(self, rule_id: str) -> Rule:
        return self.rules[rule_id]

    def select(self, rule_ids: Iterable[str] | None) -> list[Rule]:
        if rule_ids is None:
            return self.all()
        return [self.rules[rule_id] for rule_id in rule_ids]


REGISTRY = RuleRegistry()
register = REGISTRY.register
