"""Lint engine: file discovery, single-pass AST dispatch, reporting."""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterable, Sequence

from .base import REGISTRY, LintContext, Rule, Violation

SYNTAX_ERROR_RULE = "syntax-error"


#: Directory names skipped when expanding a directory argument.  Fixture
#: corpora are deliberate rule violations — linting/checking a whole test
#: tree must not trip over them.  Naming a file (or a fixtures dir)
#: directly still works: the skip only applies during expansion.
SKIP_DIR_NAMES = frozenset({"fixtures", "__pycache__"})


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.update(
                candidate
                for candidate in path.rglob("*.py")
                if not SKIP_DIR_NAMES
                & set(candidate.relative_to(path).parts[:-1])
            )
        elif path.suffix == ".py":
            found.add(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return sorted(found)


class LintEngine:
    """Runs a rule set over files.

    The tree of each file is walked exactly once; every node is
    dispatched to the rules registered for its type.  Violations on
    lines carrying a matching ``# repro: noqa[...]`` comment are
    dropped.
    """

    def __init__(self, rules: Sequence[Rule | str] | None = None):
        if rules is None:
            self.rules: list[Rule] = REGISTRY.all()
        else:
            self.rules = [
                REGISTRY.get(rule) if isinstance(rule, str) else rule
                for rule in rules
            ]

    # ------------------------------------------------------------------
    def lint_source(self, source: str, path: str | Path) -> list[Violation]:
        """Lint one in-memory source blob (used by tests and fixtures)."""
        path = Path(path)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [
                Violation(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    rule_id=SYNTAX_ERROR_RULE,
                    message=f"cannot parse: {exc.msg}",
                )
            ]
        ctx = LintContext(path, source, tree)
        active = [rule for rule in self.rules if rule.applies_to(ctx)]
        if not active:
            return []
        dispatch: dict[type[ast.AST], list[Rule]] = {}
        for rule in active:
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)
        violations: list[Violation] = []
        for node in ast.walk(tree):
            for rule in dispatch.get(type(node), ()):
                for flagged, message in rule.visit(node, ctx):
                    violation = rule.make_violation(ctx, flagged, message)
                    if not ctx.is_suppressed(violation.line, rule.id):
                        violations.append(violation)
        violations.sort()
        return violations

    def lint_file(self, path: str | Path) -> list[Violation]:
        return self.lint_source(Path(path).read_text(), path)

    def lint_paths(self, paths: Iterable[str | Path]) -> list[Violation]:
        violations: list[Violation] = []
        for path in iter_python_files(paths):
            violations.extend(self.lint_file(path))
        return violations


def lint_paths(
    paths: Iterable[str | Path], rules: Sequence[Rule] | None = None
) -> list[Violation]:
    """Convenience wrapper: lint ``paths`` with ``rules`` (default: all)."""
    return LintEngine(rules).lint_paths(paths)


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def format_text(violations: Sequence[Violation]) -> str:
    lines = [violation.render() for violation in violations]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(f"{len(violations)} {noun}")
    return "\n".join(lines)


def format_json(violations: Sequence[Violation]) -> str:
    return json.dumps(
        [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule_id,
                "message": v.message,
            }
            for v in violations
        ],
        indent=2,
    )


def describe_rules(rules: Sequence[Rule] | None = None) -> str:
    """One line per rule, for ``repro lint --list-rules``."""
    rules = list(rules) if rules is not None else REGISTRY.all()
    width = max(len(rule.id) for rule in rules)
    return "\n".join(f"{rule.id:<{width}}  {rule.description}" for rule in rules)
