"""Repo-specific lint rules.

Each rule encodes a determinism or unit-safety convention of this
codebase; `docs/DEVTOOLS.md` documents the rationale and the suppression
syntax (``# repro: noqa[rule-id]``).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .base import LintContext, Rule, register

# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_identifier(node: ast.AST) -> str | None:
    """The rightmost identifier of a Name/Attribute, else None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


_UNIT_SUFFIX_RE = re.compile(
    r"_(s|ms|us|ns|bps|kbps|mbps|gbps|bytes|kb|mb|hz|pkts|fraction|ratio|fn|factor)$"
)

_TIME_RATE_STEM_RE = re.compile(
    r"(^|_)(rate|delay|duration|interval|bandwidth|rtt|timeout|period|bitrate|"
    r"latency|jitter)(_|$)"
)

# Dataclass config fields get a stricter stem set: timeline specs are
# full of event *times* (at/start/end), and an unsuffixed one is exactly
# the seconds-vs-milliseconds bug the rule exists to catch.  The extra
# stems stay off the function-arg check because established engine APIs
# (Simulator.run(until=...), Flow(start_time=...)) predate the rule.
_CONFIG_FIELD_STEM_RE = re.compile(
    r"(^|_)(rate|delay|duration|interval|bandwidth|rtt|timeout|period|bitrate|"
    r"latency|jitter|time|at|start|end|until)(_|$)"
)


def is_dataclass_def(node: ast.ClassDef) -> bool:
    """Does the class carry a ``@dataclass`` / ``@dataclass(...)`` decorator?"""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if terminal_identifier(target) == "dataclass":
            return True
    return False

_FLOATY_NAME_RE = re.compile(
    r"(^|_)(now|time|rtt|srtt|rate|delay|deadline|interval|duration|bandwidth)(_|$)"
    r"|_(s|ms|us|bps|kbps|mbps|gbps|hz)$"
)


def _in_test_tree(ctx: LintContext) -> bool:
    """Under ``tests/`` or ``benchmarks/`` - looser rules apply there."""
    return ctx.in_package("tests", "benchmarks")


# ----------------------------------------------------------------------
# RPR001 no-bare-random
# ----------------------------------------------------------------------
@register
class NoBareRandom(Rule):
    """Ban direct use of ``random`` / ``np.random`` outside ``core/rng.py``.

    Every stochastic draw must come from an injected
    :class:`repro.core.rng.Rng` so a single seed reproduces a whole run;
    a bare module-level RNG is invisible global state that destroys
    bit-reproducibility the moment two call sites interleave
    differently.
    """

    id = "no-bare-random"
    name = "no bare random"
    description = (
        "use an injected repro.core.rng.Rng instead of the random / "
        "numpy.random modules"
    )
    node_types = (ast.Import, ast.ImportFrom, ast.Attribute)

    def applies_to(self, ctx: LintContext) -> bool:
        return not ctx.is_file("core", "rng.py")

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[tuple[ast.AST, str]]:
        # Test code may build seeded local generators (`import random` +
        # `random.Random(seed)`) for fixture data; only *unseeded global*
        # draws stay banned there.
        in_tests = _in_test_tree(ctx)
        if isinstance(node, ast.Import):
            for alias in node.names:
                if in_tests and alias.name == "random":
                    continue
                if alias.name == "random" or alias.name.startswith("numpy.random"):
                    yield node, (
                        f"bare 'import {alias.name}'; inject a seeded "
                        "repro.core.rng.Rng instead"
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "random" or module.startswith("numpy.random"):
                yield node, (
                    f"import from {module!r}; inject a seeded "
                    "repro.core.rng.Rng instead"
                )
        elif isinstance(node, ast.Attribute):
            value = node.value
            if isinstance(value, ast.Name) and value.id == "random":
                if in_tests and node.attr == "Random":
                    return
                yield node, (
                    f"'random.{node.attr}' draws from unseeded global state; "
                    "use an injected Rng"
                )
            elif (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in ("np", "numpy")
            ):
                yield node, (
                    f"'{value.value.id}.random.{node.attr}' draws from unseeded "
                    "global state; use an injected Rng"
                )


# ----------------------------------------------------------------------
# RPR002 no-wallclock
# ----------------------------------------------------------------------
_WALLCLOCK_CALLS = {
    "time.time",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}


@register
class NoWallclock(Rule):
    """Ban wall-clock reads inside the simulated world.

    ``sim/``, ``core/`` and ``protocols/`` run on simulated time
    (``Simulator.now``); reading the host clock there silently couples a
    run's behaviour to machine load and makes traces non-reproducible.
    """

    id = "no-wallclock"
    name = "no wall clock"
    description = (
        "time.time()/datetime.now() are banned in sim/, core/ and "
        "protocols/; use Simulator.now"
    )
    node_types = (ast.Call,)

    def applies_to(self, ctx: LintContext) -> bool:
        if _in_test_tree(ctx):
            return False  # watchdog/budget tests time themselves on purpose
        return ctx.in_package("sim", "core", "protocols")

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[tuple[ast.AST, str]]:
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name in _WALLCLOCK_CALLS:
            yield node, (
                f"'{name}()' reads the wall clock; simulated components "
                "must use Simulator.now"
            )


# ----------------------------------------------------------------------
# RPR003 no-float-eq
# ----------------------------------------------------------------------
@register
class NoFloatEq(Rule):
    """Ban ``==`` / ``!=`` on simulated-time/rate floats.

    Times and rates accumulate float rounding (the analytic queue model
    adds and subtracts serialization intervals all run long), so exact
    equality is a latent heisenbug.  Compare with ``<`` / ``>`` or an
    explicit epsilon.  Comparisons against ``float('inf')`` sentinels
    are exact and allowed.
    """

    id = "no-float-eq"
    name = "no float equality"
    description = (
        "== / != on simulated-time or rate floats; use ordering or an "
        "epsilon"
    )
    node_types = (ast.Compare,)

    def applies_to(self, ctx: LintContext) -> bool:
        # Determinism tests assert bit-exact replays *by design*.
        return not _in_test_tree(ctx)

    @staticmethod
    def _is_inf_sentinel(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
            and str(node.args[0].value).lower() in ("inf", "-inf", "nan")
        )

    @classmethod
    def _is_floaty(cls, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        name = terminal_identifier(node)
        if name is None:
            return False
        return _FLOATY_NAME_RE.search(name) is not None

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[tuple[ast.AST, str]]:
        assert isinstance(node, ast.Compare)
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            if self._is_inf_sentinel(left) or self._is_inf_sentinel(right):
                continue
            for side in (left, right):
                if self._is_floaty(side):
                    label = terminal_identifier(side)
                    shown = f"'{label}'" if label else "a float literal"
                    yield node, (
                        f"exact equality on {shown} (simulated time/rate "
                        "float); use ordering or an epsilon"
                    )
                    break


# ----------------------------------------------------------------------
# RPR004 unit-suffix
# ----------------------------------------------------------------------
@register
class UnitSuffix(Rule):
    """Require unit suffixes on rate/time parameters of public APIs.

    In ``core/`` and ``sim/``, a public signature taking a rate or a
    duration must say its unit in the name (``_bps``, ``_mbps``, ``_s``,
    ``_ms``, ...): the Mbps-vs-bytes/sec-vs-pkts/MI confusion is exactly
    the class of bug a test suite rarely reaches.  Probability-per-packet
    names (``loss_rate``) and rate *functions* (``rate_fn``) are
    unit-free and allowed.
    """

    id = "unit-suffix"
    name = "unit suffix"
    description = (
        "public rate/time parameters and dataclass config fields in "
        "core/, sim/ and harness/scenarios.py must carry a unit suffix "
        "such as _s, _ms, _bps or _mbps"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

    # loss_rate/drop_rate are per-packet probabilities, rate_fn is a
    # function, rtt_gradient is the paper's dimensionless d(RTT)/dt slope.
    ALLOWED_NAMES = frozenset({"loss_rate", "rate_fn", "drop_rate", "rtt_gradient"})

    def applies_to(self, ctx: LintContext) -> bool:
        if _in_test_tree(ctx):
            return False  # test-local helpers are not public API surface
        return ctx.in_package("sim", "core") or ctx.is_file("harness", "scenarios.py")

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[tuple[ast.AST, str]]:
        if isinstance(node, ast.ClassDef):
            yield from self._visit_dataclass(node)
            return
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        # __init__ signatures are the class's public constructor API.
        if node.name.startswith("_") and node.name != "__init__":
            return
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            name = arg.arg
            if name in ("self", "cls") or name in self.ALLOWED_NAMES:
                continue
            if not _TIME_RATE_STEM_RE.search(name):
                continue
            if _UNIT_SUFFIX_RE.search(name):
                continue
            yield arg, (
                f"parameter '{name}' of public '{node.name}()' names a "
                "rate/time quantity without a unit suffix (_s, _ms, _bps, "
                "_mbps, ...)"
            )

    def _visit_dataclass(self, node: ast.ClassDef) -> Iterator[tuple[ast.AST, str]]:
        """Check annotated fields of ``@dataclass`` config classes.

        Dataclass fields *are* the public constructor API, but they never
        pass through the FunctionDef check (there is no explicit
        ``__init__``), so timeline/scenario specs would otherwise escape
        the rule entirely.
        """
        if not is_dataclass_def(node):
            return
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                stmt.target, ast.Name
            ):
                continue
            name = stmt.target.id
            if name.startswith("_") or name in self.ALLOWED_NAMES:
                continue
            if not _CONFIG_FIELD_STEM_RE.search(name):
                continue
            if _UNIT_SUFFIX_RE.search(name):
                continue
            yield stmt.target, (
                f"field '{name}' of dataclass '{node.name}' names a "
                "rate/time quantity without a unit suffix (_s, _ms, _bps, "
                "_mbps, ...)"
            )


# ----------------------------------------------------------------------
# RPR006 no-bare-subprocess-result
# ----------------------------------------------------------------------
@register
class NoBareSubprocessResult(Rule):
    """Ban bare ``future.result()`` outside ``harness/supervise.py``.

    A bare ``.result()`` on a pool future re-raises worker exceptions
    with a traceback that dead-ends in pool plumbing, turns one dead
    worker into an aborted sweep, and silently loses which submission
    failed.  All pool results must flow through the supervised accessors
    in :mod:`repro.harness.supervise` (``pool_map_result``,
    ``pool_call_result``, ...), which attribute, classify, and recover.
    """

    id = "no-bare-subprocess-result"
    name = "no bare subprocess result"
    description = (
        "future.result() outside harness/supervise.py; route pool "
        "results through the supervised accessors"
    )
    node_types = (ast.Call,)

    def applies_to(self, ctx: LintContext) -> bool:
        return not ctx.is_file("harness", "supervise.py")

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[tuple[ast.AST, str]]:
        assert isinstance(node, ast.Call)
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "result":
            yield node, (
                "bare '.result()' on a future loses failure attribution "
                "and crash recovery; use repro.harness.supervise"
            )


# ----------------------------------------------------------------------
# RPR007 no-deep-harness-import
# ----------------------------------------------------------------------
@register
class NoDeepHarnessImport(Rule):
    """Ban deep ``repro.harness.<module>`` imports in examples and docs.

    Example code is the template users copy, and it must only lean on
    the stable public surface — ``repro`` itself (lazy re-exports) or
    ``repro.harness`` — never on private module layout like
    ``repro.harness.runner``, which the one-release deprecation policy
    does not cover and refactors are free to move.
    """

    id = "no-deep-harness-import"
    name = "no deep harness import"
    description = (
        "examples/ and docs/ must import from 'repro' or 'repro.harness', "
        "not submodules like 'repro.harness.runner'"
    )
    node_types = (ast.Import, ast.ImportFrom)

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_package("examples", "docs")

    @staticmethod
    def _is_deep(module: str) -> bool:
        return module.startswith("repro.harness.")

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[tuple[ast.AST, str]]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if self._is_deep(alias.name):
                    yield node, (
                        f"deep import 'import {alias.name}' bypasses the "
                        "public API; import from 'repro' or 'repro.harness'"
                    )
        else:
            assert isinstance(node, ast.ImportFrom)
            module = node.module or ""
            if node.level == 0 and self._is_deep(module):
                yield node, (
                    f"deep import 'from {module} import ...' bypasses the "
                    "public API; import from 'repro' or 'repro.harness'"
                )


# ----------------------------------------------------------------------
# RPR005 mutable-default-arg
# ----------------------------------------------------------------------
@register
class MutableDefaultArg(Rule):
    """Ban mutable default argument values.

    A ``list``/``dict``/``set`` default is created once at ``def`` time
    and shared by every call — state leaks between what look like
    independent invocations (and between simulation runs).
    """

    id = "mutable-default-arg"
    name = "mutable default argument"
    description = "default argument values must not be mutable"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "deque", "defaultdict"})

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name is not None and name.split(".")[-1] in self._MUTABLE_CALLS
        return False

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[tuple[ast.AST, str]]:
        args = node.args
        for default in (*args.defaults, *args.kw_defaults):
            if default is not None and self._is_mutable(default):
                yield default, (
                    "mutable default argument is shared across calls; "
                    "default to None and create it in the body"
                )
