"""Emulated video playback buffer with rebuffer accounting (§6.3).

The paper's receiver "runs a BOLA agent that ... consumes the received
bytes to maintain an emulated playback buffer".  This module is that
emulation: a buffer measured in seconds of video, drained in real
(simulated) time while playing, with startup/rebuffer state transitions
and the QoE counters the evaluation reports (rebuffer ratio, average
chunk bitrate).
"""

from __future__ import annotations


class PlaybackBuffer:
    """Seconds-of-video buffer with startup and rebuffering states.

    Args:
        capacity_s: Maximum buffered playtime; chunk requests pause when
            there is no room for another chunk.
        startup_s: Buffered playtime required before playback first starts
            (and after a rebuffer, before it resumes).
    """

    def __init__(self, capacity_s: float, startup_s: float = 3.0):
        if capacity_s <= 0 or startup_s < 0:
            raise ValueError("invalid buffer parameters")
        self.capacity_s = capacity_s
        self.startup_s = startup_s
        self.level_s = 0.0
        self.playing = False
        self.started = False
        self._last_update: float | None = None
        # QoE counters.
        self.play_time_s = 0.0
        self.rebuffer_time_s = 0.0
        self.startup_delay_s: float | None = None
        self.rebuffer_events = 0
        self._rebuffering_since: float | None = None
        self.total_played_s = 0.0
        self.eos = False  # all content delivered: draining out is not a stall
        self.ended = False

    # ------------------------------------------------------------------
    def _advance(self, now: float) -> None:
        """Drain for elapsed wall time and account play/stall time."""
        if self._last_update is None:
            self._last_update = now
            return
        elapsed = now - self._last_update
        if elapsed < 0:
            raise ValueError("time went backwards")
        self._last_update = now
        if not self.started or self.ended:
            return
        if self.playing:
            drained = min(self.level_s, elapsed)
            self.level_s -= drained
            self.play_time_s += drained
            self.total_played_s += drained
            stall = elapsed - drained
            if self.level_s <= 1e-12 and stall > 0:
                self.playing = False
                if self.eos:
                    # Normal end of playback, not a stall.
                    self.ended = True
                else:
                    # Ran dry mid-interval: the remainder was a stall.
                    self.rebuffer_events += 1
                    self._rebuffering_since = now - stall
                    self.rebuffer_time_s += stall
        else:
            self.rebuffer_time_s += elapsed

    def update(self, now: float) -> None:
        """Advance the clock (call before reading state)."""
        self._advance(now)

    def add_chunk(self, now: float, chunk_duration_s: float) -> None:
        """A complete chunk arrived and joins the buffer."""
        self._advance(now)
        self.level_s = min(self.capacity_s, self.level_s + chunk_duration_s)
        if not self.started and self.level_s >= self.startup_s:
            self.started = True
            self.playing = True
            self.startup_delay_s = now
        elif self.started and not self.playing and self.level_s >= self.startup_s:
            self.playing = True
            self._rebuffering_since = None

    def end_of_stream(self) -> None:
        """All content has been delivered; draining out is not a stall."""
        self.eos = True

    # ------------------------------------------------------------------
    def free_s(self, now: float) -> float:
        self._advance(now)
        return self.capacity_s - self.level_s

    def is_rebuffering(self, now: float) -> bool:
        self._advance(now)
        return self.started and not self.playing

    def rebuffer_ratio(self) -> float:
        """Stalled fraction of elapsed playback session time."""
        total = self.play_time_s + self.rebuffer_time_s
        if total <= 0:
            return 0.0
        return self.rebuffer_time_s / total
