"""BOLA bitrate adaptation (Spiteri, Urgaonkar, Sitaraman 2016).

BOLA-BASIC: on each chunk request, pick the ladder index ``m`` that
maximizes ``(V * (v_m + gp) - Q) / S_m``, where ``Q`` is the playback
buffer level, ``S_m`` the chunk size at level ``m``, and
``v_m = ln(S_m / S_1)`` the (concave) utility of level ``m``.

Parameter instantiation follows the BOLA paper: ``gp >= 1 - v_1 = 1``
keeps all utilities positive, and ``V = (capacity - p) / (v_M + gp)``
makes the buffer target of the highest rung sit one chunk below
capacity, so the algorithm uses the whole buffer range for adaptation.
"""

from __future__ import annotations

import math

from .video import VideoDefinition


class BolaAgent:
    """Buffer-based bitrate selection for one video session."""

    def __init__(
        self,
        video: VideoDefinition,
        buffer_capacity_s: float,
        gp: float = 1.0,
    ):
        if buffer_capacity_s <= video.chunk_duration_s:
            raise ValueError("buffer must hold more than one chunk")
        if gp < 1.0:
            raise ValueError("gp must be >= 1 (keeps all utilities positive)")
        self.video = video
        self.gp = gp
        sizes = [video.chunk_bytes(m) for m in range(len(video.bitrates_bps))]
        self.utilities = [math.log(s / sizes[0]) for s in sizes]
        self.v = (buffer_capacity_s - video.chunk_duration_s) / (
            self.utilities[-1] + gp
        )
        self._sizes = sizes

    def choose_level(self, buffer_level_s: float) -> int:
        """Ladder index to request next, given the current buffer level."""
        if buffer_level_s < 0:
            raise ValueError("negative buffer level")
        best_m = 0
        best_score = -math.inf
        for m, size in enumerate(self._sizes):
            score = (
                self.v * (self.utilities[m] + self.gp) - buffer_level_s
            ) / size
            if score > best_score:
                best_score = score
                best_m = m
        return best_m

    def switch_buffer_s(self, level: int) -> float:
        """Buffer level at which ``level`` starts beating ``level - 1``.

        Useful for tests and for reasoning about the adaptation ladder.
        """
        if level <= 0 or level >= len(self._sizes):
            raise IndexError("need adjacent ladder pair")
        s_lo, s_hi = self._sizes[level - 1], self._sizes[level]
        v_lo, v_hi = self.utilities[level - 1], self.utilities[level]
        # Solve score_lo(Q) = score_hi(Q) for Q.
        return self.v * (
            (s_hi * (v_lo + self.gp) - s_lo * (v_hi + self.gp)) / (s_hi - s_lo)
        )
