"""Application-layer workloads: DASH/BOLA video streaming and web loads."""

from .abr import BufferThresholdAbrAgent, ThroughputAbrAgent
from .bola import BolaAgent
from .playback import PlaybackBuffer
from .streaming import ChunkRecord, StreamingSession
from .video import (
    CHUNK_DURATION_S,
    LADDER_1080P_MBPS,
    LADDER_4K_MBPS,
    VideoCorpus,
    VideoDefinition,
    make_corpus,
)
from .web import (
    PageLoad,
    PageLoadClient,
    WebPage,
    run_poisson_page_loads,
    sample_page,
)

__all__ = [
    "BolaAgent",
    "BufferThresholdAbrAgent",
    "ThroughputAbrAgent",
    "CHUNK_DURATION_S",
    "ChunkRecord",
    "LADDER_1080P_MBPS",
    "LADDER_4K_MBPS",
    "PageLoad",
    "PageLoadClient",
    "PlaybackBuffer",
    "StreamingSession",
    "VideoCorpus",
    "VideoDefinition",
    "WebPage",
    "make_corpus",
    "run_poisson_page_loads",
    "sample_page",
]
