"""DASH streaming sessions over the simulated transport (§6.3).

A :class:`StreamingSession` glues together one chunked flow, a BOLA
agent, the emulated playback buffer, and — when the transport is
Proteus-H — the cross-layer threshold side channel:

* the receiver-side agent requests chunks whenever there is buffer room,
  choosing the bitrate with BOLA (or a forced level for the Fig 13
  stress test);
* each request recomputes the Proteus-H switching threshold (sufficient-
  rate, buffer-limit, and emergency rules) and delivers it to the sender
  after half an RTT (the side channel shares the path);
* rebuffer onsets trigger the emergency rule immediately at the next
  poll tick.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..protocols.proteus import ProteusSender
from ..core.threshold import VideoThresholdPolicy
from ..core.utility import HybridUtility
from ..sim.engine import Simulator
from ..sim.flow import Flow
from .bola import BolaAgent
from .playback import PlaybackBuffer
from .video import VideoDefinition

REBUFFER_POLL_S = 0.25
DEFAULT_BUFFER_CHUNKS = 5.0


@dataclass
class ChunkRecord:
    """One delivered chunk."""

    index: int
    level: int
    bitrate_bps: float
    requested_at: float
    completed_at: float


class StreamingSession:
    """One adaptive video playback over a flow.

    Args:
        sim: The simulator.
        flow: A *chunked* flow whose receiver side this session plays.
        video: The DASH video definition.
        buffer_chunks: Playback buffer capacity in chunk-durations.
        forced_level: Optional fixed ladder index (Fig 13 forces the
            highest bitrate instead of adapting).
        agent: Optional ABR agent exposing ``choose_level(buffer_s)``
            (defaults to BOLA, the paper's choice; see
            :mod:`repro.apps.abr` for alternatives).  Agents with a
            ``record_chunk(nbytes, download_s)`` method (throughput-based
            ABR) are fed each chunk's download observation.
    """

    def __init__(
        self,
        sim: Simulator,
        flow: Flow,
        video: VideoDefinition,
        buffer_chunks: float = DEFAULT_BUFFER_CHUNKS,
        forced_level: int | None = None,
        agent=None,
    ):
        self.sim = sim
        self.flow = flow
        self.video = video
        self.forced_level = forced_level
        capacity_s = buffer_chunks * video.chunk_duration_s
        self.playback = PlaybackBuffer(
            capacity_s=capacity_s, startup_s=video.chunk_duration_s
        )
        self.bola = (
            agent
            if agent is not None
            else BolaAgent(video, buffer_capacity_s=capacity_s)
        )
        self.chunks: list[ChunkRecord] = []
        self.finished = False
        self._next_chunk = 0
        self._pending: list[tuple[int, int, int, float]] = []  # (idx, level, bytes, t)
        self._delivered_bytes = 0
        self._chunk_boundary = 0
        self._was_rebuffering = False
        # Cross-layer threshold policy: only for Proteus-H transports.
        sender = flow.sender
        self._hybrid = (
            sender
            if isinstance(sender, ProteusSender)
            and isinstance(sender.utility, HybridUtility)
            else None
        )
        self.policy = VideoThresholdPolicy(video.max_bitrate_bps)
        flow.on_delivery = self._on_delivery
        sim.schedule_at(max(flow.start_time, sim.now), self._request_loop)
        sim.schedule_at(max(flow.start_time, sim.now), self._poll_rebuffer)

    # ------------------------------------------------------------------
    # Chunk requests
    # ------------------------------------------------------------------
    def _request_loop(self) -> None:
        if self.finished:
            return
        now = self.sim.now
        if self._next_chunk >= self.video.n_chunks:
            return  # everything requested; completion happens on delivery
        free = self.playback.free_s(now)
        chunk_s = self.video.chunk_duration_s
        if free < chunk_s:
            # Buffer full: retry when playback has drained one chunk.
            wait = chunk_s - free if self.playback.playing else REBUFFER_POLL_S
            self.sim.schedule(max(wait, 0.01), self._request_loop)
            return
        if self.forced_level is not None:
            level = self.forced_level
        else:
            level = self.bola.choose_level(self.playback.level_s)
        nbytes = self.video.chunk_bytes(level)
        index = self._next_chunk
        self._next_chunk += 1
        self._pending.append((index, level, nbytes, now))
        self._update_threshold(level, free / chunk_s)
        self.flow.add_bytes(nbytes)
        # The next request is triggered by this chunk's completion (or the
        # buffer-room retry above).

    def _update_threshold(self, level: int, free_chunks: float) -> None:
        if self._hybrid is None:
            return
        threshold = self.policy.threshold_bps(
            self.video.bitrates_bps[level], free_chunks
        )
        delay = self.flow.base_rtt() / 2.0  # side channel over the same path
        self.sim.schedule(delay, self._install_threshold, threshold)

    def _install_threshold(self, threshold_bps: float) -> None:
        if self._hybrid is not None and not self.finished:
            self._hybrid.set_threshold(threshold_bps)

    # ------------------------------------------------------------------
    # Deliveries and rebuffer polling
    # ------------------------------------------------------------------
    def _on_delivery(self, now: float, nbytes: int) -> None:
        self._delivered_bytes += nbytes
        while self._pending:
            index, level, size, requested_at = self._pending[0]
            if self._delivered_bytes < self._chunk_boundary + size:
                break
            self._chunk_boundary += size
            self._pending.pop(0)
            self.playback.add_chunk(now, self.video.chunk_duration_s)
            if hasattr(self.bola, "record_chunk"):
                download_s = max(now - requested_at, 1e-6)
                self.bola.record_chunk(size, download_s)
            self.chunks.append(
                ChunkRecord(
                    index=index,
                    level=level,
                    bitrate_bps=self.video.bitrates_bps[level],
                    requested_at=requested_at,
                    completed_at=now,
                )
            )
            if len(self.chunks) >= self.video.n_chunks:
                self._finish(now)
                return
            self.sim.schedule(0.0, self._request_loop)

    def _poll_rebuffer(self) -> None:
        if self.finished:
            return
        now = self.sim.now
        rebuffering = self.playback.is_rebuffering(now)
        if rebuffering and not self._was_rebuffering:
            self.policy.on_rebuffer_start()
            if self._hybrid is not None:
                self._update_threshold_emergency()
        elif self._was_rebuffering and not rebuffering:
            self.policy.on_rebuffer_end()
        self._was_rebuffering = rebuffering
        self.sim.schedule(REBUFFER_POLL_S, self._poll_rebuffer)

    def _update_threshold_emergency(self) -> None:
        delay = self.flow.base_rtt() / 2.0
        self.sim.schedule(delay, self._install_threshold, float("inf"))

    def _finish(self, now: float) -> None:
        self.finished = True
        self.playback.update(now)
        self.playback.end_of_stream()
        self.flow.sender.stop()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def average_bitrate_bps(self) -> float:
        """Mean bitrate over delivered chunks (the paper's Fig 11/12 metric)."""
        if not self.chunks:
            return 0.0
        return sum(c.bitrate_bps for c in self.chunks) / len(self.chunks)

    def rebuffer_ratio(self) -> float:
        self.playback.update(self.sim.now)
        return self.playback.rebuffer_ratio()
