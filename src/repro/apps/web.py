"""Web page load workload (§6.2.2's Chrome/Alexa-top-30 stand-in).

A page is a set of objects with lognormally distributed sizes, fetched
over up to six parallel short transport flows (a browser's per-host
connection pool).  Page-load time is the makespan from request to the
last object's delivery.  The generator issues page loads as a Poisson
process, optionally alongside a background scavenger flow, which is
exactly the paper's Fig 11(b) setup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..protocols import make_sender
from ..sim.engine import Simulator
from ..core.rng import Rng
from ..sim.topology import Dumbbell

MAX_PARALLEL_CONNECTIONS = 6


@dataclass(frozen=True)
class WebPage:
    """One page: a list of object sizes in bytes."""

    object_sizes: tuple[int, ...]

    @property
    def total_bytes(self) -> int:
        return sum(self.object_sizes)


def sample_page(
    rng: Rng,
    n_objects_range: tuple[int, int] = (20, 80),
    median_object_bytes: float = 30_000.0,
    sigma: float = 1.2,
) -> WebPage:
    """Draw a page with lognormal object sizes (web-measurement shaped)."""
    lo, hi = n_objects_range
    if lo < 1 or hi < lo:
        raise ValueError("invalid object count range")
    n = rng.randint(lo, hi)
    mu = math.log(median_object_bytes)
    sizes = tuple(
        max(200, int(rng.lognormvariate(mu, sigma))) for _ in range(n)
    )
    return WebPage(object_sizes=sizes)


@dataclass
class PageLoad:
    """State of one in-progress page load."""

    page: WebPage
    started_at: float
    completed_at: float | None = None
    _queue: list[int] = field(default_factory=list)
    _outstanding: int = 0

    @property
    def load_time_s(self) -> float | None:
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


class PageLoadClient:
    """Loads pages over a shared dumbbell using short transport flows."""

    def __init__(
        self,
        sim: Simulator,
        dumbbell: Dumbbell,
        protocol: str = "cubic",
        max_parallel: int = MAX_PARALLEL_CONNECTIONS,
        seed: int = 0,
    ):
        if max_parallel < 1:
            raise ValueError("need at least one connection")
        self.sim = sim
        self.dumbbell = dumbbell
        self.protocol = protocol
        self.max_parallel = max_parallel
        self.seed = seed
        self.loads: list[PageLoad] = []
        self._flow_counter = 0

    def load_page(self, page: WebPage) -> PageLoad:
        """Begin loading ``page`` now; returns its (live) record."""
        load = PageLoad(page=page, started_at=self.sim.now)
        load._queue = sorted(page.object_sizes, reverse=True)  # big first
        self.loads.append(load)
        for _ in range(min(self.max_parallel, len(load._queue))):
            self._fetch_next(load)
        return load

    def _fetch_next(self, load: PageLoad) -> None:
        if not load._queue:
            return
        size = load._queue.pop(0)
        load._outstanding += 1
        self._flow_counter += 1
        sender = make_sender(
            self.protocol, seed=self.seed * 10_000 + self._flow_counter
        )
        self.dumbbell.add_flow(
            sender,
            flow_id=90_000 + self._flow_counter,
            size_bytes=size,
            on_complete=lambda flow, now, load=load: self._object_done(load, now),
        )

    def _object_done(self, load: PageLoad, now: float) -> None:
        load._outstanding -= 1
        if load._queue:
            self._fetch_next(load)
        elif load._outstanding == 0 and load.completed_at is None:
            load.completed_at = now

    # ------------------------------------------------------------------
    def completed_load_times(self) -> list[float]:
        return [l.load_time_s for l in self.loads if l.load_time_s is not None]


def run_poisson_page_loads(
    sim: Simulator,
    dumbbell: Dumbbell,
    duration_s: float,
    rate_per_s: float = 0.1,
    protocol: str = "cubic",
    seed: int = 0,
) -> PageLoadClient:
    """Schedule Poisson page-load arrivals (the paper uses 1 per 10 s)."""
    if rate_per_s <= 0:
        raise ValueError("rate must be positive")
    rng = Rng(seed)
    client = PageLoadClient(sim, dumbbell, protocol=protocol, seed=seed)

    def arrival():
        if sim.now >= duration_s:
            return
        client.load_page(sample_page(rng))
        sim.schedule(rng.expovariate(rate_per_s), arrival)

    sim.schedule(rng.expovariate(rate_per_s), arrival)
    return client
