"""Alternative ABR algorithms beside BOLA.

§4.4 presents the Proteus-H threshold rules "as a representative
solution for benchmarking; it may not be suitable for bitrate adaptation
that uses throughput for control".  To study that caveat this module
adds a classic throughput-based (rate-based) ABR and a simple
buffer-threshold (BBA-0-style) scheme, sharing the
``choose_level(buffer_level_s) -> int`` interface of
:class:`~repro.apps.bola.BolaAgent` so streaming sessions can swap them.
"""

from __future__ import annotations

from collections import deque

from .video import VideoDefinition


class ThroughputAbrAgent:
    """Rate-based ABR: pick the top rung below a discounted throughput
    estimate (harmonic mean of the last few chunk download rates).

    This is the class of algorithm the paper warns about: when the
    transport deliberately slows down (scavenger mode), the ABR reads
    the lower throughput as reduced capacity and downshifts, creating a
    feedback loop — use :class:`~repro.apps.bola.BolaAgent` with
    Proteus-H instead.
    """

    def __init__(
        self,
        video: VideoDefinition,
        safety: float = 0.85,
        window: int = 5,
    ):
        if not 0 < safety <= 1:
            raise ValueError("safety must be in (0, 1]")
        if window < 1:
            raise ValueError("window must be positive")
        self.video = video
        self.safety = safety
        self._rates: deque[float] = deque(maxlen=window)

    def record_chunk(self, nbytes: int, download_s: float) -> None:
        """Feed one completed chunk's download observation."""
        if download_s <= 0:
            raise ValueError("download time must be positive")
        self._rates.append(nbytes * 8.0 / download_s)

    def estimate_bps(self) -> float:
        """Harmonic-mean throughput estimate (0 when nothing observed)."""
        if not self._rates:
            return 0.0
        return len(self._rates) / sum(1.0 / r for r in self._rates)

    def choose_level(self, buffer_level_s: float) -> int:
        del buffer_level_s  # rate-based: ignores the buffer
        budget = self.safety * self.estimate_bps()
        level = 0
        for m, bitrate in enumerate(self.video.bitrates_bps):
            if bitrate <= budget:
                level = m
        return level


class BufferThresholdAbrAgent:
    """BBA-0-style ABR: map the buffer level linearly onto the ladder
    between a reservoir and a cushion."""

    def __init__(
        self,
        video: VideoDefinition,
        reservoir_s: float = 3.0,
        cushion_s: float = 12.0,
    ):
        if reservoir_s < 0 or cushion_s <= reservoir_s:
            raise ValueError("need 0 <= reservoir < cushion")
        self.video = video
        self.reservoir_s = reservoir_s
        self.cushion_s = cushion_s

    def choose_level(self, buffer_level_s: float) -> int:
        if buffer_level_s < 0:
            raise ValueError("negative buffer level")
        top = len(self.video.bitrates_bps) - 1
        if buffer_level_s <= self.reservoir_s:
            return 0
        if buffer_level_s >= self.cushion_s:
            return top
        fraction = (buffer_level_s - self.reservoir_s) / (
            self.cushion_s - self.reservoir_s
        )
        return min(top, int(fraction * (top + 1)))
