"""DASH video definitions and the evaluation corpus (§6.3).

A video is a bitrate ladder plus a chunk duration and total length.  The
corpus generator reproduces the paper's setup: ten 4K videos (highest
bitrate above 40 Mbps) and ten 1080p videos (highest above 10 Mbps), all
with 3-second chunks and at least 3 minutes long.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.rng import Rng

CHUNK_DURATION_S = 3.0

LADDER_4K_MBPS = (1.0, 2.5, 5.0, 8.0, 16.0, 26.0, 45.0)
LADDER_1080P_MBPS = (0.5, 1.0, 2.0, 3.0, 4.5, 7.0, 11.0)


@dataclass(frozen=True)
class VideoDefinition:
    """One DASH video: a ladder of bitrates (bps) and chunking."""

    name: str
    bitrates_bps: tuple[float, ...]
    chunk_duration_s: float = CHUNK_DURATION_S
    duration_s: float = 180.0

    def __post_init__(self) -> None:
        if not self.bitrates_bps:
            raise ValueError("a video needs at least one bitrate")
        if list(self.bitrates_bps) != sorted(self.bitrates_bps):
            raise ValueError("bitrate ladder must be ascending")
        if self.chunk_duration_s <= 0 or self.duration_s <= 0:
            raise ValueError("durations must be positive")

    @property
    def n_chunks(self) -> int:
        return max(1, round(self.duration_s / self.chunk_duration_s))

    @property
    def max_bitrate_bps(self) -> float:
        return self.bitrates_bps[-1]

    def chunk_bytes(self, level: int) -> int:
        """Size of one chunk at ladder index ``level``."""
        if not 0 <= level < len(self.bitrates_bps):
            raise IndexError(f"level {level} outside ladder")
        return int(self.bitrates_bps[level] * self.chunk_duration_s / 8.0)


@dataclass
class VideoCorpus:
    """The paper's 10x4K + 10x1080p corpus, with mild per-video variation."""

    videos_4k: list[VideoDefinition] = field(default_factory=list)
    videos_1080p: list[VideoDefinition] = field(default_factory=list)

    def pick(self, rng: Rng, n_4k: int, n_1080p: int) -> list[VideoDefinition]:
        """Random selection as in §6.3 (e.g. one 4K and three 1080p)."""
        if n_4k > len(self.videos_4k) or n_1080p > len(self.videos_1080p):
            raise ValueError("not enough videos in the corpus")
        return rng.sample(self.videos_4k, n_4k) + rng.sample(
            self.videos_1080p, n_1080p
        )


def make_corpus(seed: int = 0, n_each: int = 10) -> VideoCorpus:
    """Generate the evaluation corpus.

    Per-video variation scales every ladder rung by a factor in
    [0.95, 1.10], keeping the paper's constraints (4K top rung > 40 Mbps,
    1080p top rung > 10 Mbps).
    """
    rng = Rng(seed)
    corpus = VideoCorpus()
    for kind, base, out in (
        ("4k", LADDER_4K_MBPS, corpus.videos_4k),
        ("1080p", LADDER_1080P_MBPS, corpus.videos_1080p),
    ):
        for i in range(n_each):
            scale = rng.uniform(0.95, 1.10)
            ladder = tuple(b * scale * 1e6 for b in base)
            duration = rng.uniform(180.0, 240.0)
            out.append(
                VideoDefinition(
                    name=f"{kind}-{i}",
                    bitrates_bps=ladder,
                    duration_s=duration,
                )
            )
    return corpus
