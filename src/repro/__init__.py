"""Reproduction of "PCC Proteus: Scavenger Transport And Beyond" (SIGCOMM 2020).

Public API layout:

* :mod:`repro.core` — PCC Proteus itself: utility framework
  (Proteus-P/S/H), noise tolerance, gradient rate control.
* :mod:`repro.protocols` — baseline congestion controllers (CUBIC, BBR,
  BBR-S, COPA, PCC Vivace, LEDBAT, fixed-rate) and the ``make_sender``
  factory.
* :mod:`repro.sim` — the packet-level discrete-event network simulator.
* :mod:`repro.apps` — DASH/BOLA video streaming and web-page workloads.
* :mod:`repro.analysis` — fairness, paper statistics, equilibrium theory.
* :mod:`repro.harness` — scenario definitions and experiment runners.
"""

# Import order matters: ``protocols`` must initialize before ``core`` (the
# Proteus sender builds on the protocol sender bases, while the protocol
# package's Vivace baseline subclasses the Proteus sender).
from . import sim  # noqa: I001  (dependency order, not alphabetical)
from . import protocols
from . import analysis, apps, core, harness
from .core import ProteusSender, make_utility
from .harness import EMULAB_DEFAULT, LinkConfig, run_flows, run_pair, run_single
from .protocols import make_sender

__version__ = "1.0.0"

__all__ = [
    "EMULAB_DEFAULT",
    "LinkConfig",
    "ProteusSender",
    "analysis",
    "apps",
    "core",
    "harness",
    "make_sender",
    "make_utility",
    "protocols",
    "run_flows",
    "run_pair",
    "run_single",
    "sim",
    "__version__",
]
