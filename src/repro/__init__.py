"""Reproduction of "PCC Proteus: Scavenger Transport And Beyond" (SIGCOMM 2020).

Public API layout (stability policy in ``docs/API.md``):

* :mod:`repro.core` — PCC Proteus itself: utility framework
  (Proteus-P/S/H), noise tolerance, gradient rate control.
* :mod:`repro.protocols` — baseline congestion controllers (CUBIC, BBR,
  BBR-S, COPA, PCC Vivace, LEDBAT, fixed-rate) and the ``make_sender``
  factory.
* :mod:`repro.sim` — the packet-level discrete-event network simulator.
* :mod:`repro.apps` — DASH/BOLA video streaming and web-page workloads.
* :mod:`repro.analysis` — fairness, paper statistics, equilibrium theory.
* :mod:`repro.harness` — scenario definitions and experiment runners.
* :mod:`repro.obs` — observability: tracepoints, sinks, metrics.
* :mod:`repro.devtools` — determinism linter and invariant checks.

Everything in ``__all__`` is the *stable public surface*: importable
directly from ``repro`` and covered by the one-release deprecation
policy.  Names resolve lazily (PEP 562), so ``import repro`` stays
cheap — no experiment, plotting, or analysis module loads until first
use (guarded by the import-surface test).
"""

from __future__ import annotations

__version__ = "1.1.0"

# Lazy surface: public name -> (module, attribute).  A None attribute
# re-exports the submodule itself.
_LAZY: dict[str, tuple[str, str | None]] = {
    # Submodules.
    "analysis": ("repro.analysis", None),
    "apps": ("repro.apps", None),
    "core": ("repro.core", None),
    "devtools": ("repro.devtools", None),
    "harness": ("repro.harness", None),
    "obs": ("repro.obs", None),
    "protocols": ("repro.protocols", None),
    "sim": ("repro.sim", None),
    # Experiment entry points (keyword-only after the scenario args).
    "run_flows": ("repro.harness.runner", "run_flows"),
    "run_homogeneous": ("repro.harness.runner", "run_homogeneous"),
    "run_pair": ("repro.harness.runner", "run_pair"),
    "run_single": ("repro.harness.runner", "run_single"),
    "run_streaming": ("repro.harness.runner", "run_streaming"),
    # Scenario vocabulary.
    "EMULAB_DEFAULT": ("repro.harness.scenarios", "EMULAB_DEFAULT"),
    "FlowSpec": ("repro.harness.runner", "FlowSpec"),
    "LinkConfig": ("repro.harness.scenarios", "LinkConfig"),
    "TIMELINES": ("repro.harness.scenarios", "TIMELINES"),
    "Timeline": ("repro.harness.scenarios", "Timeline"),
    # Results.
    "PairResult": ("repro.harness.runner", "PairResult"),
    "Result": ("repro.harness.results", "Result"),
    "RunResult": ("repro.harness.runner", "RunResult"),
    "StreamingResult": ("repro.harness.runner", "StreamingResult"),
    # Protocols / core.
    "ProteusSender": ("repro.protocols", "ProteusSender"),
    "make_sender": ("repro.protocols", "make_sender"),
    "make_utility": ("repro.core", "make_utility"),
    # Observability.
    "MetricsRegistry": ("repro.obs", "MetricsRegistry"),
    "Tracer": ("repro.obs", "Tracer"),
    "install_tracer": ("repro.obs", "install_tracer"),
    "tracing": ("repro.obs", "tracing"),
}

__all__ = sorted([*_LAZY, "__version__"])


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    value = module if attr is None else getattr(module, attr)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
