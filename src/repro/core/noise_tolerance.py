"""Latency-noise tolerance mechanisms (§5).

Four mechanisms, each independently switchable for the ablation study:

1. **Per-ACK RTT sample filtering** (:class:`AckIntervalFilter`): when the
   ratio between two consecutive ACK inter-arrival times exceeds 50 (a
   burst after a stall, typical of wireless MAC scheduling), RTT samples
   are dropped until one falls below the EWMA RTT average.
2. **Per-MI regression-error tolerance**: an MI whose RTT-gradient
   magnitude is below the regression's normalised RMS residual carries no
   statistically meaningful latency signal.
3. **MI-history trending tolerance** (:class:`TrendingTracker`): trending
   gradient (regression over the last k MIs' average RTTs) and trending
   deviation (std of the last k MIs' deviations) are tracked with
   kernel-style EWMA average/deviation estimators; a sample several
   deviations from its average "cannot be ignored".
4. **Majority rule** in probing — implemented in
   :mod:`repro.core.rate_control` (3 probe pairs, majority vote).

Composition (documented interpretation of the paper's §5): an MI's
gradient is zeroed only when BOTH the per-MI test and the trending test
classify it as noise; the deviation is zeroed only when the gradient was
zeroed and the trending deviation is also within bounds.  This preserves
the text's requirement that a slow persistent RTT increase (which passes
the per-MI test for several MIs in a row) is eventually kept because the
trending gradient drifts out of its tolerance band.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .metrics import IntervalMetrics, linear_regression

DEFAULT_ACK_RATIO_THRESHOLD = 50.0
DEFAULT_HISTORY_K = 6
DEFAULT_G1 = 2.0
DEFAULT_G2 = 4.0


class AckIntervalFilter:
    """Per-ACK RTT sample filter keyed on bursty ACK inter-arrival times.

    Suppression targets the burst of compressed ACKs right after a MAC
    stall, so it self-limits: it ends when an RTT below the EWMA average
    arrives (the paper's rule) or after ``max_suppression_s`` — without
    the time bound, a legitimate RTT level shift (a queue that fills and
    stays full) would freeze the filter shut and starve the utility
    calculation of samples forever.
    """

    def __init__(
        self,
        ratio_threshold: float = DEFAULT_ACK_RATIO_THRESHOLD,
        max_suppression_s: float = 0.25,
        min_gap_rtt_fraction: float = 0.25,
    ) -> None:
        if ratio_threshold <= 1.0:
            raise ValueError("ratio_threshold must exceed 1")
        self.ratio_threshold = ratio_threshold
        self.max_suppression_s = max_suppression_s
        # A MAC stall pauses the channel for an RTT-scale time; sub-RTT
        # ACK gaps are ordinary multiplexing with competing flows and
        # must not trip the filter (they carry real congestion signal).
        self.min_gap_rtt_fraction = min_gap_rtt_fraction
        self._last_ack_time: float | None = None
        self._last_interval: float | None = None
        self._ewma_rtt: float | None = None
        self._suppressing = False
        self._suppressing_since = 0.0
        self.suppressed_count = 0

    def accept(self, now: float, rtt_s: float, srtt: float | None = None) -> bool:
        """Return True if this RTT sample should be used."""
        interval: float | None = None
        if self._last_ack_time is not None:
            interval = now - self._last_ack_time
        self._last_ack_time = now

        gap_floor = self.min_gap_rtt_fraction * srtt if srtt is not None else 0.0
        was_suppressing = self._suppressing
        if (
            not self._suppressing
            and interval is not None
            and self._last_interval is not None
            and self._last_interval > 0
            and interval / self._last_interval > self.ratio_threshold
            and interval >= gap_floor
        ):
            self._suppressing = True
            self._suppressing_since = now
        # Freeze the interval baseline through a burst: the compressed
        # intra-burst gaps (and the stall gap that tripped the filter) are
        # artifacts, and folding them in would let the first *legitimate*
        # post-recovery gap re-trip the filter against a microscopic
        # baseline, locking it into a suppression loop.
        if interval is not None and not was_suppressing and not self._suppressing:
            self._last_interval = interval

        if self._suppressing:
            recovered = self._ewma_rtt is not None and rtt_s < self._ewma_rtt
            expired = now - self._suppressing_since > self.max_suppression_s
            if recovered or expired:
                self._suppressing = False
            else:
                self.suppressed_count += 1
                return False
        # Only accepted samples feed the EWMA so a burst cannot drag it up.
        if self._ewma_rtt is None:
            self._ewma_rtt = rtt_s
        else:
            self._ewma_rtt = 0.875 * self._ewma_rtt + 0.125 * rtt_s
        return True


class _EwmaDeviation:
    """Kernel-style smoothed average + mean absolute deviation estimator."""

    __slots__ = ("avg", "dev")

    def __init__(self) -> None:
        self.avg: float | None = None
        self.dev = 0.0

    def update(self, sample: float) -> None:
        if self.avg is None:
            self.avg = sample
            self.dev = abs(sample) / 2.0
        else:
            self.dev = 0.75 * self.dev + 0.25 * abs(sample - self.avg)
            self.avg = 0.875 * self.avg + 0.125 * sample

    def within(self, sample: float, n_devs: float, signed: bool = False) -> bool:
        """Is ``sample`` within ``n_devs`` deviations of the average?

        ``signed=True`` implements the one-sided test the paper uses for
        trending deviation (only upward excursions indicate competition).
        """
        if self.avg is None:
            return False
        delta = sample - self.avg
        if not signed:
            delta = abs(delta)
        # <= with an epsilon so the degenerate all-constant case (delta and
        # dev both exactly zero) counts as within-band noise.
        return delta <= n_devs * self.dev + 1e-12


class TrendingTracker:
    """MI-history trending gradient/deviation (§5, "Trending Tolerance")."""

    def __init__(
        self,
        history_k: int = DEFAULT_HISTORY_K,
        g1: float = DEFAULT_G1,
        g2: float = DEFAULT_G2,
    ) -> None:
        if history_k < 2:
            raise ValueError("history_k must be at least 2")
        self.history_k = history_k
        self.g1 = g1
        self.g2 = g2
        self._avg_rtts: list[float] = []
        self._devs: list[float] = []
        self._grad_estimator = _EwmaDeviation()
        self._dev_estimator = _EwmaDeviation()
        self.trending_gradient = 0.0
        self.trending_deviation = 0.0
        self._grad_within_band = True
        self._dev_within_band = True

    def update(self, avg_rtt_s: float, rtt_deviation_s: float) -> None:
        """Record one MI's average RTT and deviation; refresh trends.

        The significance tests compare the fresh trending samples against
        the estimator state from *before* this update (as the kernel's
        srtt/rttvar comparison does), then fold the samples in.
        """
        self._avg_rtts.append(avg_rtt_s)
        self._devs.append(rtt_deviation_s)
        if len(self._avg_rtts) > self.history_k:
            del self._avg_rtts[0]
            del self._devs[0]
        if len(self._avg_rtts) >= 2:
            indices = [float(j) for j in range(1, len(self._avg_rtts) + 1)]
            self.trending_gradient, _ = linear_regression(indices, self._avg_rtts)
            mean_dev = sum(self._devs) / len(self._devs)
            self.trending_deviation = math.sqrt(
                sum((d - mean_dev) ** 2 for d in self._devs) / len(self._devs)
            )
        self._grad_within_band = self._grad_estimator.within(
            self.trending_gradient, self.g1
        )
        self._dev_within_band = self._dev_estimator.within(
            self.trending_deviation, self.g2, signed=True
        )
        self._grad_estimator.update(self.trending_gradient)
        self._dev_estimator.update(self.trending_deviation)

    def gradient_is_noise(self) -> bool:
        """True when the trending gradient sits inside its tolerance band."""
        return self._grad_within_band

    def deviation_is_noise(self) -> bool:
        """True when the trending deviation sits inside its (one-sided) band."""
        return self._dev_within_band


@dataclass
class NoiseToleranceConfig:
    """Feature switches for the ablation benchmarks."""

    ack_filter: bool = True
    regression_tolerance: bool = True
    trending_tolerance: bool = True
    majority_rule: bool = True  # consumed by rate_control
    ack_ratio_threshold: float = DEFAULT_ACK_RATIO_THRESHOLD
    history_k: int = DEFAULT_HISTORY_K
    g1: float = DEFAULT_G1
    g2: float = DEFAULT_G2


class NoiseTolerancePipeline:
    """Applies mechanisms 2 and 3 to each completed MI's metrics."""

    def __init__(self, config: NoiseToleranceConfig | None = None) -> None:
        self.config = config if config is not None else NoiseToleranceConfig()
        self.trending = TrendingTracker(
            history_k=self.config.history_k, g1=self.config.g1, g2=self.config.g2
        )

    def filter_metrics(self, metrics: IntervalMetrics) -> IntervalMetrics:
        """Return metrics with noise-classified latency signals zeroed."""
        config = self.config
        gradient = metrics.rtt_gradient
        deviation = metrics.rtt_deviation_s

        per_mi_noise = (
            config.regression_tolerance
            and abs(gradient) < metrics.regression_error
        )
        if config.trending_tolerance:
            self.trending.update(metrics.avg_rtt_s, metrics.rtt_deviation_s)
            grad_noise = per_mi_noise and self.trending.gradient_is_noise()
            dev_noise = grad_noise and self.trending.deviation_is_noise()
        else:
            grad_noise = per_mi_noise
            dev_noise = per_mi_noise

        if grad_noise:
            gradient = 0.0
        if dev_noise:
            deviation = 0.0
        if gradient is metrics.rtt_gradient and deviation is metrics.rtt_deviation_s:
            return metrics
        return metrics.replace_latency_signals(gradient, deviation)
