"""The Proteus utility-function library (§4).

Utility functions map an interval's :class:`~repro.core.metrics.IntervalMetrics`
to a scalar.  The library mirrors Fig 1's ``Utility Lib``:

* :class:`PrimaryUtility` (Proteus-P, Eq. 1) — Vivace's function with
  negative RTT gradient ignored;
* :class:`VivaceUtility` — the original PCC Vivace function (negative
  gradient rewarded), used for the Vivace baseline;
* :class:`ScavengerUtility` (Proteus-S, Eq. 2) — adds the RTT-deviation
  penalty ``d * x * sigma(RTT)``;
* :class:`HybridUtility` (Proteus-H, Eq. 3) — piecewise P below an
  application-set rate threshold, S above it;
* :class:`AllegroUtility` — PCC Allegro's loss-only sigmoid function,
  kept as a historical baseline.

Default constants follow the paper: t = 0.9, b = 900, c = 11.35 (5%
random-loss tolerance), d = 1500 with RTT deviation in seconds, rates in
Mbps.
"""

from __future__ import annotations

import math

from .metrics import IntervalMetrics

DEFAULT_EXPONENT_T = 0.9
DEFAULT_LATENCY_B = 900.0
DEFAULT_LOSS_C = 11.35
DEFAULT_DEVIATION_D = 1500.0


class UtilityFunction:
    """Base class: ``__call__(metrics) -> utility`` on Mbps-scaled rates."""

    name = "base"

    def __call__(self, metrics: IntervalMetrics) -> float:
        raise NotImplementedError

    def uses_deviation(self) -> bool:
        """Whether the RTT-deviation signal feeds this utility."""
        return False

    def loss_overloaded(self, metrics: IntervalMetrics) -> bool:
        """True when the loss penalty *alone* dwarfs the rate reward.

        The check requires a statistically meaningful interval (>= 30
        packets); the sender additionally requires several *consecutive*
        overloaded intervals before braking, so per-MI loss-sampling
        variance under moderate random loss cannot trip it — only a
        persistently jammed queue does.  It has no dependence on the
        latency signals, so it is unambiguous regardless of noise
        filtering; the sender uses it to trigger the controller's
        emergency brake.
        """
        return False


class VivaceUtility(UtilityFunction):
    """PCC Vivace: ``x^t - b*x*(dRTT/dt) - c*x*L`` (negative gradient rewarded)."""

    name = "vivace"

    def __init__(
        self,
        t: float = DEFAULT_EXPONENT_T,
        b: float = DEFAULT_LATENCY_B,
        c: float = DEFAULT_LOSS_C,
    ) -> None:
        if not 0.0 < t < 1.0:
            raise ValueError("exponent t must be in (0, 1) for concavity")
        if b <= 0 or c <= 0:
            raise ValueError("penalty coefficients must be positive")
        self.t = t
        self.b = b
        self.c = c

    def __call__(self, metrics: IntervalMetrics) -> float:
        x = metrics.rate_mbps
        return (
            x ** self.t
            - self.b * x * metrics.rtt_gradient
            - self.c * x * metrics.loss_rate
        )

    loss_overload_min_samples = 30

    def loss_overloaded(self, metrics: IntervalMetrics) -> bool:
        x = metrics.rate_mbps
        if x <= 0 or metrics.n_samples < self.loss_overload_min_samples:
            return False
        return self.c * x * metrics.loss_rate > x ** self.t


class PrimaryUtility(VivaceUtility):
    """Proteus-P (Eq. 1): Vivace with negative RTT gradient ignored."""

    name = "proteus-p"

    def __call__(self, metrics: IntervalMetrics) -> float:
        x = metrics.rate_mbps
        gradient = metrics.rtt_gradient if metrics.rtt_gradient > 0.0 else 0.0
        return x ** self.t - self.b * x * gradient - self.c * x * metrics.loss_rate


class ScavengerUtility(UtilityFunction):
    """Proteus-S (Eq. 2): Proteus-P minus ``d * x * sigma(RTT)``."""

    name = "proteus-s"

    def __init__(
        self,
        t: float = DEFAULT_EXPONENT_T,
        b: float = DEFAULT_LATENCY_B,
        c: float = DEFAULT_LOSS_C,
        d: float = DEFAULT_DEVIATION_D,
    ) -> None:
        if d <= 0:
            raise ValueError("deviation coefficient d must be positive")
        self.primary = PrimaryUtility(t, b, c)
        self.d = d

    def __call__(self, metrics: IntervalMetrics) -> float:
        x = metrics.rate_mbps
        return self.primary(metrics) - self.d * x * metrics.rtt_deviation_s

    def uses_deviation(self) -> bool:
        return True

    def loss_overloaded(self, metrics: IntervalMetrics) -> bool:
        return self.primary.loss_overloaded(metrics)


class HybridUtility(UtilityFunction):
    """Proteus-H (Eq. 3): P below the threshold rate, S at or above it.

    The threshold is in bits/s and is updated live through
    :meth:`set_threshold` (driven by the cross-layer policy in
    :mod:`repro.core.threshold`).
    """

    name = "proteus-h"

    def __init__(
        self,
        threshold_bps: float = float("inf"),
        t: float = DEFAULT_EXPONENT_T,
        b: float = DEFAULT_LATENCY_B,
        c: float = DEFAULT_LOSS_C,
        d: float = DEFAULT_DEVIATION_D,
    ) -> None:
        self.primary = PrimaryUtility(t, b, c)
        self.scavenger = ScavengerUtility(t, b, c, d)
        self.threshold_bps = threshold_bps

    def set_threshold(self, threshold_bps: float) -> None:
        if threshold_bps < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold_bps = threshold_bps

    def __call__(self, metrics: IntervalMetrics) -> float:
        if metrics.rate_mbps * 1e6 < self.threshold_bps:
            return self.primary(metrics)
        return self.scavenger(metrics)

    def uses_deviation(self) -> bool:
        return True

    def loss_overloaded(self, metrics: IntervalMetrics) -> bool:
        return self.primary.loss_overloaded(metrics)


class AllegroUtility(UtilityFunction):
    """PCC Allegro's loss-based sigmoid utility (historical baseline)."""

    name = "allegro"

    def __init__(self, alpha: float = 100.0, loss_knee: float = 0.05) -> None:
        self.alpha = alpha
        self.loss_knee = loss_knee

    def __call__(self, metrics: IntervalMetrics) -> float:
        x = metrics.rate_mbps
        loss = metrics.loss_rate
        sigmoid = 1.0 / (1.0 + math.exp(self.alpha * (loss - self.loss_knee)))
        return x * sigmoid * (1.0 - loss) - x * loss


class NoiseAwareScavengerUtility(ScavengerUtility):
    """Proteus-S with an explicit noise term (§7.2 future work).

    The paper's discussion proposes "quantifying confidence in inputs to
    the utility function, including a specific noise term in the utility
    function".  This extension discounts the deviation penalty by the
    interval's regression error: when the RTT samples fit their linear
    trend poorly (high residual — channel noise rather than queue
    dynamics), the deviation carries proportionally less weight.

    ``penalty = d * x * sigma * confidence`` with
    ``confidence = sigma_trend^2 / (sigma_trend^2 + (k * err)^2)`` where
    ``err`` is the regression RMS residual re-expressed in seconds.
    """

    name = "proteus-s-noise-aware"

    def __init__(self, *args, noise_discount_k: float = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if noise_discount_k <= 0:
            raise ValueError("noise_discount_k must be positive")
        self.noise_discount_k = noise_discount_k

    def __call__(self, metrics: IntervalMetrics) -> float:
        x = metrics.rate_mbps
        sigma = metrics.rtt_deviation_s
        err_s = metrics.regression_error * metrics.duration_s
        denom = sigma * sigma + (self.noise_discount_k * err_s) ** 2
        confidence = sigma * sigma / denom if denom > 0 else 0.0
        return self.primary(metrics) - self.d * x * sigma * confidence


_FACTORIES = {
    "proteus-p": PrimaryUtility,
    "proteus-s": ScavengerUtility,
    "proteus-s-noise-aware": NoiseAwareScavengerUtility,
    "proteus-h": HybridUtility,
    "vivace": VivaceUtility,
    "allegro": AllegroUtility,
}


def make_utility(name: str, **kwargs) -> UtilityFunction:
    """Instantiate a utility function from the library by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown utility {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory(**kwargs)
