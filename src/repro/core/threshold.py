"""Cross-layer switching-threshold policies for Proteus-H (§4.4).

For adaptive video the paper derives the hybrid threshold from three
rules; :class:`VideoThresholdPolicy` implements them verbatim:

1. **Sufficient rate**: ``threshold <= G * bitrate_max`` with G = 1.5.
2. **Buffer limit**: ``threshold <= bitrate_current / (2 - f)`` where
   ``f`` is the (possibly fractional) number of chunks of free playback
   buffer; applies when ``f < 2`` and is re-evaluated on each chunk
   request.
3. **Emergency**: while the player is rebuffering the threshold is
   infinite (full primary mode) until playback resumes.

The threshold is the *maximum* value satisfying rules 1-2, overridden by
rule 3.

:class:`DeadlineThresholdPolicy` implements the paper's other motivating
cross-layer example (§2.3): a bulk transfer with a completion deadline
("when a software update has a deadline requirement, it may want to
yield dynamically, only after reaching a certain throughput").  The
threshold tracks the rate still required to finish on time, with a
safety factor; far from the deadline the flow is a pure scavenger, and
as slack evaporates it defends an ever-larger primary-mode share.
"""

from __future__ import annotations

DEFAULT_SUFFICIENT_RATE_G = 1.5
DEFAULT_DEADLINE_SAFETY = 1.25


class VideoThresholdPolicy:
    """Computes the Proteus-H threshold for a video streaming session."""

    def __init__(self, max_bitrate_bps: float, g: float = DEFAULT_SUFFICIENT_RATE_G) -> None:
        if max_bitrate_bps <= 0:
            raise ValueError("max_bitrate_bps must be positive")
        if g <= 0:
            raise ValueError("g must be positive")
        self.max_bitrate_bps = max_bitrate_bps
        self.g = g
        self.rebuffering = False

    def on_rebuffer_start(self) -> None:
        self.rebuffering = True

    def on_rebuffer_end(self) -> None:
        self.rebuffering = False

    def threshold_bps(
        self, current_bitrate_bps: float, free_buffer_chunks: float
    ) -> float:
        """Threshold to install for the next chunk request.

        Args:
            current_bitrate_bps: Bitrate of the chunk being requested.
            free_buffer_chunks: Free space in the playback buffer, in
                chunk-durations (fractional).
        """
        if self.rebuffering:
            return float("inf")
        threshold = self.g * self.max_bitrate_bps
        if free_buffer_chunks < 2.0:
            denom = 2.0 - free_buffer_chunks
            buffer_cap = current_bitrate_bps / denom
            if buffer_cap < threshold:
                threshold = buffer_cap
        return threshold


class DeadlineThresholdPolicy:
    """Proteus-H threshold for a deadline-constrained bulk transfer.

    The required rate to finish on time is ``remaining_bytes * 8 /
    remaining_time``; the policy installs ``safety *`` that rate as the
    switching threshold.  Below the threshold the flow competes as a
    primary (it *must* make this much progress); above it, the transfer
    is ahead of schedule and scavenges.  When the deadline is already
    blown the threshold is infinite — finish as fast as possible.
    """

    def __init__(
        self,
        total_bytes: float,
        deadline_s: float,
        safety: float = DEFAULT_DEADLINE_SAFETY,
        min_threshold_bps: float = 0.0,
    ) -> None:
        if total_bytes <= 0 or deadline_s <= 0:
            raise ValueError("total_bytes and deadline_s must be positive")
        if safety < 1.0:
            raise ValueError("safety must be >= 1 (margin, not deficit)")
        self.total_bytes = total_bytes
        self.deadline_s = deadline_s
        self.safety = safety
        self.min_threshold_bps = min_threshold_bps

    def required_rate_bps(self, now: float, delivered_bytes: float) -> float:
        """Average rate still needed to make the deadline (no safety)."""
        remaining_bytes = max(0.0, self.total_bytes - delivered_bytes)
        remaining_time = self.deadline_s - now
        if remaining_bytes <= 0.0:
            return 0.0
        if remaining_time <= 0.0:
            return float("inf")
        return remaining_bytes * 8.0 / remaining_time

    def threshold_bps(self, now: float, delivered_bytes: float) -> float:
        """Proteus-H threshold to install right now."""
        required = self.required_rate_bps(now, delivered_bytes)
        if required == float("inf"):
            return float("inf")
        return max(self.min_threshold_bps, self.safety * required)
