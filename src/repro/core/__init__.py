"""PCC Proteus — the paper's primary contribution.

The pieces of Fig 1's architecture:

* :mod:`~repro.core.monitor` — monitor-interval lifecycle;
* :mod:`~repro.core.metrics` — per-interval throughput/loss/RTT gradient/
  RTT deviation;
* :mod:`~repro.core.utility` — the utility library (Proteus-P/S/H,
  Vivace, Allegro);
* :mod:`~repro.core.noise_tolerance` — §5's tolerance mechanisms;
* :mod:`~repro.core.rate_control` — gradient-ascent controller with the
  majority rule;
* :mod:`~repro.core.rng` — the seeded, spawnable random stream;
* :mod:`~repro.core.threshold` — Proteus-H's cross-layer threshold
  policy for video.

The assembled sender (:class:`ProteusSender`) lives in
:mod:`repro.protocols.proteus` with the other senders; it is still
re-exported here — lazily, so importing ``repro.core`` never pulls the
protocols or sim layers in.
"""

from .metrics import (
    IntervalMetrics,
    compute_interval_metrics,
    linear_regression,
    regression_error,
    rtt_deviation,
    rtt_gradient,
)
from .monitor import MonitorInterval
from .noise_tolerance import (
    AckIntervalFilter,
    NoiseToleranceConfig,
    NoiseTolerancePipeline,
    TrendingTracker,
)
from .rate_control import RateControlConfig, RateController
from .rng import Rng, make_rng, spawn
from .threshold import DeadlineThresholdPolicy, VideoThresholdPolicy
from .utility import (
    AllegroUtility,
    HybridUtility,
    NoiseAwareScavengerUtility,
    PrimaryUtility,
    ScavengerUtility,
    UtilityFunction,
    VivaceUtility,
    make_utility,
)

__all__ = [
    "AckIntervalFilter",
    "DeadlineThresholdPolicy",
    "AllegroUtility",
    "HybridUtility",
    "IntervalMetrics",
    "MonitorInterval",
    "NoiseAwareScavengerUtility",
    "NoiseToleranceConfig",
    "NoiseTolerancePipeline",
    "PrimaryUtility",
    "ProteusSender",
    "RateControlConfig",
    "RateController",
    "ScavengerUtility",
    "TrendingTracker",
    "UtilityFunction",
    "VideoThresholdPolicy",
    "VivaceUtility",
    "Rng",
    "compute_interval_metrics",
    "linear_regression",
    "make_rng",
    "make_utility",
    "regression_error",
    "rtt_deviation",
    "rtt_gradient",
    "spawn",
]


def __getattr__(name: str):
    # ProteusSender moved to repro.protocols.proteus; forward lazily so
    # `from repro.core import ProteusSender` keeps working without this
    # package importing the protocols/sim layers at module scope.
    if name == "ProteusSender":
        from ..protocols.proteus import ProteusSender

        return ProteusSender
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
