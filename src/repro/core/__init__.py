"""PCC Proteus — the paper's primary contribution.

The pieces of Fig 1's architecture:

* :mod:`~repro.core.monitor` — monitor-interval lifecycle;
* :mod:`~repro.core.metrics` — per-interval throughput/loss/RTT gradient/
  RTT deviation;
* :mod:`~repro.core.utility` — the utility library (Proteus-P/S/H,
  Vivace, Allegro);
* :mod:`~repro.core.noise_tolerance` — §5's tolerance mechanisms;
* :mod:`~repro.core.rate_control` — gradient-ascent controller with the
  majority rule;
* :mod:`~repro.core.proteus` — the assembled sender with live utility
  switching;
* :mod:`~repro.core.threshold` — Proteus-H's cross-layer threshold
  policy for video.
"""

from .metrics import (
    IntervalMetrics,
    compute_interval_metrics,
    linear_regression,
    regression_error,
    rtt_deviation,
    rtt_gradient,
)
from .monitor import MonitorInterval
from .noise_tolerance import (
    AckIntervalFilter,
    NoiseToleranceConfig,
    NoiseTolerancePipeline,
    TrendingTracker,
)
from .proteus import ProteusSender
from .rate_control import RateControlConfig, RateController
from .threshold import DeadlineThresholdPolicy, VideoThresholdPolicy
from .utility import (
    AllegroUtility,
    HybridUtility,
    NoiseAwareScavengerUtility,
    PrimaryUtility,
    ScavengerUtility,
    UtilityFunction,
    VivaceUtility,
    make_utility,
)

__all__ = [
    "AckIntervalFilter",
    "DeadlineThresholdPolicy",
    "AllegroUtility",
    "HybridUtility",
    "IntervalMetrics",
    "MonitorInterval",
    "NoiseAwareScavengerUtility",
    "NoiseToleranceConfig",
    "NoiseTolerancePipeline",
    "PrimaryUtility",
    "ProteusSender",
    "RateControlConfig",
    "RateController",
    "ScavengerUtility",
    "TrendingTracker",
    "UtilityFunction",
    "VideoThresholdPolicy",
    "VivaceUtility",
    "compute_interval_metrics",
    "linear_regression",
    "make_utility",
    "regression_error",
    "rtt_deviation",
    "rtt_gradient",
]
