"""Monitor-interval (MI) lifecycle for the PCC family (§3).

A sender transmits at one rate per MI.  The MI stays *pending* after its
sending window closes until every packet sent during it has been either
acknowledged or declared lost, at which point the interval's metrics are
computed and the utility/rate-control pipeline runs.
"""

from __future__ import annotations

from .metrics import IntervalMetrics, compute_interval_metrics


class MonitorInterval:
    """Bookkeeping for one monitor interval."""

    __slots__ = (
        "mi_id",
        "rate_bps",
        "start",
        "duration_s",
        "closed",
        "n_sent",
        "bytes_sent",
        "n_acked",
        "n_lost",
        "bytes_acked",
        "send_times",
        "rtts",
        "utility",
        "metrics",
        "tag",
    )

    def __init__(self, mi_id: int, rate_bps: float, start: float, duration_s: float) -> None:
        self.mi_id = mi_id
        self.rate_bps = rate_bps
        self.start = start
        self.duration_s = duration_s
        self.closed = False  # no more sends attributed to this MI
        self.n_sent = 0
        self.bytes_sent = 0
        self.n_acked = 0
        self.n_lost = 0
        self.bytes_acked = 0
        self.send_times: list[float] = []
        self.rtts: list[float] = []
        self.utility: float | None = None
        self.metrics: IntervalMetrics | None = None
        self.tag: str | None = None  # rate-control annotation (e.g. "probe-hi")

    # ------------------------------------------------------------------
    def record_send(self, nbytes: int = 0) -> None:
        self.n_sent += 1
        self.bytes_sent += nbytes

    def record_ack(self, send_time: float, rtt_s: float, nbytes: int) -> None:
        self.n_acked += 1
        self.bytes_acked += nbytes
        self.send_times.append(send_time)
        self.rtts.append(rtt_s)

    def record_loss(self) -> None:
        self.n_lost += 1

    def is_complete(self) -> bool:
        """All packets accounted for and the sending window has closed."""
        return self.closed and (self.n_acked + self.n_lost) >= self.n_sent

    def actual_rate_bps(self) -> float:
        """Achieved sending rate (what PCC's utility actually monitors)."""
        return self.bytes_sent * 8.0 / self.duration_s

    def app_limited(self, threshold: float = 0.7) -> bool:
        """True when the application supplied too little data for the MI's
        planned rate — such intervals must not drive rate decisions."""
        return self.actual_rate_bps() < threshold * self.rate_bps

    def compute_metrics(self) -> IntervalMetrics:
        """Finalize the MI into :class:`IntervalMetrics` (cached).

        The utility's rate term uses the planned MI rate: probe intervals
        must keep their exact +/-epsilon contrast for gradient votes.
        Intervals where the achieved rate diverged from the plan
        (application-limited) are filtered out upstream via
        :meth:`app_limited` instead of being rescaled here.
        """
        if self.metrics is None:
            self.metrics = compute_interval_metrics(
                duration_s=self.duration_s,
                rate_mbps=self.rate_bps / 1e6,
                bytes_acked=self.bytes_acked,
                n_sent=self.n_sent,
                n_lost=self.n_lost,
                send_times=self.send_times,
                rtts=self.rtts,
            )
        return self.metrics

    def trace_fields(self) -> dict:
        """Flat JSON-safe payload for ``mi.*`` trace events.

        Includes the utility components when :meth:`compute_metrics` has
        already run; never triggers the computation itself.
        """
        fields: dict = {
            "mi_id": self.mi_id,
            "tag": self.tag,
            "rate_bps": self.rate_bps,
            "duration_s": self.duration_s,
            "n_sent": self.n_sent,
            "n_acked": self.n_acked,
            "n_lost": self.n_lost,
            "utility": self.utility,
        }
        m = self.metrics
        if m is not None:
            fields.update(
                throughput_mbps=m.throughput_mbps,
                loss_rate=m.loss_rate,
                avg_rtt_s=m.avg_rtt_s,
                rtt_gradient=m.rtt_gradient,
                rtt_deviation_s=m.rtt_deviation_s,
            )
        return fields
