"""Per-interval performance metrics (§4.2, §5 of the paper).

Given the RTT samples collected during a monitor interval (or any
measurement window, e.g. the fixed 1.5-RTT windows of Fig 2), this module
computes the four quantities Proteus's utility functions consume:

* sending rate and loss rate;
* **RTT gradient** — the slope of a least-squares regression of RTT
  against packet send time (PCC Vivace's latency signal);
* **RTT deviation** — the standard deviation of the interval's RTT
  samples (Proteus's competition signal, §4.2);
* **regression error** — the RMS regression residual normalised by the
  interval duration (§5's per-MI tolerance threshold).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class IntervalMetrics:
    """Summary of one measurement interval."""

    duration_s: float
    rate_mbps: float  # sending rate during the interval
    throughput_mbps: float  # ACKed goodput
    loss_rate: float
    n_samples: int
    avg_rtt_s: float
    rtt_gradient: float  # dimensionless (seconds of RTT per second)
    rtt_deviation_s: float
    regression_error: float  # RMS residual / duration (dimensionless)

    def replace_latency_signals(
        self, gradient: float, deviation_s: float
    ) -> "IntervalMetrics":
        """Copy with (noise-filtered) latency signals substituted."""
        return IntervalMetrics(
            duration_s=self.duration_s,
            rate_mbps=self.rate_mbps,
            throughput_mbps=self.throughput_mbps,
            loss_rate=self.loss_rate,
            n_samples=self.n_samples,
            avg_rtt_s=self.avg_rtt_s,
            rtt_gradient=gradient,
            rtt_deviation_s=deviation_s,
            regression_error=self.regression_error,
        )


def linear_regression(xs: list[float], ys: list[float]) -> tuple[float, float]:
    """Least-squares slope and intercept of ``ys`` against ``xs``.

    Returns ``(0.0, mean(ys))`` when the regression is degenerate (fewer
    than two points, or zero x-variance).
    """
    n = len(xs)
    if n != len(ys):
        raise ValueError("xs and ys must have equal length")
    if n < 2:
        return 0.0, (ys[0] if ys else 0.0)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = 0.0
    sxy = 0.0
    for x, y in zip(xs, ys):
        dx = x - mean_x
        sxx += dx * dx
        sxy += dx * (y - mean_y)
    if sxx <= 0.0:
        return 0.0, mean_y
    slope = sxy / sxx
    return slope, mean_y - slope * mean_x


def rtt_gradient(send_times: list[float], rtts: list[float]) -> float:
    """Slope of RTT vs send time (PCC Vivace's linear-regression gradient)."""
    slope, _ = linear_regression(send_times, rtts)
    return slope


def rtt_deviation(rtts: list[float]) -> float:
    """Population standard deviation of the interval's RTT samples (§4.2)."""
    n = len(rtts)
    if n < 2:
        return 0.0
    mean = sum(rtts) / n
    variance = sum((r - mean) ** 2 for r in rtts) / n
    if variance < 1e-18:  # numeric dust from float cancellation
        return 0.0
    return math.sqrt(variance)


def regression_error(
    send_times: list[float], rtts: list[float], duration_s: float
) -> float:
    """RMS residual of the RTT regression, normalised by MI duration (§5)."""
    n = len(rtts)
    if n < 2 or duration_s <= 0:
        return 0.0
    slope, intercept = linear_regression(send_times, rtts)
    ss = 0.0
    for t, r in zip(send_times, rtts):
        resid = r - (intercept + slope * t)
        ss += resid * resid
    return math.sqrt(ss / n) / duration_s


def compute_interval_metrics(
    duration_s: float,
    rate_mbps: float,
    bytes_acked: int,
    n_sent: int,
    n_lost: int,
    send_times: list[float],
    rtts: list[float],
) -> IntervalMetrics:
    """Aggregate raw interval observations into :class:`IntervalMetrics`."""
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    n = len(rtts)
    loss_rate = n_lost / n_sent if n_sent > 0 else 0.0
    avg_rtt = sum(rtts) / n if n else 0.0
    return IntervalMetrics(
        duration_s=duration_s,
        rate_mbps=rate_mbps,
        throughput_mbps=bytes_acked * 8.0 / duration_s / 1e6,
        loss_rate=loss_rate,
        n_samples=n,
        avg_rtt_s=avg_rtt,
        rtt_gradient=rtt_gradient(send_times, rtts),
        rtt_deviation_s=rtt_deviation(rtts),
        regression_error=regression_error(send_times, rtts, duration_s),
    )
