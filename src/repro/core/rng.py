"""Seeded randomness helpers.

Every stochastic component in the simulator draws from an :class:`Rng`
handed to it explicitly, so experiments are reproducible from a single
seed.  :meth:`Rng.spawn` (and the module-level :func:`spawn`) derive
independent child streams for components so adding a new consumer does
not perturb existing ones.

This module is the only place in the source tree allowed to touch the
stdlib ``random`` module directly; the ``no-bare-random`` lint rule
(see :mod:`repro.devtools.lint`) enforces that everything else receives
an injected :class:`Rng`.
"""

from __future__ import annotations

import random


class Rng(random.Random):
    """A seeded random stream with labelled child derivation.

    Subclasses :class:`random.Random`, so every stdlib drawing method
    (``random``, ``gauss``, ``expovariate``, ``sample``, ...) is
    available, and an ``Rng`` is accepted anywhere a plain
    ``random.Random`` is.
    """

    def spawn(self, label: str) -> "Rng":
        """Derive an independent child stream keyed by ``label``.

        The child depends on this stream's current state and the label,
        not on how many other children were spawned afterwards (the
        parent is not mutated), so component streams are stable under
        refactoring.
        """
        state_words = self.getstate()[1][:4]
        return Rng(f"{state_words}:{label}")


def make_rng(seed: int | None) -> Rng:
    """Create a new RNG. ``None`` seeds from the OS (non-reproducible)."""
    return Rng(seed)


def spawn(parent: random.Random, label: str) -> Rng:
    """Derive an independent child RNG from ``parent`` keyed by ``label``.

    Functional form of :meth:`Rng.spawn` that also accepts a plain
    ``random.Random`` parent (e.g. one created by test code).
    """
    state_words = parent.getstate()[1][:4]
    return Rng(f"{state_words}:{label}")
