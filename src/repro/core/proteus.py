"""Compatibility shim: ProteusSender now lives in :mod:`repro.protocols.proteus`.

The assembled sender subclasses the protocol base classes and schedules
events on the simulator, which made ``repro.core`` — nominally the
bottom of the layer DAG — depend upward on ``protocols`` and ``sim``.
The implementation moved to the protocols layer where the other senders
live; this module forwards lazily (PEP 562) so ``repro.core.proteus``
imports keep working without reintroducing the upward module-scope
dependency.
"""

from __future__ import annotations

_MOVED = ("ProteusSender", "MIN_MI_DURATION_S")


def __getattr__(name: str):
    if name in _MOVED:
        from ..protocols import proteus

        return getattr(proteus, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(list(globals()) + list(_MOVED))
