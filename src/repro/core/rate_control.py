"""Gradient-ascent rate control (PCC Vivace's controller with Proteus's
majority rule), §3 and §5 of the paper.

The controller is *decision driven*: the sender feeds it completed monitor
intervals in order, and asks for the rate to use whenever it opens a new
MI.  Because an MI's result only arrives roughly one RTT after the MI
closes, the controller keeps transmitting at its current base rate
("filler" MIs) while a decision is pending — the same pipelining the
user-space PCC implementation exhibits.

States:

* ``STARTING`` — double the rate each MI until utility drops, then revert
  one step and probe.
* ``PROBING`` — run ``probe_pairs`` pairs of MIs at rate*(1 +/- epsilon)
  in random order per pair.  Vivace uses 2 pairs and requires both to
  agree; Proteus uses 3 pairs and takes the majority vote (§5, "Majority
  Rule").
* ``MOVING`` — step in the decided direction with step size
  ``theta0 * m * gamma`` (confidence ``m`` doubles on each consistent
  step), clipped to the dynamic change boundary
  ``omega_k = min(omega_base + (k-1) * omega_step, omega_max)`` of the
  current rate.  A utility decrease reverts the last step and returns to
  ``PROBING``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .rng import Rng
from .monitor import MonitorInterval


@dataclass
class RateControlConfig:
    """Tunables for the gradient controller."""

    epsilon: float = 0.05
    probe_pairs: int = 3  # Proteus; Vivace uses 2
    require_unanimous: bool = False  # Vivace semantics when pairs == 2
    theta0_mbps: float = 1.0  # Mbps step per unit utility-gradient
    confidence_cap: float = 64.0
    omega_base: float = 0.05
    omega_step: float = 0.10
    omega_max: float = 0.50
    min_rate_bps: float = 64_000.0
    # Emergency brake (see RateController.brake): immediate multiplicative
    # decrease on loss-overloaded intervals instead of waiting out a full
    # probing round, mirroring the user-space PCC implementation's
    # reaction to utility collapse.
    emergency_brake: bool = True
    brake_factor: float = 0.7


class RateController:
    """Online gradient-ascent controller over MI utilities."""

    def __init__(
        self,
        initial_rate_bps: float,
        config: RateControlConfig | None = None,
        rng: Rng | None = None,
    ) -> None:
        self.config = config if config is not None else RateControlConfig()
        self.rng = rng if rng is not None else Rng(0)
        self.rate_bps = max(self.config.min_rate_bps, initial_rate_bps)
        self.state = "STARTING"
        # STARTING bookkeeping.
        self._last_start_mi: tuple[float, float] | None = None  # (rate, utility)
        self._start_pending = 0  # issued start-MIs awaiting results
        # PROBING bookkeeping.
        self._plan: list[tuple[float, str]] = []  # (rate, tag) queue
        self._probe_results: dict[str, float] = {}  # tag -> utility
        self._probe_base = self.rate_bps
        self._pending_probe_tags: set[str] = set()
        self._probe_round = 0
        # MOVING bookkeeping.
        self._gradient = 0.0  # utility units per Mbps
        self._direction = 0
        self._confidence = 1.0
        self._step_k = 0
        self._prev_decision: tuple[float, float] | None = None  # (rate, utility)
        self.decisions = 0  # total state-machine decisions (for tests)
        # Observability hook: called as ``hook(reason, rate_bps, **fields)``
        # at every state-machine decision.  The owning sender wires it to a
        # ``rate.decision`` tracepoint; None (the default) costs one branch.
        self.trace_hook = None

    def _decided(self, reason: str, **fields) -> None:
        if self.trace_hook is not None:
            self.trace_hook(reason, self.rate_bps, **fields)

    # ------------------------------------------------------------------
    # Sender-facing API
    # ------------------------------------------------------------------
    def next_rate(self) -> tuple[float, str]:
        """Rate and tag for the MI the sender is about to open."""
        if self.state == "STARTING":
            rate = self.rate_bps
            if self._start_pending >= 4:
                # Results are not coming back (e.g. application-limited
                # startup): hold instead of doubling unboundedly.
                return rate, "filler"
            tag = f"start:{rate:.0f}"
            self._start_pending += 1
            # Double ahead without waiting (bounded overshoot, like PCC).
            self.rate_bps = rate * 2.0
            return rate, tag
        if self._plan:
            rate, tag = self._plan.pop(0)
            return rate, tag
        return self.rate_bps, "filler"

    def on_result(
        self,
        mi: MonitorInterval,
        utility: float | None,
        overloaded: bool = False,
    ) -> None:
        """Feed one completed MI (in completion order).

        ``utility=None`` marks a discarded interval (application-limited or
        paused mid-MI); a discarded probe/move interval restarts probing so
        the controller never waits on a result that will not arrive.
        ``overloaded=True`` (loss penalty alone beats any reward) triggers
        the emergency brake instead of a gradient decision.
        """
        tag = mi.tag if mi.tag is not None else "filler"
        if tag.startswith("start:") and self._start_pending > 0:
            self._start_pending -= 1
        if overloaded and self.config.emergency_brake:
            self._brake(mi.rate_bps)
            return
        if utility is None:
            if (self.state == "PROBING" and tag in self._pending_probe_tags) or (
                self.state == "MOVING" and tag.startswith("move:")
            ):
                self._enter_probing()
            return
        if self.state == "STARTING" and tag.startswith("start:"):
            self._starting_result(mi.rate_bps, utility)
        elif self.state == "PROBING" and tag in self._pending_probe_tags:
            self._pending_probe_tags.discard(tag)
            self._probe_results[tag] = utility
            if (not self._pending_probe_tags and not self._plan) or (
                self._majority_already_decided()
            ):
                self._probe_decide()
        elif self.state == "MOVING" and tag.startswith("move:"):
            self._moving_result(mi.rate_bps, utility)
        # Filler MIs carry no decision weight.

    def on_timeout(self) -> None:
        """Severe stall: halve the rate and re-probe."""
        self.rate_bps = max(self.config.min_rate_bps, self.rate_bps / 2.0)
        self._enter_probing()
        self.decisions += 1
        self._decided("timeout:halve")

    def _brake(self, mi_rate_bps: float) -> None:
        """Emergency multiplicative decrease on a loss-overloaded interval.

        Fired when an interval's loss penalty alone outweighs any possible
        throughput reward (``x^t < c * x * L``) — an unambiguous overload
        where gradient stepping is too slow.
        """
        if self.state == "STARTING":
            # Startup has pre-doubled rate_bps ahead of results; any
            # loss-overloaded interval ends the startup unconditionally.
            self.rate_bps = max(
                self.config.min_rate_bps, mi_rate_bps * self.config.brake_factor
            )
            self.decisions += 1
            self._enter_probing()
            self._decided("brake:startup")
            return
        if mi_rate_bps < 0.95 * self.rate_bps:
            # Stale interval from an already-reverted episode: restart the
            # probing round so no probe tag is left dangling.
            if self.state == "PROBING":
                self._enter_probing()
            return
        self.rate_bps = max(
            self.config.min_rate_bps,
            min(self.rate_bps, mi_rate_bps) * self.config.brake_factor,
        )
        self.decisions += 1
        self._enter_probing()
        self._decided("brake")

    def restart(self, rate_bps: float | None = None) -> None:
        """Re-enter STARTING, e.g. after an application-idle period.

        A sender that parked at a low rate while the application had no
        data (full playback buffer) must rediscover the available
        bandwidth quickly; STARTING's doubling does this in a handful of
        MIs, exactly like a fresh flow.
        """
        if rate_bps is not None:
            self.rate_bps = max(self.config.min_rate_bps, rate_bps)
        self.state = "STARTING"
        self._last_start_mi = None
        self._plan = []
        self._pending_probe_tags = set()
        self._probe_results = {}
        self._decided("restart")

    # ------------------------------------------------------------------
    # STARTING
    # ------------------------------------------------------------------
    def _starting_result(self, rate_bps: float, utility: float) -> None:
        if self._last_start_mi is not None:
            prev_rate, prev_utility = self._last_start_mi
            if utility < prev_utility:
                # Overshot: return to the last good rate and probe.
                self.rate_bps = max(self.config.min_rate_bps, prev_rate)
                self.decisions += 1
                self._enter_probing()
                self._decided("start:revert")
                return
        self._last_start_mi = (rate_bps, utility)

    # ------------------------------------------------------------------
    # PROBING
    # ------------------------------------------------------------------
    def _enter_probing(self) -> None:
        self.state = "PROBING"
        self._probe_base = self.rate_bps
        self._probe_round += 1
        self._plan = []
        self._probe_results = {}
        self._pending_probe_tags = set()
        eps = self.config.epsilon
        hi = self._probe_base * (1.0 + eps)
        lo = max(self.config.min_rate_bps, self._probe_base * (1.0 - eps))
        for pair in range(self.config.probe_pairs):
            hi_tag = f"probe:{self._probe_round}:{pair}:hi"
            lo_tag = f"probe:{self._probe_round}:{pair}:lo"
            ordered = [(hi, hi_tag), (lo, lo_tag)]
            if self.rng.random() < 0.5:
                ordered.reverse()
            self._plan.extend(ordered)
            self._pending_probe_tags.update((hi_tag, lo_tag))

    def _majority_already_decided(self) -> bool:
        """Early decision: enough completed pairs agree that the remaining
        ones cannot change the majority (only in majority-vote mode)."""
        if self.config.probe_pairs < 3 or self.config.require_unanimous:
            return False
        votes = 0
        completed = 0
        for pair in range(self.config.probe_pairs):
            u_hi = self._probe_results.get(f"probe:{self._probe_round}:{pair}:hi")
            u_lo = self._probe_results.get(f"probe:{self._probe_round}:{pair}:lo")
            if u_hi is None or u_lo is None:
                continue
            completed += 1
            if u_hi > u_lo:
                votes += 1
            elif u_lo > u_hi:
                votes -= 1
        remaining = self.config.probe_pairs - completed
        return abs(votes) > remaining

    def _probe_decide(self) -> None:
        eps = self.config.epsilon
        hi_rate = self._probe_base * (1.0 + eps) / 1e6
        lo_rate = max(self.config.min_rate_bps, self._probe_base * (1.0 - eps)) / 1e6
        votes = 0
        gradients: list[float] = []
        for pair in range(self.config.probe_pairs):
            u_hi = self._probe_results.get(f"probe:{self._probe_round}:{pair}:hi")
            u_lo = self._probe_results.get(f"probe:{self._probe_round}:{pair}:lo")
            if u_hi is None or u_lo is None:
                continue
            if u_hi > u_lo:
                votes += 1
            elif u_lo > u_hi:
                votes -= 1
            if hi_rate > lo_rate:
                gradients.append((u_hi - u_lo) / (hi_rate - lo_rate))
        self.decisions += 1
        unanimous_needed = self.config.require_unanimous or self.config.probe_pairs < 3
        threshold = self.config.probe_pairs if unanimous_needed else 1
        if abs(votes) < threshold or not gradients:
            self._enter_probing()  # inconsistent: probe again at same base
            self._decided("probe:again", votes=votes)
            return
        direction = 1 if votes > 0 else -1
        avg_gradient = sum(gradients) / len(gradients)
        # Reference point for the first MOVING comparison: the probe MI in
        # the chosen direction (its rate and mean utility).
        side = "hi" if direction > 0 else "lo"
        side_utils = [
            self._probe_results[f"probe:{self._probe_round}:{pair}:{side}"]
            for pair in range(self.config.probe_pairs)
            if f"probe:{self._probe_round}:{pair}:{side}" in self._probe_results
        ]
        ref_rate = (hi_rate if direction > 0 else lo_rate) * 1e6
        ref_utility = sum(side_utils) / len(side_utils)
        self._enter_moving(direction, avg_gradient, (ref_rate, ref_utility))
        self._decided(
            "probe:up" if direction > 0 else "probe:down",
            votes=votes,
            gradient=avg_gradient,
        )

    # ------------------------------------------------------------------
    # MOVING
    # ------------------------------------------------------------------
    def _enter_moving(
        self,
        direction: int,
        gradient: float,
        reference: tuple[float, float] | None = None,
    ) -> None:
        self.state = "MOVING"
        self._direction = direction
        self._gradient = direction * abs(gradient)
        self._confidence = 1.0
        self._step_k = 1
        self._prev_decision = reference
        self._apply_move_step()

    def _omega(self) -> float:
        config = self.config
        return min(
            config.omega_base + (self._step_k - 1) * config.omega_step,
            config.omega_max,
        )

    def _apply_move_step(self) -> None:
        config = self.config
        step_mbps = config.theta0_mbps * self._confidence * self._gradient
        bound_mbps = self._omega() * self.rate_bps / 1e6
        if abs(step_mbps) > bound_mbps:
            step_mbps = bound_mbps if step_mbps > 0 else -bound_mbps
        self.rate_bps = max(config.min_rate_bps, self.rate_bps + step_mbps * 1e6)
        self._plan = [(self.rate_bps, f"move:{self._step_k}")]

    def _moving_result(self, rate_bps: float, utility: float) -> None:
        self.decisions += 1
        if self._prev_decision is not None:
            prev_rate, prev_utility = self._prev_decision
            if utility < prev_utility:
                # Utility fell: revert the step and go back to probing.
                self.rate_bps = max(self.config.min_rate_bps, prev_rate)
                self._enter_probing()
                self._decided("move:revert")
                return
            if abs(rate_bps - prev_rate) > 1e-9:
                self._gradient = (utility - prev_utility) / (
                    (rate_bps - prev_rate) / 1e6
                )
            self._confidence = min(
                self.config.confidence_cap, self._confidence * 2.0
            )
        self._prev_decision = (rate_bps, utility)
        self._step_k += 1
        self._apply_move_step()
        self._decided("move:step", step_k=self._step_k)
