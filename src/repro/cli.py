"""Command-line interface: run paper scenarios without writing code.

Usage (also available as ``python -m repro``):

    python -m repro single --protocol proteus-p --bandwidth 50 --rtt 30
    python -m repro pair --primary cubic --scavenger proteus-s
    python -m repro fairness --protocol proteus-s --flows 4
    python -m repro trace --protocols cubic,proteus-s --kind mi --out t.jsonl
    python -m repro metrics --protocols cubic --sample 0.5
    python -m repro protocols

Every command prints a small table; ``--json`` / ``--csv`` write the
underlying data for plotting.  ``trace`` and ``metrics`` are the
observability entry points (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analysis import jains_index
from .harness import (
    TIMELINES,
    TOPOLOGIES,
    LinkConfig,
    Timeline,
    TopologySpec,
    load_timeline,
    load_topology,
    print_table,
    run_homogeneous,
    run_pair,
    run_single,
)
from .harness.export import write_run_json, write_throughput_series_csv
from .protocols import PROTOCOL_NAMES


def _link_from_args(args: argparse.Namespace) -> LinkConfig:
    return LinkConfig(
        bandwidth_mbps=args.bandwidth,
        rtt_ms=args.rtt,
        buffer_kb=args.buffer,
        loss_rate=args.loss,
        noise_severity=args.noise,
        reverse_noise_severity=args.noise,
    )


def _timeline_from_args(args: argparse.Namespace) -> Timeline | None:
    if not args.timeline:
        return None
    try:
        return load_timeline(args.timeline)
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}") from exc


def _topology_from_args(args: argparse.Namespace) -> TopologySpec | None:
    if not getattr(args, "topology", None):
        return None
    try:
        return load_topology(args.topology)
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}") from exc


def _add_core_link_args(
    parser: argparse.ArgumentParser, default_duration: float = 30.0
) -> None:
    parser.add_argument("--bandwidth", type=float, default=50.0, help="Mbps")
    parser.add_argument("--rtt", type=float, default=30.0, help="base RTT, ms")
    parser.add_argument("--buffer", type=float, default=375.0, help="buffer, KB")
    parser.add_argument("--loss", type=float, default=0.0, help="random loss rate")
    parser.add_argument(
        "--noise", type=float, default=0.0, help="WiFi-like noise severity"
    )
    parser.add_argument(
        "--timeline",
        type=str,
        default=None,
        metavar="NAME_OR_JSON",
        help="link-dynamics timeline: a preset name "
        f"({', '.join(sorted(TIMELINES))}) or a JSON spec file",
    )
    parser.add_argument(
        "--topology",
        type=str,
        default=None,
        metavar="NAME_OR_JSON",
        help="multi-hop topology: a preset name "
        f"({', '.join(sorted(TOPOLOGIES))}) or a JSON spec file "
        "(default: classic single-bottleneck dumbbell)",
    )
    parser.add_argument(
        "--duration", type=float, default=default_duration, help="seconds"
    )
    parser.add_argument("--seed", type=int, default=1)


def _add_link_args(parser: argparse.ArgumentParser) -> None:
    _add_core_link_args(parser)
    parser.add_argument("--json", type=str, default=None, help="write summary JSON")
    parser.add_argument(
        "--csv", type=str, default=None, help="write throughput series CSV"
    )


def _export(args: argparse.Namespace, result) -> None:
    if args.json:
        write_run_json(args.json, result)
        print(f"wrote {args.json}")
    if args.csv:
        write_throughput_series_csv(args.csv, result)
        print(f"wrote {args.csv}")


def _print_link_events(result) -> None:
    if not result.link_events:
        return
    print_table(
        ["t (s)", "link", "event"],
        [
            (f"{event.time_s:g}", event.link, event.describe())
            for event in result.link_events
        ],
        title=f"timeline '{result.timeline.label}'"
        if result.timeline and result.timeline.label
        else "timeline events",
    )


def cmd_single(args: argparse.Namespace) -> int:
    config = _link_from_args(args)
    result = run_single(
        args.protocol,
        config,
        duration_s=args.duration,
        seed=args.seed,
        timeline=_timeline_from_args(args),
        topology=_topology_from_args(args),
    )
    window = result.measurement_window()
    stats = result.stats[0]
    print_table(
        ["metric", "value"],
        [
            ("throughput (Mbps)", f"{result.throughput_mbps(0, window):.2f}"),
            ("utilization", f"{result.utilization(window):.3f}"),
            ("p95 RTT (ms)", f"{stats.rtt_percentile(95, *window) * 1e3:.1f}"),
            ("min RTT (ms)", f"{stats.min_rtt() * 1e3:.1f}"),
            ("losses", stats.loss_count()),
        ],
        title=f"{args.protocol} alone on {config.bandwidth_mbps:g} Mbps / "
        f"{config.rtt_ms:g} ms / {config.buffer_kb:g} KB",
    )
    _print_link_events(result)
    _export(args, result)
    return 0


def cmd_pair(args: argparse.Namespace) -> int:
    config = _link_from_args(args)
    pair = run_pair(
        args.primary,
        args.scavenger,
        config,
        duration_s=args.duration,
        seed=args.seed,
        timeline=_timeline_from_args(args),
        topology=_topology_from_args(args),
    )
    print_table(
        ["metric", "value"],
        [
            ("primary solo (Mbps)", f"{pair.primary_solo_mbps:.2f}"),
            ("primary with scavenger (Mbps)", f"{pair.primary_with_scavenger_mbps:.2f}"),
            ("primary throughput ratio", f"{pair.primary_throughput_ratio:.3f}"),
            ("scavenger (Mbps)", f"{pair.scavenger_mbps:.2f}"),
            ("joint utilization", f"{pair.utilization:.3f}"),
            ("primary p95-RTT ratio", f"{pair.primary_rtt_ratio_95th:.2f}"),
        ],
        title=f"{args.primary} (primary) vs {args.scavenger} (scavenger)",
    )
    return 0


def cmd_fairness(args: argparse.Namespace) -> int:
    config = _link_from_args(args)
    result = run_homogeneous(
        args.protocol,
        args.flows,
        config,
        stagger_s=args.stagger,
        measure_s=args.duration,
        seed=args.seed,
        timeline=_timeline_from_args(args),
        topology=_topology_from_args(args),
    )
    shares = result.throughputs_mbps()
    rows = [(f"flow {i + 1}", f"{thr:.2f}") for i, thr in enumerate(shares)]
    rows.append(("Jain's index", f"{jains_index(shares):.3f}"))
    rows.append(("utilization", f"{result.utilization():.3f}"))
    print_table(
        ["flow", "Mbps"],
        rows,
        title=f"{args.flows} x {args.protocol} on {config.bandwidth_mbps:g} Mbps",
    )
    _print_link_events(result)
    _export(args, result)
    return 0


def cmd_many(args: argparse.Namespace) -> int:
    """Many short primaries vs a few scavengers over a shared core."""
    from .harness import run_many

    config = _link_from_args(args)
    topology = _topology_from_args(args)
    result = run_many(
        args.primary,
        args.scavenger,
        config,
        n_flows=args.flows,
        n_scavengers=args.scavengers,
        flow_kb=args.flow_kb,
        duration_s=args.duration,
        seed=args.seed,
        **({"topology": topology} if topology is not None else {}),
    )
    window = result.measurement_window()
    scav = [result.throughput_mbps(i, window) for i in range(args.scavengers)]
    shorts = result.stats[args.scavengers:]
    target = int(args.flow_kb * 1e3)
    done = sum(1 for s in shorts if s.delivered_bytes >= target)
    print_table(
        ["metric", "value"],
        [
            ("short flows", str(len(shorts))),
            ("completed in-run", f"{done} ({100.0 * done / max(1, len(shorts)):.1f}%)"),
            ("scavengers", str(args.scavengers)),
            ("scavenger Mbps (total)", f"{sum(scav):.2f}"),
            ("utilization", f"{result.utilization(window):.3f}"),
        ],
        title=f"{args.flows} x {args.primary} ({args.flow_kb:g} KB) vs "
        f"{args.scavengers} x {args.scavenger}",
    )
    _export(args, result)
    return 0


def cmd_protocols(_args: argparse.Namespace) -> int:
    for name in PROTOCOL_NAMES:
        print(name)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    # Imported here so scenario commands never pay for the bench suite.
    import json

    from .harness.bench import (
        append_history,
        check_regression,
        profile_scenario,
        run_bench,
        update_baseline,
    )

    record = run_bench(
        quick=args.quick,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        cache_root=args.cache_dir,
        fidelity=args.fidelity,
    )
    engine = record["engine"]
    cache = record["cache"]
    scenario = record["scenario"]
    print_table(
        ["metric", "value"],
        [
            ("fidelity", record["fidelity"]),
            ("scenario events/sec (effective)", f"{record['events_per_sec']:,.0f}"),
            (
                "scenario events fired/virtual",
                f"{scenario['events']:,}/{scenario['events_virtual']:,}",
            ),
            (
                f"scale events/sec ({record['scale']['n_flows']} flows)",
                f"{record['scale']['events_per_sec']:,.0f}",
            ),
            ("engine fast-path events/sec", f"{engine['fast_events_per_sec']:,.0f}"),
            ("engine Event-path events/sec", f"{engine['event_events_per_sec']:,.0f}"),
            ("suite wall (s)", f"{record['suite_wall_s']:.2f}"),
            ("jobs", record["jobs"]),
            (
                "cache hits/misses",
                f"{cache['hits']}/{cache['misses']}" if cache["enabled"] else "off",
            ),
            (
                "cache quarantined",
                str(cache.get("quarantined", 0)) if cache["enabled"] else "off",
            ),
        ]
        + [
            (f"{name} wall (s)", f"{fig['wall_s']:.2f}")
            for name, fig in record["figures"].items()
        ],
        title="repro bench" + (" --quick" if args.quick else ""),
    )
    n_runs = append_history(args.out, record)
    print(f"appended run {n_runs} to {args.out}")
    if args.profile:
        report = profile_scenario(
            duration_s=1.5 if args.quick else 3.0, fidelity=args.fidelity
        )
        with open(args.profile, "w") as fh:
            fh.write(report)
        print(f"wrote profile to {args.profile}")
    if args.update_baseline:
        update_baseline(args.update_baseline, record)
        print(f"updated baseline floors in {args.update_baseline}")
    if args.check_against:
        try:
            baseline = json.loads(open(args.check_against).read())
        except (OSError, ValueError) as exc:
            print(f"repro bench: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        failures = check_regression(record, baseline, tolerance=args.tolerance)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"no regression vs {args.check_against}")
    return 0


def _specs_from_args(args: argparse.Namespace) -> list:
    """FlowSpecs from a ``--protocols`` comma list with staggered starts."""
    from .harness import FlowSpec

    names = [name.strip() for name in args.protocols.split(",") if name.strip()]
    if not names:
        raise SystemExit(f"repro {args.command}: no protocols in {args.protocols!r}")
    for name in names:
        if name.lower() not in PROTOCOL_NAMES and name.lower() != "fixed":
            raise SystemExit(
                f"repro {args.command}: unknown protocol {name!r}; "
                f"known: {', '.join(PROTOCOL_NAMES)}"
            )
    return [
        FlowSpec(name, start_time=i * args.stagger) for i, name in enumerate(names)
    ]


def cmd_trace(args: argparse.Namespace) -> int:
    """Record (or replay) a trace and filter/summarise/export it."""
    from .harness import run_flows
    from .obs import (
        CollectingTracer,
        event_to_json,
        events_to_jsonl,
        filter_events,
        read_jsonl,
        trace_digest,
    )

    flows = args.flow or None
    links = args.link or None
    kinds = args.kind or None
    if args.replay:
        try:
            records = read_jsonl(args.replay)
        except (OSError, ValueError) as exc:
            print(f"repro trace: cannot read {args.replay}: {exc}", file=sys.stderr)
            return 2
        source = args.replay
    else:
        tracer = CollectingTracer()
        run_flows(
            _specs_from_args(args),
            _link_from_args(args),
            duration_s=args.duration,
            seed=args.seed,
            timeline=_timeline_from_args(args),
            topology=_topology_from_args(args),
            tracer=tracer,
        )
        records = tracer.to_dicts()
        source = f"live run ({args.protocols})"
    total = len(records)
    records = filter_events(records, flows=flows, links=links, kinds=kinds)
    by_kind: dict[str, int] = {}
    for record in records:
        by_kind[record["kind"]] = by_kind.get(record["kind"], 0) + 1
    print_table(
        ["kind", "events"],
        [(kind, str(count)) for kind, count in sorted(by_kind.items())]
        + [("total (matched/all)", f"{len(records)}/{total}")],
        title=f"trace of {source}",
    )
    print(f"digest: {trace_digest(records)}")
    if args.limit:
        for record in records[: args.limit]:
            print(event_to_json(record))
    if args.out:
        from pathlib import Path

        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(events_to_jsonl(records))
        print(f"wrote {args.out} ({len(records)} events)")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run a scenario with a metrics registry attached and print it."""
    import json as json_mod

    from .harness import run_flows
    from .obs import MetricsRegistry

    registry = MetricsRegistry()
    run_flows(
        _specs_from_args(args),
        _link_from_args(args),
        duration_s=args.duration,
        seed=args.seed,
        timeline=_timeline_from_args(args),
        topology=_topology_from_args(args),
        metrics=registry,
        sample_period_s=args.sample,
    )
    snapshot = registry.snapshot()
    rows: list[tuple[str, str]] = []
    for key, value in snapshot["counters"].items():
        rows.append((key, str(value)))
    for key, value in snapshot["gauges"].items():
        rows.append((key, "-" if value is None else f"{value:.6g}"))
    for key, hist in snapshot["histograms"].items():
        mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
        rows.append(
            (key, f"n={hist['count']} mean={mean:.6g} max={hist.get('max', 0):.6g}")
        )
    print_table(
        ["series", "value"], rows, title=f"metrics for {args.protocols}"
    )
    if args.json:
        from pathlib import Path

        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json_mod.dumps(snapshot, indent=2, sort_keys=True))
        print(f"wrote {args.json}")
    return 0


def _csv_floats(raw: str | None, default: tuple[float, ...]) -> tuple[float, ...]:
    if raw is None:
        return default
    try:
        values = tuple(float(part) for part in raw.split(",") if part.strip())
    except ValueError as exc:
        raise SystemExit(f"repro sweep: bad float list {raw!r}: {exc}") from exc
    if not values:
        raise SystemExit(f"repro sweep: empty float list {raw!r}")
    return values


def cmd_sweep(args: argparse.Namespace) -> int:
    """Supervised, resumable Fig-8 matrix sweep (see docs/ROBUSTNESS.md)."""
    import os

    from .harness.scenarios import (
        MATRIX_BANDWIDTHS_MBPS,
        MATRIX_BUFFER_BDP,
        MATRIX_RTTS_MS,
        config_matrix,
    )
    from .harness.supervise import (
        STATUS_OK,
        RetryPolicy,
        run_matrix,
        summarize_outcomes,
    )

    if args.max_events is not None:
        # Watchdog budget for every simulation in this sweep (workers
        # inherit the environment).
        os.environ["REPRO_MAX_EVENTS"] = str(args.max_events)
    manifest = args.resume or args.manifest
    configs = config_matrix(
        _csv_floats(args.bandwidths, MATRIX_BANDWIDTHS_MBPS),
        _csv_floats(args.rtts, MATRIX_RTTS_MS),
        _csv_floats(args.buffers, MATRIX_BUFFER_BDP),
    )
    if args.limit is not None:
        configs = configs[: args.limit]
    policy = RetryPolicy() if args.retries is None else RetryPolicy(retries=args.retries)
    outcomes = run_matrix(
        primary=args.primary,
        scavenger=args.scavenger,
        configs=configs,
        n_trials=args.trials,
        base_seed=args.seed,
        duration_s=args.duration,
        jobs=args.jobs,
        policy=policy,
        manifest=manifest,
    )
    counts = summarize_outcomes(outcomes)
    ratios = [
        outcome.value["primary_throughput_ratio"]
        for outcome in outcomes
        if outcome.ok and isinstance(outcome.value, dict)
    ]
    rows = [
        ("cells", str(counts["total"])),
        ("ok", str(counts[STATUS_OK])),
        ("failed", str(counts["failed"])),
        ("timed-out", str(counts["timed-out"])),
        ("crashed-worker", str(counts["crashed-worker"])),
        ("resumed from manifest", str(counts["resumed"])),
    ]
    if ratios:
        rows.append(
            ("mean primary tput ratio", f"{sum(ratios) / len(ratios):.3f}")
        )
    print_table(
        ["metric", "value"],
        rows,
        title=f"sweep {args.primary} vs {args.scavenger} "
        f"({len(configs)} configs x {args.trials} trials)",
    )
    if manifest:
        print(f"manifest: {manifest}")
    failures = [outcome for outcome in outcomes if not outcome.ok]
    for outcome in failures[:5]:
        label = (outcome.payload or {}).get("config", {}).get("label", outcome.key[:12])
        print(
            f"  {outcome.status}: {label} seed={outcome.seed} "
            f"attempts={outcome.attempts} error={outcome.error}",
            file=sys.stderr,
        )
    if len(failures) > 5:
        print(f"  ... and {len(failures) - 5} more failures", file=sys.stderr)
    return 1 if failures else 0


def cmd_attack(args: argparse.Namespace) -> int:
    """Adversarial scenario search (see docs/ADVERSARY.md)."""
    import json
    import os

    from .adversary import (
        CampaignConfig,
        replay_artifact,
        run_campaign,
        shrink_item,
    )

    if args.replay:
        try:
            report = replay_artifact(args.replay)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro attack: cannot replay {args.replay}: {exc}", file=sys.stderr)
            return 2
        print_table(
            ["metric", "value"],
            [
                ("objective", report["objective"]),
                ("recorded score", f"{report['recorded_score']:.6g}"),
                ("recomputed score", f"{report['recomputed_score']:.6g}"),
                ("violation", str(report["violation"])),
                ("bit-exact match", str(report["match"])),
            ],
            title=f"replay of {args.replay}",
        )
        return 0 if report["match"] else 1

    if args.shrink:
        try:
            record = json.loads(Path(args.shrink).read_text())
            result = shrink_item(record["item"])
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro attack: cannot shrink {args.shrink}: {exc}", file=sys.stderr)
            return 2
        out_path = Path(args.shrink).with_suffix(".shrunk.json")
        from .adversary import artifact_record

        config = CampaignConfig.from_dict(record["campaign"])
        shrunk_record = artifact_record(
            config,
            result.item,
            result.value,
            eval_index=record.get("eval_index", 0),
            parent={"size": result.parent_size, "path": str(args.shrink)},
        )
        out_path.write_text(json.dumps(shrunk_record, sort_keys=True, indent=1) + "\n")
        print_table(
            ["metric", "value"],
            [
                ("parent size", str(result.parent_size)),
                ("shrunk size", str(result.size)),
                ("accepted steps", str(result.steps)),
                ("score", f"{float(result.value['score']):.6g}"),
                ("wrote", str(out_path)),
            ],
            title=f"shrink of {args.shrink}",
        )
        return 0

    if not args.no_cache:
        # Identical genomes (and shrink re-evaluations) hit the result
        # cache; workers inherit the environment.
        os.environ.setdefault("REPRO_CACHE", "1")
    controller_params = {}
    if args.controller_params:
        try:
            controller_params = json.loads(args.controller_params)
        except ValueError as exc:
            raise SystemExit(
                f"repro attack: bad --controller-params JSON: {exc}"
            ) from exc
    config = CampaignConfig(
        objective=args.objective,
        controller={"protocol": args.controller, "params": controller_params},
        primary=args.primary,
        budget=args.budget,
        seed=args.seed,
        generation_size=args.generation,
        elite_count=args.elites,
        duration_s=args.duration,
        threshold=args.threshold,
    )
    try:
        result = run_campaign(
            config,
            args.out,
            jobs=args.jobs,
            shrink=not args.no_shrink,
            resume=args.resume,
        )
    except (FileExistsError, ValueError) as exc:
        print(f"repro attack: {exc}", file=sys.stderr)
        return 2
    summary = result.summary()
    statuses = summary["statuses"]
    rows = [
        ("objective", summary["objective"]),
        ("evaluations", str(summary["evaluations"])),
        (
            "ok / failed / timed-out / crashed",
            "{} / {} / {} / {}".format(
                statuses.get("ok", 0),
                statuses.get("failed", 0),
                statuses.get("timed-out", 0),
                statuses.get("crashed-worker", 0),
            ),
        ),
        ("violations", str(summary["violations"])),
        (
            "best score",
            "-" if summary["best_score"] is None else f"{summary['best_score']:.6g}",
        ),
        ("best is a violation", str(summary["best_violation"])),
    ]
    if result.shrunk is not None:
        rows.append(
            (
                "shrunk reproducer",
                f"size {result.shrunk.parent_size} -> {result.shrunk.size} "
                f"({result.out_dir / 'best_shrunk.json'})",
            )
        )
    print_table(
        ["metric", "value"],
        rows,
        title=f"attack on {args.controller} ({config.objective}, "
        f"seed {config.seed})",
    )
    print(f"campaign: {result.out_dir}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    # Imported here so simulation commands never pay for the lint engine.
    from .devtools.lint import describe_rules, format_json, format_text, lint_paths

    if args.list_rules:
        print(describe_rules())
        return 0
    paths = args.paths if args.paths else ["src"]
    try:
        violations = lint_paths(paths)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(format_json(violations))
    else:
        print(format_text(violations))
    return 1 if violations else 0


def cmd_check(args: argparse.Namespace) -> int:
    # Imported here so simulation commands never pay for the analyzers.
    from .devtools.analysis import (
        Baseline,
        Project,
        describe_checks,
        format_report_github,
        format_report_json,
        format_report_text,
        run_check,
        write_trace_schema,
    )

    if args.list_checks:
        print(describe_checks())
        return 0
    paths = args.paths if args.paths else ["src"]
    if args.docs_dir:
        docs_dir = Path(args.docs_dir)
    else:
        # Auto-detect: documentation checks only make sense at repo root.
        docs_dir = Path("docs") if Path("docs").is_dir() else None
    try:
        project = Project.load(paths)
    except FileNotFoundError as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return 2
    if args.update_schema:
        if docs_dir is None:
            print("repro check: --update-schema needs --docs-dir", file=sys.stderr)
            return 2
        written = write_trace_schema(paths, docs_dir, project=project)
        print(f"wrote {written}")

    baseline = None
    baseline_path = Path(args.baseline) if args.baseline else None
    if baseline_path is not None and baseline_path.exists():
        baseline = Baseline.load(baseline_path)
    try:
        report = run_check(
            paths,
            checks=args.check or None,
            baseline=baseline,
            docs_dir=docs_dir,
            project=project,
        )
    except ValueError as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        if baseline_path is None:
            print("repro check: --update-baseline needs --baseline", file=sys.stderr)
            return 2
        seeded = Baseline.from_findings(report.findings)
        # Keep still-live entries (with their justifications) and append
        # fresh ones for new findings.
        live = [e for e in baseline.entries if e not in report.stale_entries] if baseline else []
        covered = {(e.rule, e.path) for e in live}
        seeded.entries = live + [
            e for e in seeded.entries if (e.rule, e.path) not in covered
        ]
        seeded.write(baseline_path)
        print(f"wrote {baseline_path} ({len(seeded.entries)} entries)")
        return 0

    if args.format == "json":
        print(format_report_json(report))
    elif args.format == "github":
        output = format_report_github(report)
        if output:
            print(output)
    else:
        print(format_report_text(report))
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PCC Proteus reproduction — run paper scenarios",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_single = sub.add_parser("single", help="one flow alone on a bottleneck")
    p_single.add_argument("--protocol", default="proteus-p", choices=PROTOCOL_NAMES)
    _add_link_args(p_single)
    p_single.set_defaults(fn=cmd_single)

    p_pair = sub.add_parser("pair", help="scavenger vs primary")
    p_pair.add_argument("--primary", default="cubic", choices=PROTOCOL_NAMES)
    p_pair.add_argument("--scavenger", default="proteus-s", choices=PROTOCOL_NAMES)
    _add_link_args(p_pair)
    p_pair.set_defaults(fn=cmd_pair)

    p_fair = sub.add_parser("fairness", help="n same-protocol flows")
    p_fair.add_argument("--protocol", default="proteus-s", choices=PROTOCOL_NAMES)
    p_fair.add_argument("--flows", type=int, default=4)
    p_fair.add_argument("--stagger", type=float, default=5.0)
    _add_link_args(p_fair)
    p_fair.set_defaults(fn=cmd_fairness)

    p_many = sub.add_parser(
        "many",
        help="many short primary flows vs a few scavengers on a shared core",
    )
    p_many.add_argument("--primary", default="cubic", choices=PROTOCOL_NAMES)
    p_many.add_argument("--scavenger", default="proteus-s", choices=PROTOCOL_NAMES)
    p_many.add_argument(
        "--flows", type=int, default=1000, help="number of short primary flows"
    )
    p_many.add_argument(
        "--scavengers", type=int, default=4, help="long-lived scavenger flows"
    )
    p_many.add_argument(
        "--flow-kb", type=float, default=50.0, help="size of each short flow, KB"
    )
    _add_link_args(p_many)
    p_many.set_defaults(fn=cmd_many)

    p_list = sub.add_parser("protocols", help="list protocol names")
    p_list.set_defaults(fn=cmd_protocols)

    p_bench = sub.add_parser(
        "bench",
        help="performance benchmark suite (see docs/PERFORMANCE.md)",
    )
    p_bench.add_argument(
        "--quick", action="store_true", help="reduced scale for CI smoke runs"
    )
    p_bench.add_argument(
        "--out",
        default="BENCH_sim.json",
        help="trajectory history JSON; each run appends a machine-tagged entry",
    )
    p_bench.add_argument(
        "--fidelity",
        default=None,
        choices=["exact", "hybrid"],
        help="execution fidelity of the scenario bench "
        "(default: REPRO_FIDELITY, else exact)",
    )
    p_bench.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="write a cProfile top-20 report of the scenario bench to PATH",
    )
    p_bench.add_argument(
        "--update-baseline",
        default=None,
        nargs="?",
        const="benchmarks/perf/baseline.json",
        metavar="PATH",
        help="write derated floors from this run to the committed baseline "
        "(default PATH: benchmarks/perf/baseline.json)",
    )
    p_bench.add_argument(
        "--check-against",
        default=None,
        metavar="BASELINE",
        help="fail (exit 1) if events/sec regresses >30%% vs this JSON",
    )
    p_bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FRACTION",
        help="override the regression tolerance (default 0.30); CI uses "
        "0.05 for the tracing-disabled overhead gate",
    )
    p_bench.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default REPRO_JOBS)"
    )
    p_bench.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    p_bench.add_argument(
        "--cache-dir", default=None, help="cache root (default .repro-cache)"
    )
    p_bench.set_defaults(fn=cmd_bench)

    p_sweep = sub.add_parser(
        "sweep",
        help="supervised, resumable Fig-8 matrix sweep (see docs/ROBUSTNESS.md)",
    )
    p_sweep.add_argument("--primary", default="cubic", choices=PROTOCOL_NAMES)
    p_sweep.add_argument("--scavenger", default="proteus-s", choices=PROTOCOL_NAMES)
    p_sweep.add_argument("--trials", type=int, default=1, help="seeds per config")
    p_sweep.add_argument("--seed", type=int, default=1, help="base seed")
    p_sweep.add_argument("--duration", type=float, default=10.0, help="seconds per cell")
    p_sweep.add_argument(
        "--bandwidths", default=None, metavar="CSV", help="Mbps list, e.g. 20,50,100"
    )
    p_sweep.add_argument(
        "--rtts", default=None, metavar="CSV", help="RTT ms list, e.g. 10,30,100"
    )
    p_sweep.add_argument(
        "--buffers", default=None, metavar="CSV", help="buffer sizes in BDP multiples"
    )
    p_sweep.add_argument(
        "--limit", type=int, default=None, help="run only the first N configs"
    )
    p_sweep.add_argument(
        "--manifest",
        default=None,
        metavar="JSONL",
        help="checkpoint each completed cell to this append-only manifest",
    )
    p_sweep.add_argument(
        "--resume",
        default=None,
        metavar="JSONL",
        help="resume from (and keep checkpointing to) this manifest",
    )
    p_sweep.add_argument(
        "--retries", type=int, default=None,
        help="retries per failing cell (default REPRO_TRIAL_RETRIES / 2)",
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default REPRO_JOBS)"
    )
    p_sweep.add_argument(
        "--max-events", type=int, default=None,
        help="engine watchdog: max events per simulation (sets REPRO_MAX_EVENTS)",
    )
    p_sweep.set_defaults(fn=cmd_sweep)

    p_trace = sub.add_parser(
        "trace",
        help="record or replay a trace with filters (see docs/OBSERVABILITY.md)",
    )
    p_trace.add_argument(
        "--protocols",
        default="cubic,proteus-s",
        metavar="CSV",
        help="comma-separated protocols, one flow each (staggered starts)",
    )
    p_trace.add_argument(
        "--stagger", type=float, default=1.0, help="seconds between flow starts"
    )
    _add_core_link_args(p_trace, default_duration=5.0)
    p_trace.add_argument(
        "--flow", type=int, action="append", metavar="ID",
        help="keep only this flow id (repeatable)",
    )
    p_trace.add_argument(
        "--link", action="append", metavar="NAME",
        help="keep only this link (repeatable, e.g. bottleneck)",
    )
    p_trace.add_argument(
        "--kind", action="append", metavar="PATTERN",
        help="keep only this event kind or namespace (repeatable, e.g. "
        "mi, link.drop, rate)",
    )
    p_trace.add_argument(
        "--limit", type=int, default=0, metavar="N",
        help="print the first N matching events as JSONL",
    )
    p_trace.add_argument(
        "--out", default=None, metavar="JSONL",
        help="write matching events as canonical JSONL",
    )
    p_trace.add_argument(
        "--replay", default=None, metavar="JSONL",
        help="filter a previously recorded trace file instead of running",
    )
    p_trace.set_defaults(fn=cmd_trace)

    p_metrics = sub.add_parser(
        "metrics",
        help="run a scenario with a metrics registry attached",
    )
    p_metrics.add_argument(
        "--protocols",
        default="cubic,proteus-s",
        metavar="CSV",
        help="comma-separated protocols, one flow each (staggered starts)",
    )
    p_metrics.add_argument(
        "--stagger", type=float, default=1.0, help="seconds between flow starts"
    )
    _add_core_link_args(p_metrics, default_duration=10.0)
    p_metrics.add_argument(
        "--sample", type=float, default=None, metavar="SECONDS",
        help="also sample bottleneck backlog every SECONDS of sim time",
    )
    p_metrics.add_argument(
        "--json", default=None, metavar="PATH", help="write the snapshot JSON"
    )
    p_metrics.set_defaults(fn=cmd_metrics)

    p_attack = sub.add_parser(
        "attack",
        help="adversarial scenario search against a controller "
        "(see docs/ADVERSARY.md)",
    )
    p_attack.add_argument(
        "--objective",
        default="primary_harm",
        choices=["primary_harm", "starvation"],
        help="violation objective the search maximizes",
    )
    p_attack.add_argument(
        "--budget", type=int, default=200, help="genome evaluations to spend"
    )
    p_attack.add_argument("--seed", type=int, default=7, help="campaign seed")
    p_attack.add_argument(
        "--controller",
        default="proteus-s",
        choices=PROTOCOL_NAMES,
        help="controller under test (the scavenger)",
    )
    p_attack.add_argument(
        "--controller-params",
        default=None,
        metavar="JSON",
        help="extra controller kwargs as JSON, e.g. "
        '\'{"utility_params": {"d": 1.0}}\' for a mis-tuned Proteus-S',
    )
    p_attack.add_argument(
        "--primary", default="cubic", choices=PROTOCOL_NAMES,
        help="the primary flow whose throughput the scavenger must not steal",
    )
    p_attack.add_argument(
        "--out", default="attack-out", metavar="DIR",
        help="campaign directory (manifest, artifacts)",
    )
    p_attack.add_argument(
        "--resume",
        action="store_true",
        help="continue the campaign recorded in --out (bit-identical result)",
    )
    p_attack.add_argument(
        "--replay", default=None, metavar="ARTIFACT",
        help="re-evaluate an archived artifact and verify bit-exact equality",
    )
    p_attack.add_argument(
        "--shrink", default=None, metavar="ARTIFACT",
        help="delta-debug an archived artifact to a minimal reproducer",
    )
    p_attack.add_argument(
        "--no-shrink", action="store_true",
        help="skip the automatic shrink of the campaign's best violation",
    )
    p_attack.add_argument(
        "--generation", type=int, default=20, help="genomes per generation"
    )
    p_attack.add_argument(
        "--elites", type=int, default=5, help="elite pool for mutation/crossover"
    )
    p_attack.add_argument(
        "--duration", type=float, default=8.0, help="simulated seconds per run"
    )
    p_attack.add_argument(
        "--threshold", type=float, default=None,
        help="violation threshold (default: objective-specific)",
    )
    p_attack.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default REPRO_JOBS)"
    )
    p_attack.add_argument(
        "--no-cache", action="store_true", help="do not enable the result cache"
    )
    p_attack.set_defaults(fn=cmd_attack)

    p_lint = sub.add_parser(
        "lint",
        help="determinism/unit-safety static analyzer (see docs/DEVTOOLS.md)",
    )
    p_lint.add_argument(
        "paths", nargs="*", help="files or directories (default: src)"
    )
    p_lint.add_argument(
        "--list-rules", action="store_true", help="describe the rules and exit"
    )
    p_lint.add_argument(
        "--json", action="store_true", help="emit violations as JSON"
    )
    p_lint.set_defaults(fn=cmd_lint)

    p_check = sub.add_parser(
        "check",
        help="whole-program static analysis: units, races, tracepoints, "
        "layering (see docs/DEVTOOLS.md)",
    )
    p_check.add_argument(
        "paths", nargs="*", help="files or directories (default: src)"
    )
    p_check.add_argument(
        "--check",
        action="append",
        metavar="ANALYZER",
        help="run only this analyzer (repeatable; default: all)",
    )
    p_check.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="finding output format (github = workflow annotations)",
    )
    p_check.add_argument(
        "--baseline",
        default="check_baseline.json",
        metavar="PATH",
        help="justified-exception file (missing file = empty baseline)",
    )
    p_check.add_argument(
        "--docs-dir",
        default=None,
        metavar="DIR",
        help="docs directory for tracepoint schema checks "
        "(default: ./docs when it exists)",
    )
    p_check.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to cover current findings, keeping "
        "justifications of entries that still match",
    )
    p_check.add_argument(
        "--update-schema",
        action="store_true",
        help="regenerate docs/TRACE_SCHEMA.md from the emit sites",
    )
    p_check.add_argument(
        "--list-checks", action="store_true", help="describe analyzers and exit"
    )
    p_check.set_defaults(fn=cmd_check)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
