"""TCP Vegas (Brakmo et al. 1994) — the classic delay-based baseline.

Referenced by the paper's related work as the ancestor of delay-based
congestion control.  Vegas compares the expected throughput
(``cwnd / base_rtt``) with the actual (``cwnd / rtt``); the difference,
in packets, estimates how much of the window sits in the queue.  Once
per RTT: below ``alpha`` queued packets, grow; above ``beta``, shrink.
"""

from __future__ import annotations

from .base import AckInfo, WindowSender


class VegasSender(WindowSender):
    """TCP Vegas congestion control."""

    alpha = 2.0
    beta = 4.0
    gamma = 1.0  # slow-start exit threshold (queued packets)
    min_cwnd = 2.0

    def __init__(self, name: str = "vegas"):
        super().__init__(name)
        self._base_rtt: float | None = None
        self._rtt_sum = 0.0
        self._rtt_count = 0
        self._epoch_start = 0.0
        self._slow_start = True
        self._recovery_end = 0.0

    def _diff_packets(self, mean_rtt: float) -> float:
        expected = self.cwnd / self._base_rtt
        actual = self.cwnd / mean_rtt
        return (expected - actual) * self._base_rtt

    def on_ack(self, info: AckInfo) -> None:
        if self._base_rtt is None or info.rtt < self._base_rtt:
            self._base_rtt = info.rtt
        self._rtt_sum += info.rtt
        self._rtt_count += 1
        now = self.sim.now
        if now - self._epoch_start < (self.srtt or info.rtt):
            return  # one adjustment per RTT
        mean_rtt = self._rtt_sum / self._rtt_count
        self._rtt_sum = 0.0
        self._rtt_count = 0
        self._epoch_start = now
        diff = self._diff_packets(mean_rtt)
        if self._slow_start:
            if diff > self.gamma:
                self._slow_start = False
                self.cwnd = max(self.min_cwnd, self.cwnd * 0.75)
            else:
                self.cwnd *= 2.0
            return
        if diff < self.alpha:
            self.cwnd += 1.0
        elif diff > self.beta:
            self.cwnd = max(self.min_cwnd, self.cwnd - 1.0)

    def on_loss(self, seq: int, sent_time: float) -> None:
        if sent_time < self._recovery_end:
            return
        self._recovery_end = self.sim.now
        self._slow_start = False
        self.cwnd = max(self.min_cwnd, self.cwnd * 0.75)
        if self.tracer is not None:
            self.trace("cwnd.change", cwnd=self.cwnd, reason="vegas:loss")

    def on_timeout(self) -> None:
        self.cwnd = self.min_cwnd
        self._slow_start = False
        if self.tracer is not None:
            self.trace("cwnd.change", cwnd=self.cwnd, reason="vegas:timeout")
