"""Congestion-control protocol implementations.

Every protocol the paper evaluates is here: the primary baselines (CUBIC,
BBR, COPA, PCC Vivace), the scavenger baseline (LEDBAT at 100 ms and
25 ms targets), the §7.1 BBR-S demonstration, a fixed-rate probe, and a
name-based factory used by the experiment harness.

Proteus itself lives in :mod:`~repro.protocols.proteus`;
:func:`make_sender` exposes it under the names ``proteus-p``,
``proteus-s``, and ``proteus-h``.
"""

from __future__ import annotations

from .base import AckInfo, RateSender, SenderBase, WindowSender
from .bbr import BBRSender
from .bbr_s import BBRScavengerSender
from .copa import CopaSender
from .cubic import CubicSender, RenoSender
from .fixed_rate import FixedRateSender
from .hostile import BurstFloodSender, OnOffSquareSender
from .ledbat import Ledbat25Sender, LedbatSender
from .ledbat_pp import LedbatPPSender
from .proteus import ProteusSender
from .vegas import VegasSender
from .vivace import VivaceSender

PROTOCOL_NAMES = (
    "cubic",
    "reno",
    "vegas",
    "bbr",
    "bbr-s",
    "copa",
    "vivace",
    "allegro",
    "ledbat",
    "ledbat-25",
    "ledbat++",
    "proteus-p",
    "proteus-s",
    "proteus-h",
    "burst-flood",
    "onoff",
)


def make_sender(name: str, seed: int = 0, **kwargs) -> SenderBase:
    """Instantiate a sender by protocol name.

    Extra keyword arguments are forwarded to the protocol constructor
    (e.g. ``utility=...`` for the Proteus variants, ``target_s`` for
    LEDBAT).
    """
    key = name.lower()
    if key == "cubic":
        return CubicSender(**kwargs)
    if key == "reno":
        return RenoSender(**kwargs)
    if key == "vegas":
        return VegasSender(**kwargs)
    if key == "bbr":
        return BBRSender(**kwargs)
    if key == "bbr-s":
        return BBRScavengerSender(**kwargs)
    if key == "copa":
        return CopaSender(**kwargs)
    if key == "vivace":
        return VivaceSender(seed=seed, **kwargs)
    if key == "ledbat":
        return LedbatSender(**kwargs)
    if key == "ledbat-25":
        return Ledbat25Sender(**kwargs)
    if key in ("ledbat++", "ledbat-pp"):
        return LedbatPPSender(**kwargs)
    if key in ("proteus-p", "proteus-s", "proteus-h", "allegro"):
        utility_params = kwargs.pop("utility_params", None)
        if utility_params is not None:
            # JSON-able mis-tuning hook (used by repro.adversary): build
            # the named utility with explicit parameters instead of the
            # stock defaults.
            from ..core.utility import make_utility

            kwargs.setdefault("utility", make_utility(key, **utility_params))
        kwargs.setdefault("utility", key)
        return ProteusSender(seed=seed, **kwargs)
    if key == "fixed":
        return FixedRateSender(**kwargs)
    if key == "burst-flood":
        return BurstFloodSender(seed=seed, **kwargs)
    if key == "onoff":
        return OnOffSquareSender(seed=seed, **kwargs)
    raise ValueError(f"unknown protocol {name!r}; known: {PROTOCOL_NAMES}")


__all__ = [
    "AckInfo",
    "BBRScavengerSender",
    "BBRSender",
    "BurstFloodSender",
    "CopaSender",
    "CubicSender",
    "FixedRateSender",
    "Ledbat25Sender",
    "LedbatPPSender",
    "LedbatSender",
    "OnOffSquareSender",
    "PROTOCOL_NAMES",
    "ProteusSender",
    "RateSender",
    "RenoSender",
    "SenderBase",
    "VegasSender",
    "VivaceSender",
    "WindowSender",
    "make_sender",
]
