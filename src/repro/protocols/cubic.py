"""TCP CUBIC (Ha, Rhee, Xu 2008; RFC 8312) on the window-sender base.

Implements slow start, the cubic window growth function with fast
convergence, the TCP-friendly region, and multiplicative decrease with
beta = 0.7.  Loss episodes are collapsed so one congestion event causes
one reduction (losses of packets sent before the reduction are ignored).
"""

from __future__ import annotations

from .base import AckInfo, WindowSender


class CubicSender(WindowSender):
    """TCP CUBIC congestion control."""

    C = 0.4
    beta = 0.7
    min_cwnd = 2.0

    def __init__(self, name: str = "cubic"):
        super().__init__(name)
        self.ssthresh = float("inf")
        self.w_max = 0.0
        self._epoch_start: float | None = None
        self._k = 0.0
        self._origin = 0.0
        self._recovery_end = 0.0  # losses of packets sent before this are old news
        self._ack_count_since_epoch = 0.0

    # ------------------------------------------------------------------
    def on_ack(self, info: AckInfo) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
            return
        now = self.sim.now
        if self._epoch_start is None:
            self._epoch_start = now
            self._ack_count_since_epoch = 0.0
            if self.cwnd < self.w_max:
                self._k = ((self.w_max - self.cwnd) / self.C) ** (1.0 / 3.0)
            else:
                self._k = 0.0
            self._origin = max(self.cwnd, self.w_max)
        t = now - self._epoch_start
        rtt = self.srtt if self.srtt is not None else 0.0
        target = self._origin + self.C * (t + rtt - self._k) ** 3
        if target > self.cwnd:
            self.cwnd += (target - self.cwnd) / self.cwnd
        else:
            # Tiny probing increment so the window is never frozen.
            self.cwnd += 0.01 / self.cwnd
        # TCP-friendly region (standard-TCP estimate since the epoch).
        self._ack_count_since_epoch += 1.0
        if rtt > 0:
            w_est = self.w_max * self.beta + (
                3.0 * (1.0 - self.beta) / (1.0 + self.beta)
            ) * (t / rtt)
            if w_est > self.cwnd:
                self.cwnd = w_est

    def on_loss(self, seq: int, sent_time: float) -> None:
        if sent_time < self._recovery_end:
            return  # same congestion episode
        now = self.sim.now
        self._recovery_end = now
        # Fast convergence: release bandwidth faster when w_max shrinks.
        if self.cwnd < self.w_max:
            self.w_max = self.cwnd * (2.0 - self.beta) / 2.0
        else:
            self.w_max = self.cwnd
        self.cwnd = max(self.min_cwnd, self.cwnd * self.beta)
        self.ssthresh = self.cwnd
        self._epoch_start = None
        if self.tracer is not None:
            self.trace("cwnd.change", cwnd=self.cwnd, reason="cubic:loss")

    def on_timeout(self) -> None:
        self.ssthresh = max(self.min_cwnd, self.cwnd / 2.0)
        self.cwnd = self.min_cwnd
        self._epoch_start = None
        self._recovery_end = self.sim.now
        if self.tracer is not None:
            self.trace("cwnd.change", cwnd=self.cwnd, reason="cubic:timeout")


class RenoSender(WindowSender):
    """TCP NewReno-style AIMD, kept as a simple reference baseline."""

    min_cwnd = 2.0

    def __init__(self, name: str = "reno"):
        super().__init__(name)
        self.ssthresh = float("inf")
        self._recovery_end = 0.0

    def on_ack(self, info: AckInfo) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
        else:
            self.cwnd += 1.0 / self.cwnd

    def on_loss(self, seq: int, sent_time: float) -> None:
        if sent_time < self._recovery_end:
            return
        self._recovery_end = self.sim.now
        self.cwnd = max(self.min_cwnd, self.cwnd / 2.0)
        self.ssthresh = self.cwnd
        if self.tracer is not None:
            self.trace("cwnd.change", cwnd=self.cwnd, reason="reno:loss")

    def on_timeout(self) -> None:
        self.ssthresh = max(self.min_cwnd, self.cwnd / 2.0)
        self.cwnd = self.min_cwnd
        self._recovery_end = self.sim.now
        if self.tracer is not None:
            self.trace("cwnd.change", cwnd=self.cwnd, reason="reno:timeout")
