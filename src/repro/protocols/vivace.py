"""PCC Vivace baseline.

Vivace is Proteus's ancestor: the same monitor-interval framework and
gradient rate control, but (a) the original utility function that rewards
negative RTT gradient, (b) 2-pair probing requiring agreement (no
majority rule), and (c) none of Proteus's adaptive noise-tolerance
mechanisms — only the fixed gradient-tolerance threshold from the Vivace
paper, modelled here by simply disabling the adaptive pipeline.
"""

from __future__ import annotations

from ..core.noise_tolerance import NoiseToleranceConfig
from .proteus import ProteusSender
from ..core.rate_control import RateControlConfig
from ..core.utility import VivaceUtility


class VivaceSender(ProteusSender):
    """PCC Vivace: utility framework without Proteus's improvements."""

    def __init__(self, name: str = "vivace", initial_rate_bps: float = 2e6, seed: int = 0):
        super().__init__(
            utility=VivaceUtility(),
            name=name,
            initial_rate_bps=initial_rate_bps,
            noise_config=NoiseToleranceConfig(
                ack_filter=False,
                regression_tolerance=True,  # Vivace's fixed tolerance analogue
                trending_tolerance=False,
                majority_rule=False,
            ),
            control_config=RateControlConfig(probe_pairs=2, require_unanimous=True),
            seed=seed,
        )
