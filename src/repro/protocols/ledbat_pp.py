"""LEDBAT++ (draft-irtf-iccrg-ledbat-plus-plus; Windows' scavenger).

The paper cites the Windows LEDBAT deployment [5, 7]; LEDBAT++ is the
revision that ships there.  Its changes over RFC 6817, reproduced here:

* a 60 ms target (lower than the IETF's 100 ms);
* multiplicative decrease proportional to queueing delay
  (``cwnd -= max(cwnd/2, GAIN * cwnd * qd/target)`` style — modelled as
  the standard additive controller plus a stronger over-target pull);
* **periodic slowdowns**: every ~9 x the time it took to ramp, the
  sender collapses its window to 2 packets for two RTTs to re-measure
  the base delay — the designed-in fix for the latecomer problem;
* slower-than-Reno additive growth (GAIN scaled by ssthresh ratio;
  modelled with gain = 1 but the slowdown machinery dominating).
"""

from __future__ import annotations

from .base import AckInfo
from .ledbat import LedbatSender

SLOWDOWN_HOLD_RTTS = 2.0
SLOWDOWN_FACTOR = 9.0


class LedbatPPSender(LedbatSender):
    """LEDBAT++ with periodic slowdowns and a 60 ms target."""

    def __init__(self, name: str = "ledbat++", target_s: float = 0.060):
        super().__init__(name, target_s=target_s)
        self._slowdown_until: float | None = None
        self._next_slowdown: float | None = None
        self._ramp_started: float | None = None
        # Infinite until the first slowdown: the initial ramp only ends
        # via the delay-target condition, not a window comparison.
        self._saved_cwnd = float("inf")
        self.slowdowns = 0

    def on_ack(self, info: AckInfo) -> None:
        now = self.sim.now
        rtt = self.srtt if self.srtt is not None else info.rtt
        if self._slowdown_until is not None:
            # Parked at minimum window: only collect base-delay samples.
            self._update_base_delay(now, info.one_way_delay)
            self._current.append(info.one_way_delay)
            if now >= self._slowdown_until:
                self._slowdown_until = None
                self._ramp_started = now
                self.cwnd = max(self.min_cwnd, self._saved_cwnd / 2.0)
            return
        if self._ramp_started is None:
            self._ramp_started = now
        super().on_ack(info)
        if self._next_slowdown is None:
            # The ramp ends when the window regains its pre-slowdown size
            # (or growth stalls at the delay target); the next slowdown is
            # scheduled 9x the ramp duration later, so the duty cycle of
            # slowdowns is bounded at ~10%.
            ramp_done = self.cwnd >= self._saved_cwnd or (
                not self._slow_start
                and self.queuing_delay() >= 0.9 * self.target_s
            )
            if ramp_done:
                ramp = max(now - self._ramp_started, 2.0 * rtt)
                self._next_slowdown = now + SLOWDOWN_FACTOR * ramp
        elif now >= self._next_slowdown:
            self._enter_slowdown(now, rtt)

    def _enter_slowdown(self, now: float, rtt: float) -> None:
        self.slowdowns += 1
        self._saved_cwnd = self.cwnd
        self.cwnd = self.min_cwnd
        self._slowdown_until = now + SLOWDOWN_HOLD_RTTS * rtt
        self._next_slowdown = None
        if self.tracer is not None:
            self.trace("cwnd.change", cwnd=self.cwnd, reason="ledbat++:slowdown")

    def in_slowdown(self) -> bool:
        return self._slowdown_until is not None
