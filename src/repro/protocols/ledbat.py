"""LEDBAT (RFC 6817) — the scavenger baseline the paper argues against.

One-way delay is measured exactly through the simulator's timestamp echo
(standing in for the TCP timestamp option libutp relies on).  Base delay
keeps the RFC's ten one-minute-bucket history; the *latecomer advantage*
the paper highlights emerges naturally because a flow joining an
already-loaded bottleneck measures an inflated "base" delay.

The IETF-standard 100 ms target (``LedbatSender``) and the original
draft's 25 ms target (``Ledbat25Sender``) are both provided for the
Appendix B experiments.
"""

from __future__ import annotations

from collections import deque

from .base import AckInfo, WindowSender

BASE_HISTORY_BUCKETS = 10
BUCKET_SECONDS = 60.0
CURRENT_FILTER = 4  # current-delay filter: min of the last 4 samples


class LedbatSender(WindowSender):
    """RFC 6817 LEDBAT with configurable target extra delay."""

    gain = 1.0
    min_cwnd = 2.0
    allowed_increase = 1.0  # max cwnd growth per on_ack, in packets

    def __init__(self, name: str = "ledbat", target_s: float = 0.100):
        super().__init__(name)
        if target_s <= 0:
            raise ValueError("target_s must be positive")
        self.target_s = target_s
        # Per-minute minima of observed one-way delay (RFC 6817 §3.4.2).
        self._base_buckets: deque[float] = deque(maxlen=BASE_HISTORY_BUCKETS)
        self._bucket_start: float | None = None
        self._current: deque[float] = deque(maxlen=CURRENT_FILTER)
        self._last_decrease = -1.0
        # libutp-style slow start: exponential growth until the queueing
        # delay approaches the target (or a loss), then delay-based control.
        self.ssthresh = float("inf")
        self._slow_start = True

    # ------------------------------------------------------------------
    def _update_base_delay(self, now: float, owd: float) -> None:
        if self._bucket_start is None or now - self._bucket_start >= BUCKET_SECONDS:
            self._bucket_start = now
            self._base_buckets.append(owd)
        elif owd < self._base_buckets[-1]:
            self._base_buckets[-1] = owd

    def base_delay(self) -> float:
        return min(self._base_buckets)

    def queuing_delay(self) -> float:
        return min(self._current) - self.base_delay()

    # ------------------------------------------------------------------
    def on_ack(self, info: AckInfo) -> None:
        now = self.sim.now
        owd = info.one_way_delay
        self._update_base_delay(now, owd)
        self._current.append(owd)
        queuing = self.queuing_delay()
        off_target = (self.target_s - queuing) / self.target_s
        if self._slow_start:
            if queuing >= 0.75 * self.target_s or self.cwnd >= self.ssthresh:
                self._slow_start = False
            else:
                self.cwnd += info.nbytes / self.mss
                return
        increase = self.gain * off_target * (info.nbytes / self.mss) / self.cwnd
        if increase > self.allowed_increase:
            increase = self.allowed_increase
        self.cwnd = max(self.min_cwnd, self.cwnd + increase)

    def on_loss(self, seq: int, sent_time: float) -> None:
        now = self.sim.now
        rtt = self.srtt if self.srtt is not None else 0.1
        if now - self._last_decrease < rtt:
            return  # at most one halving per RTT (RFC 6817 §2.4.2)
        self._last_decrease = now
        self.cwnd = max(self.min_cwnd, self.cwnd / 2.0)
        self.ssthresh = self.cwnd
        self._slow_start = False
        if self.tracer is not None:
            self.trace("cwnd.change", cwnd=self.cwnd, reason="ledbat:loss")

    def on_timeout(self) -> None:
        self.ssthresh = max(self.min_cwnd, self.cwnd / 2.0)
        self.cwnd = self.min_cwnd
        self._slow_start = False
        if self.tracer is not None:
            self.trace("cwnd.change", cwnd=self.cwnd, reason="ledbat:timeout")


class Ledbat25Sender(LedbatSender):
    """LEDBAT with the original draft's 25 ms target (Appendix B)."""

    def __init__(self, name: str = "ledbat25"):
        super().__init__(name, target_s=0.025)
