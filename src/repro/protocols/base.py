"""Sender framework shared by every congestion controller.

Two sender styles cover all protocols in the paper:

* :class:`WindowSender` — ACK-clocked, window-limited (CUBIC, LEDBAT).
* :class:`RateSender` — paced at an explicit sending rate with an optional
  in-flight cap (BBR, COPA, fixed-rate UDP, and the PCC family).

Both inherit :class:`SenderBase`, which owns sequence tracking, RTT
estimation, gap-based loss detection and the retransmission timeout.  The
simulator's links never reorder, so an ACK for a later-sent packet proves
every earlier unACKed packet was dropped — this gives exact per-packet
"acked or lost" accounting, which the PCC monitor-interval machinery
requires.
"""

from __future__ import annotations

from collections import deque

from ..sim import flowstate
from ..sim.engine import Event, Simulator
from ..sim.flow import Flow
from ..sim.packet import ACK_BYTES, MTU_BYTES, Packet
from ..core.rng import Rng

MIN_RTO_S = 0.25
"""Floor on the retransmission timeout."""


class AckInfo:
    """Per-ACK measurement handed to congestion-control hooks."""

    __slots__ = ("seq", "sent_time", "recv_time", "ack_time", "nbytes", "rtt")

    def __init__(
        self,
        seq: int,
        sent_time: float,
        recv_time: float,
        ack_time: float,
        nbytes: int,
    ):
        self.seq = seq
        self.sent_time = sent_time
        self.recv_time = recv_time
        self.ack_time = ack_time
        self.nbytes = nbytes
        self.rtt = ack_time - sent_time

    @property
    def one_way_delay(self) -> float:
        """Sender-to-receiver delay (exact: simulated clocks are synced)."""
        return self.recv_time - self.sent_time


class SenderBase:
    """Common sender machinery; subclasses implement the control law.

    Subclass hooks (all optional):
        ``on_start()`` — flow begins.
        ``on_ack(info)`` — a new packet was cumulatively acknowledged.
        ``on_loss(seq, sent_time)`` — a packet was declared lost.
        ``on_timeout()`` — the RTO fired with data outstanding.
    """

    mss = MTU_BYTES

    def __init__(self, name: str = "sender"):
        self.name = name
        self.sim: Simulator | None = None
        self.flow: Flow | None = None
        self.tracer = None
        self.started = False
        self.stopped = False
        self.paused = False
        # (seq, sent_time, size) of in-flight packets, oldest first.
        self._unacked: deque[tuple[int, float, int]] = deque()
        # Most senders leave on_sent as the base no-op; skipping the
        # call entirely saves one dispatch per packet on the hot path.
        self._notify_sent = type(self).on_sent is not SenderBase.on_sent
        self.inflight_bytes = 0
        self.srtt: float | None = None
        self.rttvar: float = 0.0
        self.min_rtt: float | None = None
        self._last_progress = 0.0
        self._rto_event: Event | None = None

    # ------------------------------------------------------------------
    # Lifecycle (called by Flow)
    # ------------------------------------------------------------------
    def bind(self, sim: Simulator, flow: Flow) -> None:
        self.sim = sim
        self.flow = flow
        self.tracer = sim.tracer
        # Per-sender jitter stream (deterministic from flow identity); used
        # to break pathological phase-locking between paced senders.
        self._jitter_rng = Rng(f"sender:{flow.flow_id}:{self.name}")

    def trace(self, kind: str, **fields) -> None:
        """Emit a trace event attributed to this sender's flow.

        Call sites on hot paths should guard with ``if self.tracer is not
        None`` themselves to skip the call entirely; this helper re-checks
        so cold paths can call it unconditionally.
        """
        if self.tracer is not None:
            self.tracer.emit(kind, self.sim.now, flow=self.flow.flow_id, **fields)

    def start(self) -> None:
        if self.sim is None:
            raise RuntimeError("sender must be bound to a flow before start")
        self.started = True
        self._last_progress = self.sim.now
        self.on_start()

    def stop(self) -> None:
        self.stopped = True
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def pause(self) -> None:
        """Application-level pause (e.g. full playback buffer)."""
        self.paused = True

    def resume(self) -> None:
        self.paused = False
        if self.started and not self.stopped:
            self.on_data_available()

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def inflight_packets(self) -> int:
        return len(self._unacked)

    def _transmit_one(self) -> bool:
        """Send one MSS (or the final short packet). False if no data."""
        flow = self.flow
        # Inlined flow.has_data() — this is the per-packet hot path.
        if flow is None or flow.completed or flow.bytes_unsent <= 0:
            return False
        size = self.mss
        if flow.bytes_unsent < size:
            size = max(1, int(flow.bytes_unsent))
        now = self.sim.now
        if flow.ff_collapse:
            seq, _accepted = flow.transmit_ff(size, now)
        else:
            seq, _accepted = flow.transmit(size)
        self._unacked.append((seq, now, size))
        self.inflight_bytes += size
        if self._rto_event is None:
            self._arm_rto()
        if self._notify_sent:
            self.on_sent(seq, size)
        return True

    def _transmit_one_at(self, at_s: float) -> None:
        """Collapsed send at virtual time ``at_s`` (paced-burst path).

        Only called by the hybrid burst tick, which has already verified
        data availability, the in-flight cap, and fast-forward
        eligibility for the whole burst window.
        """
        flow = self.flow
        size = self.mss
        if flow.bytes_unsent < size:
            size = max(1, int(flow.bytes_unsent))
        seq, _accepted = flow.transmit_ff(size, at_s)
        self._unacked.append((seq, at_s, size))
        self.inflight_bytes += size
        self._arm_rto()
        self.on_sent(seq, size)

    # ------------------------------------------------------------------
    # ACK / loss processing
    # ------------------------------------------------------------------
    def handle_ack_packet(self, ack: Packet) -> None:
        if self.stopped:
            return
        now = self.sim.now
        unacked = self._unacked
        # Gap detection: FIFO links mean earlier unACKed packets are lost.
        while unacked and unacked[0][0] < ack.data_seq:
            seq, sent_time, size = unacked.popleft()
            self._register_loss(now, seq, sent_time, size)
        if unacked and unacked[0][0] == ack.data_seq:
            seq, sent_time, size = unacked.popleft()
            self.inflight_bytes -= size
            self._last_progress = now
            info = AckInfo(seq, ack.data_sent_time, ack.data_recv_time, now, size)
            rtt = info.rtt
            # _update_rtt and FlowStats.record_ack, inlined: one ACK per
            # delivered packet makes this the hottest control-path code.
            min_rtt = self.min_rtt
            if min_rtt is None or rtt < min_rtt:
                self.min_rtt = rtt
            srtt = self.srtt
            if srtt is None:
                self.srtt = rtt
                self.rttvar = rtt / 2.0
            else:
                self.rttvar = 0.75 * self.rttvar + 0.25 * abs(srtt - rtt)
                self.srtt = 0.875 * srtt + 0.125 * rtt
            stats = self.flow.stats
            stats.ack_times.append(now)
            stats.acked_bytes.append(size)
            stats.rtts.append(rtt)
            stats.total_acked_bytes += size
            self.on_ack(info)
        # else: stale ACK for a packet already declared lost — ignored.
        self._after_event()

    def _register_loss(self, now: float, seq: int, sent_time: float, size: int) -> None:
        self.inflight_bytes -= size
        self.flow.stats.record_loss(now)
        self.flow.requeue_bytes(size)
        self.on_loss(seq, sent_time)

    def _update_rtt(self, rtt: float) -> None:
        if self.min_rtt is None or rtt < self.min_rtt:
            self.min_rtt = rtt
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt

    # ------------------------------------------------------------------
    # Retransmission timeout
    # ------------------------------------------------------------------
    def _rto_interval(self) -> float:
        if self.srtt is None:
            return 1.0
        return max(MIN_RTO_S, 2.0 * self.srtt + 4.0 * self.rttvar)

    def _arm_rto(self) -> None:
        if self._rto_event is None and not self.stopped:
            self._rto_event = self.sim.schedule(self._rto_interval(), self._rto_fire)

    def _rto_fire(self) -> None:
        self._rto_event = None
        if self.stopped or not self._unacked:
            return
        now = self.sim.now
        deadline = self._last_progress + self._rto_interval()
        if now + 1e-12 < deadline:
            self._rto_event = self.sim.schedule_at(deadline, self._rto_fire)
            return
        while self._unacked:
            seq, sent_time, size = self._unacked.popleft()
            self._register_loss(now, seq, sent_time, size)
        self._last_progress = now
        self.on_timeout()
        self._after_event()

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    def on_start(self) -> None:  # pragma: no cover - overridden
        pass

    def on_sent(self, seq: int, size: int) -> None:
        pass

    def on_ack(self, info: AckInfo) -> None:
        pass

    def on_loss(self, seq: int, sent_time: float) -> None:
        pass

    def on_timeout(self) -> None:
        pass

    def on_data_available(self) -> None:
        pass

    def _after_event(self) -> None:
        """Called after each ACK batch / timeout; senders may transmit."""


class WindowSender(SenderBase):
    """ACK-clocked sender limited by a congestion window (in packets)."""

    initial_cwnd = 10.0

    def __init__(self, name: str = "window"):
        super().__init__(name)
        self.cwnd = self.initial_cwnd

    def on_start(self) -> None:
        self._fill_window()

    def on_data_available(self) -> None:
        self._fill_window()

    def _after_event(self) -> None:
        self._fill_window()

    def _fill_window(self) -> None:
        if not self.started or self.stopped or self.paused:
            return
        while len(self._unacked) < self.cwnd:
            if not self._transmit_one():
                break


class RateSender(SenderBase):
    """Paced sender transmitting at ``rate_bps`` (optional in-flight cap).

    The pacing interval is re-evaluated at every tick, so rate changes take
    effect for the next packet.  When the application has no data (or the
    sender is paused) the pacing loop parks and is restarted by
    ``on_data_available`` / ``resume``.
    """

    min_rate_bps = 64_000.0

    ff_supports_burst = True
    """Paced senders can fast-forward whole bursts when their rate is
    provably stable (see :meth:`ff_rate_stable_until`)."""

    def __init__(self, name: str = "rate", initial_rate_bps: float = 1e6):
        super().__init__(name)
        self.rate_bps = initial_rate_bps
        self.inflight_cap: float | None = None  # packets; None = uncapped
        self._tick_event: Event | None = None
        # Armed by fidelity.activate_fastforward for eligible flows,
        # which also sets the per-flow burst cap (full Fidelity cap on
        # solo links, the short shared-link cap otherwise).
        self.ff_burst_armed = False
        self.ff_burst_cap = 1

    def set_rate(self, rate_bps: float, reason: str | None = None) -> None:
        """Change the pacing rate; ``reason`` tags the trace event.

        ``reason`` is observability-only (e.g. ``"probe:0:1:hi"``,
        ``"timeout:halve"``) — control-law behaviour never depends on it.
        """
        self.rate_bps = max(self.min_rate_bps, rate_bps)
        if self.tracer is not None:
            self.tracer.emit(
                "rate.change",
                self.sim.now,
                flow=self.flow.flow_id,
                rate_bps=self.rate_bps,
                reason=reason,
            )

    def repace(self) -> None:
        """Apply the current rate to the pacing loop *immediately*.

        The default pacing loop recomputes its interval only after each
        tick, so a ``set_rate`` call mid-interval lets at most one
        already-scheduled (stale) interval elapse before the new rate
        takes effect — harmless for MI-boundary controllers (the PCC
        family changes rate exactly when a tick-aligned monitor interval
        closes), and pinned by regression tests.  Senders that make
        *abrupt* rate steps on their own schedule (e.g. hostile on/off
        cross traffic) call this after ``set_rate`` to cancel the stale
        tick and restart pacing under the new rate now.
        """
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None
        if self.started and not self.stopped and not self.paused:
            self._schedule_tick(0.0)

    def on_start(self) -> None:
        self._schedule_tick(0.0)

    def on_data_available(self) -> None:
        if self._tick_event is None:
            self._schedule_tick(0.0)

    def resume(self) -> None:
        super().resume()
        if self.started and not self.stopped and self._tick_event is None:
            self._schedule_tick(0.0)

    def stop(self) -> None:
        super().stop()
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def _after_event(self) -> None:
        # An ACK may have freed in-flight budget while the loop is parked.
        if (
            self._tick_event is None
            and self.started
            and not self.stopped
            and not self.paused
            and self.flow.has_data()
        ):
            self._schedule_tick(0.0)

    def _schedule_tick(self, delay: float) -> None:
        self._tick_event = self.sim.schedule(delay, self._tick)

    def ff_rate_stable_until(self) -> "float | None":
        """Absolute time up to which ``rate_bps`` provably cannot change.

        ``None`` means no guarantee and disables paced bursts.  The base
        class makes no promise (``set_rate`` may be called at any time);
        controllers that only act at scheduled boundaries — the PCC
        family changes rate exclusively when a monitor interval closes —
        override this with that boundary's timestamp.
        """
        return None

    def _tick(self) -> None:
        self._tick_event = None
        if self.stopped or self.paused:
            return
        if not self.flow.has_data():
            return  # parked; on_data_available restarts the loop
        capped = (
            self.inflight_cap is not None
            and len(self._unacked) >= self.inflight_cap
        )
        if not capped:
            if self.ff_burst_armed and self.flow.ff_collapse:
                stable_until = self.ff_rate_stable_until()
                if stable_until is not None and stable_until > self.sim.now:
                    self._burst_tick(stable_until)
                    return
            self._transmit_one()
        interval = self.mss * 8.0 / max(self.min_rate_bps, self.rate_bps)
        # +/-2% pacing jitter: real senders are never perfectly periodic,
        # and exact periodicity phase-locks competing flows in a
        # deterministic simulator (one flow permanently wins every
        # buffer-full race).
        interval *= 0.98 + 0.04 * self._jitter_rng.random()
        self._schedule_tick(interval)

    def _burst_tick(self, stable_until: float) -> None:
        """Fluid fast-forward: send a whole paced burst in one dispatch.

        The rate is provably stable until ``stable_until``, so the send
        times of the next packets are known now.  Each packet goes
        through the collapsed analytic chain at its *virtual* send time;
        the pacing ticks between them never hit the heap (counted in
        ``events_virtual``).  The burst is bounded by the stability
        horizon, a fraction of the smoothed RTT (cross-flow serialization
        error stays under one RTT), an armed RTO, the configured packet
        cap, and the links' fast-forward barriers.
        """
        sim = self.sim
        flow = self.flow
        fid = sim.fidelity
        now = sim.now
        horizon = stable_until
        if self.srtt is not None:
            rtt_cap = now + self.srtt * fid.burst_horizon_frac
            if rtt_cap < horizon:
                horizon = rtt_cap
        # An armed RTO may change the rate (timeout backoff) when it
        # fires; never burst past it.
        if self._rto_event is not None and self._rto_event.time < horizon:
            horizon = self._rto_event.time
        fwd = flow.ff_fwd
        rev = flow.ff_rev
        limit = fwd.ff_barrier_s
        if rev.ff_barrier_s < limit:
            limit = rev.ff_barrier_s
        if limit != float("inf"):
            # The whole virtual window — the last send plus its round
            # trip — must clear the next timeline event; around edges we
            # degrade to per-packet sends (packet-level around edges).
            window_end = fwd.peek_round_trip_ff(self.mss, horizon, rev, ACK_BYTES)
            if window_end + 1e-6 >= limit:
                horizon = now
        interval_base = self.mss * 8.0 / max(self.min_rate_bps, self.rate_bps)
        jitter = self._jitter_rng
        cap = self.ff_burst_cap
        inflight_cap = self.inflight_cap
        # Plan the send times first (same jitter draws, in the same
        # order, as per-packet sending would make), then try the
        # vectorized bulk path; anything it cannot handle falls back to
        # the per-packet reference chain.
        times: list[float] = []
        t = now
        unacked = len(self._unacked)
        while True:
            if inflight_cap is not None and unacked + len(times) >= inflight_cap:
                break
            if not flow.has_data():
                break
            times.append(t)
            t += interval_base * (0.98 + 0.04 * jitter.random())
            if len(times) >= cap or t > horizon:
                break
        sent = len(times)
        seqs = None
        if fid.use_numpy:
            seqs = flowstate.transmit_burst_ff(flow, times, self.mss)
        if seqs is None:
            for at_s in times:
                self._transmit_one_at(at_s)
        else:
            mss = self.mss
            append = self._unacked.append
            for seq, at_s in zip(seqs, times):
                append((seq, at_s, mss))
                self.inflight_bytes += mss
                self.on_sent(seq, mss)
            self._arm_rto()
        if sent > 1:
            sim.events_virtual += sent - 1  # absorbed pacing ticks
            if sim.tracer is not None:
                sim.tracer.emit(
                    "sim.fastforward",
                    now,
                    flow=flow.flow_id,
                    reason="burst",
                    packets=sent,
                    until_s=t,
                )
        self._tick_event = sim.schedule_at(t, self._tick)
