"""The Proteus sender: monitor intervals + utility library + rate control.

This is the paper's primary contribution assembled (Fig 1's architecture):
packet-level events are aggregated per monitor interval, run through the
noise-tolerance pipeline (§5), scored by the selected utility function
(§4), and fed to the gradient-ascent rate controller (§3/§5).

The utility function can be swapped at any time — mid-flow — via
:meth:`set_utility`, which is the paper's *flexibility* goal (one codebase
and one running controller that is a primary, a scavenger, or a hybrid,
selected by the application).
"""

from __future__ import annotations

from collections import deque

from ..core.monitor import MonitorInterval
from ..core.noise_tolerance import (
    AckIntervalFilter,
    NoiseToleranceConfig,
    NoiseTolerancePipeline,
)
from ..core.rate_control import RateControlConfig, RateController
from ..core.rng import Rng
from ..core.utility import HybridUtility, UtilityFunction, make_utility
from ..sim.engine import Event
from .base import AckInfo, RateSender

MIN_MI_DURATION_S = 0.010
MIN_PACKETS_PER_MI = 8
OVERLOAD_PERSISTENCE_MIS = 3


class ProteusSender(RateSender):
    """Rate-based sender driven by the Proteus utility framework.

    Args:
        utility: A :class:`UtilityFunction` or a library name
            (``"proteus-p"``, ``"proteus-s"``, ``"proteus-h"``,
            ``"vivace"``, ``"allegro"``).
        noise_config: Noise-tolerance switches; defaults to all-on
            (Proteus).  The Vivace baseline passes all-off.
        control_config: Rate-controller tunables; Proteus defaults to the
            3-pair majority rule.
        seed: Seeds the controller's probe-order randomness.
    """

    def __init__(
        self,
        utility: UtilityFunction | str = "proteus-p",
        name: str | None = None,
        initial_rate_bps: float = 2e6,
        noise_config: NoiseToleranceConfig | None = None,
        control_config: RateControlConfig | None = None,
        seed: int = 0,
    ) -> None:
        if isinstance(utility, str):
            utility = make_utility(utility)
        super().__init__(name or f"proteus[{utility.name}]", initial_rate_bps)
        self.utility = utility
        self.noise_config = (
            noise_config if noise_config is not None else NoiseToleranceConfig()
        )
        if control_config is None:
            control_config = RateControlConfig(
                probe_pairs=3 if self.noise_config.majority_rule else 2
            )
        self.controller = RateController(
            initial_rate_bps, control_config, Rng(seed)
        )
        self.pipeline = NoiseTolerancePipeline(self.noise_config)
        self.ack_filter = (
            AckIntervalFilter(self.noise_config.ack_ratio_threshold)
            if self.noise_config.ack_filter
            else None
        )
        self._mi_counter = 0
        self._current_mi: MonitorInterval | None = None
        self._pending: deque[MonitorInterval] = deque()
        self._seq_to_mi: dict[int, MonitorInterval] = {}
        self._mi_close_event: Event | None = None
        self._last_send_time = 0.0
        self._overload_streak = 0
        self.mi_log: list[MonitorInterval] = []
        self.keep_mi_log = False  # opt-in; MIs are many in long runs
        self.controller.trace_hook = self._trace_decision

    def _trace_decision(self, reason: str, rate_bps: float, **fields) -> None:
        """Controller decision → ``rate.decision`` tracepoint."""
        if self.tracer is not None:
            self.trace("rate.decision", reason=reason, rate_bps=rate_bps, **fields)

    # ------------------------------------------------------------------
    # Application-facing API (the paper's "simple API call")
    # ------------------------------------------------------------------
    def set_utility(self, utility: UtilityFunction | str) -> None:
        """Swap the utility function live (primary <-> scavenger <-> hybrid)."""
        if isinstance(utility, str):
            utility = make_utility(utility)
        self.utility = utility

    def set_threshold(self, threshold_bps: float) -> None:
        """Update the Proteus-H switching threshold (cross-layer signal).

        A threshold that jumps well above the current rate re-opens
        primary-mode headroom the controller should claim quickly
        (e.g. the playback buffer drained, or the emergency rule fired);
        restart bandwidth discovery rather than inching up by gradient
        steps from a scavenged-down rate.
        """
        if not isinstance(self.utility, HybridUtility):
            raise TypeError("set_threshold requires the proteus-h utility")
        old = self.utility.threshold_bps
        self.utility.set_threshold(threshold_bps)
        if (
            self.started
            and not self.stopped
            and threshold_bps > 2.0 * old
            and self.rate_bps < 0.5 * threshold_bps
        ):
            self.controller.restart()

    # ------------------------------------------------------------------
    # MI lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        super().on_start()
        self._begin_mi()

    def stop(self) -> None:
        super().stop()
        self._cancel_mi_close()

    def pause(self) -> None:
        super().pause()
        self._abort_current_mi()

    def resume(self) -> None:
        super().resume()
        if self.started and not self.stopped and self._current_mi is None:
            self._begin_mi()

    def _cancel_mi_close(self) -> None:
        if self._mi_close_event is not None:
            self._mi_close_event.cancel()
            self._mi_close_event = None

    def _mi_duration(self, rate_bps: float) -> float:
        rtt = self.srtt if self.srtt is not None else self.flow.base_rtt()
        packet_floor = MIN_PACKETS_PER_MI * self.mss * 8.0 / max(rate_bps, 1.0)
        return max(MIN_MI_DURATION_S, rtt, packet_floor)

    def _begin_mi(self) -> None:
        if self.stopped or self.paused:
            return
        rate, tag = self.controller.next_rate()
        self.set_rate(rate, reason=tag)
        self._mi_counter += 1
        mi = MonitorInterval(
            self._mi_counter, rate, self.sim.now, self._mi_duration(rate)
        )
        mi.tag = tag
        self._current_mi = mi
        self._pending.append(mi)
        self._cancel_mi_close()
        self._mi_close_event = self.sim.schedule(mi.duration_s, self._close_mi)
        if self.tracer is not None:
            self.trace(
                "mi.start",
                mi_id=mi.mi_id,
                tag=tag,
                rate_bps=rate,
                duration_s=mi.duration_s,
            )

    def ff_rate_stable_until(self) -> float | None:
        """Hybrid fast-forward: the send rate cannot change before the
        monitor interval closes — every rate decision happens in
        ``_begin_mi``, which only runs from the armed MI-close event
        (cross-layer ``set_threshold`` and idle-restart paths also defer
        the new rate to the next MI).  Bursting up to that boundary is
        therefore exact with respect to pacing."""
        if self._mi_close_event is not None:
            return self._mi_close_event.time
        return None

    def _close_mi(self) -> None:
        self._mi_close_event = None
        mi = self._current_mi
        if mi is not None:
            mi.closed = True
            self._current_mi = None
            self._drain_completed()
        self._begin_mi()

    def _abort_current_mi(self) -> None:
        """Discard the open MI (pause/app-limited); controller is told."""
        self._cancel_mi_close()
        mi = self._current_mi
        if mi is not None:
            mi.closed = True
            mi.tag = "discarded:" + (mi.tag or "")
            self._current_mi = None
            if self.tracer is not None:
                self.trace("mi.discard", reason="aborted", **mi.trace_fields())
            self.controller.on_result(mi, None)
            self._drain_completed()

    def _drain_completed(self) -> None:
        pending = self._pending
        while pending and pending[0].is_complete():
            mi = pending.popleft()
            self._finalize_mi(mi)

    def _finalize_mi(self, mi: MonitorInterval) -> None:
        if mi.tag is not None and mi.tag.startswith("discarded:"):
            return  # controller was already informed on abort
        if mi.n_sent == 0 or mi.n_acked == 0 or mi.app_limited():
            # Application-limited intervals carry no information about the
            # network's response to the planned rate.
            if self.tracer is not None:
                self.trace("mi.discard", reason="app-limited", **mi.trace_fields())
            self.controller.on_result(mi, None)
            return
        metrics = mi.compute_metrics()
        filtered = self.pipeline.filter_metrics(metrics)
        mi.metrics = filtered
        mi.utility = self.utility(filtered)
        if self.tracer is not None:
            self.trace("mi.end", **mi.trace_fields())
        if self.keep_mi_log:
            self.mi_log.append(mi)
        # Persistence filter: a single high-loss MI can be sampling noise;
        # several in a row mean the queue is genuinely jammed.
        if self.utility.loss_overloaded(filtered):
            self._overload_streak += 1
        else:
            self._overload_streak = 0
        overloaded = self._overload_streak >= OVERLOAD_PERSISTENCE_MIS
        if overloaded:
            self._overload_streak = 0
        self.controller.on_result(mi, mi.utility, overloaded=overloaded)

    # ------------------------------------------------------------------
    # Packet events
    # ------------------------------------------------------------------
    def on_sent(self, seq: int, size: int) -> None:
        self._last_send_time = self.sim.now
        mi = self._current_mi
        if mi is not None:
            mi.record_send(size)
            self._seq_to_mi[seq] = mi

    def on_data_available(self) -> None:
        super().on_data_available()
        # Coming back from an application-idle period (e.g. a full
        # playback buffer): restart bandwidth discovery so a rate parked
        # near the floor ramps back within a few MIs.
        if (
            self.started
            and not self.stopped
            and self._current_mi is not None
            and self.sim.now - self._last_send_time > 2.0 * self._current_mi.duration_s
        ):
            self.controller.restart()
            self._abort_current_mi()
            self._begin_mi()

    def on_ack(self, info: AckInfo) -> None:
        mi = self._seq_to_mi.pop(info.seq, None)
        if mi is not None:
            use_sample = True
            if self.ack_filter is not None:
                use_sample = self.ack_filter.accept(
                    info.ack_time, info.rtt, srtt=self.srtt
                )
                if self.tracer is not None:
                    self.trace(
                        "rtt_filter.accept" if use_sample else "rtt_filter.reject",
                        seq=info.seq,
                        rtt_s=info.rtt,
                    )
            if use_sample:
                mi.record_ack(info.sent_time, info.rtt, info.nbytes)
            else:
                # The packet still counts as delivered for loss accounting,
                # but its RTT sample is excluded (§5, per-ACK filtering).
                mi.n_acked += 1
                mi.bytes_acked += info.nbytes
            self._drain_completed()

    def on_loss(self, seq: int, sent_time: float) -> None:
        mi = self._seq_to_mi.pop(seq, None)
        if mi is not None:
            mi.record_loss()
            self._drain_completed()

    def on_timeout(self) -> None:
        self.controller.on_timeout()
