"""TCP BBR v1 (Cardwell et al. 2016), simplified to its control essentials.

The model-based loop is implemented faithfully enough to reproduce the
interaction behaviour the paper measures:

* STARTUP at 2/ln2 pacing gain until delivery rate plateaus for 3 rounds;
* DRAIN back to one BDP of in-flight data;
* PROBE_BW's eight-phase gain cycle (1.25, 0.75, 1 x6) — the periodic
  probing that inflates then drains the queue (and which Proteus-S reads
  as RTT deviation);
* PROBE_RTT every 10 s, parking in-flight at 4 packets for at least 200 ms;
* windowed max-filter for bottleneck bandwidth and min-filter for RTprop,
  and a 2 x BDP in-flight cap.

Loss is ignored (BBR v1 does not react to packet loss), which matches the
paper's Fig 4 where BBR tolerates random loss.
"""

from __future__ import annotations

from collections import deque

from .base import AckInfo, RateSender

STARTUP_GAIN = 2.885  # 2 / ln(2)
DRAIN_GAIN = 1.0 / STARTUP_GAIN
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
BW_WINDOW_ROUNDS = 10
RTPROP_WINDOW_S = 10.0
PROBE_RTT_INTERVAL_S = 10.0
PROBE_RTT_DURATION_S = 0.2
PROBE_RTT_CWND_PKTS = 4
CWND_GAIN = 2.0


class BBRSender(RateSender):
    """Simplified BBR v1 sender."""

    def __init__(self, name: str = "bbr", initial_rate_bps: float = 1.2e6):
        super().__init__(name, initial_rate_bps=initial_rate_bps)
        self.state = "STARTUP"
        self.pacing_gain = STARTUP_GAIN
        # Bottleneck-bandwidth max filter: (round_index, sample_bps).
        self._bw_samples: deque[tuple[int, float]] = deque()
        self.btl_bw_bps = 0.0
        self.rtprop_s: float | None = None
        self._rtprop_stamp = 0.0
        # Round counting.
        self._round = 0
        self._round_end_seq = 0
        # STARTUP plateau detection.
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        # PROBE_BW cycle.
        self._cycle_index = 0
        self._cycle_stamp = 0.0
        # PROBE_RTT bookkeeping.
        self._probe_rtt_done_at: float | None = None
        self._probe_rtt_min: float | None = None
        self._saved_state = "PROBE_BW"
        # Delivery-rate estimation: bytes acked with timestamps (~1 RTT).
        self._delivered: deque[tuple[float, int]] = deque()
        self._delivered_sum = 0

    # ------------------------------------------------------------------
    # Model estimation
    # ------------------------------------------------------------------
    def _delivery_rate_sample(self, now: float) -> float | None:
        window = self.srtt if self.srtt is not None else 0.1
        dq = self._delivered
        cutoff = now - window
        while dq and dq[0][0] < cutoff:
            self._delivered_sum -= dq.popleft()[1]
        if len(dq) < 2:
            return None
        span = dq[-1][0] - dq[0][0]
        if span <= 0:
            return None
        total = self._delivered_sum - dq[0][1]
        return total * 8.0 / span

    def _update_model(self, info: AckInfo, now: float) -> None:
        self._delivered.append((now, info.nbytes))
        self._delivered_sum += info.nbytes
        sample = self._delivery_rate_sample(now)
        if sample is not None:
            # Monotonic max-queue: amortised O(1) windowed maximum.
            samples = self._bw_samples
            while samples and samples[-1][1] <= sample:
                samples.pop()
            samples.append((self._round, sample))
            cutoff = self._round - BW_WINDOW_ROUNDS
            while samples and samples[0][0] < cutoff:
                samples.popleft()
            self.btl_bw_bps = samples[0][1] if samples else sample
        if self.rtprop_s is None or info.rtt <= self.rtprop_s:
            self.rtprop_s = info.rtt
            self._rtprop_stamp = now
        if self.state == "PROBE_RTT" and (
            self._probe_rtt_min is None or info.rtt < self._probe_rtt_min
        ):
            self._probe_rtt_min = info.rtt

    def _bdp_packets(self) -> float:
        if self.btl_bw_bps <= 0 or self.rtprop_s is None:
            return self.initial_cwnd_pkts()
        return self.btl_bw_bps * self.rtprop_s / (8.0 * self.mss)

    @staticmethod
    def initial_cwnd_pkts() -> float:
        return 10.0

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def on_ack(self, info: AckInfo) -> None:
        now = self.sim.now
        if info.seq >= self._round_end_seq:
            self._round += 1
            self._round_end_seq = self.flow.last_seq
            self._on_round_start(now)
        self._update_model(info, now)
        self._advance_state(now)
        self._apply_control()

    def _on_round_start(self, now: float) -> None:
        if self.state == "STARTUP":
            if self.btl_bw_bps > self._full_bw * 1.25:
                self._full_bw = self.btl_bw_bps
                self._full_bw_rounds = 0
            else:
                self._full_bw_rounds += 1
                if self._full_bw_rounds >= 3:
                    self.state = "DRAIN"
                    if self.tracer is not None:
                        self.trace(
                            "rate.decision",
                            reason="bbr:enter:DRAIN",
                            rate_bps=self.rate_bps,
                        )

    def _advance_state(self, now: float) -> None:
        if self.state == "DRAIN":
            if self.inflight_packets() <= self._bdp_packets():
                self._enter_probe_bw(now)
        elif self.state == "PROBE_BW":
            phase_len = self.rtprop_s if self.rtprop_s is not None else 0.03
            if now - self._cycle_stamp > phase_len:
                self._cycle_stamp = now
                self._cycle_index = (self._cycle_index + 1) % len(PROBE_BW_GAINS)
                # Skip the 0.75 drain phase unless the queue needs draining.
                self.pacing_gain = PROBE_BW_GAINS[self._cycle_index]
        elif self.state == "PROBE_RTT":
            if self._probe_rtt_done_at is not None and now >= self._probe_rtt_done_at:
                self._exit_probe_rtt(now)
        # Periodic RTprop refresh check (not during startup/drain).
        if (
            self.state in ("PROBE_BW",)
            and now - self._rtprop_stamp > PROBE_RTT_INTERVAL_S
        ):
            self._enter_probe_rtt(now)

    def _enter_probe_bw(self, now: float) -> None:
        self.state = "PROBE_BW"
        self._cycle_index = 0
        self._cycle_stamp = now
        self.pacing_gain = PROBE_BW_GAINS[0]
        if self.tracer is not None:
            self.trace(
                "rate.decision", reason="bbr:enter:PROBE_BW", rate_bps=self.rate_bps
            )

    def _enter_probe_rtt(self, now: float, min_duration_s: float | None = None) -> None:
        if self.state != "PROBE_RTT":
            self._saved_state = self.state
        self.state = "PROBE_RTT"
        if self.tracer is not None:
            self.trace(
                "rate.decision", reason="bbr:enter:PROBE_RTT", rate_bps=self.rate_bps
            )
        duration = min_duration_s if min_duration_s is not None else PROBE_RTT_DURATION_S
        self._probe_rtt_done_at = now + duration
        self._probe_rtt_min = None
        self.pacing_gain = 1.0

    def _exit_probe_rtt(self, now: float) -> None:
        # Adopt the drained-queue measurement as the new RTprop, even if it
        # is higher than the stale estimate (path may have changed).
        if self._probe_rtt_min is not None:
            self.rtprop_s = self._probe_rtt_min
        self._rtprop_stamp = now
        self._probe_rtt_done_at = None
        self._probe_rtt_min = None
        self._enter_probe_bw(now)

    # ------------------------------------------------------------------
    def _apply_control(self) -> None:
        if self.state == "PROBE_RTT":
            self.inflight_cap = PROBE_RTT_CWND_PKTS
            if self.btl_bw_bps > 0:
                self.set_rate(self.btl_bw_bps)
            return
        gain = {
            "STARTUP": STARTUP_GAIN,
            "DRAIN": DRAIN_GAIN,
            "PROBE_BW": self.pacing_gain,
        }[self.state]
        if self.btl_bw_bps > 0:
            self.set_rate(gain * self.btl_bw_bps)
        else:
            # No bandwidth estimate yet: keep doubling via STARTUP gain on
            # the current rate each ACK batch (bootstrap).
            self.set_rate(self.rate_bps * 1.05)
        cwnd_gain = CWND_GAIN if self.state != "STARTUP" else STARTUP_GAIN
        self.inflight_cap = max(
            self.initial_cwnd_pkts(), cwnd_gain * self._bdp_packets()
        )

    def on_loss(self, seq: int, sent_time: float) -> None:
        # BBR v1 does not react to individual packet losses.
        pass

    def on_timeout(self) -> None:
        # Restart conservatively after a stall.
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self.state = "STARTUP"
        self.inflight_cap = self.initial_cwnd_pkts()
        if self.tracer is not None:
            self.trace(
                "rate.decision", reason="bbr:timeout:restart", rate_bps=self.rate_bps
            )
