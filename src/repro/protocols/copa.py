"""COPA (Arun & Balakrishnan, NSDI 2018), default mode.

COPA targets the rate ``1 / (delta * d_q)`` packets per RTT, where ``d_q``
is the standing queueing delay (RTT-standing minus the windowed minimum
RTT).  The window moves toward the target by ``v / (delta * cwnd)`` per
ACK, with the velocity ``v`` doubling after three consecutive same-sign
window changes.  Default mode does not react to packet loss directly,
matching the paper's Fig 4 (high random-loss tolerance).

Packets are paced at ``2 * cwnd / RTT-standing`` with an in-flight cap of
``cwnd``, as in the COPA paper.
"""

from __future__ import annotations

from collections import deque

from .base import AckInfo, RateSender

RTT_MIN_WINDOW_S = 10.0


class CopaSender(RateSender):
    """COPA congestion control (default mode)."""

    delta = 0.5
    min_cwnd = 2.0

    def __init__(self, name: str = "copa", initial_rate_bps: float = 1.0e6):
        super().__init__(name, initial_rate_bps=initial_rate_bps)
        self.cwnd = 10.0
        self.velocity = 1.0
        self._direction = 0  # +1 up, -1 down
        self._same_direction_rtts = 0
        self._last_cwnd = self.cwnd
        self._last_velocity_update = 0.0
        # Monotonic min-queues: (time, rtt) kept non-decreasing in rtt, so
        # the windowed minimum is O(1) amortised per ACK.
        self._standing_queue: deque[tuple[float, float]] = deque()
        self._min_queue: deque[tuple[float, float]] = deque()
        self.inflight_cap = self.cwnd

    # ------------------------------------------------------------------
    @staticmethod
    def _push_min(queue: deque[tuple[float, float]], now: float, rtt: float) -> None:
        while queue and queue[-1][1] >= rtt:
            queue.pop()
        queue.append((now, rtt))

    @staticmethod
    def _window_min(queue: deque[tuple[float, float]], cutoff: float) -> float | None:
        while queue and queue[0][0] < cutoff:
            queue.popleft()
        return queue[0][1] if queue else None

    def _rtt_standing(self, now: float) -> float | None:
        """Min RTT over the most recent srtt/2 (filters ACK-compression)."""
        if self.srtt is None:
            return None
        return self._window_min(self._standing_queue, now - self.srtt / 2.0)

    def _rtt_min(self, now: float) -> float | None:
        return self._window_min(self._min_queue, now - RTT_MIN_WINDOW_S)

    # ------------------------------------------------------------------
    def on_ack(self, info: AckInfo) -> None:
        now = self.sim.now
        self._push_min(self._standing_queue, now, info.rtt)
        self._push_min(self._min_queue, now, info.rtt)
        standing = self._rtt_standing(now)
        floor = self._rtt_min(now)
        if standing is None or floor is None:
            return
        d_q = max(0.0, standing - floor)
        if d_q <= 1e-6:
            # Queue empty: target is effectively infinite, increase.
            self._move_window(up=True)
        else:
            target_rate_pps = 1.0 / (self.delta * d_q)  # packets per second
            current_rate_pps = self.cwnd / standing
            self._move_window(up=current_rate_pps <= target_rate_pps)
        self._update_velocity(now)
        # Pacing at 2 * cwnd / RTT-standing, in-flight capped at cwnd.
        self.set_rate(2.0 * self.cwnd * self.mss * 8.0 / standing, reason="copa:target")
        self.inflight_cap = self.cwnd

    def _move_window(self, up: bool) -> None:
        step = self.velocity / (self.delta * self.cwnd)
        if up:
            self.cwnd += step
        else:
            self.cwnd = max(self.min_cwnd, self.cwnd - step)

    def _update_velocity(self, now: float) -> None:
        if self.srtt is None or now - self._last_velocity_update < self.srtt:
            return
        direction = 1 if self.cwnd > self._last_cwnd else -1
        if direction == self._direction:
            self._same_direction_rtts += 1
            if self._same_direction_rtts >= 3:
                self.velocity = min(self.velocity * 2.0, self.cwnd)
        else:
            self.velocity = 1.0
            self._same_direction_rtts = 0
        self._direction = direction
        self._last_cwnd = self.cwnd
        self._last_velocity_update = now

    def on_timeout(self) -> None:
        self.cwnd = max(self.min_cwnd, self.cwnd / 2.0)
        self.velocity = 1.0
        self.inflight_cap = self.cwnd
        if self.tracer is not None:
            self.trace("cwnd.change", cwnd=self.cwnd, reason="copa:timeout")
