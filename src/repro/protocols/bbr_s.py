"""BBR-S: the paper's §7.1 illustration of RTT-deviation yielding in BBR.

The modification mirrors the paper: keep a smoothed RTT deviation;
whenever it exceeds a threshold (20 ms in the paper), force the sender
into its minimum-RTT probing phase (in-flight parked at 4 packets) for at
least 40 ms.  Against primary BBR/CUBIC flows the forced probe-RTT
episodes repeat and BBR-S yields; among BBR-S flows the shared deviation
response keeps the split fair.

Calibration note (documented in DESIGN.md/EXPERIMENTS.md): the paper's
kernel implementation reads ``rttvar``, whose magnitude depends on ACK
aggregation and interrupt coalescing on real hardware.  In the simulator,
per-ACK RTT increments are tiny, so we measure the standard deviation of
RTT samples over the last ``window_rtts`` round trips (one PROBE_BW gain
cycle) — the same quantity at the timescale that competition actually
modulates — and keep the paper's 20 ms trigger against loss-based
competitors while documenting the default 10 ms trigger used for
latency-bounded competitors like BBR itself.
"""

from __future__ import annotations

from collections import deque

from .base import AckInfo
from .bbr import BBRSender

DEVIATION_THRESHOLD_S = 0.004
FORCED_PROBE_RTT_S = 0.040
DEVIATION_WINDOW_RTTS = 60.0


class BBRScavengerSender(BBRSender):
    """BBR with RTT-deviation-triggered yielding (BBR-S)."""

    def __init__(
        self,
        name: str = "bbr-s",
        initial_rate_bps: float = 1.2e6,
        deviation_threshold_s: float = DEVIATION_THRESHOLD_S,
        forced_probe_rtt_s: float = FORCED_PROBE_RTT_S,
        window_rtts: float = DEVIATION_WINDOW_RTTS,
    ):
        super().__init__(name, initial_rate_bps=initial_rate_bps)
        self.deviation_threshold_s = deviation_threshold_s
        self.forced_probe_rtt_s = forced_probe_rtt_s
        self.window_rtts = window_rtts
        self._rtt_samples: deque[tuple[float, float]] = deque()
        self._rtt_sum = 0.0
        self._rtt_sq_sum = 0.0

    def rtt_deviation_s(self) -> float:
        """Std of RTT samples over the last ``window_rtts`` round trips."""
        n = len(self._rtt_samples)
        if n < 4:
            return 0.0
        mean = self._rtt_sum / n
        var = max(0.0, self._rtt_sq_sum / n - mean * mean)
        return var ** 0.5

    def _record_rtt(self, now: float, rtt: float) -> None:
        self._rtt_samples.append((now, rtt))
        self._rtt_sum += rtt
        self._rtt_sq_sum += rtt * rtt
        window = self.window_rtts * (self.srtt if self.srtt is not None else 0.1)
        cutoff = now - window
        samples = self._rtt_samples
        while samples and samples[0][0] < cutoff:
            _, old = samples.popleft()
            self._rtt_sum -= old
            self._rtt_sq_sum -= old * old

    def on_ack(self, info: AckInfo) -> None:
        super().on_ack(info)
        now = self.sim.now
        self._record_rtt(now, info.rtt)
        deviation = self.rtt_deviation_s()
        if self.state == "PROBE_RTT":
            # Stay parked while competition persists: extend the forced
            # probe so the sender holds 4 packets in flight until the
            # deviation signal clears.
            if (
                deviation > self.deviation_threshold_s
                and self._probe_rtt_done_at is not None
            ):
                self._probe_rtt_done_at = max(
                    self._probe_rtt_done_at, now + self.forced_probe_rtt_s
                )
            return
        if (
            self.state not in ("STARTUP", "DRAIN")
            and deviation > self.deviation_threshold_s
        ):
            if self.tracer is not None:
                self.trace(
                    "rate.decision",
                    reason="bbr-s:yield",
                    rate_bps=self.rate_bps,
                    rtt_deviation_s=deviation,
                )
            self._enter_probe_rtt(now, min_duration_s=self.forced_probe_rtt_s)
            self._apply_control()
