"""Constant-rate UDP sender — the measurement probe used in Fig 2.

No congestion control at all: packets are paced at a fixed rate, and the
attached flow statistics capture the RTT process the probe observes.
"""

from __future__ import annotations

from .base import RateSender


class FixedRateSender(RateSender):
    """Sends at a constant bit rate regardless of network feedback."""

    def __init__(self, rate_bps: float, name: str = "fixed"):
        super().__init__(name, initial_rate_bps=rate_bps)

    def set_rate(
        self, rate_bps: float, reason: str | None = None
    ) -> None:  # pragma: no cover - guard
        raise RuntimeError("FixedRateSender rate is immutable")
