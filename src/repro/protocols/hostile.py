"""Hostile cross-traffic senders for adversarial scenario search.

Neither sender implements a congestion-control law: they are *attack
traffic*, deliberately unresponsive, used by :mod:`repro.adversary` to
stress the scavenger guarantee (and available from the CLI like any
other protocol).  Both draw their phase/period jitter from a dedicated
seeded stream, so a hostile scenario replays bit-identically.

* :class:`BurstFloodSender` — the bounded-burst flooder: every
  (jittered) period it blasts a fixed packet burst back-to-back,
  filling the bottleneck queue in one shot and then going silent.
* :class:`OnOffSquareSender` — a square-wave paced sender alternating
  between a hostile ON rate and silence, with jittered phase and
  half-period lengths; the classic on/off cross-traffic pattern that
  defeats naive delay-based controllers.
"""

from __future__ import annotations

from ..core.rng import Rng
from ..sim.engine import Event, Simulator
from ..sim.flow import Flow
from .base import RateSender, SenderBase


class BurstFloodSender(SenderBase):
    """Periodic packet-burst flooder (bounded bursts, no control law).

    Every period (jittered by ``jitter_frac``) the sender transmits
    ``burst_packets`` MSS-sized packets back-to-back, then idles until
    the next burst.  The first burst fires after a seeded random phase
    offset within one period, so a population of flooders does not
    phase-lock.  ACKs and losses are ignored — the flood never backs
    off.
    """

    def __init__(
        self,
        name: str = "burst-flood",
        burst_packets: int = 32,
        period_s: float = 0.5,
        jitter_frac: float = 0.1,
        seed: int = 0,
    ):
        super().__init__(name)
        if burst_packets < 1:
            raise ValueError("burst_packets must be >= 1")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if not 0.0 <= jitter_frac < 1.0:
            raise ValueError("jitter_frac must be in [0, 1)")
        self.burst_packets = burst_packets
        self.period_s = period_s
        self.jitter_frac = jitter_frac
        self.seed = seed
        self._burst_event: Event | None = None

    def bind(self, sim: Simulator, flow: Flow) -> None:
        super().bind(sim, flow)
        # Dedicated hostile stream: jitter is part of the attack genome,
        # not of the generic per-sender pacing jitter.
        self._hostile_rng = Rng(f"hostile:burst:{self.seed}:{flow.flow_id}")

    def on_start(self) -> None:
        phase_s = self._hostile_rng.random() * self.period_s
        self._burst_event = self.sim.schedule(phase_s, self._fire_burst)

    def stop(self) -> None:
        super().stop()
        if self._burst_event is not None:
            self._burst_event.cancel()
            self._burst_event = None

    def _fire_burst(self) -> None:
        self._burst_event = None
        if self.stopped or self.paused:
            return
        sent = 0
        for _ in range(self.burst_packets):
            if not self._transmit_one():
                break
            sent += 1
        if sent and self.tracer is not None:
            self.trace("hostile.burst", packets=sent)
        jitter = 1.0 + self.jitter_frac * (2.0 * self._hostile_rng.random() - 1.0)
        self._burst_event = self.sim.schedule(self.period_s * jitter, self._fire_burst)


class OnOffSquareSender(RateSender):
    """Square-wave paced sender: ON at ``on_mbps``, then silent.

    The ON and OFF half-periods (``on_s``/``off_s``) are each jittered
    by ``jitter_frac`` per cycle, and the wave starts with a seeded
    random phase offset within one full period.  Toggling ON uses
    :meth:`RateSender.repace` so the hostile rate step takes effect
    immediately instead of after one stale pacing interval.
    """

    def __init__(
        self,
        name: str = "onoff",
        on_mbps: float = 20.0,
        on_s: float = 1.0,
        off_s: float = 1.0,
        jitter_frac: float = 0.1,
        seed: int = 0,
    ):
        if on_mbps <= 0:
            raise ValueError("on_mbps must be positive")
        if on_s <= 0 or off_s <= 0:
            raise ValueError("on_s and off_s must be positive")
        if not 0.0 <= jitter_frac < 1.0:
            raise ValueError("jitter_frac must be in [0, 1)")
        super().__init__(name, initial_rate_bps=on_mbps * 1e6)
        self.on_mbps = on_mbps
        self.on_s = on_s
        self.off_s = off_s
        self.jitter_frac = jitter_frac
        self.seed = seed
        self._toggle_event: Event | None = None

    def bind(self, sim: Simulator, flow: Flow) -> None:
        super().bind(sim, flow)
        self._hostile_rng = Rng(f"hostile:onoff:{self.seed}:{flow.flow_id}")

    def _jittered(self, half_s: float) -> float:
        return half_s * (
            1.0 + self.jitter_frac * (2.0 * self._hostile_rng.random() - 1.0)
        )

    def on_start(self) -> None:
        # Random phase within one full period: start mid-ON or mid-OFF.
        period_s = self.on_s + self.off_s
        phase_s = self._hostile_rng.random() * period_s
        if phase_s < self.on_s:
            super().on_start()  # start the pacing loop (ON)
            self._toggle_event = self.sim.schedule(self.on_s - phase_s, self._go_off)
        else:
            self.paused = True
            self._toggle_event = self.sim.schedule(period_s - phase_s, self._go_on)

    def stop(self) -> None:
        super().stop()
        if self._toggle_event is not None:
            self._toggle_event.cancel()
            self._toggle_event = None

    def _go_on(self) -> None:
        self._toggle_event = None
        if self.stopped:
            return
        self.paused = False
        self.set_rate(self.on_mbps * 1e6, reason="hostile:on")
        # Abrupt rate step: re-pace now rather than letting a pacing
        # interval scheduled under the old (silent) regime linger.
        self.repace()
        self._toggle_event = self.sim.schedule(self._jittered(self.on_s), self._go_off)

    def _go_off(self) -> None:
        self._toggle_event = None
        if self.stopped:
            return
        self.paused = True
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None
        self.trace("rate.change", rate_bps=0.0, reason="hostile:off")
        self._toggle_event = self.sim.schedule(self._jittered(self.off_s), self._go_on)
