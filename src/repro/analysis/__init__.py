"""Metrics and theory: fairness, paper statistics, equilibria, dynamics."""

from .convergence import (
    ConvergenceReport,
    fairness_convergence_time,
    throughput_convergence,
)
from .equilibrium import (
    GameConfig,
    SenderSpec,
    best_response,
    hybrid_rate_prediction,
    solve_equilibrium,
    utility,
)
from .fairness import jains_index
from .stats import (
    cdf_points,
    confusion_probability,
    histogram_pdf,
    inflation_ratio_95th,
    percentile,
    windowed_latency_metrics,
)

__all__ = [
    "ConvergenceReport",
    "GameConfig",
    "fairness_convergence_time",
    "throughput_convergence",
    "SenderSpec",
    "best_response",
    "cdf_points",
    "confusion_probability",
    "histogram_pdf",
    "hybrid_rate_prediction",
    "inflation_ratio_95th",
    "jains_index",
    "percentile",
    "solve_equilibrium",
    "utility",
    "windowed_latency_metrics",
]
