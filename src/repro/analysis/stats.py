"""Statistics used by the paper's evaluation.

Includes the paper's bespoke metrics: the 95th-percentile *inflation
ratio* (Fig 3b), the *confusion probability* between congested and
non-congested metric samples (§4.2), windowed RTT gradient/deviation for
the Fig 2 analysis, and plain CDF/percentile helpers.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.metrics import rtt_deviation, rtt_gradient
from ..core.rng import Rng


def percentile(samples: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100]) of ``samples``."""
    if not samples:
        raise ValueError("no samples")
    if not 0 <= p <= 100:
        raise ValueError("p must be in [0, 100]")
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(p / 100.0 * (len(ordered) - 1))))
    return ordered[index]


def cdf_points(samples: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) steps."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


def inflation_ratio_95th(
    rtts: Sequence[float],
    base_rtt_s: float,
    buffer_bytes: float,
    bandwidth_bps: float,
) -> float:
    """The paper's 95th-percentile inflation ratio (Fig 3b).

    ``(p95(RTT) - base RTT) / (buffer size / bottleneck bandwidth)`` —
    effectively the 95th-percentile buffer occupancy fraction.
    """
    if buffer_bytes <= 0 or bandwidth_bps <= 0:
        raise ValueError("buffer and bandwidth must be positive")
    drain_time = buffer_bytes * 8.0 / bandwidth_bps
    return (percentile(rtts, 95) - base_rtt_s) / drain_time


def confusion_probability(
    congested: Sequence[float],
    uncongested: Sequence[float],
    rng: Rng | None = None,
    n_pairs: int = 20000,
) -> float:
    """§4.2's confusion probability.

    The probability, over uniformly random (uncongested, congested) sample
    pairs, that the metric is *smaller* in the congested sample than in
    the uncongested one.  Lower means the metric separates congestion
    better.
    """
    if not congested or not uncongested:
        raise ValueError("need samples from both conditions")
    rng = rng if rng is not None else Rng(0)
    confused = 0
    for _ in range(n_pairs):
        c = congested[rng.randrange(len(congested))]
        u = uncongested[rng.randrange(len(uncongested))]
        if c < u:
            confused += 1
    return confused / n_pairs


def windowed_latency_metrics(
    ack_times: Sequence[float],
    send_times: Sequence[float],
    rtts: Sequence[float],
    window_s: float,
    t0: float,
    t1: float,
) -> tuple[list[float], list[float]]:
    """Per-window (RTT deviation, |RTT gradient|) series for Fig 2.

    Samples are grouped into consecutive windows of ``window_s`` by ACK
    arrival time; windows with fewer than 3 samples are skipped.
    """
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    deviations: list[float] = []
    gradients: list[float] = []
    start = t0
    i = 0
    n = len(ack_times)
    while start < t1 and i < n:
        end = start + window_s
        j = i
        while j < n and ack_times[j] < end:
            j += 1
        if j - i >= 3:
            window_sends = list(send_times[i:j])
            window_rtts = list(rtts[i:j])
            deviations.append(rtt_deviation(window_rtts))
            gradients.append(abs(rtt_gradient(window_sends, window_rtts)))
        i = j
        start = end
    return deviations, gradients


def histogram_pdf(
    samples: Sequence[float], bins: int, lo: float, hi: float
) -> list[tuple[float, float]]:
    """Normalised histogram as (bin_center, probability) rows."""
    if bins <= 0 or hi <= lo:
        raise ValueError("invalid histogram spec")
    counts = [0] * bins
    width = (hi - lo) / bins
    total = 0
    for s in samples:
        if lo <= s < hi:
            counts[int((s - lo) / width)] += 1
            total += 1
        elif s == hi:
            counts[-1] += 1
            total += 1
    if total == 0:
        return [(lo + (i + 0.5) * width, 0.0) for i in range(bins)]
    return [
        (lo + (i + 0.5) * width, counts[i] / total) for i in range(bins)
    ]
