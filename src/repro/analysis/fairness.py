"""Fairness metrics."""

from __future__ import annotations

from collections.abc import Sequence


def jains_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 is perfectly fair; 1/n means one flow holds everything.
    """
    if not allocations:
        raise ValueError("need at least one allocation")
    if any(x < 0 for x in allocations):
        raise ValueError("allocations must be non-negative")
    total = sum(allocations)
    squares = sum(x * x for x in allocations)
    if squares <= 0.0:
        return 1.0  # all-zero: degenerate but conventionally fair
    return total * total / (len(allocations) * squares)
