"""Convergence and stability diagnostics.

The paper proves the *existence* of unique equilibria and explicitly
leaves "the dynamics of convergence (e.g., convergence speed) to future
work" (§4.3).  This module provides the measurement half of that future
work for the simulated system: given a flow's throughput time series,
how long did it take to settle near its final share, and how much does
it oscillate once there?

These diagnostics back the ablation benchmarks (e.g. quantifying the
majority rule's effect on ramp-up) and are generally useful when tuning
controller parameters.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from ..sim.trace import FlowStats


@dataclass(frozen=True)
class ConvergenceReport:
    """Settling behaviour of one flow's throughput series."""

    settle_time_s: float | None  # None: never settled within the series
    steady_mean_mbps: float
    steady_cov: float  # coefficient of variation in the settled region
    overshoot_ratio: float  # peak rate / steady mean during ramp-up


def throughput_convergence(
    stats: FlowStats,
    t0: float,
    t1: float,
    bin_s: float = 0.5,
    tolerance: float = 0.15,
    hold_bins: int = 6,
) -> ConvergenceReport:
    """Analyse when a flow's throughput settles.

    The steady level is the mean over the final quarter of ``[t0, t1]``.
    The settle time is the start of the first window of ``hold_bins``
    consecutive bins all within ``tolerance`` of that level.  Overshoot
    is the peak bin against the steady level.
    """
    series = stats.throughput_series(bin_s, t0, t1)
    if len(series) < max(hold_bins, 4):
        raise ValueError("series too short for convergence analysis")
    values = [v for _, v in series]
    tail = values[3 * len(values) // 4 :]
    steady = sum(tail) / len(tail)
    if steady <= 0:
        return ConvergenceReport(None, 0.0, 0.0, math.inf)

    settle_time = None
    for i in range(len(values) - hold_bins + 1):
        window = values[i : i + hold_bins]
        if all(abs(v - steady) <= tolerance * steady for v in window):
            settle_time = series[i][0] - bin_s / 2 - t0
            break
    steady_region = (
        values[int(settle_time // bin_s) :] if settle_time is not None else tail
    )
    mean = sum(steady_region) / len(steady_region)
    variance = sum((v - mean) ** 2 for v in steady_region) / len(steady_region)
    cov = math.sqrt(variance) / mean if mean > 0 else 0.0
    overshoot = max(values) / steady
    return ConvergenceReport(
        settle_time_s=settle_time,
        steady_mean_mbps=steady,
        steady_cov=cov,
        overshoot_ratio=overshoot,
    )


def fairness_convergence_time(
    all_stats: Sequence[FlowStats],
    t0: float,
    t1: float,
    bin_s: float = 1.0,
    target_index: float = 0.9,
) -> float | None:
    """Time (from ``t0``) until Jain's index first reaches ``target_index``.

    Computed over per-bin throughputs of all flows; returns None if the
    target is never reached within the window.
    """
    from .fairness import jains_index

    if not all_stats:
        raise ValueError("need at least one flow")
    series = [s.throughput_series(bin_s, t0, t1) for s in all_stats]
    n_bins = min(len(s) for s in series)
    for i in range(n_bins):
        shares = [s[i][1] for s in series]
        if sum(shares) > 0 and jains_index(shares) >= target_index:
            return series[0][i][0] - bin_s / 2 - t0
    return None
