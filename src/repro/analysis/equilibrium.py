"""Numeric equilibrium analysis of the Proteus game (Appendix A).

Implements the paper's simplified theoretical model: on a shared
bottleneck of capacity ``C`` (Mbps) with total sending rate ``S``,

* ``u_P(x) = x^t - b * x * max(0, (S - C) / C)``
* ``u_S(x) = u_P(x) - d * A * x * |S - C| / C``

where ``A = MI_duration / sqrt(12)`` (the paper's constant obtained from
the arithmetic-progression RTT model with ``n_i`` linear in ``x_i``; for
an RTT-long MI this is ``RTT / sqrt(12)``).

A damped best-response iteration finds the Nash equilibrium; Appendix A
proves it unique (the game is strictly socially concave), so the fixed
point the iteration converges to is *the* equilibrium.  Theorems 4.1/4.2
(fair, link-saturating equilibria for all-P and all-S populations) and the
§4.4 Proteus-H four-case rate-split prediction are validated against this
solver in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import optimize

from ..core.utility import (
    DEFAULT_DEVIATION_D,
    DEFAULT_EXPONENT_T,
    DEFAULT_LATENCY_B,
)


@dataclass(frozen=True)
class SenderSpec:
    """One player in the bottleneck game.

    ``mode`` is ``"P"``, ``"S"``, or ``"H"``; hybrid players carry their
    switching threshold in Mbps.
    """

    mode: str
    threshold_mbps: float = float("inf")

    def __post_init__(self) -> None:
        if self.mode not in ("P", "S", "H"):
            raise ValueError("mode must be P, S, or H")


@dataclass
class GameConfig:
    """Parameters of the theoretical model."""

    capacity_mbps: float
    rtt_s: float = 0.030
    t: float = DEFAULT_EXPONENT_T
    b: float = DEFAULT_LATENCY_B
    d: float = DEFAULT_DEVIATION_D

    @property
    def deviation_const(self) -> float:
        """The paper's ``A`` for an RTT-long monitor interval, in seconds."""
        return self.rtt_s / math.sqrt(12.0)


def utility(x: float, others_sum: float, spec: SenderSpec, config: GameConfig) -> float:
    """Model utility of one sender at rate ``x`` (Mbps)."""
    if x < 0:
        return -math.inf
    total = x + others_sum
    capacity = config.capacity_mbps
    overload = (total - capacity) / capacity
    u_primary = x ** config.t - config.b * x * max(0.0, overload)
    if spec.mode == "P" or (spec.mode == "H" and x < spec.threshold_mbps):
        return u_primary
    deviation_penalty = config.d * config.deviation_const * x * abs(overload)
    return u_primary - deviation_penalty


def best_response(
    others_sum: float, spec: SenderSpec, config: GameConfig
) -> float:
    """The sender's utility-maximising rate given everyone else's total."""
    upper = max(config.capacity_mbps * 2.0, 1.0)

    def negative_utility(x: float) -> float:
        return -utility(x, others_sum, spec, config)

    result = optimize.minimize_scalar(
        negative_utility, bounds=(0.0, upper), method="bounded",
        options={"xatol": 1e-7},
    )
    best_x = float(result.x)
    best_u = -float(result.fun)
    # The hybrid utility is only piecewise-concave: check both pieces'
    # local optima plus the threshold point itself.
    if spec.mode == "H" and math.isfinite(spec.threshold_mbps):
        for candidate in _hybrid_candidates(others_sum, spec, config):
            u = utility(candidate, others_sum, spec, config)
            if u > best_u:
                best_u = u
                best_x = candidate
    return best_x


def _hybrid_candidates(
    others_sum: float, spec: SenderSpec, config: GameConfig
) -> list[float]:
    candidates = [max(0.0, spec.threshold_mbps - 1e-9)]
    upper = max(config.capacity_mbps * 2.0, 1.0)
    for mode, lo, hi in (
        ("P", 0.0, min(spec.threshold_mbps, upper)),
        ("S", min(spec.threshold_mbps, upper), upper),
    ):
        if hi <= lo:
            continue
        piece = SenderSpec(mode)
        result = optimize.minimize_scalar(
            lambda x: -utility(x, others_sum, piece, config),
            bounds=(lo, hi),
            method="bounded",
            options={"xatol": 1e-7},
        )
        candidates.append(float(result.x))
    return candidates


def solve_equilibrium(
    specs: list[SenderSpec],
    config: GameConfig,
    max_iterations: int = 2000,
    damping: float = 0.3,
    tolerance_mbps: float = 1e-4,
) -> list[float]:
    """Damped best-response iteration to the (unique) Nash equilibrium."""
    if not specs:
        raise ValueError("need at least one sender")
    n = len(specs)
    rates = [config.capacity_mbps / n] * n
    for _ in range(max_iterations):
        max_change = 0.0
        for i, spec in enumerate(specs):
            others = sum(rates) - rates[i]
            target = best_response(others, spec, config)
            new_rate = (1.0 - damping) * rates[i] + damping * target
            max_change = max(max_change, abs(new_rate - rates[i]))
            rates[i] = new_rate
        if max_change < tolerance_mbps:
            return rates
    raise RuntimeError(
        f"best-response iteration did not converge within {max_iterations} rounds"
    )


def hybrid_rate_prediction(
    r1_mbps: float, r2_mbps: float, capacity_mbps: float
) -> tuple[float, float]:
    """§4.4's ideal rate split for two Proteus-H senders (r1 <= r2)."""
    if r1_mbps > r2_mbps:
        raise ValueError("expects r1 <= r2")
    c = capacity_mbps
    if c < 2.0 * r1_mbps:
        return c / 2.0, c / 2.0
    if c < r1_mbps + r2_mbps:
        return r1_mbps, c - r1_mbps
    if c < 2.0 * r2_mbps:
        return c - r2_mbps, r2_mbps
    return c / 2.0, c / 2.0
