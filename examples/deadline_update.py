#!/usr/bin/env python
"""Scenario: a software update with a completion deadline (§2.3).

The paper motivates dynamic priority with exactly this case: "when a
software update has a deadline requirement, it may want to yield
dynamically, only after reaching a certain throughput."  Here a 500 MB
update shares a 50 Mbps link with a primary Proteus-P flow.  With a
relaxed deadline the update scavenges the whole way; with a tight one,
the deadline-driven Proteus-H threshold rises as slack shrinks and the
update defends exactly the share it needs — no more.

Run:  python examples/deadline_update.py
"""

from repro.core import DeadlineThresholdPolicy, ProteusSender
from repro.harness import print_table
from repro.sim import Dumbbell, Simulator, make_rng, mbps

LINK_MBPS = 50.0
UPDATE_BYTES = 500e6
DURATION_S = 120.0


def run_update(deadline_s: float):
    sim = Simulator()
    dumbbell = Dumbbell(sim, mbps(LINK_MBPS), 0.030, 375e3, rng=make_rng(9))
    primary = dumbbell.add_flow(ProteusSender("proteus-p", seed=1), flow_id=1)
    update = ProteusSender("proteus-h", seed=2)
    policy = DeadlineThresholdPolicy(UPDATE_BYTES, deadline_s)
    update_flow = dumbbell.add_flow(update, flow_id=2, start_time=3.0)

    def refresh_threshold():
        update.set_threshold(
            policy.threshold_bps(sim.now, update_flow.stats.delivered_bytes)
        )
        if sim.now < DURATION_S - 1.0:
            sim.schedule(1.0, refresh_threshold)

    sim.schedule(3.0, refresh_threshold)
    sim.run(until=DURATION_S)
    window = (DURATION_S / 2, DURATION_S)
    return (
        update_flow.stats.delivered_bytes / 1e6,
        update_flow.stats.throughput_bps(*window) / 1e6,
        primary.stats.throughput_bps(*window) / 1e6,
    )


def main() -> None:
    rows = []
    for deadline in (3600.0, 240.0, 100.0):
        delivered_mb, update_mbps, primary_mbps = run_update(deadline)
        rows.append(
            (
                f"{deadline:.0f} s",
                f"{delivered_mb:.0f}",
                f"{update_mbps:.1f}",
                f"{primary_mbps:.1f}",
            )
        )
    print_table(
        ["deadline", "update MB done", "update Mbps", "primary Mbps"],
        rows,
        title=f"500 MB update next to a primary flow on {LINK_MBPS:.0f} Mbps "
        f"({DURATION_S:.0f} s observed)",
    )
    print(
        "\nWith hours of slack the update is a pure scavenger; as the\n"
        "deadline tightens, the Proteus-H threshold rises to the required\n"
        "rate and the update claims just enough bandwidth to make it."
    )


if __name__ == "__main__":
    main()
