"""Observability tour: trace a run, collect metrics, diff two protocols.

Demonstrates the ``repro.obs`` layer end to end:

* attach a :class:`CollectingTracer` to one run and summarise the
  monitor-interval / rate-decision stream;
* attach a :class:`MetricsRegistry` and read the canonical snapshot;
* every result exposes the same ``metrics`` view via the unified
  ``Result`` protocol.

Same scenarios as ``quickstart.py`` — only the instrumentation is new.
"""

from repro import FlowSpec, MetricsRegistry, run_flows
from repro.harness import EMULAB_DEFAULT, print_table
from repro.obs import CollectingTracer, filter_events


def trace_a_scavenger() -> None:
    tracer = CollectingTracer()
    run_flows(
        [FlowSpec("cubic"), FlowSpec("proteus-s", start_time=2.0)],
        EMULAB_DEFAULT,
        duration_s=10.0,
        tracer=tracer,
    )
    events = tracer.to_dicts()
    decisions = filter_events(events, flows=[2], kinds=["rate.decision"])
    mi_ends = filter_events(events, flows=[2], kinds=["mi.end"])
    by_reason: dict[str, int] = {}
    for event in decisions:
        by_reason[event["reason"]] = by_reason.get(event["reason"], 0) + 1
    rows = [(reason, str(count)) for reason, count in sorted(by_reason.items())]
    rows.append(("monitor intervals scored", str(len(mi_ends))))
    rows.append(("total trace events", str(len(events))))
    print_table(
        ["rate decision", "count"],
        rows,
        title="what the Proteus-S controller did (flow 2)",
    )


def metrics_snapshot() -> None:
    registry = MetricsRegistry()
    result = run_flows(
        [FlowSpec("cubic"), FlowSpec("proteus-s", start_time=2.0)],
        EMULAB_DEFAULT,
        duration_s=10.0,
        metrics=registry,
    )
    snapshot = result.metrics  # same canonical shape as registry.snapshot()
    rows = [
        (key, f"{value:.3f}" if isinstance(value, float) else str(value))
        for key, value in snapshot["gauges"].items()
    ]
    print_table(["gauge", "value"], rows, title="run metrics snapshot")


if __name__ == "__main__":
    trace_a_scavenger()
    metrics_snapshot()
