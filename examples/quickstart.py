#!/usr/bin/env python
"""Quickstart: run PCC Proteus on a simulated bottleneck.

This example builds the paper's default test link (50 Mbps, 30 ms RTT,
2 x BDP tail-drop buffer), runs a Proteus-P (primary) flow alone, then
adds a Proteus-S (scavenger) flow next to a CUBIC primary to show the
scavenger yielding, and finally switches the scavenger's utility to
primary mode mid-flow — the paper's flexibility pitch in ~40 lines of
API use.

Run:  python examples/quickstart.py
"""

from repro import make_sender
from repro.harness import EMULAB_DEFAULT, FlowSpec, print_table, run_flows, run_single
from repro.sim import Dumbbell, Simulator, make_rng


def solo_primary() -> None:
    result = run_single("proteus-p", EMULAB_DEFAULT, duration_s=20.0)
    throughput = result.throughput_mbps(0)
    p95 = result.stats[0].rtt_percentile(95, *result.measurement_window())
    print(
        f"Proteus-P alone: {throughput:.1f} Mbps of "
        f"{EMULAB_DEFAULT.bandwidth_mbps:.0f} Mbps, p95 RTT {p95 * 1e3:.1f} ms"
    )


def scavenger_vs_cubic() -> None:
    result = run_flows(
        [
            FlowSpec("cubic"),
            FlowSpec("proteus-s", start_time=5.0),
        ],
        EMULAB_DEFAULT,
        duration_s=30.0,
    )
    rows = [
        ("CUBIC (primary)", f"{result.throughput_mbps(0):.2f}"),
        ("Proteus-S (scavenger)", f"{result.throughput_mbps(1):.2f}"),
    ]
    print_table(
        ["flow", "Mbps"], rows, title="Scavenger yields to a primary flow"
    )


def switch_modes_mid_flow() -> None:
    """Drive the sender API directly: one codebase, two roles."""
    sim = Simulator()
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=EMULAB_DEFAULT.bandwidth_bps,
        rtt_s=EMULAB_DEFAULT.rtt_s,
        buffer_bytes=EMULAB_DEFAULT.buffer_bytes,
        rng=make_rng(7),
    )
    primary = make_sender("proteus-p")
    flexible = make_sender("proteus-s")
    dumbbell.add_flow(primary, flow_id=1)
    flexible_flow = dumbbell.add_flow(flexible, flow_id=2, start_time=5.0)

    sim.run(until=30.0)
    yielding = flexible_flow.stats.throughput_bps(20.0, 30.0) / 1e6
    # The paper's "simple API call": re-select the utility mid-flow.
    flexible.set_utility("proteus-p")
    sim.run(until=60.0)
    primary_mode = flexible_flow.stats.throughput_bps(50.0, 60.0) / 1e6
    print(
        f"\nSame flow, dynamic switch: {yielding:.1f} Mbps as scavenger -> "
        f"{primary_mode:.1f} Mbps after switching to primary mode"
    )


def main() -> None:
    solo_primary()
    scavenger_vs_cubic()
    switch_modes_mid_flow()


if __name__ == "__main__":
    main()
