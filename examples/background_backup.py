#!/usr/bin/env python
"""Scenario: cloud-storage backup behind interactive web browsing.

The paper's motivating example (§1, §2.1): a long-running background
replication (Dropbox-style) shares a home downlink with interactive
page loads.  We compare three transports for the backup — CUBIC (the
"fair" default), LEDBAT (the deployed scavenger), and Proteus-S — and
report both the harm to page-load times and the backup's own progress.

Run:  python examples/background_backup.py
"""

import statistics

from repro.apps import run_poisson_page_loads
from repro.harness import print_table
from repro.protocols import make_sender
from repro.sim import Dumbbell, Simulator, make_rng, mbps

# §6.2.2's setup: "a wired Xfinity downlink of about 100 Mbps".
LINK_MBPS = 100.0
RTT_S = 0.030
BUFFER_BYTES = 750e3
DURATION_S = 80.0


def run_scenario(backup_protocol: str | None):
    sim = Simulator()
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(LINK_MBPS),
        rtt_s=RTT_S,
        buffer_bytes=BUFFER_BYTES,
        rng=make_rng(11),
    )
    backup_flow = None
    if backup_protocol is not None:
        backup = make_sender(backup_protocol)
        backup_flow = dumbbell.add_flow(backup, flow_id=1)
    client = run_poisson_page_loads(
        sim, dumbbell, duration_s=DURATION_S, rate_per_s=0.15, seed=3
    )
    sim.run(until=DURATION_S + 20.0)
    load_times = client.completed_load_times()
    backup_gb = (
        backup_flow.stats.total_acked_bytes / 1e9 if backup_flow is not None else 0.0
    )
    return load_times, backup_gb


def main() -> None:
    rows = []
    for protocol in (None, "proteus-s", "ledbat", "cubic"):
        load_times, backup_gb = run_scenario(protocol)
        rows.append(
            (
                protocol or "(no backup)",
                f"{statistics.median(load_times):.2f}",
                f"{statistics.mean(load_times):.2f}",
                f"{backup_gb:.2f}",
            )
        )
    print_table(
        ["backup transport", "median PLT (s)", "mean PLT (s)", "backup GB moved"],
        rows,
        title=f"Background backup on a {LINK_MBPS:.0f} Mbps home link "
        f"({DURATION_S:.0f} s of browsing)",
    )
    print(
        "\nA good scavenger keeps page loads near the no-backup baseline\n"
        "while still moving most of the idle capacity's worth of data."
    )


if __name__ == "__main__":
    main()
