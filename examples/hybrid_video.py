#!/usr/bin/env python
"""Scenario: 4K + 1080p adaptive streaming with the Proteus-H hybrid mode.

Reproduces §6.3's headline in miniature: one 4K and three 1080p BOLA
sessions share a constrained bottleneck.  With plain Proteus-P every
flow fights for a fair share, starving the 4K stream; with Proteus-H
each 1080p flow scavenges once it exceeds what its bitrate ladder can
use (threshold = 1.5 x max bitrate, shrinking as its buffer fills), and
the spare capacity flows to the 4K stream.

Run:  python examples/hybrid_video.py
"""

from repro.apps import make_corpus
from repro.harness import LinkConfig, print_table, run_streaming
from repro.sim import make_rng

LINK = LinkConfig(bandwidth_mbps=90.0, rtt_ms=30.0, buffer_kb=900.0)
DURATION_S = 90.0


def main() -> None:
    corpus = make_corpus(seed=0)
    videos = corpus.pick(make_rng(42), n_4k=1, n_1080p=3)
    rows = []
    for protocol in ("proteus-p", "proteus-h"):
        results = run_streaming(videos, protocol, LINK, duration_s=DURATION_S)
        for r in results:
            rows.append(
                (
                    protocol,
                    r.video_name,
                    f"{r.average_bitrate_mbps:.2f}",
                    f"{r.rebuffer_ratio * 100:.2f}%",
                    r.chunks_delivered,
                )
            )
    print_table(
        ["transport", "video", "avg bitrate (Mbps)", "rebuffer", "chunks"],
        rows,
        title=f"Adaptive streaming on a {LINK.bandwidth_mbps:.0f} Mbps bottleneck",
    )
    print(
        "\nProteus-H trades nothing the 1080p ladders can use for a higher\n"
        "4K bitrate — the cross-layer threshold makes satisfied flows yield."
    )


if __name__ == "__main__":
    main()
