#!/usr/bin/env python
"""Scenario: scavenging on a noisy WiFi-like uplink (§5, §6.2.1).

RTT deviation is Proteus-S's competition signal — but WiFi MAC
scheduling produces deviation with no competition at all.  This example
runs Proteus-S on a noisy link with all noise-tolerance mechanisms
enabled, then with them disabled, and alongside a primary BBR flow, to
show the §5 machinery earning its keep: tolerate channel noise, still
yield to real competition.

Run:  python examples/wifi_noise.py
"""

from repro.core import NoiseToleranceConfig, ProteusSender
from repro.harness import print_table
from repro.protocols import BBRSender
from repro.sim import Dumbbell, Simulator, make_rng, mbps, wifi_noise

LINK_MBPS = 30.0
RTT_S = 0.060
BUFFER_BYTES = 450e3
DURATION_S = 40.0


def run_solo(noise_config: NoiseToleranceConfig | None, severity: float) -> float:
    sim = Simulator()
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(LINK_MBPS),
        rtt_s=RTT_S,
        buffer_bytes=BUFFER_BYTES,
        noise=wifi_noise(severity),
        reverse_noise=wifi_noise(severity),
        rng=make_rng(5),
    )
    sender = ProteusSender("proteus-s", noise_config=noise_config)
    flow = dumbbell.add_flow(sender)
    sim.run(until=DURATION_S)
    return flow.stats.throughput_bps(DURATION_S / 2, DURATION_S) / 1e6


def run_vs_bbr(severity: float) -> tuple[float, float]:
    sim = Simulator()
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(LINK_MBPS),
        rtt_s=RTT_S,
        buffer_bytes=BUFFER_BYTES,
        noise=wifi_noise(severity),
        reverse_noise=wifi_noise(severity),
        rng=make_rng(5),
    )
    primary = dumbbell.add_flow(BBRSender(), flow_id=1)
    scavenger = dumbbell.add_flow(
        ProteusSender("proteus-s"), flow_id=2, start_time=5.0
    )
    sim.run(until=DURATION_S)
    window = (DURATION_S / 2, DURATION_S)
    return (
        primary.stats.throughput_bps(*window) / 1e6,
        scavenger.stats.throughput_bps(*window) / 1e6,
    )


def main() -> None:
    all_off = NoiseToleranceConfig(
        ack_filter=False,
        regression_tolerance=False,
        trending_tolerance=False,
        majority_rule=False,
    )
    rows = []
    for severity in (0.5, 1.0, 2.0):
        with_tolerance = run_solo(None, severity)
        without = run_solo(all_off, severity)
        rows.append(
            (f"{severity:.1f}", f"{with_tolerance:.1f}", f"{without:.1f}")
        )
    print_table(
        ["noise severity", "Proteus-S w/ tolerance", "w/o tolerance"],
        rows,
        title=f"Solo scavenger throughput (Mbps) on a noisy {LINK_MBPS:.0f} Mbps link",
    )

    primary, scavenger = run_vs_bbr(1.0)
    print(
        f"\nWith a primary BBR flow on the same noisy link: BBR gets "
        f"{primary:.1f} Mbps, Proteus-S scavenges {scavenger:.1f} Mbps —\n"
        "noise tolerance does not stop the scavenger from yielding to real "
        "competition."
    )


if __name__ == "__main__":
    main()
