"""Unit tests for the paper-specific statistics."""

import random

import pytest

from repro.analysis import (
    cdf_points,
    confusion_probability,
    histogram_pdf,
    inflation_ratio_95th,
    percentile,
    windowed_latency_metrics,
)


def test_percentile_basics():
    data = list(range(101))
    assert percentile(data, 0) == 0
    assert percentile(data, 50) == 50
    assert percentile(data, 95) == 95
    assert percentile(data, 100) == 100


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_cdf_points_monotone():
    points = cdf_points([3.0, 1.0, 2.0])
    values = [v for v, _ in points]
    fractions = [f for _, f in points]
    assert values == [1.0, 2.0, 3.0]
    assert fractions == pytest.approx([1 / 3, 2 / 3, 1.0])


def test_inflation_ratio_full_buffer_is_one():
    # p95 RTT = base + full drain time => ratio 1.
    base = 0.030
    buffer_bytes = 375e3
    bw = 50e6
    drain = buffer_bytes * 8 / bw
    rtts = [base + drain] * 100
    assert inflation_ratio_95th(rtts, base, buffer_bytes, bw) == pytest.approx(1.0)


def test_inflation_ratio_empty_queue_is_zero():
    rtts = [0.030] * 50
    assert inflation_ratio_95th(rtts, 0.030, 375e3, 50e6) == pytest.approx(0.0)


def test_inflation_ratio_validation():
    with pytest.raises(ValueError):
        inflation_ratio_95th([0.03], 0.03, 0.0, 50e6)


def test_confusion_probability_separable_distributions():
    uncongested = [0.001] * 100
    congested = [0.010] * 100
    assert confusion_probability(congested, uncongested) == 0.0


def test_confusion_probability_identical_distributions():
    rng = random.Random(1)
    samples_a = [rng.random() for _ in range(500)]
    samples_b = [rng.random() for _ in range(500)]
    p = confusion_probability(samples_a, samples_b, rng=random.Random(2))
    assert 0.4 < p < 0.6


def test_confusion_probability_validation():
    with pytest.raises(ValueError):
        confusion_probability([], [1.0])


def test_windowed_latency_metrics_groups_by_window():
    # Two windows of 5 samples each; second window has RTT spread.
    ack_times = [0.1 * i for i in range(10)]
    send_times = [t - 0.03 for t in ack_times]
    rtts = [0.030] * 5 + [0.030, 0.040, 0.050, 0.060, 0.070]
    devs, grads = windowed_latency_metrics(
        ack_times, send_times, rtts, window_s=0.5, t0=0.0, t1=1.0
    )
    assert len(devs) == 2
    assert devs[0] == pytest.approx(0.0)
    assert devs[1] > 0.01
    assert grads[1] > grads[0]


def test_windowed_latency_metrics_skips_sparse_windows():
    devs, grads = windowed_latency_metrics(
        [0.0, 10.0], [0.0, 10.0], [0.03, 0.03], window_s=1.0, t0=0.0, t1=20.0
    )
    assert devs == [] and grads == []


def test_histogram_pdf_normalises():
    samples = [0.5, 1.5, 1.5, 2.5]
    pdf = histogram_pdf(samples, bins=3, lo=0.0, hi=3.0)
    assert [p for _, p in pdf] == pytest.approx([0.25, 0.5, 0.25])
    assert sum(p for _, p in pdf) == pytest.approx(1.0)


def test_histogram_pdf_empty_range():
    pdf = histogram_pdf([10.0], bins=2, lo=0.0, hi=1.0)
    assert all(p == 0.0 for _, p in pdf)
    with pytest.raises(ValueError):
        histogram_pdf([1.0], bins=0, lo=0.0, hi=1.0)
