"""Unit tests for Jain's fairness index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import jains_index


def test_equal_allocation_is_perfectly_fair():
    assert jains_index([5.0, 5.0, 5.0, 5.0]) == pytest.approx(1.0)


def test_single_flow_is_fair():
    assert jains_index([42.0]) == pytest.approx(1.0)


def test_one_hog_approaches_one_over_n():
    assert jains_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


def test_known_value():
    # (1+2+3)^2 / (3 * (1+4+9)) = 36/42
    assert jains_index([1.0, 2.0, 3.0]) == pytest.approx(36 / 42)


def test_all_zero_is_conventionally_fair():
    assert jains_index([0.0, 0.0]) == 1.0


def test_validation():
    with pytest.raises(ValueError):
        jains_index([])
    with pytest.raises(ValueError):
        jains_index([1.0, -1.0])


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30)
)
def test_property_bounds(allocations):
    index = jains_index(allocations)
    n = len(allocations)
    assert 1.0 / n - 1e-9 <= index <= 1.0 + 1e-9


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(min_value=0.01, max_value=1e3), min_size=2, max_size=20),
    st.floats(min_value=0.01, max_value=100.0),
)
def test_property_scale_invariance(allocations, factor):
    scaled = [a * factor for a in allocations]
    assert jains_index(scaled) == pytest.approx(jains_index(allocations), rel=1e-6)
