"""Tests for convergence diagnostics."""

import pytest

from repro.analysis import fairness_convergence_time, throughput_convergence
from repro.sim import FlowStats


def stats_with_rates(rates_by_second, bytes_per_tick=12500, ticks_per_s=10):
    """Build FlowStats whose per-second throughput follows ``rates``.

    ``rates_by_second`` maps to relative ack density per second.
    """
    stats = FlowStats()
    t = 0.0
    for rate in rates_by_second:
        for tick in range(int(rate * ticks_per_s)):
            stats.record_ack(t + tick / (rate * ticks_per_s + 1e-9), bytes_per_tick, 0.03)
        t += 1.0
    return stats


def test_convergence_detects_settle_point():
    # Ramp for 3 s, then steady at 10 units for 9 s.
    stats = stats_with_rates([2, 5, 8] + [10] * 9)
    report = throughput_convergence(stats, 0.0, 12.0, bin_s=1.0)
    assert report.settle_time_s is not None
    assert 2.0 <= report.settle_time_s <= 4.5
    assert report.steady_cov < 0.05
    assert report.overshoot_ratio == pytest.approx(1.0, abs=0.1)


def test_convergence_reports_overshoot():
    stats = stats_with_rates([2, 20, 14, 10, 10, 10, 10, 10, 10, 10, 10, 10])
    report = throughput_convergence(stats, 0.0, 12.0, bin_s=1.0)
    assert report.overshoot_ratio > 1.5


def test_convergence_never_settling():
    stats = stats_with_rates([2, 20, 2, 20, 2, 20, 2, 20, 2, 20, 2, 20])
    report = throughput_convergence(stats, 0.0, 12.0, bin_s=1.0, tolerance=0.1)
    assert report.settle_time_s is None


def test_convergence_requires_enough_bins():
    stats = stats_with_rates([5, 5])
    with pytest.raises(ValueError):
        throughput_convergence(stats, 0.0, 2.0, bin_s=1.0)


def test_fairness_convergence_time():
    # Flow A constant; flow B ramps to equality by t=5.
    a = stats_with_rates([10] * 10)
    b = stats_with_rates([1, 2, 4, 7, 9, 10, 10, 10, 10, 10])
    t = fairness_convergence_time([a, b], 0.0, 10.0, bin_s=1.0, target_index=0.95)
    assert t is not None
    assert 2.0 <= t <= 6.0


def test_fairness_convergence_never():
    a = stats_with_rates([10] * 8)
    b = stats_with_rates([1] * 8)
    assert fairness_convergence_time([a, b], 0.0, 8.0, target_index=0.99) is None
    with pytest.raises(ValueError):
        fairness_convergence_time([], 0.0, 8.0)
