"""Validation of the Appendix A equilibrium theory.

These tests exercise the numeric best-response solver against the
paper's formal results: Theorems 4.1 and 4.2 (fair, saturating
equilibria for homogeneous populations), the uniqueness-driven mixed
P/S equilibrium where scavengers yield, and the §4.4 Proteus-H
four-case rate-split prediction.
"""

import pytest

from repro.analysis import (
    GameConfig,
    SenderSpec,
    best_response,
    hybrid_rate_prediction,
    solve_equilibrium,
    utility,
)


CONFIG = GameConfig(capacity_mbps=100.0)


def test_theorem_4_1_primary_only_equilibrium_is_fair_and_saturating():
    for n in (2, 3, 5):
        rates = solve_equilibrium([SenderSpec("P")] * n, CONFIG)
        total = sum(rates)
        assert total == pytest.approx(CONFIG.capacity_mbps, rel=0.02)
        for r in rates:
            assert r == pytest.approx(rates[0], rel=0.02)


def test_theorem_4_2_scavenger_only_equilibrium_is_fair_and_saturating():
    for n in (2, 4):
        rates = solve_equilibrium([SenderSpec("S")] * n, CONFIG)
        total = sum(rates)
        assert total == pytest.approx(CONFIG.capacity_mbps, rel=0.02)
        for r in rates:
            assert r == pytest.approx(rates[0], rel=0.02)


def test_mixed_equilibrium_saturates_with_scavenger_not_ahead():
    """Mixed P/S populations: unique equilibrium saturates the link.

    Note the paper explicitly leaves the formal analysis of *yielding*
    (S getting much less than P) to future work — the static model only
    guarantees saturation and that the scavenger is not advantaged; the
    deep yielding comes from the dynamic response to RTT fluctuation
    that the simulator (not this model) captures.
    """
    rates = solve_equilibrium([SenderSpec("P"), SenderSpec("S")], CONFIG)
    primary, scavenger = rates
    assert primary + scavenger == pytest.approx(CONFIG.capacity_mbps, rel=0.05)
    assert scavenger <= primary + 1e-3


def test_deviation_coefficient_controls_overload_penalty():
    """Larger d makes overload strictly worse for the scavenger."""
    spec = SenderSpec("S")
    soft = GameConfig(capacity_mbps=100.0, d=150.0)
    hard = GameConfig(capacity_mbps=100.0, d=15000.0)
    # Overloaded operating point: x = 30, others = 80 (S = 110 > C).
    assert utility(30.0, 80.0, spec, hard) < utility(30.0, 80.0, spec, soft)


def test_equilibrium_unique_from_different_starts():
    """Appendix A: the game has a unique equilibrium — the damped
    best-response iteration must land on the same point regardless of
    the (implicit) starting allocation encoded by sender order."""
    specs = [SenderSpec("P"), SenderSpec("S"), SenderSpec("P")]
    rates_a = solve_equilibrium(specs, CONFIG)
    rates_b = solve_equilibrium(list(reversed(specs)), CONFIG)
    assert sorted(rates_a) == pytest.approx(sorted(rates_b), rel=0.02)


def test_best_response_exceeds_capacity_in_aggregate():
    """Observation in Appendix A: any equilibrium has S >= C."""
    for spec in (SenderSpec("P"), SenderSpec("S")):
        rates = solve_equilibrium([spec, spec], CONFIG)
        assert sum(rates) >= CONFIG.capacity_mbps * 0.99


def test_utility_model_shapes():
    spec_p, spec_s = SenderSpec("P"), SenderSpec("S")
    # Below capacity: both modes reward rate, no penalty difference from
    # the gradient term; the scavenger pays |S - C|/C even when under.
    below_p = utility(10.0, 20.0, spec_p, CONFIG)
    below_s = utility(10.0, 20.0, spec_s, CONFIG)
    assert below_p == pytest.approx(10.0 ** CONFIG.t)
    assert below_s < below_p
    # Above capacity both are penalized; S more than P.
    above_p = utility(60.0, 60.0, spec_p, CONFIG)
    above_s = utility(60.0, 60.0, spec_s, CONFIG)
    assert above_s < above_p < 60.0 ** CONFIG.t
    # Negative rates are infeasible.
    assert utility(-1.0, 0.0, spec_p, CONFIG) == float("-inf")


def test_best_response_is_positive_and_bounded():
    for others in (0.0, 50.0, 99.0, 150.0):
        r = best_response(others, SenderSpec("P"), CONFIG)
        assert 0.0 <= r <= 2 * CONFIG.capacity_mbps


def test_hybrid_prediction_four_cases():
    # C < 2 r1: both primary, fair split.
    assert hybrid_rate_prediction(30.0, 60.0, 40.0) == (20.0, 20.0)
    # 2 r1 <= C < r1 + r2: sender 1 pinned at its threshold.
    assert hybrid_rate_prediction(30.0, 60.0, 80.0) == (30.0, 50.0)
    # r1 + r2 <= C < 2 r2: sender 2 pinned at its threshold.
    assert hybrid_rate_prediction(30.0, 60.0, 100.0) == (40.0, 60.0)
    # C >= 2 r2: unconstrained, fair split.
    assert hybrid_rate_prediction(30.0, 60.0, 140.0) == (70.0, 70.0)


def test_hybrid_prediction_validation():
    with pytest.raises(ValueError):
        hybrid_rate_prediction(60.0, 30.0, 100.0)


def test_hybrid_prediction_is_a_fixed_point_case_2():
    """§4.4's ideal split (r1, C - r1) admits no profitable deviation.

    The static model has a continuum of kink equilibria at S = C; the
    paper's prediction is the one selected by the yielding dynamics.  We
    verify it is indeed an equilibrium: each sender's best response to
    the other's predicted rate is (approximately) its own predicted rate.
    """
    r1, r2 = 20.0, 60.0
    config = GameConfig(capacity_mbps=70.0)  # 2 r1 <= C < r1 + r2
    x1, x2 = hybrid_rate_prediction(r1, r2, 70.0)
    assert (x1, x2) == (20.0, 50.0)
    br1 = best_response(x2, SenderSpec("H", threshold_mbps=r1), config)
    br2 = best_response(x1, SenderSpec("H", threshold_mbps=r2), config)
    assert br1 == pytest.approx(x1, abs=1.0)
    assert br2 == pytest.approx(x2, abs=1.0)


def test_hybrid_numeric_equilibrium_saturates():
    r1, r2 = 20.0, 60.0
    config = GameConfig(capacity_mbps=70.0)
    rates = solve_equilibrium(
        [SenderSpec("H", threshold_mbps=r1), SenderSpec("H", threshold_mbps=r2)],
        config,
    )
    assert sum(rates) == pytest.approx(70.0, rel=0.05)


def test_sender_spec_validation():
    with pytest.raises(ValueError):
        SenderSpec("X")


def test_solver_validation():
    with pytest.raises(ValueError):
        solve_equilibrium([], CONFIG)
