"""Acceptance: hybrid fidelity vs packet-exact on the paper's scenarios.

Two pins, matching the two regimes of the hybrid mode:

* **Fig-6 regime (all-unbounded competition)** — fast-forward engages,
  so hybrid results are an *approximation*: single-seed trajectories are
  chaotic (packet-exact runs with different seeds diverge just as much),
  but the ensemble-mean scavenger metrics must track packet-exact.  The
  deltas pinned here are the fidelity contract quoted in
  ``docs/PERFORMANCE.md``.
* **Fig-2 regime (mixed workload with bounded flows)** — one bounded
  flow vetoes fast-forward on its links (see ``activate_fastforward``),
  so the hybrid run must be *identical* to packet-exact, byte for byte.
"""

from __future__ import annotations

import pytest

from repro.harness import EMULAB_DEFAULT, FlowSpec, run_flows, run_pair
from repro.sim import EXACT, HYBRID

SEEDS = (1, 2, 3)
DURATION_S = 10.0

# Ensemble tolerance for the Fig-6 regime.  Measured over the pinned
# seeds: exact mean ratio 0.981, hybrid 0.899 — the shared-link burst
# cap bounds the gap well inside this budget (see _SHARED_BURST_CAP).
RATIO_TOLERANCE = 0.12
MIN_UTILIZATION = 0.95


def _ensemble(fidelity):
    ratios, utils = [], []
    for seed in SEEDS:
        pair = run_pair(
            "cubic",
            "proteus-s",
            EMULAB_DEFAULT,
            duration_s=DURATION_S,
            seed=seed,
            fidelity=fidelity,
        )
        ratios.append(pair.primary_throughput_ratio)
        utils.append(pair.utilization)
    n = len(SEEDS)
    return sum(ratios) / n, sum(utils) / n


def test_fig6_ensemble_scavenger_metrics_track_exact():
    exact_ratio, exact_util = _ensemble(EXACT)
    hybrid_ratio, hybrid_util = _ensemble(HYBRID)
    # The paper's qualitative claim survives in both modes: the primary
    # keeps (nearly) all of its solo throughput while the scavenger
    # fills the remaining capacity.
    assert exact_ratio > 0.9
    assert hybrid_ratio > 0.8
    assert exact_util > MIN_UTILIZATION
    assert hybrid_util > MIN_UTILIZATION
    # And the quantitative ensemble gap stays inside the documented
    # fidelity budget.
    assert abs(hybrid_ratio - exact_ratio) < RATIO_TOLERANCE, (
        f"ensemble primary-throughput-ratio gap: "
        f"hybrid {hybrid_ratio:.3f} vs exact {exact_ratio:.3f}"
    )


# Fig-2-style mixed workload: a long-lived probe pair plus a *bounded*
# transfer sharing the bottleneck.  The bounded flow's completion
# bookkeeping rides on per-packet delivery timing, so fast-forward must
# stand down for every flow on the link.
MIXED_SPECS = [
    FlowSpec("cubic"),
    FlowSpec("proteus-s", start_time=1.0),
    FlowSpec("cubic", start_time=0.5, size_bytes=200_000),
]


def test_fig2_mixed_workload_hybrid_is_bit_identical_to_exact():
    exact = run_flows(
        MIXED_SPECS, EMULAB_DEFAULT, duration_s=6.0, seed=11, fidelity=EXACT
    )
    hybrid = run_flows(
        MIXED_SPECS, EMULAB_DEFAULT, duration_s=6.0, seed=11, fidelity=HYBRID
    )
    # Fast-forward declined to engage: nothing was virtualized.
    assert hybrid.dumbbell.sim.events_virtual == 0
    assert hybrid.dumbbell.sim.events_fired == exact.dumbbell.sim.events_fired
    for se, sh in zip(exact.stats, hybrid.stats):
        assert sh.packets_sent == se.packets_sent
        assert sh.delivered_bytes == se.delivered_bytes
        assert list(sh.rtts) == list(se.rtts)
        assert list(sh.ack_times) == list(se.ack_times)
        assert list(sh.loss_times) == list(se.loss_times)


def test_fig6_solo_runs_are_bit_identical_across_modes():
    # A solo unbounded flow collapses its legs *and* bursts at the full
    # cap in hybrid mode, yet the collapse arithmetic is closed-form
    # identical to the packet chain — throughput must match to float
    # precision, not a tolerance.
    exact = run_flows(
        [FlowSpec("cubic")], EMULAB_DEFAULT, duration_s=6.0, seed=5, fidelity=EXACT
    )
    hybrid = run_flows(
        [FlowSpec("cubic")], EMULAB_DEFAULT, duration_s=6.0, seed=5, fidelity=HYBRID
    )
    assert hybrid.dumbbell.sim.events_virtual > 0
    assert hybrid.throughput_mbps(0) == pytest.approx(
        exact.throughput_mbps(0), rel=1e-9
    )
