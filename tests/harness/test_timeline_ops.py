"""Timeline validate/merge/perturb: invariants under arbitrary inputs.

The adversarial search mutates timelines mechanically, so the invariants
(sorted starts, non-overlapping outages, positive rates) are property-
tested with hypothesis rather than hand-picked examples.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rng import Rng
from repro.harness import (
    BandwidthFlap,
    BandwidthStep,
    DelayStep,
    GilbertLoss,
    LossStep,
    Outage,
    Timeline,
)
from repro.harness.scenarios import step_start_s

_times = st.floats(min_value=0.0, max_value=20.0, allow_nan=False)

_steps = st.one_of(
    st.builds(
        BandwidthStep,
        at_s=_times,
        bandwidth_mbps=st.floats(min_value=1.0, max_value=200.0, allow_nan=False),
    ),
    st.builds(
        DelayStep,
        at_s=_times,
        delay_ms=st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
    ),
    st.builds(
        lambda start, span: Outage(start_s=start, end_s=start + span),
        start=_times,
        span=st.floats(min_value=0.05, max_value=2.0, allow_nan=False),
    ),
    st.builds(
        LossStep,
        at_s=_times,
        loss_rate=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    ),
    st.builds(
        GilbertLoss,
        at_s=_times,
        p_enter_bad=st.floats(min_value=0.001, max_value=0.2, allow_nan=False),
        p_exit_bad=st.floats(min_value=0.05, max_value=0.9, allow_nan=False),
    ),
    st.builds(
        lambda start, span, period: BandwidthFlap(
            start_s=start,
            end_s=start + span,
            period_s=period,
            low_mbps=2.0,
            high_mbps=30.0,
        ),
        start=_times,
        span=st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
        period=st.floats(min_value=0.2, max_value=2.0, allow_nan=False),
    ),
)


def _sorted_timeline(steps) -> Timeline:
    ordered = sorted(steps, key=step_start_s)
    # Outage overlap repair (duration-preserving slide), mirroring what
    # perturb guarantees, so the constructed input is always valid.
    return Timeline(tuple(ordered)).perturb(
        Rng("timeline:build"), time_jitter_s=0.0, magnitude_frac=0.0
    )


# ----------------------------------------------------------------------
# validate
# ----------------------------------------------------------------------
def test_validate_accepts_sorted_timeline():
    timeline = Timeline(
        (
            BandwidthStep(at_s=1.0, bandwidth_mbps=20.0),
            Outage(start_s=2.0, end_s=2.5),
            Outage(start_s=3.0, end_s=3.2),
        )
    )
    assert timeline.validate() is timeline


def test_validate_rejects_unsorted_steps():
    timeline = Timeline(
        (
            BandwidthStep(at_s=5.0, bandwidth_mbps=20.0),
            BandwidthStep(at_s=1.0, bandwidth_mbps=10.0),
        )
    )
    with pytest.raises(ValueError, match="sorted"):
        timeline.validate()


def test_validate_rejects_overlapping_outages():
    timeline = Timeline(
        (
            Outage(start_s=1.0, end_s=3.0),
            Outage(start_s=2.0, end_s=4.0),
        )
    )
    with pytest.raises(ValueError, match="overlapping outages"):
        timeline.validate()


def test_validate_allows_overlapping_outages_on_different_links():
    timeline = Timeline(
        (
            Outage(start_s=1.0, end_s=3.0, link="hop0"),
            Outage(start_s=2.0, end_s=4.0, link="hop1"),
        )
    )
    timeline.validate()


# ----------------------------------------------------------------------
# merge
# ----------------------------------------------------------------------
def test_merge_interleaves_sorted_and_joins_labels():
    a = Timeline((BandwidthStep(at_s=1.0, bandwidth_mbps=20.0),), label="bw")
    b = Timeline((Outage(start_s=0.5, end_s=0.8),), label="outage")
    merged = a.merge(b)
    assert [step_start_s(s) for s in merged.steps] == [0.5, 1.0]
    assert merged.label == "bw+outage"
    assert a.merge(b, label="custom").label == "custom"


def test_merge_rejects_conflicting_outage_schedules():
    a = Timeline((Outage(start_s=1.0, end_s=3.0),))
    b = Timeline((Outage(start_s=2.0, end_s=4.0),))
    with pytest.raises(ValueError, match="overlapping outages"):
        a.merge(b)


@settings(max_examples=40, deadline=None)
@given(
    left=st.lists(_steps, max_size=4),
    right=st.lists(_steps, max_size=4),
)
def test_merge_of_valid_timelines_is_sorted_and_complete(left, right):
    a, b = _sorted_timeline(left), _sorted_timeline(right)
    try:
        merged = a.merge(b)
    except ValueError:
        # Only legitimate rejection: same-link outage windows collide.
        outages = sorted(
            [s for s in a.steps + b.steps if isinstance(s, Outage)],
            key=step_start_s,
        )
        assert any(
            second.start_s < first.end_s and second.link == first.link
            for first, second in zip(outages, outages[1:])
        )
        return
    assert len(merged.steps) == len(a.steps) + len(b.steps)
    starts = [step_start_s(s) for s in merged.steps]
    assert starts == sorted(starts)
    merged.validate()


# ----------------------------------------------------------------------
# perturb
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    steps=st.lists(_steps, max_size=5),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_perturb_always_produces_a_valid_timeline(steps, seed):
    timeline = _sorted_timeline(steps)
    perturbed = timeline.perturb(Rng(f"perturb:{seed}"))
    perturbed.validate()
    # Structure is preserved: same number of steps, same kinds (by count).
    assert len(perturbed.steps) == len(timeline.steps)
    assert sorted(s.kind for s in perturbed.steps) == sorted(
        s.kind for s in timeline.steps
    )


@settings(max_examples=20, deadline=None)
@given(
    steps=st.lists(_steps, min_size=1, max_size=5),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_perturb_is_deterministic_in_the_rng(steps, seed):
    timeline = _sorted_timeline(steps)
    a = timeline.perturb(Rng(f"perturb:det:{seed}"))
    b = timeline.perturb(Rng(f"perturb:det:{seed}"))
    assert a == b


def test_perturb_preserves_outage_durations_at_zero_magnitude():
    timeline = Timeline(
        (Outage(start_s=1.0, end_s=2.0), Outage(start_s=4.0, end_s=4.5))
    )
    perturbed = timeline.perturb(
        Rng("perturb:durations"), time_jitter_s=0.8, magnitude_frac=0.0
    )
    durations = [s.end_s - s.start_s for s in perturbed.steps]
    assert durations == pytest.approx([1.0, 0.5])
