"""Integration tests for the experiment runner and reporting."""

import pytest

from repro.harness import (
    EMULAB_DEFAULT,
    FlowSpec,
    LinkConfig,
    format_cdf,
    format_table,
    reset_scale_cache,
    run_flows,
    run_homogeneous,
    run_pair,
    run_single,
    scale,
)


def test_run_single_produces_measurements():
    result = run_single("cubic", EMULAB_DEFAULT, duration_s=10.0)
    assert result.throughput_mbps(0) > 30.0
    assert 0.0 < result.utilization() <= 1.05
    t0, t1 = result.measurement_window()
    assert 0.0 < t0 < t1 == 10.0


def test_run_single_deterministic_per_seed():
    a = run_single("cubic", EMULAB_DEFAULT, duration_s=8.0, seed=5)
    b = run_single("cubic", EMULAB_DEFAULT, duration_s=8.0, seed=5)
    assert a.throughput_mbps(0) == b.throughput_mbps(0)
    assert a.stats[0].rtts == b.stats[0].rtts
    # On a stochastic link (random loss) the seed changes the outcome.
    lossy = EMULAB_DEFAULT.with_loss(0.01)
    c = run_single("cubic", lossy, duration_s=8.0, seed=5)
    d = run_single("cubic", lossy, duration_s=8.0, seed=6)
    assert c.stats[0].rtts != d.stats[0].rtts


def test_run_flows_rejects_empty():
    with pytest.raises(ValueError):
        run_flows([], EMULAB_DEFAULT, duration_s=1.0)


def test_run_pair_metrics_are_consistent():
    pair = run_pair("cubic", "proteus-s", EMULAB_DEFAULT, duration_s=15.0)
    assert 0.0 <= pair.primary_throughput_ratio <= 1.3
    assert pair.primary_with_scavenger_mbps <= pair.primary_solo_mbps * 1.3
    assert pair.scavenger_mbps >= 0.0
    assert pair.utilization <= 1.05
    assert pair.primary_rtt_ratio_95th > 0.5


def test_run_pair_parallel_matches_serial():
    # Solo baseline and paired run dispatched concurrently must yield the
    # exact same PairResult as the serial path.
    serial = run_pair("cubic", "proteus-s", EMULAB_DEFAULT, duration_s=8.0, jobs=1)
    parallel = run_pair("cubic", "proteus-s", EMULAB_DEFAULT, duration_s=8.0, jobs=2)
    assert serial == parallel  # PairResult is a dataclass: field-wise ==


def test_scale_env_is_cached_until_reset(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "2.5")
    reset_scale_cache()
    try:
        assert scale() == 2.5
        # The env var is read once: later mutations are invisible...
        monkeypatch.setenv("REPRO_SCALE", "7")
        assert scale() == 2.5
        # ...until the cache is reset explicitly.
        reset_scale_cache()
        assert scale() == 7.0
    finally:
        monkeypatch.delenv("REPRO_SCALE")
        reset_scale_cache()


def test_run_homogeneous_staggers_starts():
    config = LinkConfig(bandwidth_mbps=40.0, rtt_ms=30.0, buffer_kb=600.0)
    result = run_homogeneous("cubic", 2, config, stagger_s=4.0, measure_s=10.0)
    assert result.specs[0].start_time == 0.0
    assert result.specs[1].start_time == 4.0
    assert result.duration_s == 14.0
    assert len(result.stats) == 2


def test_run_homogeneous_validation():
    with pytest.raises(ValueError):
        run_homogeneous("cubic", 0, EMULAB_DEFAULT)


def test_format_table_alignment_and_errors():
    text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "333" in text
    with pytest.raises(ValueError):
        format_table(["a"], [["1", "2"]])


def test_format_cdf_quantiles():
    points = [(float(i), (i + 1) / 10) for i in range(10)]
    text = format_cdf("x", points)
    assert "p50=" in text
    with pytest.raises(ValueError):
        format_cdf("x", [])
