"""Unit tests for scenario definitions."""

import pytest

from repro.harness import (
    EMULAB_DEFAULT,
    EMULAB_SHALLOW,
    FIG2_LINK,
    LinkConfig,
    config_matrix,
    wifi_sites,
)


def test_emulab_default_matches_paper():
    assert EMULAB_DEFAULT.bandwidth_mbps == 50.0
    assert EMULAB_DEFAULT.rtt_ms == 30.0
    # 375 KB = 2 BDP at 50 Mbps x 30 ms.
    assert EMULAB_DEFAULT.buffer_bdp == pytest.approx(2.0)
    assert EMULAB_SHALLOW.buffer_bdp == pytest.approx(0.4)


def test_fig2_link_matches_paper():
    assert FIG2_LINK.bandwidth_mbps == 100.0
    assert FIG2_LINK.rtt_ms == 60.0
    assert FIG2_LINK.buffer_bdp == pytest.approx(2.0)


def test_unit_conversions():
    config = LinkConfig(bandwidth_mbps=100.0, rtt_ms=20.0, buffer_kb=250.0)
    assert config.bandwidth_bps == 100e6
    assert config.rtt_s == 0.020
    assert config.buffer_bytes == 250e3
    assert config.bdp_bytes == pytest.approx(100e6 * 0.020 / 8)


def test_with_buffer_bdp_round_trip():
    config = EMULAB_DEFAULT.with_buffer_bdp(5.0)
    assert config.buffer_bdp == pytest.approx(5.0)
    assert config.bandwidth_mbps == EMULAB_DEFAULT.bandwidth_mbps


def test_with_loss_preserves_other_fields():
    config = EMULAB_DEFAULT.with_loss(0.02)
    assert config.loss_rate == 0.02
    assert config.buffer_kb == EMULAB_DEFAULT.buffer_kb


def test_validation():
    with pytest.raises(ValueError):
        LinkConfig(bandwidth_mbps=0.0, rtt_ms=30.0, buffer_kb=100.0)
    with pytest.raises(ValueError):
        LinkConfig(bandwidth_mbps=10.0, rtt_ms=-1.0, buffer_kb=100.0)


def test_config_matrix_full_size_is_180():
    assert len(config_matrix()) == 180


def test_config_matrix_buffers_scale_with_bdp():
    configs = config_matrix((50.0,), (30.0,), (0.2, 2.0))
    assert configs[0].buffer_bdp == pytest.approx(0.2)
    assert configs[1].buffer_bdp == pytest.approx(2.0)


def test_wifi_sites_shape():
    configs = wifi_sites()
    assert len(configs) == 16  # 4 sites x 4 paths
    assert all(c.noise_severity > 0 for c in configs)
    assert all(c.reverse_noise_severity > 0 for c in configs)
    assert all(c.make_noise() is not None for c in configs)
    # Clean configs have no noise model.
    assert EMULAB_DEFAULT.make_noise() is None
