"""Tests for the content-addressed result cache.

The contract: a cache hit is byte-identical to recomputation (the
determinism digest cannot tell them apart), any config/seed/source
change is a miss, and a corrupt entry silently recomputes.
"""

import pytest

from repro.devtools import stats_digest
from repro.harness import FlowSpec, LinkConfig, run_flows
from repro.harness import cache as cache_mod
from repro.harness.cache import (
    ResultCache,
    disable_cache,
    enable_cache,
    reset_cache_state,
    source_digest,
    stats_from_record,
    stats_to_record,
)

CONFIG = LinkConfig(bandwidth_mbps=10.0, rtt_ms=40.0, buffer_kb=75.0, loss_rate=0.01)
SPECS = [FlowSpec("vivace")]
DURATION_S = 4.0


@pytest.fixture
def cache(tmp_path):
    cache = enable_cache(tmp_path / "cache")
    yield cache
    reset_cache_state()


def test_hit_on_identical_config_and_seed(cache):
    cold = run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=7)
    assert (cache.hits, cache.misses, cache.stores) == (0, 1, 1)
    warm = run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=7)
    assert (cache.hits, cache.misses) == (1, 1)
    # Byte-identical round-trip: the determinism digest cannot tell a
    # cache rebuild from a live run.
    assert stats_digest(warm.stats) == stats_digest(cold.stats)
    # Cache rebuilds carry no live topology.
    assert cold.dumbbell is not None
    assert warm.dumbbell is None


def test_miss_after_config_change(cache):
    run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=7)
    run_flows(SPECS, CONFIG.with_loss(0.02), duration_s=DURATION_S, seed=7)
    assert cache.hits == 0
    assert cache.misses == 2


def test_miss_after_seed_change(cache):
    run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=7)
    run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=8)
    assert cache.hits == 0
    assert cache.misses == 2


def test_miss_after_source_digest_change(cache, monkeypatch):
    run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=7)
    # Simulate editing the simulator source: every key must change.
    monkeypatch.setattr(cache_mod, "_SOURCE_DIGEST", "0" * 64)
    result = run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=7)
    assert cache.hits == 0
    assert cache.misses == 2
    assert result.dumbbell is not None  # recomputed live


def test_corrupt_entry_falls_back_to_recompute(cache):
    first = run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=7)
    [entry] = list(cache.root.rglob("*.json"))
    entry.write_text("{ not json")
    again = run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=7)
    assert cache.hits == 0  # the torn entry never counted as a hit
    assert again.dumbbell is not None
    assert stats_digest(again.stats) == stats_digest(first.stats)
    # The recompute healed the entry.
    healed = run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=7)
    assert cache.hits == 1
    assert stats_digest(healed.stats) == stats_digest(first.stats)


def test_truncated_record_falls_back_to_recompute(cache):
    run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=7)
    [entry] = list(cache.root.rglob("*.json"))
    # Valid JSON, wrong shape: stats records missing fields.
    entry.write_text('{"schema": 1, "stats": [{"flow_id": 1}]}')
    again = run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=7)
    assert cache.hits == 0
    assert again.dumbbell is not None


def test_corrupt_entry_is_quarantined(cache):
    run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=7)
    [entry] = list(cache.root.rglob("*.json"))
    entry.write_text("{ not json")
    run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=7)
    assert cache.quarantined == 1
    # The torn file was moved aside for post-mortems, not deleted...
    [corpse] = list(cache.root.rglob("*.corrupt"))
    assert corpse.read_text() == "{ not json"
    # ...and the recompute healed the original path.
    assert entry.exists()
    assert cache.stats() == {
        "hits": 0, "misses": 2, "stores": 2, "quarantined": 1,
    }


def test_quarantine_counted_once_per_entry(cache):
    run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=7)
    [entry] = list(cache.root.rglob("*.json"))
    entry.write_text('{"schema": 1, "stats": [{"flow_id": 1}]}')
    run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=7)  # quarantines + heals
    run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=7)  # clean hit
    assert cache.quarantined == 1
    assert cache.hits == 1


def test_stats_record_roundtrip_is_exact():
    result = run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=3)
    for stats in result.stats:
        rebuilt = stats_from_record(stats_to_record(stats))
        assert stats_digest([rebuilt]) == stats_digest([stats])
        assert rebuilt.start_time == stats.start_time
        assert rebuilt.packets_sent == stats.packets_sent
        assert rebuilt.first_delivery == stats.first_delivery


def test_source_digest_is_stable_and_sensitive(monkeypatch):
    first = source_digest()
    assert len(first) == 64
    monkeypatch.setattr(cache_mod, "_SOURCE_DIGEST", None)
    # Recomputing from disk reproduces the same digest.
    assert source_digest() == first


def test_disable_cache_overrides_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    reset_cache_state()
    try:
        disable_cache()
        result = run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=7)
        assert result.dumbbell is not None
        assert not (tmp_path / "envcache").exists()
    finally:
        reset_cache_state()


def test_env_enables_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    reset_cache_state()
    try:
        run_flows(SPECS, CONFIG, duration_s=DURATION_S, seed=7)
        assert (tmp_path / "envcache").exists()
    finally:
        reset_cache_state()


def test_key_for_ignores_dict_order(tmp_path):
    cache = ResultCache(tmp_path)
    a = cache.key_for({"x": 1, "y": 2})
    b = cache.key_for({"y": 2, "x": 1})
    assert a == b
    assert a != cache.key_for({"x": 1, "y": 3})
