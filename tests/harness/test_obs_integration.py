"""Observability threaded through the harness: tracing, metrics, CLI.

Covers the tentpole's end-to-end guarantees: tracepoints fire from the
engine, links, and senders during real runs; trace digests are
byte-identical regardless of ``REPRO_JOBS``; the supervision layer's
ring-buffer flight recorder lands on failure records; and the
``repro trace`` / ``repro metrics`` subcommands work.
"""

import json

import pytest

from repro.cli import main
from repro.harness import EMULAB_DEFAULT, FlowSpec, run_flows, run_pair
from repro.harness.parallel import pmap
from repro.obs import CollectingTracer, MetricsRegistry, install_tracer, tracing

CONFIG = EMULAB_DEFAULT


# ----------------------------------------------------------------------
# Tracepoints reach the tracer from every layer
# ----------------------------------------------------------------------
def test_trace_covers_engine_link_and_sender():
    tracer = CollectingTracer()
    run_flows(
        [FlowSpec("cubic"), FlowSpec("proteus-s", start_time=1.0)],
        CONFIG,
        duration_s=4.0,
        seed=2,
        tracer=tracer,
    )
    kinds = {event.kind for event in tracer.events}
    # Engine lifecycle, link queue, MI lifecycle, rate control, filter.
    for expected in (
        "sim.run.begin",
        "sim.run.end",
        "link.enqueue",
        "link.dequeue",
        "mi.start",
        "mi.end",
        "rate.change",
        "rtt_filter.accept",
    ):
        assert expected in kinds, f"missing {expected}; saw {sorted(kinds)}"
    # Events are attributed: link events carry a link, MI events a flow.
    assert any(e.link == "bottleneck" for e in tracer.events)
    assert any(e.flow == 2 and e.kind == "mi.start" for e in tracer.events)


def test_global_tracer_is_picked_up():
    tracer = CollectingTracer()
    with tracing(tracer):
        run_flows([FlowSpec("cubic")], CONFIG, duration_s=2.0, seed=2)
    assert len(tracer) > 0


def test_tracing_does_not_change_results():
    baseline = run_flows([FlowSpec("proteus-s")], CONFIG, duration_s=3.0, seed=4)
    traced = run_flows(
        [FlowSpec("proteus-s")], CONFIG, duration_s=3.0, seed=4,
        tracer=CollectingTracer(),
    )
    assert traced.throughputs_mbps() == baseline.throughputs_mbps()
    assert traced.stats[0].packets_sent == baseline.stats[0].packets_sent


def test_run_pair_serial_when_traced():
    tracer = CollectingTracer()
    traced = run_pair(
        "cubic", "proteus-s", CONFIG, duration_s=5.0, seed=2, tracer=tracer
    )
    untraced = run_pair("cubic", "proteus-s", CONFIG, duration_s=5.0, seed=2, jobs=1)
    assert traced == untraced  # observation never changes the physics
    assert len(tracer) > 0


# ----------------------------------------------------------------------
# Deterministic digests across parallelism
# ----------------------------------------------------------------------
def _traced_digest(seed: int) -> str:
    tracer = CollectingTracer()
    run_flows(
        [FlowSpec("cubic"), FlowSpec("proteus-s", start_time=1.0)],
        CONFIG,
        duration_s=3.0,
        seed=seed,
        tracer=tracer,
    )
    return tracer.digest()


def test_trace_digest_identical_across_jobs():
    serial = pmap(_traced_digest, [1, 2], jobs=1)
    parallel = pmap(_traced_digest, [1, 2], jobs=4)
    assert serial == parallel
    assert serial[0] != serial[1]  # different seeds, different traces


# ----------------------------------------------------------------------
# Metrics registry through run_flows
# ----------------------------------------------------------------------
def test_caller_registry_accumulates_across_runs():
    registry = MetricsRegistry()
    run_flows([FlowSpec("cubic")], CONFIG, duration_s=2.0, seed=1, metrics=registry)
    first = registry.snapshot()["counters"]["flow.packets_sent{flow=1,protocol=cubic}"]
    run_flows([FlowSpec("cubic")], CONFIG, duration_s=2.0, seed=1, metrics=registry)
    second = registry.snapshot()["counters"]["flow.packets_sent{flow=1,protocol=cubic}"]
    assert second == 2 * first  # counters accumulate in the caller's registry


def test_sample_period_records_backlog_histogram():
    result = run_flows(
        [FlowSpec("cubic")], CONFIG, duration_s=3.0, seed=1, sample_period_s=0.25
    )
    hist = result.metrics["histograms"]["link.backlog_bytes{link=bottleneck}"]
    assert hist["count"] == 12  # samples at 0.25, 0.5, ..., 3.0
    assert hist["max"] > 0


# ----------------------------------------------------------------------
# Flight recorder on supervised failures
# ----------------------------------------------------------------------
def _failing_experiment(seed: int) -> float:
    from repro.obs import active_tracer

    tracer = active_tracer()
    if tracer is not None:
        for i in range(5):
            tracer.emit("test.step", float(i), flow=seed, step=i)
    raise RuntimeError(f"boom {seed}")


def test_ring_buffer_attached_to_failure_outcome():
    from repro.harness.supervise import RetryPolicy, supervised_map

    policy = RetryPolicy(retries=0, trace_ring=3)
    outcomes = supervised_map(_failing_experiment, [7], jobs=1, policy=policy)
    assert len(outcomes) == 1
    outcome = outcomes[0]
    assert not outcome.ok
    assert outcome.trace is not None
    # Ring capacity 3: only the last 3 of 5 emitted events survive.
    assert [event["step"] for event in outcome.trace] == [2, 3, 4]
    # The trace round-trips through the manifest record.
    rebuilt = type(outcome).from_record(
        json.loads(json.dumps(outcome.to_record()))
    )
    assert rebuilt.trace == outcome.trace


def test_successful_trials_carry_no_trace():
    from repro.harness.supervise import RetryPolicy, supervised_map

    policy = RetryPolicy(retries=0, trace_ring=8)
    outcomes = supervised_map(lambda seed: seed * 2, [3], jobs=1, policy=policy)
    assert outcomes[0].ok and outcomes[0].value == 6
    assert outcomes[0].trace is None


def test_trials_metrics_counters():
    from repro.harness.trials import run_trials

    registry = MetricsRegistry()
    summary = run_trials(_double, n_trials=3, base_seed=1, jobs=1, metrics=registry)
    assert summary.n == 3
    counters = registry.snapshot()["counters"]
    assert counters["trials.total"] == 3
    assert counters["trials.by_status{status=ok}"] == 3


def _double(seed: int) -> float:
    return float(seed * 2)


# ----------------------------------------------------------------------
# CLI subcommands
# ----------------------------------------------------------------------
def test_cli_trace_record_filter_and_replay(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code = main(
        [
            "trace",
            "--protocols", "cubic,proteus-s",
            "--duration", "2",
            "--kind", "mi",
            "--flow", "2",
            "--out", str(out),
        ]
    )
    assert code == 0
    recorded = capsys.readouterr().out
    assert "digest:" in recorded and "mi.start" in recorded
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert lines and all(e["kind"].startswith("mi") and e["flow"] == 2 for e in lines)

    code = main(["trace", "--replay", str(out), "--kind", "mi.start", "--limit", "2"])
    assert code == 0
    replayed = capsys.readouterr().out
    assert "mi.start" in replayed and "mi.discard" not in replayed


def test_cli_trace_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        main(["trace", "--protocols", "notaprotocol", "--duration", "1"])


def test_cli_metrics(tmp_path, capsys):
    out = tmp_path / "metrics.json"
    code = main(
        [
            "metrics",
            "--protocols", "cubic",
            "--duration", "2",
            "--sample", "0.5",
            "--json", str(out),
        ]
    )
    assert code == 0
    shown = capsys.readouterr().out
    assert "flow.throughput_mbps" in shown
    snapshot = json.loads(out.read_text())
    assert set(snapshot) == {"counters", "gauges", "histograms"}
    assert "link.backlog_bytes{link=bottleneck}" in snapshot["histograms"]


def test_no_global_tracer_leaks():
    # Suite hygiene: nothing above may leave a process-global tracer.
    from repro.obs import active_tracer

    assert active_tracer() is None
    assert install_tracer(None) is None
