"""Topology specs through the harness: caching, scale runs, acceptance.

The acceptance scenario from the graph-topology work: a Proteus-S
scavenger crossing several congested parking-lot hops end to end must
yield to per-hop cross traffic while every hop's packet accounting
conserves and the trace stream carries the hop tags.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.devtools import stats_digest
from repro.harness import (
    TOPOLOGIES,
    FlowSpec,
    LinkConfig,
    TopologySpec,
    load_topology,
    pmap,
    run_flows,
    run_many,
    run_result_summary,
    run_single,
    topology_from_dict,
)
from repro.harness.cache import enable_cache, reset_cache_state
from repro.obs import CollectingTracer

SMALL_CONFIG = LinkConfig(bandwidth_mbps=10.0, rtt_ms=40.0, buffer_kb=75.0)


@pytest.fixture
def cache(tmp_path):
    cache = enable_cache(tmp_path / "cache")
    yield cache
    reset_cache_state()


# ----------------------------------------------------------------------
# Spec layer: presets, serialisation, validation
# ----------------------------------------------------------------------
def test_topology_presets_roundtrip_through_json():
    for name in TOPOLOGIES:
        spec = TOPOLOGIES[name]()
        assert spec.label == name
        document = json.loads(json.dumps(spec.to_dict()))
        assert topology_from_dict(document) == spec


def test_topology_spec_validation():
    with pytest.raises(ValueError):
        TopologySpec(preset="ring")
    with pytest.raises(ValueError):
        TopologySpec(n_hops=0)
    with pytest.raises(ValueError):
        TopologySpec(aqm="fq-codel")
    with pytest.raises(ValueError):
        TopologySpec(preset="multi-dumbbell", core_mbps=-1.0)
    with pytest.raises(ValueError):
        topology_from_dict({"kind": "timeline"})


def test_load_topology_preset_and_file(tmp_path):
    assert load_topology("parking-lot") == TOPOLOGIES["parking-lot"]()
    spec = TopologySpec(preset="parking-lot", n_hops=4, aqm="red", label="deep")
    path = tmp_path / "deep.json"
    path.write_text(json.dumps(spec.to_dict()))
    assert load_topology(str(path)) == spec
    with pytest.raises(ValueError, match="unknown topology"):
        load_topology("no-such-preset")


# ----------------------------------------------------------------------
# Result cache: the topology is part of the key
# ----------------------------------------------------------------------
def test_topology_participates_in_cache_key(cache):
    specs = [FlowSpec("cubic")]
    lot = TOPOLOGIES["parking-lot"]()
    core = TOPOLOGIES["shared-core"]()
    run_flows(specs, SMALL_CONFIG, duration_s=3.0, seed=7, topology=lot)
    run_flows(specs, SMALL_CONFIG, duration_s=3.0, seed=7)  # dumbbell: own key
    run_flows(specs, SMALL_CONFIG, duration_s=3.0, seed=7, topology=core)
    assert (cache.hits, cache.misses) == (0, 3)
    warm = run_flows(specs, SMALL_CONFIG, duration_s=3.0, seed=7, topology=lot)
    assert (cache.hits, cache.misses) == (1, 3)
    # The rebuilt result keeps the declarative spec without a live graph.
    assert warm.dumbbell is None
    assert warm.topology == lot


def test_topology_cache_rebuild_matches_live_run(cache):
    specs = [
        FlowSpec("proteus-s"),
        FlowSpec("cubic", start_time=0.5, route=("n1", "n2")),
    ]
    spec = TOPOLOGIES["parking-lot-codel"]()
    cold = run_flows(specs, SMALL_CONFIG, duration_s=4.0, seed=3, topology=spec)
    warm = run_flows(specs, SMALL_CONFIG, duration_s=4.0, seed=3, topology=spec)
    assert stats_digest(warm.stats) == stats_digest(cold.stats)
    assert warm.specs[1].route == ("n1", "n2")


def test_flow_route_participates_in_cache_key(cache):
    spec = TOPOLOGIES["parking-lot"]()
    run_flows(
        [FlowSpec("cubic", route=("n0", "n1"))],
        SMALL_CONFIG, duration_s=3.0, seed=7, topology=spec,
    )
    run_flows(
        [FlowSpec("cubic", route=("n1", "n2"))],
        SMALL_CONFIG, duration_s=3.0, seed=7, topology=spec,
    )
    assert (cache.hits, cache.misses) == (0, 2)


# ----------------------------------------------------------------------
# Acceptance: a scavenger across multiple congested hops
# ----------------------------------------------------------------------
def test_parking_lot_scavenger_yields_across_congested_hops():
    tracer = CollectingTracer()
    specs = [
        FlowSpec("proteus-s"),  # n0 -> n3: crosses every hop
        FlowSpec("cubic", route=("n0", "n1")),
        FlowSpec("cubic", route=("n1", "n2")),
    ]
    result = run_flows(
        specs,
        LinkConfig(bandwidth_mbps=20.0, rtt_ms=30.0, buffer_kb=100.0),
        duration_s=8.0,
        seed=1,
        topology=TOPOLOGIES["parking-lot"](),
        tracer=tracer,
    )
    lot = result.dumbbell
    # Per-hop packet accounting holds on every link in the graph.
    lot.assert_conservation()
    # At least two hops saw real contention (queue overflow drops).
    congested = [
        name for name in ("hop0", "hop1", "hop2")
        if lot.links[name].stats.tail_drops + lot.links[name].stats.aqm_drops > 0
    ]
    assert len(congested) >= 2
    # The scavenger yields on both contended hops: each primary takes the
    # lion's share of its bottleneck while the end-to-end scavenger
    # settles for the leftovers.
    scavenger, primary_a, primary_b = (
        s.throughput_bps(4.0, 8.0) for s in result.stats
    )
    assert primary_a > 4 * scavenger
    assert primary_b > 4 * scavenger
    # Trace events are tagged with the hop's source node.
    nodes = {
        event.fields.get("node")
        for event in tracer.events
        if event.kind.startswith("link.") and event.link.startswith("hop")
    }
    assert {"n0", "n1", "n2"} <= nodes


def test_summary_reports_topology_and_per_link_stats():
    result = run_single(
        "cubic", SMALL_CONFIG, duration_s=3.0, seed=2,
        topology=TOPOLOGIES["parking-lot"](),
    )
    summary = run_result_summary(result)
    assert summary["topology"]["preset"] == "parking-lot"
    by_name = {entry["link"]: entry for entry in summary["links"]}
    assert by_name["hop0"]["node"] == "n0"
    assert by_name["hop0"]["offered"] >= by_name["hop0"]["delivered"]
    assert {"tail_drops", "aqm_drops"} <= set(by_name["hop0"])


# ----------------------------------------------------------------------
# Scale: ~1000 short primaries against a few scavengers
# ----------------------------------------------------------------------
def test_run_many_deterministic_and_short_flows_complete():
    config = LinkConfig(bandwidth_mbps=50.0, rtt_ms=30.0, buffer_kb=375.0)
    a = run_many("cubic", "proteus-s", config, n_flows=60, n_scavengers=2,
                 duration_s=6.0, seed=5)
    b = run_many("cubic", "proteus-s", config, n_flows=60, n_scavengers=2,
                 duration_s=6.0, seed=5)
    other = run_many("cubic", "proteus-s", config, n_flows=60, n_scavengers=2,
                     duration_s=6.0, seed=6)
    assert stats_digest(a.stats) == stats_digest(b.stats)
    assert stats_digest(a.stats) != stats_digest(other.stats)
    assert len(a.stats) == 62
    # Arrivals are confined to the first 80% of the run so the tail can
    # drain: the vast majority of short flows complete.
    completed = sum(1 for s in a.stats[2:] if s.delivered_bytes >= 50_000)
    assert completed >= 54
    assert a.topology == TOPOLOGIES["shared-core"]()


def test_run_many_validation():
    config = LinkConfig(bandwidth_mbps=50.0, rtt_ms=30.0, buffer_kb=375.0)
    with pytest.raises(ValueError):
        run_many("cubic", "proteus-s", config, n_flows=0)
    with pytest.raises(ValueError):
        run_many("cubic", "proteus-s", config, n_scavengers=-1)


_MANY_CONFIG = LinkConfig(bandwidth_mbps=40.0, rtt_ms=30.0, buffer_kb=300.0)


def _many_digest(seed: int) -> str:
    """Module-level (hence picklable) experiment for the parallel gate."""
    result = run_many(
        "cubic", "proteus-s", _MANY_CONFIG,
        n_flows=40, n_scavengers=2, duration_s=4.0, seed=seed,
    )
    return stats_digest(result.stats)


def test_topology_runs_identical_across_worker_counts():
    # REPRO_JOBS=4 vs serial: graph scenarios stay bit-reproducible.
    seeds = [3, 4, 5]
    serial = pmap(_many_digest, seeds, jobs=1)
    parallel = pmap(_many_digest, seeds, jobs=4)
    assert parallel == serial
    assert len(set(serial)) == len(seeds)


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
def test_cli_single_accepts_topology_preset(capsys):
    rc = cli_main(
        ["single", "--protocol", "cubic", "--duration", "2",
         "--topology", "parking-lot"]
    )
    assert rc == 0
    assert "cubic" in capsys.readouterr().out


def test_cli_rejects_unknown_topology():
    with pytest.raises(SystemExit):
        cli_main(["single", "--topology", "no-such-topology", "--duration", "2"])


def test_cli_many_smoke(capsys):
    rc = cli_main(
        ["many", "--flows", "30", "--scavengers", "2", "--duration", "4"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "short flows" in out
    assert "completed" in out
