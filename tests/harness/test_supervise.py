"""Fault-tolerant supervised execution: outcomes, retries, crash
recovery, and manifest checkpoint/resume."""

import json
import os

import pytest

from repro.devtools.determinism import stats_digest
from repro.harness.runner import FlowSpec, run_flows
from repro.harness.scenarios import LinkConfig, config_matrix
from repro.harness.supervise import (
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMED_OUT,
    RetryPolicy,
    SweepManifest,
    TrialOutcome,
    decode_value,
    default_retries,
    encode_value,
    run_matrix,
    summarize_outcomes,
    supervised_map,
    trial_payload,
)
from repro.harness.trials import run_trials, run_trials_supervised
from repro.sim.engine import SimBudgetExceeded, Simulator

FAST = RetryPolicy(retries=1, backoff_base_s=0.0, jitter_fraction=0.0)
NO_RETRY = RetryPolicy(retries=0, backoff_base_s=0.0, jitter_fraction=0.0)

_LINK = LinkConfig(bandwidth_mbps=10.0, rtt_ms=20.0, buffer_kb=50.0)


# -- module-level (picklable) workloads --------------------------------
def _double(x: int) -> int:
    return 2 * x


def _poison_three(x: int):
    if x == 3:
        raise ValueError("poisoned input")
    return 2 * x


def _flaky(item):
    """Fails on the first attempt, succeeds once its marker file exists."""
    path, x = item
    if not os.path.exists(path):
        open(path, "w").close()
        raise RuntimeError("transient failure")
    return x


def _needs_file(item):
    path, x = item
    if not os.path.exists(path):
        raise RuntimeError("missing dependency")
    return 2 * x


def _crash_once(item):
    path, x = item
    if not os.path.exists(path):
        open(path, "w").close()
        os._exit(13)  # hard worker death: no exception, no cleanup
    return x + 100


def _crash_if_poison(item):
    if item == "poison":
        os._exit(13)
    return 7


def _livelock_trial(_seed: int):
    sim = Simulator(check_invariants=False)

    def spin():
        sim.schedule_fast(0.0, spin)

    sim.schedule_fast(0.0, spin)
    sim.run(max_events=200)


def _digest_trial(seed: int) -> str:
    result = run_flows([FlowSpec("cubic")], _LINK, duration_s=1.5, seed=seed)
    return stats_digest(result.stats)


def _half_or_fail(seed: int) -> float:
    if seed == 3:
        raise ValueError("poisoned seed")
    return seed * 0.5


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
def test_default_retries_env(monkeypatch):
    monkeypatch.delenv("REPRO_TRIAL_RETRIES", raising=False)
    assert default_retries() == 2
    monkeypatch.setenv("REPRO_TRIAL_RETRIES", "5")
    assert default_retries() == 5
    assert RetryPolicy().max_attempts() == 6
    monkeypatch.setenv("REPRO_TRIAL_RETRIES", "-1")
    with pytest.raises(ValueError):
        default_retries()
    monkeypatch.setenv("REPRO_TRIAL_RETRIES", "lots")
    with pytest.raises(ValueError):
        default_retries()


def test_backoff_is_deterministic_and_capped():
    policy = RetryPolicy(
        retries=5, backoff_base_s=0.1, backoff_factor=2.0, backoff_cap_s=0.8,
        jitter_fraction=0.25, seed=7,
    )
    # Same (seed, index, attempt) -> same pause; no wall clock involved.
    assert policy.backoff_s(2, 4) == policy.backoff_s(2, 4)
    assert policy.backoff_s(2, 4) != policy.backoff_s(2, 5)
    for attempt in range(1, 12):
        pause = policy.backoff_s(attempt, 0)
        assert 0.0 < pause <= 0.8 * 1.25
    # Jitter-free backoff is the exact capped exponential.
    flat = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                       backoff_cap_s=0.8, jitter_fraction=0.0)
    assert flat.backoff_s(1, 0) == pytest.approx(0.1)
    assert flat.backoff_s(2, 0) == pytest.approx(0.2)
    assert flat.backoff_s(10, 0) == pytest.approx(0.8)


# ----------------------------------------------------------------------
# Value encoding (manifest round-trips must be exact)
# ----------------------------------------------------------------------
def test_encode_decode_round_trip_exact():
    value = {
        "ratio": 0.1 + 0.2,  # a float that formatting would mangle
        "count": 3,
        "label": "0x1.8p+0",  # a string that *looks* like a hex float
        "flags": [True, False, None],
        "nested": {"xs": [1.5, 2.5]},
    }
    decoded = decode_value(encode_value(value))
    assert decoded == value
    assert isinstance(decoded["label"], str)
    assert decoded["ratio"].hex() == (0.1 + 0.2).hex()


def test_encode_rejects_unsupported_types():
    with pytest.raises(TypeError):
        encode_value(object())


def test_decode_rejects_unknown_tag():
    with pytest.raises(ValueError):
        decode_value(["q", 1])


# ----------------------------------------------------------------------
# supervised_map: failure isolation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [1, 2])
def test_poisoned_item_fails_without_aborting_siblings(jobs):
    outcomes = supervised_map(_poison_three, [1, 2, 3, 4], jobs=jobs, policy=FAST)
    assert [o.status for o in outcomes] == [
        STATUS_OK, STATUS_OK, STATUS_FAILED, STATUS_OK,
    ]
    assert [o.value for o in outcomes if o.ok] == [2, 4, 8]
    failed = outcomes[2]
    assert failed.attempts == FAST.max_attempts() + (1 if jobs > 1 else 0)
    assert "poisoned input" in failed.error
    assert "ValueError" in failed.traceback  # real traceback captured
    assert not failed.ok


def test_transient_failure_recovers_via_retry(tmp_path):
    marker = tmp_path / "marker"
    outcomes = supervised_map(
        _flaky, [(str(marker), 42)], jobs=1, policy=FAST
    )
    assert outcomes[0].status == STATUS_OK
    assert outcomes[0].value == 42
    assert outcomes[0].attempts == 2


def test_timed_out_status_from_watchdog_trip():
    outcomes = supervised_map(_livelock_trial, [1], jobs=1, policy=NO_RETRY)
    assert outcomes[0].status == STATUS_TIMED_OUT
    assert "budget" in outcomes[0].error


def test_timed_out_crosses_process_boundary():
    outcomes = supervised_map(_livelock_trial, [1, 2], jobs=2, policy=NO_RETRY)
    assert {o.status for o in outcomes} == {STATUS_TIMED_OUT}


def test_unpicklable_fn_runs_serial_supervised():
    calls = []

    def closure(x):
        calls.append(x)
        if x == 2:
            raise RuntimeError("nope")
        return x

    outcomes = supervised_map(closure, [1, 2], jobs=4, policy=NO_RETRY)
    assert [o.status for o in outcomes] == [STATUS_OK, STATUS_FAILED]
    assert calls == [1, 2]  # ran in-process


# ----------------------------------------------------------------------
# supervised_map: worker crash recovery
# ----------------------------------------------------------------------
def test_crashed_worker_retried_and_recovered(tmp_path):
    marker = tmp_path / "crashed"
    items = [(str(tmp_path / "a"), 1), (str(marker), 2), (str(tmp_path / "c"), 3)]
    for path, _ in (items[0], items[2]):
        open(path, "w").close()  # only item 2 crashes, once
    outcomes = supervised_map(_crash_once, items, jobs=2, policy=FAST)
    assert [o.status for o in outcomes] == [STATUS_OK] * 3
    assert [o.value for o in outcomes] == [101, 102, 103]
    assert outcomes[1].attempts >= 2


def test_always_crashing_item_never_rerun_in_driver():
    outcomes = supervised_map(
        _crash_if_poison, ["poison", "fine", "fine"], jobs=2, policy=FAST
    )
    assert outcomes[0].status == STATUS_CRASHED  # and this process survived
    assert outcomes[0].attempts == FAST.max_attempts()
    assert [o.status for o in outcomes[1:]] == [STATUS_OK, STATUS_OK]
    assert [o.value for o in outcomes[1:]] == [7, 7]


# ----------------------------------------------------------------------
# Manifest: journal, torn lines, resume
# ----------------------------------------------------------------------
def test_manifest_append_load_round_trip(tmp_path):
    manifest = SweepManifest(tmp_path / "m.jsonl")
    outcome = TrialOutcome(
        status=STATUS_OK, key="k1", value={"x": 1.5}, seed=3,
        payload={"kind": "t"}, attempts=1,
    )
    manifest.append(outcome)
    records = manifest.load()
    assert set(records) == {"k1"}
    restored = TrialOutcome.from_record(records["k1"])
    assert restored.resumed and restored.ok
    assert restored.value == {"x": 1.5}
    assert restored.seed == 3


def test_manifest_tolerates_torn_trailing_line(tmp_path):
    path = tmp_path / "m.jsonl"
    manifest = SweepManifest(path)
    manifest.append(TrialOutcome(status=STATUS_OK, key="k1", value=1, attempts=1))
    with path.open("a") as handle:
        handle.write('{"schema": 1, "key": "k2", "status": "ok", "val')
    records = manifest.load()
    assert set(records) == {"k1"}
    assert manifest.torn_lines == 1
    # The journal stays appendable after the torn write.
    manifest.append(TrialOutcome(status=STATUS_OK, key="k3", value=3, attempts=1))
    assert set(manifest.load()) == {"k1", "k3"}


def test_manifest_last_write_wins_per_key(tmp_path):
    manifest = SweepManifest(tmp_path / "m.jsonl")
    manifest.append(TrialOutcome(status=STATUS_FAILED, key="k", error="x", attempts=2))
    manifest.append(TrialOutcome(status=STATUS_OK, key="k", value=9, attempts=3))
    records = manifest.load()
    assert records["k"]["status"] == STATUS_OK


@pytest.mark.parametrize("jobs", [1, 4])
def test_resume_is_byte_identical(tmp_path, jobs):
    manifest = tmp_path / "sweep.jsonl"
    # Reference: one uninterrupted run, no manifest.
    reference = [
        o.value
        for o in run_trials_supervised(_digest_trial, n_trials=4, jobs=jobs,
                                       policy=NO_RETRY)
    ]
    # "Interrupted" run: only the first two trials complete and journal.
    first = run_trials_supervised(
        _digest_trial, n_trials=2, jobs=jobs, policy=NO_RETRY, manifest=manifest
    )
    assert all(o.ok and not o.resumed for o in first)
    # Resume tops up the remaining trials; completed ones are not re-run.
    resumed = run_trials_supervised(
        _digest_trial, n_trials=4, jobs=jobs, policy=NO_RETRY, manifest=manifest
    )
    assert [o.resumed for o in resumed] == [True, True, False, False]
    assert [o.value for o in resumed] == reference  # per-flow digests identical


def test_resume_reattempts_failed_entries(tmp_path):
    manifest = tmp_path / "m.jsonl"
    dep = tmp_path / "dep"
    items = [(str(dep), 5)]
    first = supervised_map(_needs_file, items, jobs=1, policy=NO_RETRY,
                           manifest=manifest)
    assert first[0].status == STATUS_FAILED
    open(dep, "w").close()  # the missing dependency appears
    second = supervised_map(_needs_file, items, jobs=1, policy=NO_RETRY,
                            manifest=manifest)
    assert second[0].status == STATUS_OK and not second[0].resumed
    assert second[0].value == 10
    # The journal's latest record for the key is now the success.
    records = SweepManifest(manifest).load()
    assert [r["status"] for r in records.values()] == [STATUS_OK]


def test_manifest_lines_are_canonical_json(tmp_path):
    manifest = tmp_path / "m.jsonl"
    supervised_map(_double, [1, 2], jobs=1, policy=NO_RETRY, manifest=manifest)
    lines = manifest.read_text().splitlines()
    assert len(lines) == 2
    for line in lines:
        record = json.loads(line)
        assert record["schema"] == 1
        assert json.dumps(record, sort_keys=True, separators=(",", ":")) == line


# ----------------------------------------------------------------------
# Trial-level wiring
# ----------------------------------------------------------------------
def test_trial_payload_keys_distinguish_seeds():
    a = trial_payload(_digest_trial, 1)
    b = trial_payload(_digest_trial, 2)
    assert a != b
    assert a["experiment"].endswith("_digest_trial")


def test_run_trials_with_manifest_excludes_failures(tmp_path):
    summary = run_trials(
        _half_or_fail, n_trials=4, base_seed=1, jobs=1, policy=NO_RETRY,
        manifest=tmp_path / "m.jsonl",
    )
    assert summary.n == 3  # seed 3 failed and was excluded
    assert summary.minimum == 0.5
    assert summary.maximum == 2.0


def test_run_trials_unsupervised_path_unchanged():
    with pytest.raises(ValueError):
        run_trials(_half_or_fail, n_trials=4, base_seed=1, jobs=1)


# ----------------------------------------------------------------------
# The Fig-8 matrix as a supervised sweep
# ----------------------------------------------------------------------
def test_run_matrix_small_and_resumable(tmp_path):
    manifest = tmp_path / "matrix.jsonl"
    configs = config_matrix((10.0,), (20.0,), (1.0,))
    assert len(configs) == 1
    outcomes = run_matrix(
        "cubic", "proteus-s", configs=configs, n_trials=2, duration_s=2.0,
        jobs=1, policy=NO_RETRY, manifest=manifest,
    )
    assert len(outcomes) == 2
    assert all(o.ok for o in outcomes)
    for outcome in outcomes:
        assert set(outcome.value) == {
            "primary_solo_mbps",
            "primary_with_scavenger_mbps",
            "scavenger_mbps",
            "primary_throughput_ratio",
            "utilization",
            "primary_rtt_ratio_95th",
        }
    again = run_matrix(
        "cubic", "proteus-s", configs=configs, n_trials=2, duration_s=2.0,
        jobs=1, policy=NO_RETRY, manifest=manifest,
    )
    assert all(o.resumed for o in again)
    assert [o.value for o in again] == [o.value for o in outcomes]


def test_summarize_outcomes_counts():
    outcomes = [
        TrialOutcome(status=STATUS_OK, key="a", resumed=True),
        TrialOutcome(status=STATUS_FAILED, key="b"),
        TrialOutcome(status=STATUS_CRASHED, key="c"),
    ]
    counts = summarize_outcomes(outcomes)
    assert counts["total"] == 3
    assert counts[STATUS_OK] == 1
    assert counts[STATUS_FAILED] == 1
    assert counts[STATUS_CRASHED] == 1
    assert counts["resumed"] == 1


# ----------------------------------------------------------------------
# Runner watchdog passthrough
# ----------------------------------------------------------------------
def test_run_flows_passes_watchdog_budget_through():
    with pytest.raises(SimBudgetExceeded):
        run_flows([FlowSpec("cubic")], _LINK, duration_s=5.0, seed=1, max_events=50)
