"""Tests for the ASCII plot helpers."""

import pytest

from repro.harness import cdf_plot, sparkline, timeseries_plot


def test_sparkline_monotone_ramp():
    line = sparkline([0.0, 1.0, 2.0, 3.0, 4.0])
    assert len(line) == 5
    assert line[0] == " "
    assert line[-1] == "@"
    # Characters rise monotonically with the data.
    order = {c: i for i, c in enumerate(" .:-=+*#%@")}
    assert [order[c] for c in line] == sorted(order[c] for c in line)


def test_sparkline_constant_series():
    assert sparkline([5.0, 5.0, 5.0]) == "   "


def test_sparkline_explicit_bounds_clamp():
    line = sparkline([-10.0, 50.0], lo=0.0, hi=10.0)
    assert line[0] == " "
    assert line[1] == "@"


def test_sparkline_empty_raises():
    with pytest.raises(ValueError):
        sparkline([])


def test_timeseries_plot_rows_and_scale():
    series = {
        "flow-a": [(float(t), float(t)) for t in range(10)],
        "flow-b": [(float(t), 9.0 - t) for t in range(10)],
    }
    text = timeseries_plot(series, width=10)
    lines = text.splitlines()
    assert len(lines) == 3  # scale header + 2 rows
    assert "scale: 0.0 .. 9.0" in lines[0]
    assert lines[1].startswith("flow-a")
    assert lines[2].startswith("flow-b")


def test_timeseries_plot_resamples_long_series():
    series = {"x": [(float(t), float(t % 7)) for t in range(500)]}
    text = timeseries_plot(series, width=40)
    row = text.splitlines()[1]
    assert len(row) == 12 + 2 + 40  # label + separator + sparkline columns


def test_timeseries_plot_validation():
    with pytest.raises(ValueError):
        timeseries_plot({})
    with pytest.raises(ValueError):
        timeseries_plot({"x": [(0.0, 1.0)]}, width=1)
    with pytest.raises(ValueError):
        timeseries_plot({"x": []})


def test_cdf_plot_marks_quantiles():
    text = cdf_plot(list(range(100)), width=20, rows=4)
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("p100")
    assert lines[-1].startswith("p 25")
    assert all("|" in line for line in lines)


def test_cdf_plot_empty_raises():
    with pytest.raises(ValueError):
        cdf_plot([])
