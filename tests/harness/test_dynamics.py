"""Tests for declarative timelines: spec layer, runner wiring, caching, CLI.

The acceptance scenario from the dynamics work: a 40 -> 10 Mbps
bandwidth step at t=30 s must show the flow re-converging (throughput
tracks the new rate, the queue built at the step drains) with exact
packet conservation across the change.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.devtools import stats_digest
from repro.harness import (
    TIMELINES,
    BandwidthFlap,
    BandwidthStep,
    BandwidthTrace,
    DelayStep,
    FlowSpec,
    GilbertLoss,
    LinkConfig,
    LossStep,
    Outage,
    Timeline,
    load_timeline,
    pmap,
    run_flows,
    run_result_summary,
    run_single,
    timeline_from_dict,
)
from repro.harness.cache import enable_cache, reset_cache_state

SMALL_CONFIG = LinkConfig(bandwidth_mbps=10.0, rtt_ms=40.0, buffer_kb=75.0)


@pytest.fixture
def cache(tmp_path):
    cache = enable_cache(tmp_path / "cache")
    yield cache
    reset_cache_state()


# ----------------------------------------------------------------------
# Spec layer: steps resolve to primitive events
# ----------------------------------------------------------------------
def test_timeline_resolves_sorted_by_time():
    timeline = Timeline(
        (
            BandwidthStep(at_s=5.0, bandwidth_mbps=10.0),
            DelayStep(at_s=1.0, delay_ms=20.0),
            Outage(start_s=2.0, end_s=8.0),
        )
    )
    assert [event.time_s for event in timeline.resolve()] == [1.0, 2.0, 5.0, 8.0]


def test_flap_alternates_and_restores():
    flap = BandwidthFlap(
        start_s=8.0, end_s=28.0, period_s=4.0, low_mbps=6.0, high_mbps=30.0
    )
    events = flap.events()
    assert [event.time_s for event in events] == [
        8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0, 22.0, 24.0, 26.0, 28.0
    ]
    rates = [event.value[0] for event in events]
    assert rates[0] == pytest.approx(6e6)  # starts by collapsing
    assert rates[1] == pytest.approx(30e6)
    # Restored to the high rate at end_s regardless of phase.
    assert rates[-1] == pytest.approx(30e6)


def test_trace_playback_times_and_rates():
    trace = BandwidthTrace(
        start_s=5.0, interval_s=3.0, bandwidths_mbps=(24.0, 16.0, 9.0)
    )
    events = trace.events()
    assert [event.time_s for event in events] == [5.0, 8.0, 11.0]
    assert [event.value[0] for event in events] == [24e6, 16e6, 9e6]


def test_outage_emits_down_and_up():
    down, up = Outage(start_s=17.5, end_s=18.5).events()
    assert (down.time_s, down.kind) == (17.5, "down")
    assert (up.time_s, up.kind) == (18.5, "up")


def test_step_validation():
    with pytest.raises(ValueError):
        BandwidthStep(at_s=-1.0, bandwidth_mbps=10.0)
    with pytest.raises(ValueError):
        Outage(start_s=5.0, end_s=5.0)
    with pytest.raises(ValueError):
        BandwidthFlap(start_s=0.0, end_s=10.0, period_s=0.0, low_mbps=1.0, high_mbps=2.0)
    with pytest.raises(ValueError):
        BandwidthTrace(start_s=0.0, interval_s=1.0, bandwidths_mbps=())
    with pytest.raises(ValueError):
        LossStep(at_s=0.0, loss_rate=1.0)
    with pytest.raises(ValueError):
        GilbertLoss(at_s=0.0, p_enter_bad=0.1, p_exit_bad=0.0)


# ----------------------------------------------------------------------
# Serialisation: presets and JSON round-trips
# ----------------------------------------------------------------------
def test_presets_roundtrip_through_json():
    for name in TIMELINES:
        timeline = load_timeline(name)
        assert timeline.label == name
        document = json.loads(json.dumps(timeline.to_dict()))
        assert timeline_from_dict(document) == timeline
        assert timeline.resolve()  # every preset produces events


def test_from_dict_rejects_malformed_documents():
    with pytest.raises(ValueError, match="steps"):
        timeline_from_dict({"label": "x"})
    with pytest.raises(ValueError, match="unknown timeline step kind"):
        timeline_from_dict({"steps": [{"kind": "teleport"}]})


def test_load_timeline_from_file_and_unknown_name(tmp_path):
    timeline = Timeline(
        (BandwidthStep(at_s=1.0, bandwidth_mbps=5.0),), label="from-file"
    )
    path = tmp_path / "timeline.json"
    path.write_text(json.dumps(timeline.to_dict()))
    assert load_timeline(str(path)) == timeline
    with pytest.raises(ValueError, match="not a preset"):
        load_timeline("no-such-timeline")


# ----------------------------------------------------------------------
# Runner: the step-down acceptance scenario
# ----------------------------------------------------------------------
def test_step_down_reconverges_after_capacity_drop():
    config = LinkConfig(bandwidth_mbps=40.0, rtt_ms=30.0, buffer_kb=300.0)
    timeline = Timeline(
        (BandwidthStep(at_s=30.0, bandwidth_mbps=10.0),), label="step-down"
    )
    result = run_flows(
        [FlowSpec("proteus-s")], config, duration_s=45.0, seed=7, timeline=timeline
    )
    stats = result.stats[0]
    assert result.dumbbell is not None
    link = result.dumbbell.bottleneck
    assert link.stats.rate_changes == 1
    assert [event.describe() for event in result.link_events] == [
        "bandwidth -> 10 Mbps"
    ]
    # Before the step the flow tracks the 40 Mbps link...
    assert stats.throughput_bps(20.0, 29.0) / 1e6 > 30.0
    # ...and after it re-converges to the 10 Mbps link.
    post_mbps = stats.throughput_bps(40.0, 45.0) / 1e6
    assert 8.0 < post_mbps < 10.5
    # The queue built at the step drains back to near-base RTT.
    spike = stats.rtt_percentile(50, 30.0, 36.0)
    settled = stats.rtt_percentile(50, 40.0, 45.0)
    assert spike > 0.150
    assert settled < 0.060
    # Packet conservation is exact across the rate change.
    ls = link.stats
    assert ls.offered == (
        ls.delivered + ls.tail_drops + ls.random_losses + ls.outage_drops
    )


def test_gilbert_timeline_reproducible_seed_for_seed():
    timeline = Timeline(
        (GilbertLoss(at_s=1.0, p_enter_bad=0.02, p_exit_bad=0.3, loss_bad=0.6),),
        label="burst",
    )

    def digest(seed):
        result = run_flows(
            [FlowSpec("cubic")], SMALL_CONFIG, duration_s=6.0, seed=seed, timeline=timeline
        )
        assert result.stats[0].loss_count() > 0  # the channel actually bites
        return stats_digest(result.stats)

    assert digest(5) == digest(5)
    assert digest(5) != digest(6)


@settings(max_examples=5, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=1.4),
            st.floats(min_value=2.0, max_value=30.0),
        ),
        min_size=1,
        max_size=3,
    )
)
def test_property_runner_conservation_with_timeline(steps):
    timeline = Timeline(
        tuple(BandwidthStep(at_s=at_s, bandwidth_mbps=mbps) for at_s, mbps in steps)
    )
    result = run_flows(
        [FlowSpec("cubic")], SMALL_CONFIG, duration_s=1.5, seed=3, timeline=timeline
    )
    ls = result.dumbbell.bottleneck.stats
    assert ls.rate_changes == len(steps)
    assert ls.offered == (
        ls.delivered + ls.tail_drops + ls.random_losses + ls.outage_drops
    )


_PMAP_TIMELINE = Timeline(
    (
        BandwidthStep(at_s=2.0, bandwidth_mbps=8.0),
        GilbertLoss(at_s=3.0, p_enter_bad=0.02, p_exit_bad=0.3, loss_bad=0.6),
    ),
    label="pmap",
)
_PMAP_CONFIG = LinkConfig(bandwidth_mbps=16.0, rtt_ms=30.0, buffer_kb=120.0)


def _timeline_digest(seed: int) -> str:
    """Module-level (hence picklable) experiment for the parallel gate."""
    result = run_flows(
        [FlowSpec("proteus-s")], _PMAP_CONFIG, duration_s=5.0, seed=seed, timeline=_PMAP_TIMELINE
    )
    return stats_digest(result.stats)


def test_timeline_runs_identical_across_worker_counts():
    # REPRO_JOBS=4 vs serial: dynamic scenarios stay bit-reproducible.
    seeds = [3, 4, 5, 6]
    serial = pmap(_timeline_digest, seeds, jobs=1)
    parallel = pmap(_timeline_digest, seeds, jobs=4)
    assert parallel == serial
    assert len(set(serial)) == len(seeds)


# ----------------------------------------------------------------------
# Result cache: the timeline is part of the key
# ----------------------------------------------------------------------
def test_timeline_participates_in_cache_key(cache):
    specs = [FlowSpec("vivace")]
    tl_a = Timeline((BandwidthStep(at_s=1.0, bandwidth_mbps=8.0),), label="t")
    # Identical except for one event time: must be a different key.
    tl_b = Timeline((BandwidthStep(at_s=1.5, bandwidth_mbps=8.0),), label="t")
    run_flows(specs, SMALL_CONFIG, duration_s=4.0, seed=7, timeline=tl_a)
    run_flows(specs, SMALL_CONFIG, duration_s=4.0, seed=7)  # timeline-free: its own key
    run_flows(specs, SMALL_CONFIG, duration_s=4.0, seed=7, timeline=tl_b)
    assert (cache.hits, cache.misses) == (0, 3)
    warm = run_flows(specs, SMALL_CONFIG, duration_s=4.0, seed=7, timeline=tl_a)
    assert (cache.hits, cache.misses) == (1, 3)
    # The rebuilt result carries the timeline telemetry without a live run.
    assert warm.dumbbell is None
    assert warm.timeline == tl_a
    assert [event.describe() for event in warm.link_events] == [
        "bandwidth -> 8 Mbps"
    ]


def test_cache_rebuild_matches_live_run(cache):
    specs = [FlowSpec("vivace")]
    timeline = Timeline(
        (
            BandwidthStep(at_s=1.0, bandwidth_mbps=8.0),
            BandwidthStep(at_s=99.0, bandwidth_mbps=20.0),  # beyond duration
        ),
        label="partial",
    )
    cold = run_flows(specs, SMALL_CONFIG, duration_s=4.0, seed=7, timeline=timeline)
    warm = run_flows(specs, SMALL_CONFIG, duration_s=4.0, seed=7, timeline=timeline)
    assert stats_digest(warm.stats) == stats_digest(cold.stats)
    # Only the event that actually fired is in either log.
    assert len(cold.link_events) == 1
    assert warm.link_events == cold.link_events


# ----------------------------------------------------------------------
# Export and CLI surfaces
# ----------------------------------------------------------------------
def test_summary_includes_timeline_and_events():
    timeline = Timeline(
        (BandwidthStep(at_s=1.0, bandwidth_mbps=8.0),), label="step"
    )
    result = run_single(
        "cubic", SMALL_CONFIG, duration_s=3.0, seed=2, timeline=timeline
    )
    summary = run_result_summary(result)
    assert summary["timeline"]["label"] == "step"
    [event] = summary["link_events"]
    assert event == {
        "time_s": 1.0,
        "link": "bottleneck",
        "kind": "bandwidth",
        "value": [8e6],
        "description": "bandwidth -> 8 Mbps",
    }
    json.dumps(summary)  # the whole summary stays JSON-serialisable


def test_summary_omits_timeline_keys_for_static_runs():
    result = run_single("cubic", SMALL_CONFIG, duration_s=3.0, seed=2)
    summary = run_result_summary(result)
    assert "timeline" not in summary
    assert "link_events" not in summary


def test_cli_single_accepts_timeline_file(tmp_path, capsys):
    timeline = Timeline(
        (BandwidthStep(at_s=1.0, bandwidth_mbps=5.0),), label="cli-step"
    )
    path = tmp_path / "timeline.json"
    path.write_text(json.dumps(timeline.to_dict()))
    rc = cli_main(
        [
            "single", "--protocol", "cubic", "--bandwidth", "10",
            "--buffer", "75", "--duration", "3", "--timeline", str(path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "timeline 'cli-step'" in out
    assert "bandwidth -> 5 Mbps" in out


def test_cli_accepts_preset_timeline(capsys):
    rc = cli_main(
        [
            "single", "--protocol", "cubic", "--bandwidth", "10",
            "--buffer", "75", "--duration", "2", "--timeline", "step-down",
        ]
    )
    assert rc == 0


def test_cli_rejects_unknown_timeline():
    with pytest.raises(SystemExit, match="unknown timeline"):
        cli_main(["single", "--timeline", "no-such-preset", "--duration", "2"])
