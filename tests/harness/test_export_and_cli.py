"""Tests for result export and the command-line interface."""

import csv
import json

import pytest

from repro.cli import main
from repro.harness import (
    EMULAB_DEFAULT,
    run_result_summary,
    run_single,
    write_csv,
    write_run_json,
    write_throughput_series_csv,
)


@pytest.fixture(scope="module")
def short_run():
    return run_single("cubic", EMULAB_DEFAULT, duration_s=8.0)


def test_run_result_summary_fields(short_run):
    summary = run_result_summary(short_run)
    assert summary["config"]["bandwidth_mbps"] == 50.0
    assert summary["duration_s"] == 8.0
    assert len(summary["flows"]) == 1
    flow = summary["flows"][0]
    assert flow["protocol"] == "cubic"
    assert flow["throughput_mbps"] > 30.0
    assert flow["p95_rtt_ms"] > flow["min_rtt_ms"]


def test_write_run_json_round_trip(tmp_path, short_run):
    path = tmp_path / "out" / "run.json"
    write_run_json(path, short_run)
    loaded = json.loads(path.read_text())
    assert loaded == run_result_summary(short_run)


def test_write_csv_and_validation(tmp_path):
    path = tmp_path / "t.csv"
    write_csv(path, ["a", "b"], [[1, 2], [3, 4]])
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]
    with pytest.raises(ValueError):
        write_csv(path, ["a"], [[1, 2]])


def test_write_throughput_series(tmp_path, short_run):
    path = tmp_path / "series.csv"
    write_throughput_series_csv(path, short_run, bin_s=2.0)
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["protocol", "flow_id", "time_s", "throughput_mbps"]
    assert len(rows) == 1 + 4  # 8 s / 2 s bins


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_protocols_lists_names(capsys):
    assert main(["protocols"]) == 0
    out = capsys.readouterr().out
    assert "proteus-s" in out
    assert "ledbat" in out


def test_cli_single_runs_and_exports(tmp_path, capsys):
    json_path = tmp_path / "single.json"
    code = main(
        [
            "single",
            "--protocol",
            "cubic",
            "--duration",
            "6",
            "--bandwidth",
            "20",
            "--json",
            str(json_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput (Mbps)" in out
    assert json_path.exists()


def test_cli_fairness(capsys):
    code = main(
        [
            "fairness",
            "--protocol",
            "cubic",
            "--flows",
            "2",
            "--duration",
            "8",
            "--stagger",
            "2",
            "--bandwidth",
            "20",
        ]
    )
    assert code == 0
    assert "Jain's index" in capsys.readouterr().out


def test_cli_sweep_runs_and_resumes(tmp_path, capsys):
    manifest = tmp_path / "sweep.jsonl"
    argv = [
        "sweep", "--bandwidths", "10", "--rtts", "20", "--buffers", "1",
        "--trials", "1", "--duration", "2", "--jobs", "1",
        "--manifest", str(manifest),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "resumed from manifest    0" in out
    assert manifest.exists()
    # Resume: every cell comes back from the journal.
    argv_resume = argv[:-2] + ["--resume", str(manifest)]
    assert main(argv_resume) == 0
    out = capsys.readouterr().out
    assert "resumed from manifest    1" in out


def test_cli_sweep_rejects_bad_float_list():
    with pytest.raises(SystemExit):
        main(["sweep", "--bandwidths", "ten"])


def test_cli_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        main(["single", "--protocol", "nope"])
