"""The unified results API: keyword-only shims and the Result protocol."""

import json

import pytest

from repro.harness import (
    EMULAB_DEFAULT,
    FlowSpec,
    PairResult,
    Result,
    StreamingResult,
    run_flows,
    run_homogeneous,
    run_pair,
    run_single,
    synthesize_snapshot,
    write_result_json,
)

CONFIG = EMULAB_DEFAULT


@pytest.fixture(scope="module")
def short_run():
    return run_flows([FlowSpec("cubic")], CONFIG, duration_s=6.0, seed=3)


# ----------------------------------------------------------------------
# One-release deprecation shim for formerly-positional arguments
# ----------------------------------------------------------------------
def test_positional_tail_warns_and_matches_keyword(short_run):
    with pytest.deprecated_call():
        legacy = run_flows([FlowSpec("cubic")], CONFIG, 6.0, 3)
    assert legacy.throughputs_mbps() == short_run.throughputs_mbps()
    assert legacy.duration_s == short_run.duration_s


def test_positional_and_keyword_conflict_is_an_error():
    with pytest.raises(TypeError, match="multiple values"), pytest.deprecated_call():
        run_flows([FlowSpec("cubic")], CONFIG, 6.0, duration_s=6.0)


def test_too_many_positionals_is_an_error():
    with pytest.raises(TypeError, match="at most"):
        run_flows([FlowSpec("cubic")], CONFIG, 6.0, 3, None, "extra")


def test_run_single_shim():
    with pytest.deprecated_call():
        legacy = run_single("cubic", CONFIG, 5.0, 2)
    keyword = run_single("cubic", CONFIG, duration_s=5.0, seed=2)
    assert legacy.throughputs_mbps() == keyword.throughputs_mbps()


def test_run_homogeneous_shim():
    with pytest.deprecated_call():
        legacy = run_homogeneous("cubic", 2, CONFIG, 1.0, 4.0, 2)
    keyword = run_homogeneous(
        "cubic", 2, CONFIG, stagger_s=1.0, measure_s=4.0, seed=2
    )
    assert legacy.throughputs_mbps() == keyword.throughputs_mbps()


def test_run_pair_shim():
    with pytest.deprecated_call():
        legacy = run_pair("cubic", "proteus-s", CONFIG, 6.0, 1.0, 2, 1)
    keyword = run_pair(
        "cubic", "proteus-s", CONFIG,
        duration_s=6.0, scavenger_start_s=1.0, seed=2, jobs=1,
    )
    assert legacy == keyword


def test_keyword_calls_do_not_warn(recwarn, short_run):
    run_flows([FlowSpec("cubic")], CONFIG, duration_s=6.0, seed=3)
    deprecations = [
        w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
    ]
    assert deprecations == []


# ----------------------------------------------------------------------
# Result protocol conformance
# ----------------------------------------------------------------------
def _assert_result_contract(result, kind):
    assert isinstance(result, Result)
    summary = result.summary()
    assert isinstance(summary, dict) and summary
    record = result.to_dict()
    assert record["kind"] == kind
    snapshot = result.metrics
    assert set(snapshot) == {"counters", "gauges", "histograms"}
    json.dumps(record)  # JSON-safe all the way down


def test_run_result_conforms(short_run):
    _assert_result_contract(short_run, "run")
    gauges = short_run.metrics["gauges"]
    assert "run.utilization" in gauges


def test_pair_result_conforms():
    pair = PairResult(
        primary_solo_mbps=40.0,
        primary_with_scavenger_mbps=38.0,
        scavenger_mbps=5.0,
        primary_throughput_ratio=0.95,
        utilization=0.86,
        primary_rtt_ratio_95th=1.1,
    )
    _assert_result_contract(pair, "pair")
    assert pair.metrics["gauges"]["pair.utilization"] == 0.86


def test_streaming_result_conforms():
    streaming = StreamingResult(
        video_name="bbb",
        average_bitrate_mbps=4.2,
        rebuffer_ratio=0.01,
        chunks_delivered=30,
        startup_delay_s=0.8,
    )
    _assert_result_contract(streaming, "streaming")
    assert streaming.metrics["counters"]["streaming.chunks_delivered"] == 30


def test_cached_result_conforms(tmp_path):
    from repro.harness import disable_cache, enable_cache

    enable_cache(tmp_path / "cache")
    try:
        live = run_flows([FlowSpec("cubic")], CONFIG, duration_s=4.0, seed=9)
        warm = run_flows([FlowSpec("cubic")], CONFIG, duration_s=4.0, seed=9)
    finally:
        disable_cache()
    assert warm.dumbbell is None  # really a cache rebuild
    _assert_result_contract(warm, "run")
    # The snapshot survives the cache round-trip byte-identically,
    # including link-level series the rebuilt result cannot recompute.
    assert warm.metrics == live.metrics
    assert any(k.startswith("link.") for k in warm.metrics["counters"])


def test_write_result_json_for_every_kind(tmp_path, short_run):
    pair = PairResult(1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    streaming = StreamingResult("v", 1.0, 0.0, 1, None)
    for i, result in enumerate((short_run, pair, streaming)):
        path = tmp_path / f"result{i}.json"
        write_result_json(path, result)
        loaded = json.loads(path.read_text())
        assert loaded["kind"] == result.to_dict()["kind"]
    with pytest.raises(TypeError):
        write_result_json(tmp_path / "bad.json", object())


def test_synthesize_snapshot_shape():
    snapshot = synthesize_snapshot(gauges={"b": 2.0, "a": 1.0}, counters={"c": 3})
    assert list(snapshot["gauges"]) == ["a", "b"]
    assert snapshot["counters"] == {"c": 3}
    assert snapshot["histograms"] == {}
    assert synthesize_snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
