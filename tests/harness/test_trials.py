"""Tests for the multi-trial statistics runner."""

import pytest

from repro.harness import run_trials, run_trials_multi, summarize


def test_summarize_basic_statistics():
    s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
    assert s.n == 5
    assert s.mean == pytest.approx(3.0)
    assert s.median == pytest.approx(3.0)
    assert s.minimum == 1.0
    assert s.maximum == 5.0
    assert s.ci_low <= s.mean <= s.ci_high


def test_summarize_even_count_median():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.median == pytest.approx(2.5)


def test_summarize_single_value_degenerate_ci():
    s = summarize([7.0])
    assert s.ci_low == s.ci_high == 7.0
    assert s.std == 0.0


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_bootstrap_ci_pinned_for_fixed_seed():
    """Regression pin for the vectorized bootstrap resampler.

    ``summarize`` now draws each resample with one ``rng.choices`` pass
    instead of a per-element ``randrange`` loop; these exact CI values
    (seed 0, 2000 resamples) must never drift silently — a change here
    means the resampling algorithm or its RNG stream changed.
    """
    s = summarize([3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3, 5.8, 9.7, 9.3], seed=0)
    assert s.mean == pytest.approx(5.12)
    assert s.ci_low == pytest.approx(3.29, abs=1e-12)
    assert s.ci_high == pytest.approx(7.21, abs=1e-12)


def test_bootstrap_ci_seed_sensitivity():
    values = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3, 5.8, 9.7, 9.3]
    a = summarize(values, seed=0)
    b = summarize(values, seed=1)
    assert (a.ci_low, a.ci_high) != (b.ci_low, b.ci_high)


def test_run_trials_parallel_matches_serial():
    serial = run_trials(_seed_echo, n_trials=6, base_seed=3, jobs=1)
    parallel = run_trials(_seed_echo, n_trials=6, base_seed=3, jobs=4)
    assert serial == parallel  # TrialSummary is a frozen dataclass


def _seed_echo(seed: int) -> float:  # module-level: picklable for workers
    return float(seed)


def test_bootstrap_ci_narrows_with_consistency():
    tight = summarize([10.0, 10.1, 9.9, 10.0, 10.05] * 4)
    wide = summarize([5.0, 15.0, 2.0, 18.0, 10.0] * 4)
    assert (tight.ci_high - tight.ci_low) < (wide.ci_high - wide.ci_low)


def test_run_trials_feeds_distinct_seeds():
    seen = []

    def experiment(seed: int) -> float:
        seen.append(seed)
        return float(seed)

    s = run_trials(experiment, n_trials=5, base_seed=10)
    assert seen == [10, 11, 12, 13, 14]
    assert s.mean == pytest.approx(12.0)


def test_run_trials_validation():
    with pytest.raises(ValueError):
        run_trials(lambda s: 0.0, n_trials=0)


def test_run_trials_multi_collects_all_metrics():
    def experiment(seed: int) -> dict:
        return {"a": float(seed), "b": float(seed * 2)}

    out = run_trials_multi(experiment, n_trials=3, base_seed=1)
    assert set(out) == {"a", "b"}
    assert out["a"].mean == pytest.approx(2.0)
    assert out["b"].mean == pytest.approx(4.0)
