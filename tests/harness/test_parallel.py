"""Tests for the process-pool experiment executor."""

import threading

import pytest

from repro.harness.parallel import (
    ParallelCallError,
    ParallelExecutor,
    call_repr,
    default_jobs,
    pmap,
)


def _square(x: int) -> int:  # module-level: picklable for real workers
    return x * x


def _affine(a: int, b: int) -> int:
    return 10 * a + b


def test_default_jobs_reads_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert default_jobs() == 3


def test_default_jobs_falls_back_to_cpu_count(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() >= 1


@pytest.mark.parametrize("raw", ["0", "-2", "four"])
def test_default_jobs_rejects_bad_env(monkeypatch, raw):
    monkeypatch.setenv("REPRO_JOBS", raw)
    with pytest.raises(ValueError):
        default_jobs()


def test_map_serial_matches_comprehension():
    assert ParallelExecutor(jobs=1).map(_square, range(6)) == [
        _square(i) for i in range(6)
    ]


def test_map_parallel_preserves_input_order():
    # 4 workers on arbitrarily many cores: results must come back ordered
    # by input position, not completion time.
    assert ParallelExecutor(jobs=4).map(_square, range(12)) == [
        _square(i) for i in range(12)
    ]


def test_map_unpicklable_fn_falls_back_to_serial():
    calls = []

    def closure(x):  # closures cannot cross a process boundary
        calls.append(x)
        return -x

    assert ParallelExecutor(jobs=4).map(closure, [1, 2, 3]) == [-1, -2, -3]
    # The fallback ran in-process: side effects are visible here.
    assert calls == [1, 2, 3]


def test_map_single_item_stays_in_process():
    seen = []

    def record(x):
        seen.append(x)
        return x

    assert ParallelExecutor(jobs=8).map(record, [42]) == [42]
    assert seen == [42]


def test_run_all_dispatches_heterogeneous_calls():
    calls = [(_affine, (1, 2)), (_affine, (3, 4)), (_square, (5,))]
    assert ParallelExecutor(jobs=1).run_all(calls) == [12, 34, 25]
    assert ParallelExecutor(jobs=3).run_all(calls) == [12, 34, 25]


def test_pmap_convenience():
    assert pmap(_square, [2, 3], jobs=1) == [4, 9]


def test_worker_exception_propagates():
    with pytest.raises(ZeroDivisionError):
        ParallelExecutor(jobs=2).map(_reciprocal, [1, 0])


def _reciprocal(x: int) -> float:
    return 1.0 / x


def _take_lock_free(item) -> int:
    # Works whether the item is an int or an (unpicklable) Lock.
    return 1 if isinstance(item, int) else 2


def test_map_midstream_unpicklable_item_computed_in_process():
    # First item picklable -> pool path engages; the Lock deeper in the
    # stream cannot cross the boundary and is computed in-process.
    items = [1, threading.Lock(), 3]
    assert ParallelExecutor(jobs=2).map(_take_lock_free, items) == [1, 2, 1]


def test_map_unpicklable_first_item_falls_back_to_serial():
    items = [threading.Lock(), 1]
    assert ParallelExecutor(jobs=2).map(_take_lock_free, items) == [2, 1]


def test_run_all_wraps_worker_exception_with_attribution():
    calls = [(_affine, (1, 2)), (_reciprocal, (0,)), (_square, (5,))]
    with pytest.raises(ParallelCallError) as info:
        ParallelExecutor(jobs=3).run_all(calls)
    assert info.value.index == 1
    assert "_reciprocal(0)" in str(info.value)
    assert isinstance(info.value.__cause__, ZeroDivisionError)


def test_run_all_serial_path_raises_unwrapped():
    # jobs=1 keeps the original traceback, which already reaches the
    # call site — no wrapper needed there.
    with pytest.raises(ZeroDivisionError):
        ParallelExecutor(jobs=1).run_all([(_reciprocal, (0,)), (_square, (2,))])


def test_run_all_unpicklable_call_runs_in_process():
    lock = threading.Lock()
    calls = [(_affine, (1, 2)), (_take_lock_free, (lock,))]
    assert ParallelExecutor(jobs=2).run_all(calls) == [12, 2]


def test_call_repr_names_function_and_args():
    assert call_repr(_affine, (1, "x")) == "_affine(1, 'x')"
