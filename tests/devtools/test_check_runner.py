"""run_check plumbing: suppression, baseline semantics, error handling."""

import pytest

from repro.devtools.analysis import (
    Baseline,
    BaselineEntry,
    run_check,
    select_analyzers,
)

MIXED = "def f(rtt_ms, size_bytes):\n    return rtt_ms + size_bytes{comment}\n"


def check_source(tmp_path, source, **kwargs):
    target = tmp_path / "mod.py"
    target.write_text(source)
    return run_check([target], **kwargs)


def test_line_noqa_suppresses_a_finding(tmp_path):
    report = check_source(
        tmp_path, MIXED.format(comment="  # repro: noqa[unit-mismatch]")
    )
    assert report.ok
    assert report.suppressed == 1


def test_file_noqa_suppresses_across_the_file(tmp_path):
    source = "# repro: noqa-file[unit-mismatch]\n" + MIXED.format(comment="")
    report = check_source(tmp_path, source)
    assert report.ok
    assert report.suppressed == 1


def test_unsuppressed_finding_fails(tmp_path):
    report = check_source(tmp_path, MIXED.format(comment=""))
    assert not report.ok
    assert [f.rule_id for f in report.findings] == ["unit-mismatch"]


def test_baseline_covers_and_reports_stale(tmp_path):
    covering = Baseline(
        entries=[BaselineEntry(rule="unit-mismatch", path="mod.py", reason="known")]
    )
    report = check_source(tmp_path, MIXED.format(comment=""), baseline=covering)
    assert report.ok
    assert len(report.baselined) == 1 and not report.findings

    stale = Baseline(
        entries=[BaselineEntry(rule="unit-mismatch", path="other.py", reason="gone")]
    )
    report = check_source(tmp_path, "X = 1\n", baseline=stale)
    assert not report.ok  # a stale entry fails the gate even with no findings
    assert len(report.stale_entries) == 1


def test_baseline_match_string_must_occur(tmp_path):
    miss = Baseline(
        entries=[
            BaselineEntry(
                rule="unit-mismatch", path="mod.py", reason="x", match="no-such-text"
            )
        ]
    )
    report = check_source(tmp_path, MIXED.format(comment=""), baseline=miss)
    assert not report.ok
    assert report.findings and report.stale_entries


def test_syntax_errors_become_findings(tmp_path):
    report = check_source(tmp_path, "def broken(:\n")
    assert [f.rule_id for f in report.findings] == ["syntax-error"]
    assert report.files == 1


def test_unknown_check_id_raises():
    with pytest.raises(ValueError, match="unknown check"):
        select_analyzers(["nope"])


def test_select_all_analyzers():
    assert sorted(a.id for a in select_analyzers(None)) == [
        "layering",
        "races",
        "tracepoints",
        "units",
    ]
