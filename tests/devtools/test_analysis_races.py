"""Race/determinism analyzer against the golden fixture package."""

from pathlib import Path

from repro.devtools.analysis import ANALYZERS, Project

CASE = Path(__file__).parent / "fixtures" / "check" / "races_case"


def findings_for(case_dir):
    project = Project.load([case_dir])
    return sorted(ANALYZERS.analyzers["races"].analyze(project))


def in_file(findings, name):
    return [f for f in findings if f.path.endswith(name)]


def test_worker_global_writes_are_flagged():
    bad = in_file(findings_for(CASE), "races_bad.py")
    writes = [f for f in bad if f.rule_id == "worker-global-write"]
    assert len(writes) == 3
    messages = sorted(f.message for f in writes)
    assert "calls 'RESULTS.append()'" in messages[0]
    assert "mutates module-level 'CACHE'" in messages[1]
    assert "writes module global 'COUNTER'" in messages[2]


def test_unseeded_random_found_through_a_helper():
    # `trial` (the worker root) never touches random; `jitter` does.
    bad = in_file(findings_for(CASE), "races_bad.py")
    random_findings = [f for f in bad if f.rule_id == "worker-unseeded-random"]
    assert len(random_findings) == 1
    assert "races_bad.jitter" in random_findings[0].message


def test_set_iteration_in_digest_function():
    bad = in_file(findings_for(CASE), "races_bad.py")
    unordered = [f for f in bad if f.rule_id == "unordered-iteration"]
    assert len(unordered) == 1
    assert "races_bad.digest_of" in unordered[0].message


def test_ok_file_is_clean():
    assert in_file(findings_for(CASE), "races_ok.py") == []
