"""CLI surface of ``repro check``: exit codes, formats, baseline flow."""

import json
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

MIXED = "def f(rtt_ms, size_bytes):\n    return rtt_ms + size_bytes\n"
CLEAN = "def f(rtt_ms):\n    rtt_s = rtt_ms * 1e-3\n    return rtt_s\n"


def tree(tmp_path, source):
    (tmp_path / "mod.py").write_text(source)
    return str(tmp_path)


def test_check_src_is_clean_at_head(capsys, monkeypatch):
    """The meta-gate: the shipped tree passes its own whole-program check."""
    monkeypatch.chdir(REPO_ROOT)
    assert main(["check", "src", "--docs-dir", "docs"]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_clean_tree_exits_zero(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["check", tree(tmp_path, CLEAN)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_findings_exit_one(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["check", tree(tmp_path, MIXED)]) == 1
    out = capsys.readouterr().out
    assert "unit-mismatch" in out
    assert "1 finding" in out


def test_json_format(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["check", "--format", "json", tree(tmp_path, MIXED)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert [f["rule"] for f in payload["findings"]] == ["unit-mismatch"]
    assert {"path", "line", "col", "rule", "message"} <= set(payload["findings"][0])


def test_github_format(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["check", "--format", "github", tree(tmp_path, MIXED)]) == 1
    out = capsys.readouterr().out
    assert out.startswith("::error file=")
    assert "title=unit-mismatch" in out


def test_check_filter(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    # Only the layering analyzer selected: the unit mismatch is invisible.
    assert main(["check", "--check", "layering", tree(tmp_path, MIXED)]) == 0
    assert "checks: layering" in capsys.readouterr().out


def test_unknown_check_exits_two(capsys, tmp_path):
    assert main(["check", "--check", "nope", tree(tmp_path, CLEAN)]) == 2
    assert "unknown check" in capsys.readouterr().err


def test_missing_path_exits_two(capsys):
    assert main(["check", "does/not/exist"]) == 2
    assert "does/not/exist" in capsys.readouterr().err


def test_list_checks(capsys):
    assert main(["check", "--list-checks"]) == 0
    out = capsys.readouterr().out
    for check_id in (
        "unit-mismatch",
        "unit-call-mismatch",
        "worker-global-write",
        "worker-unseeded-random",
        "unordered-iteration",
        "trace-field-mismatch",
        "layer-violation",
        "import-cycle",
    ):
        assert check_id in out


def test_update_baseline_then_pass(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    target = tree(tmp_path, MIXED)
    baseline = tmp_path / "baseline.json"

    assert main(["check", target, "--baseline", str(baseline), "--update-baseline"]) == 0
    entries = json.loads(baseline.read_text())["entries"]
    assert [e["rule"] for e in entries] == ["unit-mismatch"]
    assert "TODO" in entries[0]["reason"]

    capsys.readouterr()
    assert main(["check", target, "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_update_baseline_preserves_justifications(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    target = tree(tmp_path, MIXED)
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps(
            {
                "entries": [
                    {
                        "rule": "unit-mismatch",
                        "path": "mod.py",
                        "reason": "a considered justification",
                    }
                ]
            }
        )
    )
    assert main(["check", target, "--baseline", str(baseline), "--update-baseline"]) == 0
    entries = json.loads(baseline.read_text())["entries"]
    assert [e["reason"] for e in entries] == ["a considered justification"]


def test_stale_baseline_fails(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    target = tree(tmp_path, CLEAN)
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps(
            {"entries": [{"rule": "unit-mismatch", "path": "gone.py", "reason": "old"}]}
        )
    )
    assert main(["check", target, "--baseline", str(baseline)]) == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_update_schema_writes_the_doc(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "emitter.py").write_text(
        'def f(tracer, rtt_s):\n    tracer.emit("ev.x", rtt_s=rtt_s)\n'
    )
    docs = tmp_path / "docs"
    docs.mkdir()
    assert (
        main(
            [
                "check",
                str(tmp_path / "emitter.py"),
                "--docs-dir",
                str(docs),
                "--update-schema",
            ]
        )
        == 0
    )
    schema = (docs / "TRACE_SCHEMA.md").read_text()
    assert "`ev.x`" in schema and "`rtt_s`" in schema
