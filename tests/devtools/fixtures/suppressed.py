"""Fixture: noqa suppression precision."""
import random  # repro: noqa[no-bare-random]
import random as r2  # repro: noqa


def wrong_rule():
    return random.random()  # repro: noqa[no-wallclock]
