"""Fixture: mutable-default-arg violations."""


def collect(items=[]):
    return items


def index(table={}, tags=set()):
    return table, tags


def safe(items=None, n=3):
    return items, n
