"""Planted bare future.result() calls (no-bare-subprocess-result)."""


def collect(futures):
    return [future.result() for future in futures]


def first(future):
    value = future.result()  # repro: noqa[no-bare-subprocess-result]
    return future.result() or value
