"""Fixture: a file named sim/rng.py is exempt from no-bare-random."""
import random


class Rng(random.Random):
    pass
