"""Fixture: no-bare-random violations (applies everywhere but sim/rng.py)."""
import random

from random import choice


def roll():
    return random.randint(1, 6)


def np_style(np):
    return np.random.uniform()
