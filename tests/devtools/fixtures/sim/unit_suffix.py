"""Fixture: unit-suffix violations (path is scoped under sim/)."""


class Shaper:
    def __init__(self, rate, delay_s):
        self.rate = rate
        self.delay_s = delay_s


def set_timeout(timeout):
    return timeout


def _private_ok(delay):
    return delay


def allowed(loss_rate, rate_fn, rate_bps):
    return loss_rate, rate_fn, rate_bps
