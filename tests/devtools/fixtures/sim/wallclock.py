"""Fixture: no-wallclock violations (path is scoped under sim/)."""
import time
from datetime import datetime


def stamp():
    return time.time()


def today():
    return datetime.now()
