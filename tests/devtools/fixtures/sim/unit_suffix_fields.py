"""Fixture: dataclass config fields must carry unit suffixes."""
from dataclasses import dataclass


@dataclass(frozen=True)
class StepSpec:
    at: float  # violation: event time without a unit
    start_s: float  # ok: suffixed
    bandwidth: float  # violation: rate without a unit
    loss_rate: float = 0.0  # ok: per-packet probability is unit-free
    _raw_interval: float = 0.0  # ok: private field

    kind = "step"  # ok: un-annotated class attribute


class PlainState:
    # Not a dataclass: these are internal state, not constructor API.
    end: float = 0.0
