"""Negative fixtures: consistent emit sites, discriminated or identical."""


def drop_tail(tracer, backlog_bytes):
    tracer.emit("fix.drop", reason="tail", backlog_bytes=backlog_bytes)


def drop_outage(tracer):
    tracer.emit("fix.drop", reason="outage")


def rate_sample(tracer, rate_bps):
    tracer.emit("fix.rate", rate_bps=rate_bps)


def rate_sample_again(tracer, rate_bps):
    tracer.emit("fix.rate", rate_bps=rate_bps)


def hook_a(tracer, reason, util):
    tracer.emit("fix.decision", reason=reason, util=util)


def hook_b(tracer, reason, util):
    tracer.emit("fix.decision", reason=reason, util=util)


def boot(tracer):
    tracer.emit("fix.decision", reason="boot", util=0.0, delay_s=0.0)
