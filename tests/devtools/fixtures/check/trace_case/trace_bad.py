"""Positive fixtures: emit sites whose field sets cannot be reconciled."""


def sample_rtt(tracer, rtt_s):
    tracer.emit("fix.sample", rtt_s=rtt_s)


def sample_loss(tracer, loss_pkts):
    tracer.emit("fix.sample", loss_pkts=loss_pkts)  # disagrees with rtt site


def hook_util(tracer, reason, util):
    tracer.emit("fix.mixed", reason=reason, util=util)


def hook_rtt(tracer, reason, rtt_s):
    # Same dynamic discriminator, different payload: wildcard sites must agree.
    tracer.emit("fix.mixed", reason=reason, rtt_s=rtt_s)


def boot_mixed(tracer):
    tracer.emit("fix.mixed", reason="boot", util=0.0)
