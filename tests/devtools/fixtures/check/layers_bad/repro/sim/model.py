"""An upward import: sim reaching into the harness layer."""

from repro.harness import trials

__all__ = ["trials"]
