"""The other half of the runtime import cycle."""

from repro.core import alpha

__all__ = ["alpha"]
