"""Half of a runtime import cycle within the core layer."""

from repro.core import beta

__all__ = ["beta"]
