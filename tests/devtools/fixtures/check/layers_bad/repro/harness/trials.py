"""Harness-layer module the sim fixture illegally imports."""

RUNS = 1
