"""Negative fixtures: unit-correct code the dataflow pass must not flag."""


def rescale(rtt_ms):
    rtt_s = rtt_ms * 1e-3  # literal factor: dimension kept, scale forgotten
    return rtt_s


def goodput(total_bytes, dur_s):
    goodput_bps = total_bytes * 8.0 / dur_s  # bytes/time combine to a rate
    return goodput_bps


def scaled_by_unknown(factor, rtt_s):
    # An unsuffixed operand may carry its own unit: no dimension claimed.
    chunk_bytes = factor * rtt_s
    return chunk_bytes


def unify(rtt_s, floor_s):
    timeout_s = max(rtt_s, floor_s)
    return timeout_s


def bdp(rate_bps, rtt_s):
    inflight_bytes = rate_bps * rtt_s / 8.0
    return inflight_bytes
