"""Positive fixtures: every function here trips the unit dataflow pass."""


def mix_dimensions(rtt_ms, size_bytes):
    return rtt_ms + size_bytes  # add: time vs data


def rescale_wrong(rtt_ms):
    delay_s = rtt_ms  # assignment: _s vs _ms
    return delay_s


def compare_wrong(timeout_s, rtt_ms):
    return timeout_s > rtt_ms  # comparison: _s vs _ms


def keyword_wrong(sink, rtt_ms):
    sink.record(rtt_s=rtt_ms)  # keyword: _s parameter fed _ms value


def unify_wrong(rtt_s, size_bytes):
    return max(rtt_s, size_bytes)  # min/max must unify


def grow_wrong(total_bytes, dur_s):
    total_bytes += dur_s  # augmented assignment: data vs time
    return total_bytes
