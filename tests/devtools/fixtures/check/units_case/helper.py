"""Callee side of the cross-module positional-argument check."""


def wait_for(delay_s):
    return delay_s


class Pacer:
    def __init__(self, rate_bps):
        self.rate_bps = rate_bps
