"""Caller side: positional arguments resolved across module boundaries."""

from helper import Pacer, wait_for


def call_wrong(rtt_ms):
    return wait_for(rtt_ms)  # positional: delay_s parameter fed _ms value


def construct_wrong(size_bytes):
    return Pacer(size_bytes)  # constructor: rate_bps parameter fed _bytes


def call_right(rtt_ms):
    return wait_for(rtt_ms * 1e-3)
