"""Harness-layer module importing downward into the sim layer."""

from repro.sim import engine

__all__ = ["engine"]
