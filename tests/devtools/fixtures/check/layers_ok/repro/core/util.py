"""Bottom-layer module with no repro imports at all."""

SCALE = 1.0
