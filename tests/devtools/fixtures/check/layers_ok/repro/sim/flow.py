"""Completes the engine<->flow pair; only one edge is a runtime import."""

from repro.sim import engine

__all__ = ["engine"]
