"""Sim-layer module: downward import plus a typing-only back edge."""

from typing import TYPE_CHECKING

from repro.core import util

if TYPE_CHECKING:
    from repro.sim import flow

__all__ = ["util", "flow"]
