"""Negative fixtures: deterministic worker code the race detector must pass."""

LIMIT = 4


def pmap(fn, items):
    return [fn(item) for item in items]


def trial(seed, rng):
    values = []
    values.append(seed)  # local mutation: fine
    draw = rng.random()  # caller-seeded Rng instance: fine
    return draw, values


def digest_of(values):
    parts = []
    for value in sorted(set(values)):  # sorted() pins the order
        parts.append(value)
    return parts


def run(seeds, rng):
    return pmap(trial, seeds)
