"""Positive fixtures: worker-reachable state the race detector must flag."""

import random

RESULTS: list = []
CACHE: dict = {}
COUNTER = 0


def pmap(fn, items):
    return [fn(item) for item in items]


def trial(seed):
    global COUNTER
    COUNTER += 1  # global counter written inside a worker
    RESULTS.append(seed)  # module-level list mutated inside a worker
    CACHE[seed] = seed  # module-level dict written by subscript
    return jitter(seed)


def jitter(seed):
    return seed + random.random()  # unseeded randomness via a helper


def digest_of(values):
    parts = []
    for value in set(values):  # unordered iteration in a digest function
        parts.append(value)
    return parts


def run(seeds):
    return pmap(trial, seeds)
