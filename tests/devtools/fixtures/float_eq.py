"""Fixture: no-float-eq violations (and allowed sentinel comparisons)."""


def check(now, deadline_s, rate_bps):
    if now == deadline_s:
        return True
    if rate_bps != 1.5:
        return False
    return rate_bps == float("inf")  # sentinel comparison: allowed
